//! Writing a custom replacement policy: implement [`EvictionPolicy`],
//! register it by name, and select it like any built-in.
//!
//! This is the compilable version of the README's "Writing a custom
//! policy" walkthrough. The policy here is *hit-density*: retain entries
//! by hits per unit of age — a middle ground between POP (which this
//! equals) and LRU — with an optional `boost=` parameter that weights
//! recent activity.
//!
//! Run with: `cargo run --release --example custom_policy`

use graphcache::core::registry::{self, PolicyError};
use graphcache::core::{CostModel, EvictionPolicy, PolicyView, QuerySerial};
use graphcache::prelude::*;

/// Retains entries with the highest hit density `H/A`, plus a recency
/// boost: an entry hit within the last `boost` serials is never evicted
/// while colder candidates remain.
#[derive(Debug, Clone)]
struct HitDensity {
    boost: u64,
}

impl EvictionPolicy for HitDensity {
    fn name(&self) -> &str {
        "hit-density"
    }

    fn select_victims(&mut self, view: &PolicyView<'_>, evict: usize) -> Vec<QuerySerial> {
        // Score every candidate: (recently-hit, hit density), lowest first;
        // ties break toward the older entry so selection is deterministic.
        let mut scored: Vec<(bool, f64, QuerySerial)> = view
            .rows()
            .iter()
            .map(|r| {
                let recent = view.now().saturating_sub(r.last_hit) < self.boost;
                (recent, r.hits as f64 / view.age(r), r.serial)
            })
            .collect();
        scored.sort_by(|a, b| {
            a.0.cmp(&b.0)
                .then(a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                .then(a.2.cmp(&b.2))
        });
        scored
            .into_iter()
            .take(evict.min(view.len()))
            .map(|(_, _, serial)| serial)
            .collect()
    }
}

fn main() -> Result<(), PolicyError> {
    // 1. Register the policy under a name, with parameter parsing.
    registry::register_eviction("hit-density", |params| {
        let boost = params.get_usize("boost", 10)? as u64;
        Ok(Box::new(HitDensity { boost }))
    });

    // 2. Select it by name — parameters ride along in the spec string.
    let dataset = datasets::aids_like(0.2, 42);
    let method = MethodBuilder::ggsx().build(&dataset);
    let cache = GraphCache::builder()
        .capacity(50)
        .window(10)
        .cost_model(CostModel::Work)
        .eviction("hit-density:boost=25")
        .admission("adaptive")
        .try_build(method)?;

    // 3. It drives the cache like any built-in.
    let workload =
        graphcache::workload::generate_type_a(&dataset, &TypeAConfig::zz(1.4).count(200).seed(7));
    let mut hits = 0usize;
    for q in workload.graphs() {
        hits += cache.run(q).record.any_hit() as usize;
    }
    println!(
        "eviction={} admission={}: {}/{} queries cache-assisted, {} entries cached",
        cache.eviction_name(),
        cache.admission_name(),
        hits,
        workload.len(),
        cache.cache_len()
    );
    Ok(())
}
