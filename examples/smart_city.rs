//! Exploratory smart-city analytics — the paper's §1 scenario: "queries
//! referring to road networks may pertain to neighbourhoods, towns, metro
//! areas" — i.e. an analyst drills *down* (subqueries of an earlier query)
//! and rolls *up* (superqueries). GraphCache recognises both directions:
//!
//! * drill-down: the old broad query **contains** the new one — every graph
//!   in its cached answer is answered without a sub-iso test (eq. (1));
//! * roll-up: the old narrow query is **contained** in the new one — every
//!   graph outside its cached answer is pruned (eq. (2)).
//!
//! Run with: `cargo run --release --example smart_city`

use graphcache::graph::random::bfs_edge_subgraph;
use graphcache::prelude::*;

fn main() {
    // City districts: medium-size road-network-like graphs (PCM-shaped:
    // dense intersections, few labels = road categories).
    let dataset = datasets::pcm_like(1.0, 21);
    println!("district dataset: {}", dataset.stats());

    let method = MethodBuilder::grapes(1).build(&dataset);
    let cache = GraphCache::builder()
        .capacity(50)
        .window(1) // cache immediately so the session benefits right away
        .policy(PolicyKind::Hd)
        .build(method);

    // The analyst extracts a "metro area" pattern from district 0, then
    // narrows it twice, then broadens again.
    let district = dataset.graph(GraphId(0));
    let metro = bfs_edge_subgraph(district, 0, 28).expect("metro pattern");
    let town = bfs_edge_subgraph(&metro, 0, 16).expect("town pattern");
    let neighbourhood = bfs_edge_subgraph(&town, 0, 8).expect("neighbourhood");

    let steps: [(&str, &LabeledGraph); 4] = [
        ("metro area (28 edges)", &metro),
        ("town (16 edges, ⊆ metro)", &town),
        ("neighbourhood (8 edges, ⊆ town)", &neighbourhood),
        ("metro area revisited", &metro),
    ];

    println!(
        "\n{:<34} {:>7} {:>7} {:>9} {:>6} {:>6} {:>6}",
        "query", "|CS_M|", "|CS_GC|", "sub-iso", "sub", "super", "exact"
    );
    for (name, q) in steps {
        let r = cache.run(q);
        println!(
            "{:<34} {:>7} {:>7} {:>9} {:>6} {:>6} {:>6}",
            name,
            r.record.cs_m_size,
            r.record.cs_gc_size,
            r.record.subiso_tests,
            r.record.sub_hits,
            r.record.super_hits,
            r.record.exact_hit
        );
    }

    println!(
        "\nDrill-downs hit the cached broader query (sub column), the\
         \nroll-up is pruned by the cached narrow queries (super column),\
         \nand revisiting the metro pattern is answered with zero sub-iso\
         \ntests (exact column)."
    );
}
