//! Molecule substructure search — the paper's biochemistry motivation:
//! "queries against a biochemical dataset range from queries for simple
//! molecules and aminoacids, all the way to queries for proteins" (§1).
//!
//! A chemist's session starts with small functional-group queries, then
//! grows them into larger scaffolds. GraphCache turns the containment
//! relations between those queries into candidate-set pruning. This example
//! compares the same session with and without the cache.
//!
//! Run with: `cargo run --release --example molecule_search`

use graphcache::core::RunSummary;
use graphcache::prelude::*;
use graphcache::workload::generate_type_a;

fn main() {
    let dataset = datasets::aids_like(1.0, 7);
    println!("molecule library: {}", dataset.stats());

    // A drill-down-style workload: Zipf-selected scaffolds, mixed sizes —
    // small fragments and the larger motifs containing them.
    let workload = generate_type_a(
        &dataset,
        &TypeAConfig::zz(1.4)
            .sizes(vec![4, 8, 12, 16, 20])
            .count(600)
            .seed(99),
    );

    // Baseline: CT-Index alone (the strongest FTV method in the paper).
    let baseline_method = MethodBuilder::ct_index().build(&dataset);
    let mut base_records = Vec::with_capacity(workload.len());
    for q in workload.graphs() {
        let r = baseline_method.run(q);
        base_records.push(to_record(&r));
    }
    let base = RunSummary::from_records(&base_records, 20);

    // The same session through GraphCache.
    let cached_method = MethodBuilder::ct_index().build(&dataset);
    let cache = GraphCache::builder()
        .capacity(100)
        .window(20)
        .policy(PolicyKind::Hd)
        .build(cached_method);
    let mut gc_records = Vec::with_capacity(workload.len());
    for q in workload.graphs() {
        let r = cache.run(q);
        // Answers must agree with the uncached method.
        debug_assert_eq!(r.answer, baseline_method.run(q).answer);
        gc_records.push(r.record);
    }
    let gc = RunSummary::from_records(&gc_records, 20);

    println!(
        "\n                 {:>14} {:>14}",
        "CT-Index", "GC/CT-Index"
    );
    println!(
        "avg query time   {:>11.0} µs {:>11.0} µs",
        base.avg_query_time_us, gc.avg_query_time_us
    );
    println!(
        "avg sub-iso tests{:>14.1} {:>14.1}",
        base.avg_subiso_tests, gc.avg_subiso_tests
    );
    println!(
        "query-time speedup: {:.2}x | sub-iso speedup: {:.2}x | hit rate {:.0}%",
        gc.time_speedup_vs(&base),
        gc.subiso_speedup_vs(&base),
        gc.hit_rate * 100.0
    );
}

fn to_record(r: &graphcache::methods::MethodResult) -> graphcache::core::QueryRecord {
    graphcache::core::QueryRecord {
        m_filter: r.filter.duration,
        verify: r.verify.duration,
        subiso_tests: r.verify.stats.tests,
        cs_m_size: r.filter.candidates.len(),
        cs_gc_size: r.filter.candidates.len(),
        answer_size: r.answer.len(),
        ..Default::default()
    }
}
