//! Quickstart: put GraphCache in front of a filter-then-verify method and
//! watch repeated/related queries get cheaper.
//!
//! Run with: `cargo run --release --example quickstart`

use graphcache::prelude::*;
use std::time::Duration;

fn main() {
    // A molecule-ish dataset: 1,000 sparse labelled graphs.
    let dataset = datasets::aids_like(1.0, 42);
    println!("dataset: {}", dataset.stats());

    // Method M: GraphGrepSX filtering + VF2 verification (paper §7.1).
    let method = MethodBuilder::ggsx().build(&dataset);
    let baseline = MethodBuilder::ggsx().build(&dataset);

    // GraphCache with the paper's defaults: C = 100, W = 20, HD policy.
    // The handle is a shared service: `run` takes &self.
    let cache = GraphCache::builder()
        .capacity(100)
        .window(20)
        .policy(PolicyKind::Hd)
        .build(method);

    // A workload with locality: Zipf-skewed source-graph selection.
    let workload =
        graphcache::workload::generate_type_a(&dataset, &TypeAConfig::zz(1.4).count(300).seed(7));

    let mut gc_time = Duration::ZERO;
    let mut base_time = Duration::ZERO;
    let mut gc_tests = 0u64;
    let mut base_tests = 0u64;
    let mut hits = 0usize;
    for query in workload.graphs() {
        let r = cache.run(query);
        let b = baseline.run(query);
        assert_eq!(r.answer, b.answer, "cache must not change answers");
        gc_time += r.record.query_time();
        gc_tests += r.record.subiso_tests;
        base_time += b.total_time();
        base_tests += b.subiso_tests();
        hits += r.record.any_hit() as usize;
    }

    println!(
        "{} queries | cache holds {} entries | {} queries helped by the cache",
        workload.len(),
        cache.cache_len(),
        hits
    );
    println!(
        "query time:   baseline {:>7.1} ms | with GraphCache {:>7.1} ms | speedup {:.2}x",
        base_time.as_secs_f64() * 1e3,
        gc_time.as_secs_f64() * 1e3,
        base_time.as_secs_f64() / gc_time.as_secs_f64().max(1e-12)
    );
    println!(
        "sub-iso tests: baseline {:>6} | with GraphCache {:>6} | {:.2}x fewer",
        base_tests,
        gc_tests,
        base_tests as f64 / gc_tests.max(1) as f64
    );
    println!(
        "cache memory: {:.1} KiB vs Method M index {:.1} KiB",
        cache.memory_bytes() as f64 / 1024.0,
        cache.method().index_memory_bytes().unwrap_or(0) as f64 / 1024.0
    );

    // Exact repeats of a cached query are answered without verification.
    let popular = workload.queries[workload.len() - 1].graph.clone();
    let r = cache.run(&popular);
    println!(
        "re-running the last query: exact hit = {}, sub-iso tests = {}",
        r.record.exact_hit, r.record.subiso_tests
    );

    // The same warmed cache can serve many clients at once: replay the
    // whole workload again as a typed batch fanned across worker threads.
    let t0 = std::time::Instant::now();
    let responses = cache.run_batch(workload.graphs().map(QueryRequest::from));
    let wall = t0.elapsed();
    let exact = responses
        .iter()
        .filter(|resp| resp.result.record.exact_hit)
        .count();
    println!(
        "warm batch replay: {} queries on {} threads in {:.1} ms ({} exact hits)",
        responses.len(),
        cache.batch_threads(),
        wall.as_secs_f64() * 1e3,
        exact
    );
}
