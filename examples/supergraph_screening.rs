//! Supergraph queries: structural-alert screening.
//!
//! The dataset holds small "alert" fragments (toxicophores); each incoming
//! molecule is a **supergraph query** — find all alerts contained in it
//! (paper §3: determine all `Gi ∈ D` with `g ⊇ Gi`). GraphCache handles
//! this mode with the inverse pruning rules of §5.1, including the inverse
//! empty-answer shortcut.
//!
//! Run with: `cargo run --release --example supergraph_screening`

use graphcache::core::{QueryKind, QueryRequest};
use graphcache::graph::random::bfs_edge_subgraph;
use graphcache::prelude::*;

fn main() {
    // Alert library: many small fragments (3–6 edges each).
    let molecules = datasets::aids_like(0.3, 3);
    let mut alerts = Vec::new();
    for i in 0..120 {
        let src = molecules.graph(GraphId(i % molecules.len() as u32));
        if let Some(frag) = bfs_edge_subgraph(src, i % 5, 3 + (i as usize % 4)) {
            alerts.push(frag);
        }
    }
    let alert_db = GraphDataset::new(alerts);
    println!("alert library: {}", alert_db.stats());

    // Supergraph Method M: GGSX — its path index also filters the inverse
    // (containment) direction via per-graph feature counting.
    let method = MethodBuilder::ggsx().build(&alert_db);
    let baseline = MethodBuilder::ggsx().build(&alert_db);
    let cache = GraphCache::builder()
        .capacity(60)
        .window(10)
        .policy(PolicyKind::Hd)
        .query_kind(QueryKind::Supergraph)
        .build(method);

    // Screen a stream of molecules, with repeats (realistic: the same
    // compound arrives through different assay pipelines).
    let mut screened = 0usize;
    let mut flagged = 0usize;
    let mut tests_gc = 0u64;
    let mut tests_base = 0u64;
    for round in 0..3 {
        for i in 0..60u32 {
            let mol = molecules.graph(GraphId((i * 3) % molecules.len() as u32));
            // Take a mid-size portion of the molecule as the screened unit.
            let Some(unit) = bfs_edge_subgraph(mol, 0, 14) else {
                continue;
            };
            // Typed submission: the request carries a correlation tag the
            // pipeline can route the response by.
            let response = cache.execute(QueryRequest::from(&unit).tag(u64::from(i)));
            assert_eq!(response.tag, u64::from(i));
            let gc_result = response.result;
            let base_result = baseline.run_directed(&unit, QueryKind::Supergraph);
            assert_eq!(gc_result.answer, base_result.answer, "screening mismatch");
            screened += 1;
            flagged += (!gc_result.answer.is_empty()) as usize;
            tests_gc += gc_result.record.subiso_tests;
            tests_base += base_result.verify.stats.tests;
            let _ = round;
        }
    }

    println!("screened {screened} units | {flagged} contained at least one alert");
    println!(
        "sub-iso tests: baseline = {tests_base}, with GraphCache = {tests_gc} ({:.1}x fewer)",
        tests_base as f64 / tests_gc.max(1) as f64
    );
    println!("cache entries: {}", cache.cache_len());
}
