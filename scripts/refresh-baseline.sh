#!/usr/bin/env bash
# Regenerates benches/baseline.json — the committed deterministic-counter
# baseline that `gc bench --check` (and the CI bench-smoke job) gates
# against. Run this after a change that intentionally shifts counters,
# then review the diff like any other code change:
#
#   scripts/refresh-baseline.sh
#   git diff benches/baseline.json
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --bin gc
./target/release/gc bench --suite smoke --json benches/baseline.json

echo
echo "baseline refreshed; review with: git diff benches/baseline.json"
