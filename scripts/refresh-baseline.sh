#!/usr/bin/env bash
# Regenerates benches/baseline.json, benches/baseline-fragments.json and
# benches/baseline-restore.json — the committed deterministic-counter
# baselines that `gc bench --check`
# (and the CI bench-smoke job) gates against. Run this after a change that
# intentionally shifts counters, then review the diff like any other code
# change:
#
#   cargo build --release --bin gc
#   scripts/refresh-baseline.sh
#   git diff benches/baseline.json
#
# The script deliberately does NOT build for you: a baseline captured from
# a stale binary silently bakes yesterday's counters into today's gate.
# It refuses to run unless target/release/gc exists and is newer than
# every tracked source file, and it writes the baseline atomically so an
# interrupted run can never leave a truncated benches/baseline.json.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=target/release/gc
OUT=benches/baseline.json
OUT_FRAGMENTS=benches/baseline-fragments.json
OUT_RESTORE=benches/baseline-restore.json

die() {
    echo "refresh-baseline: $*" >&2
    exit 1
}

[ -x "$BIN" ] || die "release binary $BIN not found — run: cargo build --release --bin gc"

# Stale check: any tracked source newer than the binary means the binary
# does not reflect the working tree. -print -quit stops at the first hit.
stale=$(find src crates Cargo.toml Cargo.lock \
    \( -name '*.rs' -o -name 'Cargo.toml' -o -name 'Cargo.lock' \) \
    -newer "$BIN" -print -quit)
[ -z "$stale" ] || die "$BIN is older than $stale — rebuild first: cargo build --release --bin gc"

# Write to a temp file in the same directory, then rename into place.
tmp=$(mktemp "$OUT.XXXXXX")
trap 'rm -f "$tmp"' EXIT
"$BIN" bench --suite smoke --json "$tmp"
mv "$tmp" "$OUT"
trap - EXIT

tmp=$(mktemp "$OUT_FRAGMENTS.XXXXXX")
trap 'rm -f "$tmp"' EXIT
"$BIN" bench --suite fragments --json "$tmp"
mv "$tmp" "$OUT_FRAGMENTS"
trap - EXIT

tmp=$(mktemp "$OUT_RESTORE.XXXXXX")
trap 'rm -f "$tmp"' EXIT
"$BIN" bench --suite restore --json "$tmp"
mv "$tmp" "$OUT_RESTORE"
trap - EXIT

echo
echo "baselines refreshed; review with: git diff $OUT $OUT_FRAGMENTS $OUT_RESTORE"
