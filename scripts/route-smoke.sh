#!/usr/bin/env bash
# End-to-end smoke test for the routed fleet using only the release CLI:
# boot three `gc serve --peer-id I/3` peers and a `gc route` front-end,
# warm the fleet through the router, kill -9 one peer, and assert the
# fleet degrades (queries still answered, peer_misses counted) instead
# of failing. Fully deterministic: fixed dataset/workload seeds and a
# seeded router retry policy, so any pass/fail is reproducible.
#
#   cargo build --release --bin gc
#   scripts/route-smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=target/release/gc
[ -x "$BIN" ] || { echo "route-smoke: $BIN not found — run: cargo build --release --bin gc" >&2; exit 1; }

WORK=$(mktemp -d)
ROUTER_SOCK="$WORK/gc.sock"
PEER_PIDS=()
ROUTER_PID=
cleanup() {
    [ -n "$ROUTER_PID" ] && kill "$ROUTER_PID" 2>/dev/null || true
    for pid in ${PEER_PIDS[@]+"${PEER_PIDS[@]}"}; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

die() {
    echo "route-smoke: FAIL: $*" >&2
    exit 1
}

wait_for_socket() {
    local sock=$1 pid=$2 what=$3
    for _ in $(seq 1 100); do
        [ -S "$sock" ] && return 0
        kill -0 "$pid" 2>/dev/null || die "$what exited before binding $sock"
        sleep 0.05
    done
    die "$what never bound $sock"
}

echo "== generate dataset + workload"
"$BIN" generate --profile aids --scale 0.05 --seed 11 --out "$WORK/d.txt"
"$BIN" workload --dataset "$WORK/d.txt" --kind zz --count 30 --seed 13 --out "$WORK/q.txt"

echo "== start 3 peers"
PEER_SOCKS=()
for i in 0 1 2; do
    sock="$WORK/peer-$i.sock"
    "$BIN" serve --dataset "$WORK/d.txt" --unix "$sock" \
        --capacity 50 --window 10 --fragments on --peer-id "$i/3" &
    PEER_PIDS+=($!)
    PEER_SOCKS+=("$sock")
done
for i in 0 1 2; do
    wait_for_socket "${PEER_SOCKS[$i]}" "${PEER_PIDS[$i]}" "peer $i"
done

echo "== start router"
"$BIN" route --unix "$ROUTER_SOCK" \
    --peers "${PEER_SOCKS[0]},${PEER_SOCKS[1]},${PEER_SOCKS[2]}" \
    --retries 5 --retry-seed 7 &
ROUTER_PID=$!
wait_for_socket "$ROUTER_SOCK" "$ROUTER_PID" "router"

echo "== warm the fleet through the router"
"$BIN" ctl --unix "$ROUTER_SOCK" ping | grep -q pong || die "router ping did not pong"
"$BIN" query --connect "unix:$ROUTER_SOCK" --queries "$WORK/q.txt" > "$WORK/warm.out"
grep -q "^30 queries served" "$WORK/warm.out" || die "warm replay did not report 30 queries"

echo "== kill -9 peer 1"
kill -9 "${PEER_PIDS[1]}"
wait "${PEER_PIDS[1]}" 2>/dev/null || true
PEER_PIDS=("${PEER_PIDS[0]}" "${PEER_PIDS[2]}")

echo "== degraded replay still succeeds"
# Exact repeats: live-owner queries take the fast path, dead-owner
# queries fall back to degraded (miss-only) execution — but every one
# must still be answered.
"$BIN" query --connect "unix:$ROUTER_SOCK" --queries "$WORK/q.txt" > "$WORK/degraded.out"
grep -q "^30 queries served" "$WORK/degraded.out" || die "degraded replay did not report 30 queries"

echo "== routing counters visible in ctl stats"
"$BIN" ctl --unix "$ROUTER_SOCK" stats > "$WORK/stats.out"
for key in queries routed_exact fanout_probes peer_misses peers_live peers_total; do
    grep -q "^$key " "$WORK/stats.out" || die "router STATS missing counter '$key'"
done
live=$(awk '$1 == "peers_live" { print $2 }' "$WORK/stats.out")
[ "$live" -eq 2 ] || die "router reports $live live peers after the kill, expected 2"
total=$(awk '$1 == "peers_total" { print $2 }' "$WORK/stats.out")
[ "$total" -eq 3 ] || die "router reports peers_total=$total, expected 3"
misses=$(awk '$1 == "peer_misses" { print $2 }' "$WORK/stats.out")
[ "$misses" -ge 1 ] || die "killing a peer produced no peer_misses"
exact=$(awk '$1 == "routed_exact" { print $2 }' "$WORK/stats.out")
[ "$exact" -ge 1 ] || die "repeat replay produced no routed_exact fast-path hits"

echo "== SIGTERM drain (router first, then peers)"
kill -TERM "$ROUTER_PID"
wait "$ROUTER_PID" || die "router exited non-zero on SIGTERM"
ROUTER_PID=
[ ! -e "$ROUTER_SOCK" ] || die "router left its socket behind: $ROUTER_SOCK"
for pid in "${PEER_PIDS[@]}"; do
    kill -TERM "$pid"
    wait "$pid" || die "peer $pid exited non-zero on SIGTERM"
done
PEER_PIDS=()

echo "route-smoke: OK"
