#!/usr/bin/env bash
# Fail on broken intra-repo markdown links. Checks every [text](target)
# and [ref]: target link in README.md and docs/*.md; external (http/…)
# and pure-anchor (#…) targets are skipped, anchor fragments on file
# targets are stripped before the existence check. No dependencies
# beyond bash + grep + sed.
set -euo pipefail
cd "$(dirname "$0")/.."

FILES=(README.md docs/*.md)
fail=0

for file in "${FILES[@]}"; do
    dir=$(dirname "$file")
    targets=$(
        { grep -oE '\]\([^)]+\)' "$file" | sed -E 's/^\]\(//; s/\)$//'
          grep -oE '^\[[^]]+\]:[[:space:]]+[^[:space:]]+' "$file" \
              | sed -E 's/^\[[^]]+\]:[[:space:]]+//'
        } | sort -u
    ) || true
    while IFS= read -r target; do
        [ -n "$target" ] || continue
        case "$target" in
            http://*|https://*|mailto:*|'#'*) continue ;;
        esac
        path="${target%%#*}"
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ]; then
            echo "check-docs-links: BROKEN: $file -> $target" >&2
            fail=1
        fi
    done <<< "$targets"
done

if [ "$fail" -ne 0 ]; then
    echo "check-docs-links: FAIL" >&2
    exit 1
fi
echo "check-docs-links: OK (${#FILES[@]} files)"
