#!/usr/bin/env bash
# Crash-recovery smoke test using only the release CLI: boot a `gc serve`
# daemon with a 1-second background-snapshot cadence, warm it over the
# wire, SIGKILL it cold (no drain, no exit handler), then restart it with
# `--restore` and assert it serves the committed baseline from the
# surviving snapshot generation. Also checks the stale-socket path: the
# kill leaves the socket file behind, and the restarted daemon must
# reclaim it. CI runs this under a hard `timeout`; locally it is
# self-contained and cleans up after itself:
#
#   cargo build --release --bin gc
#   scripts/crash-smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=target/release/gc
[ -x "$BIN" ] || { echo "crash-smoke: $BIN not found — run: cargo build --release --bin gc" >&2; exit 1; }

WORK=$(mktemp -d)
SOCK="$WORK/gc.sock"
SAVE="$WORK/snapshot"
SERVER_PID=
cleanup() {
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

die() {
    echo "crash-smoke: FAIL: $*" >&2
    exit 1
}

wait_for_socket() {
    for _ in $(seq 1 200); do
        [ -S "$SOCK" ] && return 0
        kill -0 "$SERVER_PID" 2>/dev/null || die "daemon exited before binding $SOCK"
        sleep 0.05
    done
    die "daemon never bound $SOCK"
}

echo "== generate dataset + workload"
"$BIN" generate --profile aids --scale 0.05 --seed 11 --out "$WORK/d.txt"
"$BIN" workload --dataset "$WORK/d.txt" --kind zz --count 30 --seed 13 --out "$WORK/q.txt"

echo "== start daemon with 1s background snapshots"
"$BIN" serve --dataset "$WORK/d.txt" --unix "$SOCK" \
    --capacity 50 --window 10 \
    --persist-on-exit "$SAVE" --snapshot-every 1 &
SERVER_PID=$!
wait_for_socket

echo "== warm the cache over the wire (retries enabled)"
"$BIN" query --connect "unix:$SOCK" --queries "$WORK/q.txt" \
    --retries 3 --timeout-ms 60000 > /dev/null

echo "== wait for a committed background snapshot"
committed=0
for _ in $(seq 1 100); do
    written=$("$BIN" ctl --unix "$SOCK" stats | awk '$1 == "snapshots_written" { print $2 }')
    if [ "${written:-0}" -ge 1 ]; then
        committed=1
        break
    fi
    sleep 0.2
done
[ "$committed" -eq 1 ] || die "daemon never wrote a background snapshot"
[ -f "$SAVE/MANIFEST" ] || die "background snapshot committed without a MANIFEST"

echo "== SIGKILL (no drain)"
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=
[ -S "$SOCK" ] || die "SIGKILL should leave the stale socket file behind"

echo "== daemon unreachable is exit 4"
set +e
"$BIN" ctl --unix "$SOCK" ping 2>/dev/null
rc=$?
set -e
[ "$rc" -eq 4 ] || die "ctl against a dead daemon exited $rc, expected 4"

echo "== restart: reclaim stale socket, restore committed generation"
"$BIN" serve --dataset "$WORK/d.txt" --unix "$SOCK" \
    --capacity 50 --window 10 \
    --persist-on-exit "$SAVE" --restore "$SAVE" &
SERVER_PID=$!
# The stale socket file is still on disk until the new daemon reclaims
# it, so "socket exists" is not "daemon ready" — lean on the client-side
# connect retries instead.
"$BIN" ctl --unix "$SOCK" --timeout 10 --retries 10 stats > "$WORK/stats.out"
for key in cache_entries recovered_generation snapshots_written deadline_aborts; do
    grep -q "^$key " "$WORK/stats.out" || die "STATS missing counter '$key'"
done
entries=$(awk '$1 == "cache_entries" { print $2 }' "$WORK/stats.out")
generation=$(awk '$1 == "recovered_generation" { print $2 }' "$WORK/stats.out")
[ "$entries" -ge 1 ] || die "restored daemon serves an empty cache"
[ "$generation" -ge 1 ] || die "restored daemon reports no recovered generation"

echo "== restored daemon still answers queries"
"$BIN" query --connect "unix:$SOCK" --queries "$WORK/q.txt" --retries 3 > "$WORK/replay.out"
grep -q "^30 queries served" "$WORK/replay.out" || die "post-restore replay did not serve 30 queries"

echo "== graceful drain of the restarted daemon"
kill -TERM "$SERVER_PID"
if wait "$SERVER_PID"; then
    SERVER_PID=
else
    die "restarted daemon exited non-zero on SIGTERM"
fi
[ ! -e "$SOCK" ] || die "daemon left its socket behind: $SOCK"

echo "crash-smoke: OK (restored generation $generation with $entries entries)"
