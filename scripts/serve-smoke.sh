#!/usr/bin/env bash
# End-to-end smoke test for the `gc serve` daemon using only the release
# CLI: start a daemon on a unix socket, talk to it with `gc ctl` and
# `gc query --connect`, then SIGTERM it and assert a clean drain (exit 0,
# socket unlinked). CI runs this under a hard `timeout`; locally it is
# self-contained and cleans up after itself:
#
#   cargo build --release --bin gc
#   scripts/serve-smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=target/release/gc
[ -x "$BIN" ] || { echo "serve-smoke: $BIN not found — run: cargo build --release --bin gc" >&2; exit 1; }

WORK=$(mktemp -d)
SOCK="$WORK/gc.sock"
SERVER_PID=
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

die() {
    echo "serve-smoke: FAIL: $*" >&2
    exit 1
}

echo "== generate dataset + workload"
"$BIN" generate --profile aids --scale 0.05 --seed 11 --out "$WORK/d.txt"
"$BIN" workload --dataset "$WORK/d.txt" --kind zz --count 30 --seed 13 --out "$WORK/q.txt"

echo "== start daemon"
"$BIN" serve --dataset "$WORK/d.txt" --unix "$SOCK" \
    --capacity 50 --window 10 --fragments on \
    --persist-on-exit "$WORK/snapshot" &
SERVER_PID=$!

# Wait for the socket to come up (the daemon binds before serving).
for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || die "daemon exited before binding $SOCK"
    sleep 0.05
done
[ -S "$SOCK" ] || die "daemon never bound $SOCK"

echo "== ctl ping"
"$BIN" ctl --unix "$SOCK" ping | grep -q pong || die "ping did not pong"

echo "== query --connect"
"$BIN" query --connect "unix:$SOCK" --queries "$WORK/q.txt" > "$WORK/queries.out"
grep -q "^30 queries served" "$WORK/queries.out" || die "served replay did not report 30 queries"

echo "== ctl stats"
"$BIN" ctl --unix "$SOCK" stats > "$WORK/stats.out"
for key in queries sub_hits super_hits fragment_probes fragments_built cache_entries sessions_total inflight; do
    grep -q "^$key " "$WORK/stats.out" || die "STATS missing counter '$key'"
done
served=$(awk '$1 == "queries" { print $2 }' "$WORK/stats.out")
[ "$served" -ge 30 ] || die "daemon counted $served queries, expected >= 30"
built=$(awk '$1 == "fragments_built" { print $2 }' "$WORK/stats.out")
[ "$built" -ge 1 ] || die "daemon ran with --fragments on but built $built fragments"

echo "== SIGTERM drain"
kill -TERM "$SERVER_PID"
if wait "$SERVER_PID"; then
    SERVER_PID=
else
    die "daemon exited non-zero on SIGTERM"
fi
[ ! -e "$SOCK" ] || die "daemon left its socket behind: $SOCK"
[ -f "$WORK/snapshot/entries.txt" ] || die "daemon did not persist a snapshot on exit"

echo "serve-smoke: OK"
