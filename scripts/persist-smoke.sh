#!/usr/bin/env bash
# End-to-end persistence smoke using only the release CLI: replay a
# workload, save the warmed cache in both on-disk formats, restore each
# into a fresh process replaying the same workload, and require
# counter-identical behaviour — the text parse and the binary arena
# snapshot must be indistinguishable above the persistence layer. Also
# checks the format hygiene contract (each save directory holds exactly
# one representation, auto-detected on restore). CI runs this under a
# hard `timeout`; locally it is self-contained and cleans up after
# itself:
#
#   cargo build --release --bin gc
#   scripts/persist-smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=target/release/gc
[ -x "$BIN" ] || { echo "persist-smoke: $BIN not found — run: cargo build --release --bin gc" >&2; exit 1; }

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

die() {
    echo "persist-smoke: FAIL: $*" >&2
    exit 1
}

# Strips the hardware-dependent lines (latency averages, wall clock,
# maintenance timing breakdown) and the save/restore directory paths so
# the diff below compares deterministic counters only.
counters() {
    grep -v -e "wall clock" -e "rounds | total" -e "^saved cache state" "$1" \
        | sed -e 's/avg [0-9]* µs/avg - µs/' -e 's| from .*| from -|'
}

echo "== generate dataset + workload"
"$BIN" generate --profile aids --scale 0.05 --seed 11 --out "$WORK/d.txt"
"$BIN" workload --dataset "$WORK/d.txt" --kind zz --count 30 --seed 13 --out "$WORK/q.txt"

run() { # run <extra flags...> — one deterministic replay
    "$BIN" query --dataset "$WORK/d.txt" --queries "$WORK/q.txt" \
        --capacity 50 --window 5 --maint-stats "$@"
}

echo "== warm replays, saving text and binary"
run --save "$WORK/text" > "$WORK/warm-text.out"
run --save "$WORK/bin" --persist-format binary > "$WORK/warm-bin.out"

[ -f "$WORK/text/entries.txt" ] || die "text save missing entries.txt"
[ ! -e "$WORK/text/snapshot.bin" ] || die "text save left a snapshot.bin behind"
[ -f "$WORK/bin/snapshot.bin" ] || die "binary save missing snapshot.bin"
[ ! -e "$WORK/bin/entries.txt" ] || die "binary save left an entries.txt behind"

# The two warm replays are the same deterministic run; anything else
# means the save format leaked into replay behaviour.
diff <(counters "$WORK/warm-text.out") <(counters "$WORK/warm-bin.out") \
    || die "warm replay counters differ between save formats"

echo "== restored replays (auto-detected format)"
run --restore "$WORK/text" > "$WORK/replay-text.out"
run --restore "$WORK/bin" > "$WORK/replay-bin.out"

grep -q "^restored " "$WORK/replay-bin.out" || die "binary restore did not report restored entries"
diff <(counters "$WORK/replay-text.out") <(counters "$WORK/replay-bin.out") \
    || die "restored replay counters differ between text and binary snapshots"

# A restored cache replaying its own workload must be far warmer than
# the cold run that produced the snapshot — the round-trip preserved the
# entries and their answer sets, not just the entry count.
warm=$(grep -o "[0-9]* cache-assisted" "$WORK/warm-bin.out" | awk '{ print $1 }')
assisted=$(grep -o "[0-9]* cache-assisted" "$WORK/replay-bin.out" | awk '{ print $1 }')
[ "$assisted" -gt "$warm" ] || die "restored replay assisted $assisted queries, cold run $warm — snapshot did not warm the cache"
[ "$assisted" -ge 25 ] || die "restored cache served only $assisted/30 queries cache-assisted"

echo "persist-smoke: OK"
