//! `gc` — command-line front end for GraphCache.
//!
//! Subcommands:
//!
//! * `gc generate --profile aids|pdbs|pcm|synthetic [--scale F] [--seed N] --out FILE`
//!   writes a synthetic dataset in the text format of `gc_graph::io`;
//! * `gc stats FILE` prints dataset shape statistics;
//! * `gc workload --dataset FILE --kind zz|zu|uu|b0|b20|b50 [--count N] [--seed N] --out FILE`
//!   generates a query workload (queries are stored as a dataset file);
//! * `gc query --dataset FILE --queries FILE [--method NAME]
//!   [--eviction NAME] [--admission [NAME]] [--capacity N] [--window N]
//!   [--threads N] [--shards N] [--verify-budget N] [--verify-threads N]
//!   [--fragments on|off] [--fragment-budget BYTES] [--fragment-eviction NAME]
//!   [--supergraph] [--background] [--no-cache] [--maint-stats]
//!   [--save DIR] [--persist-format text|binary] [--restore DIR]` replays
//!   the queries and prints per-run statistics;
//! * `gc bench [--suite smoke|paper|policies|fragments] [--json FILE]
//!   [--check BASELINE] [--tolerance PCT] [--timings] [--list] [--serve]`
//!   runs a scenario suite end-to-end (dataset generation → workload →
//!   cached replay) and reports machine-readable metrics;
//! * `gc serve --dataset FILE (--listen ADDR | --unix PATH) [cache flags]
//!   [--max-sessions N] [--max-inflight N] [--drain-timeout SECS]
//!   [--persist-on-exit DIR] [--restore DIR]` runs the long-lived cache
//!   daemon speaking the line-delimited wire protocol of `gc_server`;
//! * `gc route --unix PATH --peers SOCK,SOCK,... [--retries N]
//!   [--retry-seed S]` runs the fingerprint-routing front-end over a
//!   fleet of `gc serve --peer-id` daemons (see `docs/architecture.md`);
//! * `gc ctl (--unix PATH | --tcp ADDR) [--timeout SECS] [--retries N]
//!   ping|stats|shutdown` sends one control frame to a running daemon;
//! * `gc query --connect unix:PATH|ADDR --queries FILE [--retries N]
//!   [--retry-seed S] [--timeout-ms MS]` replays a query file against a
//!   running daemon instead of an in-process cache.
//!
//! `gc serve` flags:
//!
//! * `--listen ADDR` / `--unix PATH` — TCP and/or unix-socket listener
//!   (at least one is required). The daemon removes a stale socket file
//!   at the unix path before binding, and unlinks it again on exit;
//! * `--max-sessions N` — concurrent session cap (default 64); further
//!   connections are refused with `ERR code=max-sessions`;
//! * `--max-inflight N` — admission-permit pool size (default: the
//!   cache's batch thread count). A `QUERY` that cannot take a permit is
//!   answered `BUSY` and not executed — bounded backpressure, never an
//!   unbounded queue;
//! * `--drain-timeout SECS` — how long graceful drain (SIGTERM, SIGINT,
//!   or a `SHUTDOWN` frame) waits for sessions to finish in-flight work
//!   (default 10);
//! * `--persist-on-exit DIR` — save the cache snapshot to DIR after a
//!   graceful drain (the `gc query --restore` format; `--persist-format
//!   text|binary` picks the representation, as for `gc query --save`).
//!   Snapshots commit atomically through generation slots plus a
//!   checksummed `MANIFEST`, so a crash mid-write never clobbers the
//!   previous good snapshot. A drain-time save failure is a typed error
//!   (exit 1), never a silent drop;
//! * `--snapshot-every SECS` — also write a background snapshot to the
//!   `--persist-on-exit` directory every SECS seconds while serving,
//!   without blocking queries (requires `--persist-on-exit`);
//! * `--peer-id I/N` — serve as routed peer `I` of an `N`-peer fleet
//!   behind `gc route`: `HELLO` advertises the identity, `PROBE` replies
//!   are filtered to the peer's consistent-hash slice of the fingerprint
//!   space, and query traffic requires a proto-4 `VERSION` announcement;
//! * the cache-construction flags of `gc query` (`--method`,
//!   `--eviction`, `--admission`, `--capacity`, `--window`, `--threads`,
//!   `--shards`, `--verify-budget`, `--verify-threads`, `--fragments`,
//!   `--fragment-budget`, `--fragment-eviction`, `--supergraph`,
//!   `--background`, `--restore`) configure the shared cache.
//!
//! `gc bench` flags:
//!
//! * `--suite NAME` — which scenario matrix to run (default `smoke`, the
//!   CI suite; `paper` is the full dataset × workload matrix; `policies`
//!   sweeps the policy registry; `fragments` measures the fragment cache
//!   on a low-repetition, structurally-overlapping workload). `--list`
//!   prints the scenarios of the selected suite without running them;
//! * `--json FILE` — write the versioned report (deterministic counters
//!   only, so the bytes are identical across runs with the same build;
//!   add `--timings` to include the advisory wall-clock section);
//! * `--check BASELINE` — compare the run's deterministic counters
//!   against a committed baseline (`benches/baseline.json`), failing with
//!   exit code 3 when any counter drifts beyond `--tolerance PCT`
//!   (default 5). Wall-clock is advisory and never gated. Refresh the
//!   baseline with `scripts/refresh-baseline.sh`;
//! * `--serve` — run every scenario through the `gc serve` daemon on a
//!   private unix socket instead of in-process calls. Counters are
//!   byte-identical to the in-process path for the same seeds, so the
//!   same committed baseline gates both (`--serve --check`);
//! * `--route N` — run every scenario through an `N`-peer routed fleet
//!   behind a `gc route` front-end on private unix sockets. The
//!   determinism gate: counters are byte-identical to the in-process
//!   path — and therefore identical for every fleet size — so the same
//!   committed baseline gates `--route 1` and `--route 3` alike.
//!
//! # Exit codes
//!
//! * `0` — success;
//! * `1` — runtime failure (I/O errors, malformed datasets, missing
//!   `--restore` state, protocol errors on a live connection);
//! * `2` — usage error (unknown subcommand/flag value, missing required
//!   option, unknown profile/workload/method/policy/suite name);
//! * `3` — benchmark regression: `gc bench --check` found deterministic
//!   counters drifting beyond tolerance;
//! * `4` — daemon unreachable: `gc ctl` / `gc query --connect` could not
//!   connect (refused, or the socket file is gone), even after any
//!   `--retries` budget. Distinct from 1 so scripts can tell "daemon
//!   down" apart from "daemon answered but the request failed".
//!
//! `gc query` flags:
//!
//! * `--verify-budget N` — shared hit-verification work pool per query:
//!   candidates are verified cheapest-first and each sub-iso test deducts
//!   its matcher work from the pool; when it runs dry the sweep stops with
//!   a partial (still sound) hit set and the query is reported as
//!   `truncated`. Exact repeats bypass the pool entirely through the
//!   fingerprint fast path;
//! * `--verify-threads N` — fan large candidate queues across `N`
//!   verification threads per query (default 1 = sequential; separate
//!   from `--threads`, the client concurrency);
//! * `--threads N` — fan the workload across `N` client threads via
//!   `GraphCache::run_batch` (`0` = auto-detect cores; default `1` =
//!   sequential replay, the paper's single-client setup; ignored with
//!   `--no-cache`, which always replays sequentially);
//! * `--shards N` — partition the cache snapshot into `N` serial-hashed
//!   shards so maintenance rounds patch only the shards their delta
//!   touches (`0` = size from the thread count, the default);
//! * `--background` — run the Window Manager on a background maintenance
//!   thread (the paper's deployment design) instead of inline;
//! * `--maint-stats` — print the per-phase maintenance breakdown (victim
//!   selection / index delta / stats upkeep, entries touched, shards
//!   patched, compactions) after the replay, plus per-shard arena
//!   utilization (bytes live / bytes reserved in the packed postings and
//!   answer arenas) and the postings-debt gauge;
//! * `--eviction NAME` — replacement policy by registry name
//!   (`lru|pop|pin|pinc|hd|gcr|slru|greedy-dual|…`, with optional
//!   parameters like `slru:protected=0.5`); `--policy NAME` is accepted as
//!   an alias. Unknown names fail with the list of available policies.
//! * `--admission [NAME]` — admission policy by registry name
//!   (`none|threshold|adaptive|…`); a bare `--admission` enables the
//!   paper's calibrated threshold (as before the registry existed);
//! * `--fragments on|off` — the sub-query fragment cache (default off):
//!   answered subgraph queries are decomposed into canonical path
//!   fragments whose exact occurrence sets pre-prune the candidate space
//!   of later structurally-overlapping queries;
//! * `--fragment-budget BYTES` — byte budget of the fragment store
//!   (default 1 MiB); `--fragment-eviction NAME` — its replacement policy
//!   by registry name (default `lru`; same registry as `--eviction`, so
//!   `slru:protected=0.5` etc. apply). Unknown names fail with the list
//!   of available policies;
//! * `--supergraph` — supergraph (`G ⊆ g`) instead of subgraph semantics;
//! * `--no-cache` — replay through the bare Method M (baseline timing);
//! * `--save DIR` / `--restore DIR` — persist / preload the cache stores;
//! * `--persist-format text|binary` — on-disk representation for `--save`
//!   (and `gc serve --persist-on-exit`): `text` (default) writes the
//!   line-oriented files, `binary` writes the checksummed arena snapshot
//!   (`snapshot.bin`) that restores with no per-entry parsing.
//!   `--restore` auto-detects the format, so either loads transparently.
//!
//! Example session:
//! ```text
//! gc generate --profile aids --scale 0.1 --out aids.txt
//! gc workload --dataset aids.txt --kind zz --count 200 --out queries.txt
//! gc query --dataset aids.txt --queries queries.txt --method ggsx --eviction hd
//! gc query --dataset aids.txt --queries queries.txt --eviction slru:protected=0.5 --admission adaptive
//! gc query --dataset aids.txt --queries queries.txt --threads 8 --background
//! ```

use graphcache::core::{registry, GraphCache, QueryKind, QueryRequest};
use graphcache::graph::{io, GraphDataset};
use graphcache::harness::{MatrixReport, Suite};
use graphcache::methods::{Method, MethodKind};
use graphcache::server::{
    Client, ClientError, PeerIdentity, QueryFrame, QueryOutcome, RetryPolicy, Router, RouterConfig,
    ServeConfig, Server, StatsScope,
};
use graphcache::workload::{
    generate_type_a, generate_type_b, DatasetProfile, TypeAConfig, TypeBConfig,
};
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

/// CLI failures, by exit code. Usage errors (2) mean the invocation never
/// made sense; runtime errors (1) mean a valid invocation failed; drift
/// (3) means `gc bench --check` found a benchmark regression; unavailable
/// (4) means the daemon a `--connect`/`ctl` invocation targeted was not
/// reachable — distinct from 1 so scripts can tell "daemon down, maybe
/// retry" apart from "daemon answered but the request failed".
#[derive(Debug)]
enum CliError {
    /// Bad invocation → exit code 2.
    Usage(String),
    /// Valid invocation hit a failure → exit code 1.
    Runtime(String),
    /// `--check` found counters beyond tolerance → exit code 3.
    Drift(String),
    /// The target daemon was unreachable (connect refused/absent) → exit
    /// code 4.
    Unavailable(String),
}

impl CliError {
    fn usage(msg: impl Into<String>) -> CliError {
        CliError::Usage(msg.into())
    }
}

type CliResult = Result<(), CliError>;

fn print_usage() {
    eprintln!("usage: gc <generate|stats|workload|query|bench|serve|route|ctl> [options]");
    eprintln!("  gc generate --profile aids|pdbs|pcm|synthetic [--scale F] [--seed N] --out FILE");
    eprintln!("  gc stats FILE");
    eprintln!(
        "  gc workload --dataset FILE --kind zz|zu|uu|b0|b20|b50 [--count N] [--seed N] --out FILE"
    );
    eprintln!("  gc query --dataset FILE --queries FILE [--method NAME] [--eviction NAME]");
    eprintln!("           [--admission [NAME]] [--capacity N] [--window N] [--threads N]");
    eprintln!("           [--shards N] [--verify-budget N] [--verify-threads N]");
    eprintln!("           [--fragments on|off] [--fragment-budget BYTES]");
    eprintln!("           [--fragment-eviction NAME] [--supergraph] [--background]");
    eprintln!("           [--no-cache] [--maint-stats] [--save DIR] [--restore DIR]");
    eprintln!("           [--persist-format text|binary]");
    eprintln!("  gc query --connect unix:PATH|ADDR --queries FILE [--supergraph]");
    eprintln!("           [--verify-budget N] [--retries N] [--retry-seed S] [--timeout-ms MS]");
    eprintln!(
        "  gc bench [--suite smoke|paper|policies|fragments|restore] [--json FILE] [--timings]"
    );
    eprintln!("           [--list]");
    eprintln!("           [--check BASELINE] [--tolerance PCT] [--serve] [--route N]");
    eprintln!("  gc serve --dataset FILE (--listen ADDR | --unix PATH) [--max-sessions N]");
    eprintln!("           [--max-inflight N] [--drain-timeout SECS] [--persist-on-exit DIR]");
    eprintln!("           [--snapshot-every SECS] [--restore DIR] [--peer-id I/N]");
    eprintln!("           [cache flags as for gc query]");
    eprintln!("  gc route --unix PATH --peers SOCK,SOCK,... [--retries N] [--retry-seed S]");
    eprintln!("  gc ctl (--unix PATH | --tcp ADDR) [--timeout SECS] [--retries N]");
    eprintln!("         ping|stats|shutdown");
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.split_first() {
        None => Err(CliError::usage("no subcommand given")),
        Some((cmd, rest)) => match cmd.as_str() {
            "generate" => cmd_generate(rest),
            "stats" => cmd_stats(rest),
            "workload" => cmd_workload(rest),
            "query" => cmd_query(rest),
            "bench" => cmd_bench(rest),
            "serve" => cmd_serve(rest),
            "route" => cmd_route(rest),
            "ctl" => cmd_ctl(rest),
            other => Err(CliError::usage(format!("unknown subcommand {other:?}"))),
        },
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("gc: {msg}");
            print_usage();
            ExitCode::from(2)
        }
        Err(CliError::Runtime(msg)) => {
            eprintln!("gc: {msg}");
            ExitCode::from(1)
        }
        Err(CliError::Drift(msg)) => {
            eprintln!("gc: {msg}");
            ExitCode::from(3)
        }
        Err(CliError::Unavailable(msg)) => {
            eprintln!("gc: {msg}");
            ExitCode::from(4)
        }
    }
}

/// Parses `--key value` pairs and bare flags into a map. Malformed
/// invocations are usage errors.
fn parse_opts(args: &[String]) -> Result<(HashMap<String, String>, Vec<String>), CliError> {
    let mut opts = HashMap::new();
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(key) = a.strip_prefix("--") {
            // Bare flags take no value.
            const FLAGS: [&str; 7] = [
                "supergraph",
                "no-cache",
                "background",
                "maint-stats",
                "timings",
                "list",
                "serve",
            ];
            if FLAGS.contains(&key) {
                opts.insert(key.to_string(), "true".to_string());
                i += 1;
            } else if key == "admission" {
                // Optional value: a bare `--admission` keeps its historical
                // meaning (the paper's calibrated threshold).
                match args.get(i + 1).filter(|v| !v.starts_with("--")) {
                    Some(v) => {
                        opts.insert(key.to_string(), v.clone());
                        i += 2;
                    }
                    None => {
                        opts.insert(key.to_string(), "threshold".to_string());
                        i += 1;
                    }
                }
            } else {
                let v = args
                    .get(i + 1)
                    .ok_or_else(|| CliError::usage(format!("--{key} needs a value")))?;
                opts.insert(key.to_string(), v.clone());
                i += 2;
            }
        } else {
            positional.push(a.clone());
            i += 1;
        }
    }
    Ok((opts, positional))
}

fn req<'a>(opts: &'a HashMap<String, String>, key: &str) -> Result<&'a str, CliError> {
    opts.get(key)
        .map(|s| s.as_str())
        .ok_or_else(|| CliError::usage(format!("missing required option --{key}")))
}

fn num<T: std::str::FromStr>(
    opts: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, CliError> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| CliError::usage(format!("invalid --{key}: {v:?}"))),
    }
}

/// `--persist-format text|binary` (default text) — the on-disk
/// representation `--save` / `--persist-on-exit` writes. Restores
/// auto-detect, so the flag never affects `--restore`.
fn persist_format(
    opts: &HashMap<String, String>,
) -> Result<graphcache::core::PersistFormat, CliError> {
    match opts.get("persist-format").map(|s| s.as_str()) {
        None | Some("text") => Ok(graphcache::core::PersistFormat::Text),
        Some("binary") => Ok(graphcache::core::PersistFormat::Binary),
        Some(other) => Err(CliError::usage(format!(
            "invalid --persist-format {other:?} (text|binary)"
        ))),
    }
}

/// `--fragments on|off` (default off). An explicit value keeps the flag
/// scriptable — `--fragments "$MODE"` — where a bare boolean flag could
/// only ever turn the layer on.
fn fragments_enabled(opts: &HashMap<String, String>) -> Result<bool, CliError> {
    match opts.get("fragments").map(|s| s.as_str()) {
        None => Ok(false),
        Some("on") => Ok(true),
        Some("off") => Ok(false),
        Some(other) => Err(CliError::usage(format!(
            "invalid --fragments {other:?} (on|off)"
        ))),
    }
}

fn cmd_generate(args: &[String]) -> CliResult {
    let (opts, _) = parse_opts(args)?;
    let name = req(&opts, "profile")?;
    let profile = DatasetProfile::by_name(name).ok_or_else(|| {
        CliError::usage(format!(
            "unknown profile {name:?} (aids|pdbs|pcm|synthetic)"
        ))
    })?;
    let scale: f64 = num(&opts, "scale", 1.0)?;
    let seed: u64 = num(&opts, "seed", 42)?;
    let out = req(&opts, "out")?;
    let dataset = profile.scaled(scale).generate(seed);
    io::save_dataset(out, &dataset)
        .map_err(|e| CliError::Runtime(format!("cannot write {out}: {e}")))?;
    println!("wrote {} ({})", out, dataset.stats());
    Ok(())
}

fn cmd_stats(args: &[String]) -> CliResult {
    let (_, positional) = parse_opts(args)?;
    let path = positional
        .first()
        .ok_or_else(|| CliError::usage("usage: gc stats FILE"))?;
    let dataset = load_dataset(path)?;
    println!("{}", dataset.stats());
    Ok(())
}

/// Loads a dataset file, pointing the error at the path (runtime error:
/// the invocation was fine, the file was not).
fn load_dataset(path: &str) -> Result<GraphDataset, CliError> {
    io::load_dataset(path).map_err(|e| CliError::Runtime(format!("cannot load {path}: {e}")))
}

fn cmd_workload(args: &[String]) -> CliResult {
    let (opts, _) = parse_opts(args)?;
    let dataset = load_dataset(req(&opts, "dataset")?)?;
    let count: usize = num(&opts, "count", 500)?;
    let seed: u64 = num(&opts, "seed", 42)?;
    let out = req(&opts, "out")?;
    let kind = req(&opts, "kind")?;
    let workload = match kind {
        "zz" => generate_type_a(&dataset, &TypeAConfig::zz(1.4).count(count).seed(seed)),
        "zu" => generate_type_a(&dataset, &TypeAConfig::zu(1.4).count(count).seed(seed)),
        "uu" => generate_type_a(&dataset, &TypeAConfig::uu().count(count).seed(seed)),
        "b0" | "b20" | "b50" => {
            let p = match kind {
                "b0" => 0.0,
                "b20" => 0.2,
                _ => 0.5,
            };
            generate_type_b(
                &dataset,
                &TypeBConfig::with_no_answer_prob(p)
                    .count(count)
                    .pools((count / 5).clamp(20, 400), (count / 15).clamp(5, 120))
                    .seed(seed),
            )
        }
        other => {
            return Err(CliError::usage(format!(
                "unknown workload kind {other:?} (zz|zu|uu|b0|b20|b50)"
            )))
        }
    };
    let as_dataset = GraphDataset::new(workload.graphs().cloned().collect());
    io::save_dataset(out, &as_dataset)
        .map_err(|e| CliError::Runtime(format!("cannot write {out}: {e}")))?;
    println!(
        "wrote {} ({} queries, {})",
        out,
        workload.len(),
        workload.name
    );
    Ok(())
}

fn build_method(name: &str, dataset: &GraphDataset) -> Result<Method, CliError> {
    match MethodKind::from_registry_name(name) {
        Some(kind) => Ok(kind.build(dataset)),
        None => {
            let available: Vec<&str> = MethodKind::ALL.iter().map(|k| k.registry_name()).collect();
            Err(CliError::usage(format!(
                "unknown method {name:?} (available: {})",
                available.join(", ")
            )))
        }
    }
}

/// Builds the shared cache from the common cache-construction flags —
/// the one code path behind both `gc query` and `gc serve`, so the two
/// subcommands can never drift apart on flag semantics. Handles
/// `--restore` too (printing the same confirmation line `gc query`
/// always has).
fn cache_from_opts(
    opts: &HashMap<String, String>,
    dataset: &GraphDataset,
) -> Result<GraphCache, CliError> {
    let method_name = opts.get("method").map(|s| s.as_str()).unwrap_or("ggsx");
    let eviction = opts
        .get("eviction")
        .or_else(|| opts.get("policy"))
        .map(|s| s.as_str())
        .unwrap_or("hd");
    let kind = if opts.contains_key("supergraph") {
        QueryKind::Supergraph
    } else {
        QueryKind::Subgraph
    };
    let method = build_method(method_name, dataset)?;
    let mut builder = GraphCache::builder()
        .capacity(num(opts, "capacity", 100usize)?)
        .window(num(opts, "window", 20usize)?)
        .eviction(eviction)
        .query_kind(kind)
        .background(opts.contains_key("background"))
        .threads(num(opts, "threads", 1usize)?)
        .shards(num(opts, "shards", 0usize)?);
    if opts.contains_key("verify-budget") {
        builder = builder.verify_budget(num(opts, "verify-budget", 0u64)?);
    }
    if opts.contains_key("verify-threads") {
        builder = builder.verify_threads(num(opts, "verify-threads", 1usize)?);
    }
    if let Some(spec) = opts.get("admission") {
        builder = builder.admission(spec.as_str());
    }
    builder = builder.fragments(fragments_enabled(opts)?);
    if opts.contains_key("fragment-budget") {
        builder = builder.fragment_budget(num(opts, "fragment-budget", 0usize)?);
    }
    if let Some(spec) = opts.get("fragment-eviction") {
        builder = builder.fragment_eviction(spec.as_str());
    }
    let cache = builder
        .try_build(method)
        .map_err(|e| CliError::usage(e.to_string()))?;
    if let Some(dir) = opts.get("restore") {
        // A missing save directory used to surface as a bare
        // "No such file or directory" with no hint which path was wrong.
        // Any representation qualifies: a generational MANIFEST, a binary
        // snapshot.bin, or the text entries.txt.
        let root = std::path::Path::new(dir);
        if !root.join("MANIFEST").is_file()
            && !root.join("snapshot.bin").is_file()
            && !root.join("entries.txt").is_file()
        {
            return Err(CliError::Runtime(format!(
                "cannot restore from {dir:?}: not a saved cache directory \
                 (no MANIFEST, snapshot.bin, or entries.txt — was it written by `gc query --save`?)"
            )));
        }
        let report = cache
            .restore(dir)
            .map_err(|e| CliError::Runtime(format!("cannot restore from {dir:?}: {e}")))?;
        match report.generation {
            Some(generation) => println!(
                "restored {} cached queries from {dir} (generation {generation})",
                report.entries
            ),
            None => println!("restored {} cached queries from {dir}", report.entries),
        }
    }
    Ok(cache)
}

/// Opens a protocol session against `unix:PATH`, `tcp:HOST:PORT`, or a
/// bare `HOST:PORT`, retrying transient connect failures under `policy`.
/// A daemon that stays unreachable is [`CliError::Unavailable`] (exit 4),
/// so scripts can distinguish "daemon down" from in-session failures.
fn connect_target(target: &str, policy: &RetryPolicy) -> Result<Client, CliError> {
    let result = if let Some(path) = target.strip_prefix("unix:") {
        Client::connect_unix_with_retry(path, policy)
    } else {
        let addr = target.strip_prefix("tcp:").unwrap_or(target);
        if !addr.contains(':') {
            return Err(CliError::usage(format!(
                "connect target {target:?} must be unix:PATH, tcp:HOST:PORT, or HOST:PORT"
            )));
        }
        Client::connect_tcp_with_retry(addr, policy)
    };
    result.map_err(|e| match &e {
        ClientError::Io(io) if RetryPolicy::transient_connect(io) => {
            CliError::Unavailable(format!("cannot connect to {target}: {e}"))
        }
        _ => CliError::Runtime(format!("cannot connect to {target}: {e}")),
    })
}

/// `--retries N [--retry-seed S]` → the bounded deterministic retry
/// policy shared by connect and `BUSY` handling (default: no retries, the
/// historical fail-fast behavior).
fn retry_policy(opts: &HashMap<String, String>) -> Result<RetryPolicy, CliError> {
    let attempts: u32 = num(opts, "retries", 0u32)?;
    Ok(match opts.get("retry-seed") {
        Some(_) => RetryPolicy::seeded(attempts, num(opts, "retry-seed", 0u64)?),
        None => RetryPolicy::with_attempts(attempts),
    })
}

fn cmd_query(args: &[String]) -> CliResult {
    let (opts, _) = parse_opts(args)?;
    if let Some(target) = opts.get("connect") {
        return query_connect(&opts, target);
    }
    let method_name = opts.get("method").map(|s| s.as_str()).unwrap_or("ggsx");
    // Replacement policy via the registry; --policy stays as an alias of
    // --eviction for existing scripts. Validate before the dataset loads
    // so a typo fails with the available-policy listing instantly instead
    // of after the expensive file parsing.
    let eviction = opts
        .get("eviction")
        .or_else(|| opts.get("policy"))
        .map(|s| s.as_str())
        .unwrap_or("hd");
    registry::build_eviction(eviction).map_err(|e| CliError::usage(e.to_string()))?;
    let admission = opts.get("admission").map(|s| s.as_str());
    if let Some(spec) = admission {
        registry::build_admission(spec).map_err(|e| CliError::usage(e.to_string()))?;
    }
    // Same early validation for the fragment-store knobs and the
    // persist-format selector.
    fragments_enabled(&opts)?;
    if let Some(spec) = opts.get("fragment-eviction") {
        registry::build_eviction(spec).map_err(|e| CliError::usage(e.to_string()))?;
    }
    let save_format = persist_format(&opts)?;
    let dataset = load_dataset(req(&opts, "dataset")?)?;
    let queries = load_dataset(req(&opts, "queries")?)?;
    let kind = if opts.contains_key("supergraph") {
        QueryKind::Supergraph
    } else {
        QueryKind::Subgraph
    };

    // --threads: 1 (default) replays sequentially, the paper's
    // single-client setup; N > 1 fans out via run_batch; 0 auto-detects.
    let threads: usize = num(&opts, "threads", 1usize)?;

    if opts.contains_key("no-cache") {
        if threads != 1 {
            eprintln!("gc: note: --threads is ignored with --no-cache (the baseline replays sequentially)");
        }
        let method = build_method(method_name, &dataset)?;
        let t0 = std::time::Instant::now();
        let mut total_us = 0.0;
        let mut tests = 0u64;
        for (i, q) in queries.graphs().iter().enumerate() {
            let r = method.run_directed(q, kind);
            total_us += r.total_time().as_secs_f64() * 1e6;
            tests += r.subiso_tests();
            println!(
                "query {i}: {} answers, {} tests",
                r.answer.len(),
                r.subiso_tests()
            );
        }
        let wall = t0.elapsed();
        println!(
            "\n{} queries | avg {:.0} µs | {} sub-iso tests (no cache)",
            queries.len(),
            total_us / queries.len().max(1) as f64,
            tests
        );
        println!(
            "wall clock {:.1} ms on 1 client thread(s) ({:.0} queries/s)",
            wall.as_secs_f64() * 1e3,
            queries.len() as f64 / wall.as_secs_f64().max(1e-9)
        );
        return Ok(());
    }

    let cache = cache_from_opts(&opts, &dataset)?;

    let t0 = std::time::Instant::now();
    let records: Vec<graphcache::core::QueryRecord> = if threads == 1 {
        queries
            .graphs()
            .iter()
            .map(|q| cache.run(q).record)
            .collect()
    } else {
        cache
            .run_batch(queries.graphs().iter().map(QueryRequest::from))
            .into_iter()
            .map(|resp| resp.result.record)
            .collect()
    };
    let wall = t0.elapsed();

    let mut total_us = 0.0;
    let mut tests = 0u64;
    let mut hits = 0usize;
    for (i, r) in records.iter().enumerate() {
        total_us += r.query_time().as_secs_f64() * 1e6;
        tests += r.subiso_tests;
        hits += r.any_hit() as usize;
        let exact = if r.exact_via_fingerprint {
            " (exact hit via fingerprint)"
        } else if r.exact_hit {
            " (exact hit)"
        } else {
            ""
        };
        println!(
            "query {i}: {} answers, {} tests | hit-verify: {} tests, {} work{}{}",
            r.answer_size,
            r.subiso_tests,
            r.gc_tests,
            r.budget_spent,
            exact,
            if r.truncated { " [truncated]" } else { "" },
        );
    }
    println!(
        "\n{} queries | avg {:.0} µs | {} sub-iso tests | {} cache-assisted | {} cached entries | eviction {} | admission {}",
        queries.len(),
        total_us / queries.len().max(1) as f64,
        tests,
        hits,
        cache.cache_len(),
        cache.eviction_name(),
        cache.admission_name()
    );
    let summary = graphcache::core::RunSummary::from_records(&records, 0);
    println!(
        "hit verification: {} work spent | {} exact via fingerprint | {} truncated queries",
        summary.total_budget_spent, summary.exact_fp_hits, summary.truncated_queries,
    );
    if cache.fragment_eviction_name().is_some() {
        let probes: u64 = records.iter().map(|r| r.fragment_probes).sum();
        let fragment_hits: u64 = records.iter().map(|r| r.fragment_hits).sum();
        let pruned: u64 = records.iter().map(|r| r.fragment_pruned).sum();
        println!(
            "fragment cache: {probes} probes | {fragment_hits} fragment hits | \
             {pruned} candidates pruned | {} fragments stored",
            cache.fragment_store_len(),
        );
    }
    println!(
        "wall clock {:.1} ms on {} client thread(s) ({:.0} queries/s)",
        wall.as_secs_f64() * 1e3,
        if threads == 1 {
            1
        } else {
            // run_batch never uses more workers than there are requests.
            cache.batch_threads().min(records.len().max(1))
        },
        summary.throughput_qps(wall)
    );
    if opts.contains_key("maint-stats") {
        cache.flush_pending();
        let m = cache.maint_stats();
        println!(
            "maintenance: {} rounds | total {:.1} ms | victim select {:.1} ms | \
             index delta {:.1} ms | stats upkeep {:.1} ms | fragment upkeep {:.1} ms",
            m.rounds,
            m.total.as_secs_f64() * 1e3,
            m.victim_select.as_secs_f64() * 1e3,
            m.index_delta.as_secs_f64() * 1e3,
            m.stats_upkeep.as_secs_f64() * 1e3,
            m.fragment_upkeep.as_secs_f64() * 1e3,
        );
        println!(
            "maintenance: {} admitted, {} evicted ({} entries touched) | \
             {} shard patches across {} shards | {} compactions",
            m.entries_admitted,
            m.entries_evicted,
            m.entries_touched(),
            m.shards_patched,
            cache.shard_count(),
            m.compactions,
        );
        println!(
            "maintenance: {} fragments built, {} evicted ({} stored, eviction {})",
            m.fragments_built,
            m.fragments_evicted,
            cache.fragment_store_len(),
            cache
                .fragment_eviction_name()
                .unwrap_or_else(|| "off".to_string()),
        );
        // Arena utilization: how tightly the packed postings + answer
        // arenas are used per shard, and the dead-posting gauge the 50%
        // compaction heuristic watches.
        let util = cache.arena_utilization();
        let live: usize = util.iter().map(|(l, _)| l).sum();
        let reserved: usize = util.iter().map(|(_, r)| r).sum();
        let per_shard: Vec<String> = util.iter().map(|(l, r)| format!("{l}/{r}")).collect();
        println!(
            "maintenance: arena utilization {live}/{reserved} bytes live/reserved \
             (per shard: {}) | postings debt {}",
            per_shard.join(" "),
            m.dead_postings,
        );
    }
    if let Some(dir) = opts.get("save") {
        cache
            .save_with_format(dir, save_format)
            .map_err(|e| CliError::Runtime(format!("cannot save to {dir:?}: {e}")))?;
        println!("saved cache state to {dir}");
    }
    Ok(())
}

/// `gc query --connect`: replay a query file against a running daemon.
/// `--retries N` retries `BUSY` rejections and transient connect failures
/// under the bounded deterministic backoff (`--retry-seed S` pins the
/// jitter stream); with the default of no retries a `BUSY` is fail-stop
/// (runtime error, exit 1). `--timeout-ms MS` attaches a per-query
/// deadline that the server answers with `ERR code=deadline` on expiry.
fn query_connect(opts: &HashMap<String, String>, target: &str) -> CliResult {
    let queries = load_dataset(req(opts, "queries")?)?;
    let kind = opts
        .contains_key("supergraph")
        .then_some(QueryKind::Supergraph);
    let verify_budget = if opts.contains_key("verify-budget") {
        Some(num(opts, "verify-budget", 0u64)?)
    } else {
        None
    };
    let timeout_ms = if opts.contains_key("timeout-ms") {
        Some(num(opts, "timeout-ms", 0u64)?)
    } else {
        None
    };
    let retry = retry_policy(opts)?;
    let mut client = connect_target(target, &retry)?;
    let t0 = std::time::Instant::now();
    let mut tests = 0u64;
    let mut hits = 0usize;
    for (i, q) in queries.graphs().iter().enumerate() {
        let frame = QueryFrame {
            id: i as u64,
            graph: q.clone(),
            kind,
            verify_budget,
            max_hits: None,
            bypass: false,
            timeout_ms,
            allow: None,
        };
        let outcome = client
            .query_with_retry(frame, &retry)
            .map_err(|e| CliError::Runtime(format!("query {i}: {e}")))?;
        match outcome {
            QueryOutcome::Result(r) => {
                tests += r.record.subiso_tests;
                hits += r.record.any_hit() as usize;
                println!(
                    "query {i}: {} answers, {} tests | hit-verify: {} tests, {} work{}",
                    r.answer.len(),
                    r.record.subiso_tests,
                    r.record.gc_tests,
                    r.record.budget_spent,
                    if r.record.truncated {
                        " [truncated]"
                    } else {
                        ""
                    },
                );
            }
            QueryOutcome::Busy { inflight, max } => {
                return Err(CliError::Runtime(format!(
                    "server busy at query {i} ({inflight}/{max} permits in flight{}); \
                     retry when the daemon has capacity",
                    if retry.attempts > 0 {
                        format!(", after {} retries", retry.attempts)
                    } else {
                        String::new()
                    }
                )));
            }
        }
    }
    let wall = t0.elapsed();
    println!(
        "\n{} queries served by {} (session {}) | {} sub-iso tests | {} cache-assisted | wall {:.1} ms",
        queries.len(),
        target,
        client.session(),
        tests,
        hits,
        wall.as_secs_f64() * 1e3,
    );
    let _ = client.quit();
    Ok(())
}

/// `gc serve`: the long-running daemon. Blocks until graceful drain
/// (SIGTERM, SIGINT, or a `SHUTDOWN` frame) completes, then exits 0.
fn cmd_serve(args: &[String]) -> CliResult {
    let (opts, _) = parse_opts(args)?;
    // Validate policy specs before the dataset loads, as `gc query` does.
    let eviction = opts
        .get("eviction")
        .or_else(|| opts.get("policy"))
        .map(|s| s.as_str())
        .unwrap_or("hd");
    registry::build_eviction(eviction).map_err(|e| CliError::usage(e.to_string()))?;
    if let Some(spec) = opts.get("admission") {
        registry::build_admission(spec).map_err(|e| CliError::usage(e.to_string()))?;
    }
    fragments_enabled(&opts)?;
    if let Some(spec) = opts.get("fragment-eviction") {
        registry::build_eviction(spec).map_err(|e| CliError::usage(e.to_string()))?;
    }
    let listen = opts.get("listen").cloned();
    let unix = opts.get("unix").map(PathBuf::from);
    if listen.is_none() && unix.is_none() {
        return Err(CliError::usage(
            "gc serve needs a listener: --listen ADDR and/or --unix PATH",
        ));
    }
    // `--peer-id I/N`: serve as routed peer I of an N-peer fleet. The
    // daemon then filters PROBE replies to its consistent-hash slice and
    // gates QUERY/PROBE/ROUTE behind a proto-4 VERSION announcement.
    let peer = match opts.get("peer-id") {
        None => None,
        Some(spec) => {
            let parsed = spec.split_once('/').and_then(|(index, total)| {
                let index: u64 = index.parse().ok()?;
                let total: u64 = total.parse().ok()?;
                PeerIdentity::new(index, total)
            });
            Some(parsed.ok_or_else(|| {
                CliError::usage(format!(
                    "invalid --peer-id {spec:?} (want I/N with 0 <= I < N, e.g. 0/3)"
                ))
            })?)
        }
    };
    let cfg = ServeConfig {
        listen,
        unix,
        peer,
        max_sessions: num(&opts, "max-sessions", 64usize)?,
        max_inflight: num(&opts, "max-inflight", 0usize)?,
        drain_timeout: Duration::from_secs(num(&opts, "drain-timeout", 10u64)?),
        persist_on_exit: opts.get("persist-on-exit").map(PathBuf::from),
        persist_format: persist_format(&opts)?,
        handle_signals: true,
        snapshot_every: if opts.contains_key("snapshot-every") {
            Some(Duration::from_secs(num(&opts, "snapshot-every", 0u64)?))
        } else {
            None
        },
    };
    if cfg.snapshot_every.is_some() && cfg.persist_on_exit.is_none() {
        return Err(CliError::usage(
            "--snapshot-every needs --persist-on-exit DIR (the snapshot target)",
        ));
    }
    let dataset = load_dataset(req(&opts, "dataset")?)?;
    let graphs = dataset.len();
    let cache = cache_from_opts(&opts, &dataset)?;
    let peer = cfg.peer;
    let server =
        Server::bind(cache, cfg).map_err(|e| CliError::Runtime(format!("cannot serve: {e}")))?;
    if let Some(addr) = server.tcp_addr() {
        println!("serving on tcp {addr}");
    }
    if let Some(path) = opts.get("unix") {
        println!("serving on unix {path}");
    }
    if let Some(p) = peer {
        println!("gc serve: routed peer {}/{}", p.index, p.total);
    }
    println!(
        "gc serve: {graphs} dataset graphs, eviction {eviction} | \
         SIGTERM or a SHUTDOWN frame drains gracefully"
    );
    server
        .run()
        .map_err(|e| CliError::Runtime(format!("daemon failed: {e}")))?;
    println!("gc serve: drained, exiting");
    Ok(())
}

/// `gc route`: the fingerprint-routing front-end for a fleet of routed
/// `gc serve --peer-id` daemons. Clients speak plain `QUERY` to the
/// router's socket; the router computes each query's iso-fingerprint,
/// sends it to the owning peer, and keeps every replica in lockstep.
fn cmd_route(args: &[String]) -> CliResult {
    let (opts, _) = parse_opts(args)?;
    let unix = PathBuf::from(req(&opts, "unix")?);
    let peers: Vec<PathBuf> = req(&opts, "peers")?
        .split(',')
        .filter(|s| !s.is_empty())
        .map(PathBuf::from)
        .collect();
    if peers.is_empty() {
        return Err(CliError::usage(
            "gc route needs --peers SOCK,SOCK,... (one socket per peer, in peer-id order)",
        ));
    }
    let retry = match opts.get("retries") {
        // The router's default retry budget differs from gc ctl's: it
        // should ride out peer startup races and transient BUSY, so a
        // bounded-but-generous budget is the default.
        None => RetryPolicy::with_attempts(10),
        Some(_) => retry_policy(&opts)?,
    };
    let router = Router::bind(RouterConfig {
        unix: unix.clone(),
        peers: peers.clone(),
        retry,
        handle_signals: true,
    })
    .map_err(|e| match e.kind() {
        std::io::ErrorKind::InvalidInput => CliError::usage(format!("cannot route: {e}")),
        _ => CliError::Runtime(format!("cannot route: {e}")),
    })?;
    println!("routing on unix {}", unix.display());
    println!(
        "gc route: {} peer slice(s) | SIGTERM or a SHUTDOWN frame stops the router \
         (peers keep serving)",
        peers.len()
    );
    router
        .run()
        .map_err(|e| CliError::Runtime(format!("router failed: {e}")))?;
    println!("gc route: drained, exiting");
    Ok(())
}

/// `gc ctl`: one control frame against a running daemon.
fn cmd_ctl(args: &[String]) -> CliResult {
    let (opts, positional) = parse_opts(args)?;
    let command = positional
        .first()
        .map(|s| s.as_str())
        .ok_or_else(|| CliError::usage("gc ctl needs a command (ping|stats|shutdown)"))?;
    if !matches!(command, "ping" | "stats" | "shutdown") {
        return Err(CliError::usage(format!(
            "unknown ctl command {command:?} (ping|stats|shutdown)"
        )));
    }
    let target = match (opts.get("unix"), opts.get("tcp")) {
        (Some(_), Some(_)) => {
            return Err(CliError::usage("give --unix PATH or --tcp ADDR, not both"))
        }
        (Some(path), None) => format!("unix:{path}"),
        (None, Some(addr)) => addr.clone(),
        (None, None) => return Err(CliError::usage("gc ctl needs --unix PATH or --tcp ADDR")),
    };
    // Validate the timeout before dialing: a bad flag is a usage error
    // even when the daemon is unreachable.
    let timeout = if opts.contains_key("timeout") {
        let secs: u64 = num(&opts, "timeout", 0u64)?;
        if secs == 0 {
            return Err(CliError::usage("--timeout must be at least 1 second"));
        }
        Some(Duration::from_secs(secs))
    } else {
        None
    };
    let mut client = connect_target(&target, &retry_policy(&opts)?)?;
    if let Some(timeout) = timeout {
        client
            .set_timeout(Some(timeout))
            .map_err(|e| CliError::Runtime(format!("cannot set timeout: {e}")))?;
    }
    match command {
        "ping" => {
            client
                .ping(Some("ctl"))
                .map_err(|e| CliError::Runtime(format!("ping failed: {e}")))?;
            println!("pong (session {})", client.session());
            let _ = client.quit();
        }
        "stats" => {
            let counters = client
                .stats(StatsScope::Global)
                .map_err(|e| CliError::Runtime(format!("stats failed: {e}")))?;
            for (name, value) in counters {
                println!("{name} {value}");
            }
            let _ = client.quit();
        }
        "shutdown" => {
            client
                .shutdown()
                .map_err(|e| CliError::Runtime(format!("shutdown failed: {e}")))?;
            println!("shutdown requested; daemon draining");
        }
        _ => unreachable!("validated above"),
    }
    Ok(())
}

fn cmd_bench(args: &[String]) -> CliResult {
    let (opts, _) = parse_opts(args)?;
    let suite_name = opts.get("suite").map(|s| s.as_str()).unwrap_or("smoke");
    let suite = Suite::from_name(suite_name).ok_or_else(|| {
        let available: Vec<&str> = Suite::ALL.iter().map(|s| s.name()).collect();
        CliError::usage(format!(
            "unknown suite {suite_name:?} (available: {})",
            available.join(", ")
        ))
    })?;
    let tolerance: f64 = num(&opts, "tolerance", 5.0)?;
    // NaN/inf would make every drift comparison pass, silently disabling
    // the gate.
    if !tolerance.is_finite() || tolerance < 0.0 {
        return Err(CliError::usage(
            "--tolerance must be a finite, non-negative percentage",
        ));
    }

    if opts.contains_key("list") {
        println!(
            "suite {} ({} scenarios):",
            suite.name(),
            suite.scenarios().len()
        );
        for s in suite.scenarios() {
            let echo: Vec<String> = s
                .config_echo()
                .into_iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            println!("  {}  [{}]", s.name, echo.join(" "));
        }
        return Ok(());
    }

    let served = opts.contains_key("serve");
    let routed: Option<usize> = match opts.get("route") {
        None => None,
        Some(_) => {
            let peers: usize = num(&opts, "route", 0usize)?;
            if peers == 0 {
                return Err(CliError::usage("--route needs at least 1 peer"));
            }
            Some(peers)
        }
    };
    if served && routed.is_some() {
        return Err(CliError::usage(
            "--serve and --route are mutually exclusive",
        ));
    }
    println!(
        "running suite {} ({} scenarios{})...",
        suite.name(),
        suite.scenarios().len(),
        match routed {
            Some(peers) => format!(", via {peers}-peer routed fleet"),
            None if served => ", via gc serve daemon".to_string(),
            None => String::new(),
        }
    );
    println!(
        "{:<30} {:>7} {:>9} {:>9} {:>9} {:>7} {:>9}",
        "scenario", "queries", "assisted", "iso-tests", "gc-tests", "trunc", "wall-ms"
    );
    let progress = |s: &graphcache::harness::ScenarioReport| {
        println!(
            "{:<30} {:>7} {:>9} {:>9} {:>9} {:>7} {:>9.1}",
            s.name,
            s.counter("queries").unwrap_or(0),
            s.counter("cache_assisted").unwrap_or(0),
            s.counter("subiso_tests").unwrap_or(0),
            s.counter("gc_tests").unwrap_or(0),
            s.counter("truncated").unwrap_or(0),
            s.wall_ms,
        );
    };
    let report = if let Some(peers) = routed {
        // The routed path replays every scenario through a fleet of
        // routed peers behind a gc route front-end; the tentpole's
        // determinism gate is that counters match the in-process path —
        // and therefore any other fleet size — byte-for-byte, so the
        // same committed baseline gates 1-peer and N-peer runs.
        graphcache::server::bench::run_suite_routed_with(suite, peers, progress)
    } else if served {
        // The served path replays every scenario through the daemon on a
        // private unix socket; counters must match the in-process path
        // byte-for-byte, so --check gates both against one baseline.
        graphcache::server::bench::run_suite_served_with(suite, progress)
    } else {
        graphcache::harness::run_suite_with(suite, progress)
    }
    .map_err(CliError::Runtime)?;

    if let Some(path) = opts.get("json") {
        let text = report.to_json(opts.contains_key("timings"));
        std::fs::write(path, &text)
            .map_err(|e| CliError::Runtime(format!("cannot write {path}: {e}")))?;
        println!("wrote {path}");
    }

    if let Some(baseline_path) = opts.get("check") {
        let text = std::fs::read_to_string(baseline_path)
            .map_err(|e| CliError::Runtime(format!("cannot read baseline {baseline_path}: {e}")))?;
        let baseline = MatrixReport::from_json(&text)
            .map_err(|e| CliError::Runtime(format!("malformed baseline {baseline_path}: {e}")))?;
        if baseline.suite != report.suite {
            return Err(CliError::Runtime(format!(
                "baseline {baseline_path} is for suite {:?}, not {:?}",
                baseline.suite, report.suite
            )));
        }
        let drifts = MatrixReport::compare(&baseline, &report, tolerance);
        if drifts.is_empty() {
            println!("check: all deterministic counters within {tolerance}% of {baseline_path}");
        } else {
            for d in &drifts {
                eprintln!("drift: {d}");
            }
            return Err(CliError::Drift(format!(
                "{} counter(s) drifted beyond {tolerance}% of {baseline_path} \
                 (refresh with scripts/refresh-baseline.sh if intended)",
                drifts.len()
            )));
        }
    }
    Ok(())
}
