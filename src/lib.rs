//! GraphCache — a semantic caching system for subgraph/supergraph queries.
//!
//! This umbrella crate re-exports the public API of every GraphCache
//! component crate. See the repository README for an architecture overview
//! and the crate docs of [`core`] for the mapping between the EDBT 2017
//! paper and the code.
//!
//! # Quick start
//!
//! ```
//! use graphcache::prelude::*;
//!
//! // A tiny dataset of two labelled graphs.
//! let dataset = GraphDataset::new(vec![
//!     LabeledGraph::from_parts(vec![0, 1, 2], &[(0, 1), (1, 2), (2, 0)]),
//!     LabeledGraph::from_parts(vec![0, 1], &[(0, 1)]),
//! ]);
//!
//! // Method M: GraphGrepSX filtering + VF2 verification.
//! let method = MethodBuilder::ggsx().build(&dataset);
//!
//! // GraphCache in front of Method M. The handle is a shared service:
//! // `run` takes &self, and clones share the same cache.
//! let cache = GraphCache::builder()
//!     .capacity(100)
//!     .window(20)
//!     .policy(PolicyKind::Hd)
//!     .build(method);
//!
//! let query = LabeledGraph::from_parts(vec![0, 1], &[(0, 1)]);
//! let result = cache.run(&query);
//! assert_eq!(result.answer.len(), 2); // contained in both dataset graphs
//!
//! // Concurrent clients can borrow the same instance...
//! std::thread::scope(|s| {
//!     for _ in 0..4 {
//!         s.spawn(|| assert_eq!(cache.run(&query).answer.len(), 2));
//!     }
//! });
//!
//! // ...or submit typed requests as a batch fanned over a thread pool.
//! let responses = cache.run_batch(vec![
//!     QueryRequest::new(query.clone()).tag(1),
//!     QueryRequest::new(query.clone()).bypass_cache(true).tag(2),
//! ]);
//! assert_eq!(responses[0].tag, 1);
//! assert_eq!(responses[0].result.answer, responses[1].result.answer);
//! ```

pub use gc_core as core;
pub use gc_graph as graph;
pub use gc_harness as harness;
pub use gc_index as index;
pub use gc_methods as methods;
pub use gc_server as server;
pub use gc_subiso as subiso;
pub use gc_workload as workload;

/// Convenience prelude bringing the most common types into scope.
pub mod prelude {
    pub use gc_core::{
        AdmissionPolicy, EvictionPolicy, GraphCache, GraphCacheBuilder, PolicyKind, QueryKind,
        QueryRequest, QueryResponse,
    };
    pub use gc_graph::{GraphBuilder, GraphDataset, GraphId, LabeledGraph};
    pub use gc_methods::{Method, MethodBuilder};
    pub use gc_subiso::{MatchStats, Matcher, MatcherKind};
    pub use gc_workload::{datasets, DatasetProfile, TypeAConfig, TypeBConfig, Workload};
}
