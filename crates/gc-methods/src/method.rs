//! The [`Method`] runtime: filtering, (optionally parallel) verification,
//! and per-query metrics.

use gc_graph::{idset, GraphDataset, GraphId, LabeledGraph};
use gc_index::{CandidateSet, FilterIndex};
use gc_subiso::{MatchConfig, MatchStats, Matcher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Whether a workload asks subgraph queries (`g ⊆ G`: find dataset graphs
/// containing the query) or supergraph queries (`G ⊆ g`: find dataset
/// graphs contained in the query) — paper §3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryKind {
    /// Find all dataset graphs containing the query.
    #[default]
    Subgraph,
    /// Find all dataset graphs contained in the query.
    Supergraph,
}

/// Result of the filtering stage.
#[derive(Debug, Clone)]
pub struct FilterOutput {
    /// The candidate set CS_M(g) — sorted graph ids.
    pub candidates: CandidateSet,
    /// Wall-clock filtering time.
    pub duration: Duration,
}

/// Result of the verification stage.
#[derive(Debug, Clone)]
pub struct VerifyOutput {
    /// The graphs that contain the query (sorted).
    pub answer: Vec<GraphId>,
    /// Wall-clock verification time.
    pub duration: Duration,
    /// Aggregate sub-iso counters.
    pub stats: MatchStats,
    /// Per-candidate outcome: `(graph, contained?, work)`. Sorted by graph
    /// id; used by GraphCache's statistics monitor.
    pub outcomes: Vec<(GraphId, bool, u64)>,
}

/// Result of a full (uncached) Method M query execution.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Answer set (sorted).
    pub answer: Vec<GraphId>,
    /// Filtering stage output.
    pub filter: FilterOutput,
    /// Verification stage output.
    pub verify: VerifyOutput,
}

impl MethodResult {
    /// Total query time (filter + verify).
    pub fn total_time(&self) -> Duration {
        self.filter.duration + self.verify.duration
    }

    /// Number of sub-iso tests executed.
    pub fn subiso_tests(&self) -> u64 {
        self.verify.stats.tests
    }
}

/// A concrete Method M: an optional filtering index, a verifier, and a
/// verification thread count. Construct through
/// [`MethodBuilder`](crate::MethodBuilder).
pub struct Method {
    pub(crate) name: String,
    pub(crate) filter: Option<Box<dyn FilterIndex>>,
    pub(crate) matcher: Arc<dyn Matcher>,
    pub(crate) dataset: Arc<GraphDataset>,
    pub(crate) threads: usize,
    pub(crate) match_config: MatchConfig,
}

impl std::fmt::Debug for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Method({}, dataset={} graphs, threads={})",
            self.name,
            self.dataset.len(),
            self.threads
        )
    }
}

impl Method {
    /// The method's display name ("GGSX", "Grapes6", "VF2+", …).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &Arc<GraphDataset> {
        &self.dataset
    }

    /// The verifier algorithm.
    pub fn matcher(&self) -> &Arc<dyn Matcher> {
        &self.matcher
    }

    /// Verification thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Index memory, if this is an FTV method.
    pub fn index_memory_bytes(&self) -> Option<usize> {
        self.filter.as_ref().map(|f| f.memory_bytes())
    }

    /// Runs the filtering stage: `Mfilter` for FTV methods, the full graph
    /// id set for SI methods (paper §4: "For SI methods, MCS contains all
    /// graphs in dataset").
    pub fn filter(&self, query: &LabeledGraph) -> FilterOutput {
        self.filter_directed(query, QueryKind::Subgraph)
    }

    /// Direction-aware filtering. Indexes that support the supergraph
    /// direction (the path-based ones) prune it too; otherwise supergraph
    /// queries fall back to the full dataset, which stays sound.
    pub fn filter_directed(&self, query: &LabeledGraph, kind: QueryKind) -> FilterOutput {
        let t0 = Instant::now();
        let candidates = match (&self.filter, kind) {
            (Some(f), QueryKind::Subgraph) => f.filter(query),
            (Some(f), QueryKind::Supergraph) => f
                .filter_supergraph(query)
                .unwrap_or_else(|| idset::full(self.dataset.len())),
            (None, _) => idset::full(self.dataset.len()),
        };
        FilterOutput {
            candidates,
            duration: t0.elapsed(),
        }
    }

    /// Runs `Mverifier` over an explicit candidate set (which GraphCache may
    /// have pruned). Candidates must be sorted; the answer preserves order.
    pub fn verify(&self, query: &LabeledGraph, candidates: &[GraphId]) -> VerifyOutput {
        self.verify_directed(query, candidates, QueryKind::Subgraph)
    }

    /// Direction-aware verification: tests `query ⊆ G` for subgraph
    /// queries, `G ⊆ query` for supergraph queries.
    pub fn verify_directed(
        &self,
        query: &LabeledGraph,
        candidates: &[GraphId],
        kind: QueryKind,
    ) -> VerifyOutput {
        let t0 = Instant::now();
        let outcomes = if self.threads <= 1 || candidates.len() <= 1 {
            self.verify_serial(query, candidates, kind)
        } else {
            self.verify_parallel(query, candidates, kind)
        };
        let mut stats = MatchStats::default();
        let mut answer = Vec::new();
        for &(id, found, work) in &outcomes {
            stats.tests += 1;
            stats.positives += found as u64;
            stats.nodes_expanded += work;
            if found {
                answer.push(id);
            }
        }
        VerifyOutput {
            answer,
            duration: t0.elapsed(),
            stats,
            outcomes,
        }
    }

    fn test_one(&self, query: &LabeledGraph, id: GraphId, kind: QueryKind) -> (bool, u64) {
        let out = match kind {
            QueryKind::Subgraph => {
                self.matcher
                    .contains_with(query, self.dataset.graph(id), &self.match_config)
            }
            QueryKind::Supergraph => {
                self.matcher
                    .contains_with(self.dataset.graph(id), query, &self.match_config)
            }
        };
        (out.found, out.nodes_expanded)
    }

    fn verify_serial(
        &self,
        query: &LabeledGraph,
        candidates: &[GraphId],
        kind: QueryKind,
    ) -> Vec<(GraphId, bool, u64)> {
        candidates
            .iter()
            .map(|&id| {
                let (found, work) = self.test_one(query, id, kind);
                (id, found, work)
            })
            .collect()
    }

    fn verify_parallel(
        &self,
        query: &LabeledGraph,
        candidates: &[GraphId],
        kind: QueryKind,
    ) -> Vec<(GraphId, bool, u64)> {
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(candidates.len());
        let shards: Vec<Vec<(GraphId, bool, u64)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    s.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= candidates.len() {
                                break;
                            }
                            let id = candidates[i];
                            let (found, work) = self.test_one(query, id, kind);
                            local.push((id, found, work));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("verifier thread panicked"))
                .collect()
        });
        let mut all: Vec<(GraphId, bool, u64)> = shards.into_iter().flatten().collect();
        all.sort_unstable_by_key(|(id, _, _)| *id);
        all
    }

    /// Runs a complete uncached subgraph query: filter, then verify.
    pub fn run(&self, query: &LabeledGraph) -> MethodResult {
        self.run_directed(query, QueryKind::Subgraph)
    }

    /// Runs a complete uncached query of either kind.
    pub fn run_directed(&self, query: &LabeledGraph, kind: QueryKind) -> MethodResult {
        let filter = self.filter_directed(query, kind);
        let verify = self.verify_directed(query, &filter.candidates, kind);
        MethodResult {
            answer: verify.answer.clone(),
            filter,
            verify,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MethodBuilder;

    fn dataset() -> GraphDataset {
        GraphDataset::new(vec![
            LabeledGraph::from_parts(vec![0, 1, 0], &[(0, 1), (1, 2)]),
            LabeledGraph::from_parts(vec![0, 1, 2], &[(0, 1), (1, 2), (2, 0)]),
            LabeledGraph::from_parts(vec![0, 1], &[(0, 1)]),
            LabeledGraph::from_parts(vec![2, 2], &[(0, 1)]),
        ])
    }

    #[test]
    fn si_method_tests_every_graph() {
        let m = MethodBuilder::si_vf2().build(&dataset());
        let q = LabeledGraph::from_parts(vec![0, 1], &[(0, 1)]);
        let r = m.run(&q);
        assert_eq!(r.filter.candidates.len(), 4);
        assert_eq!(r.subiso_tests(), 4);
        assert_eq!(r.answer, vec![GraphId(0), GraphId(1), GraphId(2)]);
    }

    #[test]
    fn ftv_method_prunes_candidates() {
        let m = MethodBuilder::ggsx().build(&dataset());
        let q = LabeledGraph::from_parts(vec![0, 1], &[(0, 1)]);
        let r = m.run(&q);
        assert!(r.filter.candidates.len() < 4, "label-2 graph filtered out");
        assert_eq!(r.answer, vec![GraphId(0), GraphId(1), GraphId(2)]);
    }

    #[test]
    fn all_methods_agree_on_answers() {
        let d = dataset();
        let queries = [
            LabeledGraph::from_parts(vec![0, 1], &[(0, 1)]),
            LabeledGraph::from_parts(vec![0, 1, 0], &[(0, 1), (1, 2)]),
            LabeledGraph::from_parts(vec![0, 1, 2], &[(0, 1), (1, 2), (2, 0)]),
            LabeledGraph::from_parts(vec![9, 9], &[(0, 1)]),
        ];
        let methods = [
            MethodBuilder::ggsx().build(&d),
            MethodBuilder::grapes(1).build(&d),
            MethodBuilder::grapes(6).build(&d),
            MethodBuilder::ct_index().build(&d),
            MethodBuilder::si_vf2().build(&d),
            MethodBuilder::si_vf2_plus().build(&d),
            MethodBuilder::si_graphql().build(&d),
        ];
        for q in &queries {
            let reference = methods[0].run(q).answer;
            for m in &methods[1..] {
                assert_eq!(m.run(q).answer, reference, "{} disagrees", m.name());
            }
        }
    }

    #[test]
    fn parallel_verification_matches_serial() {
        let d = dataset();
        let serial = MethodBuilder::grapes(1).build(&d);
        let parallel = MethodBuilder::grapes(6).build(&d);
        let q = LabeledGraph::from_parts(vec![0, 1], &[(0, 1)]);
        let a = serial.run(&q);
        let b = parallel.run(&q);
        assert_eq!(a.answer, b.answer);
        assert_eq!(a.verify.outcomes, b.verify.outcomes);
    }

    #[test]
    fn verify_respects_explicit_candidates() {
        let m = MethodBuilder::si_vf2().build(&dataset());
        let q = LabeledGraph::from_parts(vec![0, 1], &[(0, 1)]);
        let out = m.verify(&q, &[GraphId(1), GraphId(3)]);
        assert_eq!(out.answer, vec![GraphId(1)]);
        assert_eq!(out.stats.tests, 2);
    }

    #[test]
    fn debug_and_accessors() {
        let m = MethodBuilder::grapes(6).build(&dataset());
        assert_eq!(m.name(), "Grapes6");
        assert_eq!(m.threads(), 6);
        assert!(m.index_memory_bytes().unwrap() > 0);
        assert!(format!("{m:?}").contains("Grapes6"));
        let si = MethodBuilder::si_vf2().build(&dataset());
        assert!(si.index_memory_bytes().is_none());
    }
}
