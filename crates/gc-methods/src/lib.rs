//! The pluggable "Method M" abstraction of GraphCache (paper §4).
//!
//! A Method M is what GraphCache is called to expedite: either a
//! filter-then-verify (FTV) method — a dataset index (`Mindex`/`Mfilter`)
//! plus a sub-iso verifier (`Mverifier`) — or a direct SI algorithm, whose
//! "filter" trivially returns every dataset graph. GraphCache treats both
//! uniformly: it asks M to filter, prunes the resulting candidate set using
//! its own cache, and hands the reduced set back to M's verifier.
//!
//! The bundled configurations mirror §7.1 of the paper:
//!
//! | name     | filter                     | verifier | threads |
//! |----------|----------------------------|----------|---------|
//! | GGSX     | path trie (len ≤ 4)        | VF2      | 1       |
//! | Grapes1  | located path trie (len ≤ 4)| VF2      | 1       |
//! | Grapes6  | located path trie (len ≤ 4)| VF2      | 6       |
//! | CT-Index | tree/cycle fingerprints    | VF2+     | 1       |
//! | VF2      | none (all graphs)          | VF2      | 1       |
//! | VF2+     | none (all graphs)          | VF2+     | 1       |
//! | GQL      | none (all graphs)          | GraphQL  | 1       |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod method;

pub use builder::{MethodBuilder, MethodKind};
pub use method::{FilterOutput, Method, MethodResult, QueryKind, VerifyOutput};
