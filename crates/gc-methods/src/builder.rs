//! Construction of [`Method`] instances.

use crate::method::Method;
use gc_graph::GraphDataset;
use gc_index::{CtConfig, CtIndex, FilterIndex, GgsxConfig, GrapesConfig, GrapesIndex, PathTrie};
use gc_subiso::{MatchConfig, Matcher, MatcherKind};
use std::sync::Arc;

/// The method configurations evaluated in the paper (§7.1), as a plain enum
/// for experiment plumbing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodKind {
    /// GraphGrepSX with VF2 verification.
    Ggsx,
    /// Grapes with 1 verification thread.
    Grapes1,
    /// Grapes with 6 verification threads.
    Grapes6,
    /// CT-Index with VF2+ verification.
    CtIndex,
    /// Direct VF2 over all dataset graphs.
    SiVf2,
    /// Direct VF2+ over all dataset graphs.
    SiVf2Plus,
    /// Direct GraphQL over all dataset graphs.
    SiGraphQl,
}

impl MethodKind {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            MethodKind::Ggsx => "GGSX",
            MethodKind::Grapes1 => "Grapes1",
            MethodKind::Grapes6 => "Grapes6",
            MethodKind::CtIndex => "CT-Index",
            MethodKind::SiVf2 => "VF2",
            MethodKind::SiVf2Plus => "VF2+",
            MethodKind::SiGraphQl => "GQL",
        }
    }

    /// Every method, in registry-name order.
    pub const ALL: [MethodKind; 7] = [
        MethodKind::Ggsx,
        MethodKind::Grapes1,
        MethodKind::Grapes6,
        MethodKind::CtIndex,
        MethodKind::SiVf2,
        MethodKind::SiVf2Plus,
        MethodKind::SiGraphQl,
    ];

    /// The lowercase name used to select this method on the CLI and in
    /// config files — the same name-keyed selection style as
    /// `gc-core`'s policy registry.
    pub fn registry_name(self) -> &'static str {
        match self {
            MethodKind::Ggsx => "ggsx",
            MethodKind::Grapes1 => "grapes1",
            MethodKind::Grapes6 => "grapes6",
            MethodKind::CtIndex => "ct-index",
            MethodKind::SiVf2 => "vf2",
            MethodKind::SiVf2Plus => "vf2+",
            MethodKind::SiGraphQl => "gql",
        }
    }

    /// Resolves a registry name (or one of its aliases: `ct` for
    /// `ct-index`, `vf2plus` for `vf2+`, `graphql` for `gql`) to a kind.
    pub fn from_registry_name(name: &str) -> Option<MethodKind> {
        match name {
            "ggsx" => Some(MethodKind::Ggsx),
            "grapes1" => Some(MethodKind::Grapes1),
            "grapes6" => Some(MethodKind::Grapes6),
            "ct" | "ct-index" => Some(MethodKind::CtIndex),
            "vf2" => Some(MethodKind::SiVf2),
            "vf2+" | "vf2plus" => Some(MethodKind::SiVf2Plus),
            "gql" | "graphql" => Some(MethodKind::SiGraphQl),
            _ => None,
        }
    }

    /// All FTV methods (the ones with a dataset index).
    pub const FTV: [MethodKind; 4] = [
        MethodKind::CtIndex,
        MethodKind::Ggsx,
        MethodKind::Grapes1,
        MethodKind::Grapes6,
    ];

    /// The SI methods shown in Fig. 11.
    pub const SI: [MethodKind; 2] = [MethodKind::SiVf2Plus, MethodKind::SiGraphQl];

    /// Builds the corresponding method over a dataset.
    pub fn build(self, dataset: &GraphDataset) -> Method {
        self.builder().build(dataset)
    }

    /// The builder preconfigured for this kind.
    pub fn builder(self) -> MethodBuilder {
        match self {
            MethodKind::Ggsx => MethodBuilder::ggsx(),
            MethodKind::Grapes1 => MethodBuilder::grapes(1),
            MethodKind::Grapes6 => MethodBuilder::grapes(6),
            MethodKind::CtIndex => MethodBuilder::ct_index(),
            MethodKind::SiVf2 => MethodBuilder::si_vf2(),
            MethodKind::SiVf2Plus => MethodBuilder::si_vf2_plus(),
            MethodKind::SiGraphQl => MethodBuilder::si_graphql(),
        }
    }
}

enum FilterSpec {
    None,
    Ggsx(GgsxConfig),
    Grapes(GrapesConfig),
    Ct(CtConfig),
}

/// Fluent builder for [`Method`] instances.
///
/// ```
/// use gc_graph::{GraphDataset, LabeledGraph};
/// use gc_methods::MethodBuilder;
///
/// let d = GraphDataset::new(vec![LabeledGraph::from_parts(vec![0, 1], &[(0, 1)])]);
/// let method = MethodBuilder::ggsx().build(&d);
/// assert_eq!(method.name(), "GGSX");
/// ```
pub struct MethodBuilder {
    name: String,
    filter: FilterSpec,
    verifier: MatcherKind,
    threads: usize,
    match_config: MatchConfig,
}

impl MethodBuilder {
    /// GraphGrepSX: path-trie filter (len ≤ 4) + VF2 (paper §7.1).
    pub fn ggsx() -> Self {
        MethodBuilder {
            name: "GGSX".into(),
            filter: FilterSpec::Ggsx(GgsxConfig::default()),
            verifier: MatcherKind::Vf2,
            threads: 1,
            match_config: MatchConfig::UNBOUNDED,
        }
    }

    /// GraphGrepSX with an explicit index configuration (the §7.3 ablation
    /// uses path length 5).
    pub fn ggsx_with(cfg: GgsxConfig) -> Self {
        MethodBuilder {
            name: "GGSX".into(),
            filter: FilterSpec::Ggsx(cfg),
            ..Self::ggsx()
        }
    }

    /// Grapes: located path trie + VF2 on `threads` verification threads
    /// (the paper evaluates Grapes1 and Grapes6).
    pub fn grapes(threads: usize) -> Self {
        MethodBuilder {
            name: format!("Grapes{threads}"),
            filter: FilterSpec::Grapes(GrapesConfig::default()),
            verifier: MatcherKind::Vf2,
            threads: threads.max(1),
            match_config: MatchConfig::UNBOUNDED,
        }
    }

    /// CT-Index: tree/cycle fingerprints + VF2+ (paper §7.1).
    pub fn ct_index() -> Self {
        MethodBuilder {
            name: "CT-Index".into(),
            filter: FilterSpec::Ct(CtConfig::default()),
            verifier: MatcherKind::Vf2Plus,
            threads: 1,
            match_config: MatchConfig::UNBOUNDED,
        }
    }

    /// CT-Index with an explicit configuration (the §7.3 ablation enlarges
    /// features and bitmap width).
    pub fn ct_index_with(cfg: CtConfig) -> Self {
        MethodBuilder {
            name: "CT-Index".into(),
            filter: FilterSpec::Ct(cfg),
            ..Self::ct_index()
        }
    }

    /// Direct VF2 (no index).
    pub fn si_vf2() -> Self {
        Self::si(MatcherKind::Vf2)
    }

    /// Direct VF2+ (no index).
    pub fn si_vf2_plus() -> Self {
        Self::si(MatcherKind::Vf2Plus)
    }

    /// Direct GraphQL (no index).
    pub fn si_graphql() -> Self {
        Self::si(MatcherKind::GraphQl)
    }

    /// A direct SI method using any matcher.
    pub fn si(kind: MatcherKind) -> Self {
        MethodBuilder {
            name: kind.name().into(),
            filter: FilterSpec::None,
            verifier: kind,
            threads: 1,
            match_config: MatchConfig::UNBOUNDED,
        }
    }

    /// Overrides the verifier algorithm.
    pub fn verifier(mut self, kind: MatcherKind) -> Self {
        self.verifier = kind;
        self
    }

    /// Overrides the verification thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets per-test search limits (used by benches as a hang guard).
    pub fn match_config(mut self, cfg: MatchConfig) -> Self {
        self.match_config = cfg;
        self
    }

    /// Overrides the display name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Builds the method, indexing a clone of `dataset`. Use
    /// [`MethodBuilder::build_arc`] to share an existing dataset without
    /// cloning.
    pub fn build(self, dataset: &GraphDataset) -> Method {
        self.build_arc(Arc::new(dataset.clone()))
    }

    /// Builds the method over a shared dataset.
    pub fn build_arc(self, dataset: Arc<GraphDataset>) -> Method {
        let filter: Option<Box<dyn FilterIndex>> = match self.filter {
            FilterSpec::None => None,
            FilterSpec::Ggsx(cfg) => Some(Box::new(PathTrie::build(&dataset, cfg))),
            FilterSpec::Grapes(cfg) => Some(Box::new(GrapesIndex::build(&dataset, cfg))),
            FilterSpec::Ct(cfg) => Some(Box::new(CtIndex::build(&dataset, cfg))),
        };
        let matcher: Arc<dyn Matcher> = self.verifier.build().into();
        Method {
            name: self.name,
            filter,
            matcher,
            dataset,
            threads: self.threads,
            match_config: self.match_config,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::LabeledGraph;

    fn tiny() -> GraphDataset {
        GraphDataset::new(vec![LabeledGraph::from_parts(vec![0, 1], &[(0, 1)])])
    }

    #[test]
    fn kinds_build_with_expected_names() {
        let d = tiny();
        for kind in MethodKind::FTV.into_iter().chain(MethodKind::SI) {
            let m = kind.build(&d);
            assert_eq!(m.name(), kind.name());
        }
    }

    #[test]
    fn builder_overrides() {
        let d = tiny();
        let m = MethodBuilder::ggsx()
            .verifier(MatcherKind::GraphQl)
            .threads(3)
            .name("custom")
            .build(&d);
        assert_eq!(m.name(), "custom");
        assert_eq!(m.threads(), 3);
        assert_eq!(m.matcher().name(), "GQL");
    }

    #[test]
    fn grapes_thread_floor() {
        let d = tiny();
        let m = MethodBuilder::grapes(0).build(&d);
        assert_eq!(m.threads(), 1);
        assert_eq!(m.name(), "Grapes0"); // name reflects the requested count
    }

    #[test]
    fn shared_dataset_not_cloned() {
        let arc = Arc::new(tiny());
        let m = MethodBuilder::si_vf2().build_arc(arc.clone());
        assert!(Arc::ptr_eq(m.dataset(), &arc));
    }
}
