//! Minimal hand-rolled JSON — the build environment is fully offline (no
//! serde), and the harness needs only enough JSON to emit and re-read its
//! own report schema.
//!
//! Two properties matter more than generality here:
//!
//! * **byte-stable output** — objects are ordered vectors, writing is a
//!   pure function of the value, and integers are kept as `u64` (never
//!   routed through `f64`), so a deterministic report serializes to
//!   identical bytes on every run;
//! * **round-trip fidelity** — `parse(write(v)) == v` for every value the
//!   harness produces, proven by the tests below.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order (a `Vec`, not a map) so
/// serialization is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer, kept exact (counters are `u64`).
    Int(u64),
    /// Any other number (negative or fractional).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered key/value list.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer value, if this is an `Int`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as `f64` (`Int` widens losslessly up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The string value, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The field list, if this is an `Obj`.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation and a trailing newline — the
    /// exact bytes `gc bench --json` writes.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            // `{:?}` prints the shortest string that round-trips and keeps
            // a `.0` on integral floats, so the value re-parses as Float.
            Json::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f:?}");
                } else {
                    // JSON has no Infinity/NaN; clamp to null like most
                    // writers do.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document, requiring that nothing but whitespace follows
/// the first value.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {}", self.pos, msg)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {lit:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the unescaped run.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Combine a UTF-16 surrogate pair; lone
                            // surrogates become the replacement character.
                            // A following \u escape is only consumed when
                            // it really is the low half — a high surrogate
                            // followed by an ordinary escape must not eat
                            // its neighbour.
                            if (0xd800..0xdc00).contains(&cp)
                                && self.bytes[self.pos..].starts_with(b"\\u")
                            {
                                let rewind = self.pos;
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if (0xdc00..0xe000).contains(&lo) {
                                    let combined = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                    s.push(char::from_u32(combined).unwrap_or('\u{fffd}'));
                                } else {
                                    // Not a low surrogate: the first escape
                                    // is lone; re-parse the second one on
                                    // the next loop iteration.
                                    self.pos = rewind;
                                    s.push('\u{fffd}');
                                }
                            } else {
                                s.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            }
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(digits).map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !fractional && !text.starts_with('-') {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err(&format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Json {
        Json::Obj(vec![
            ("schema_version".into(), Json::Int(1)),
            ("name".into(), Json::Str("a \"quoted\" name\nline2".into())),
            ("ratio".into(), Json::Float(0.25)),
            ("whole".into(), Json::Float(3.0)),
            ("big".into(), Json::Int(u64::MAX)),
            ("flag".into(), Json::Bool(true)),
            ("nothing".into(), Json::Null),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
            (
                "items".into(),
                Json::Arr(vec![
                    Json::Int(0),
                    Json::Obj(vec![("k".into(), Json::Str("v".into()))]),
                ]),
            ),
        ])
    }

    #[test]
    fn round_trip_identity() {
        let v = sample();
        let text = v.to_pretty();
        let back = parse(&text).expect("reparse");
        assert_eq!(back, v);
        // Writing the reparsed value reproduces the bytes exactly.
        assert_eq!(back.to_pretty(), text);
    }

    #[test]
    fn u64_counters_survive_exactly() {
        // u64::MAX is not representable in f64; the Int path must keep it.
        let text = Json::Int(u64::MAX).to_pretty();
        assert_eq!(parse(&text).unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn integral_floats_stay_floats() {
        let text = Json::Float(3.0).to_pretty();
        assert_eq!(text.trim(), "3.0");
        assert_eq!(parse(&text).unwrap(), Json::Float(3.0));
    }

    #[test]
    fn negative_and_scientific_numbers() {
        assert_eq!(parse("-5").unwrap(), Json::Float(-5.0));
        assert_eq!(parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(parse("2.5").unwrap(), Json::Float(2.5));
    }

    #[test]
    fn escapes_and_unicode() {
        let v = Json::Str("tab\there \"q\" \\ back \u{1F600} ctrl\u{1}".into());
        assert_eq!(parse(&v.to_pretty()).unwrap(), v);
        // Standard escape forms parse too.
        assert_eq!(
            parse(r#""\u0041\ud83d\ude00\/""#).unwrap(),
            Json::Str("A\u{1F600}/".into())
        );
    }

    #[test]
    fn lone_surrogates_do_not_eat_the_next_escape() {
        // High surrogate followed by an ordinary \u escape: the escape
        // after the lone surrogate must survive, not be swallowed as a
        // bogus low half.
        assert_eq!(
            parse(r#""\ud800A""#).unwrap(),
            Json::Str("\u{fffd}A".into())
        );
        // Lone low surrogate, and a lone high surrogate at end of string.
        assert_eq!(
            parse(r#""\udc00x""#).unwrap(),
            Json::Str("\u{fffd}x".into())
        );
        assert_eq!(
            parse(r#""x\ud800""#).unwrap(),
            Json::Str("x\u{fffd}".into())
        );
        // High surrogate followed by a full valid pair: only the first is
        // lone.
        assert_eq!(
            parse(r#""\ud800😀""#).unwrap(),
            Json::Str("\u{fffd}\u{1F600}".into())
        );
    }

    #[test]
    fn accessors() {
        let v = sample();
        assert_eq!(v.get("schema_version").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("ratio").and_then(Json::as_f64), Some(0.25));
        assert!(v.get("missing").is_none());
        assert_eq!(v.get("items").and_then(Json::as_arr).unwrap().len(), 2);
        assert!(Json::Null.get("anything").is_none());
        assert_eq!(v.get("whole").and_then(Json::as_f64), Some(3.0));
    }

    #[test]
    fn malformed_documents_error() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "nul",
            "\"unterminated",
            "01x",
            "{} trailing",
            "\"bad \\q escape\"",
            "[1 2]",
            "\"\\u12\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn nonfinite_floats_serialize_as_null() {
        assert_eq!(Json::Float(f64::NAN).to_pretty().trim(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_pretty().trim(), "null");
    }
}
