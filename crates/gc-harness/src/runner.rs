//! Executes scenarios end-to-end: dataset generation → workload
//! generation → a [`GraphCache`] built over Method M → batch replay
//! through the concurrent service API → counter collection.

use crate::report::{MatrixReport, ScenarioReport, SCHEMA_VERSION};
use crate::scenario::{Scenario, Suite};
use gc_core::{CostModel, GraphCache, PersistFormat, QueryRecord, QueryRequest, RunCounters};
use std::time::Instant;

/// Runs one scenario and collects its report.
///
/// The replay goes through [`GraphCache::run_batch`] — the concurrent
/// service API — with the scenario's client thread count (suites use 1,
/// where `run_batch` degenerates to an in-order sequential replay and the
/// counters are a pure function of the seeds). Wall-clock covers the whole
/// scenario, generation included, and is advisory only.
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioReport, String> {
    let t0 = Instant::now();
    let dataset = scenario
        .dataset
        .clone()
        .scaled(scenario.dataset_scale)
        .generate(scenario.dataset_seed);
    let workload = scenario.workload.generate(
        &dataset,
        &scenario.query_sizes,
        scenario.queries,
        scenario.workload_seed,
    );
    let cache = build_cache(scenario, &dataset)?;

    let records: Vec<QueryRecord> = cache
        .run_batch(workload.graphs().map(QueryRequest::from))
        .into_iter()
        .map(|resp| resp.result.record)
        .collect();

    // Make sure queued maintenance is folded in before reading the
    // maintenance counters and the final cache shape.
    cache.flush_pending();
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let run = RunCounters::from_records(&records, scenario.warmup);
    let maint = cache.maint_stats();
    let mut counters: Vec<(String, u64)> = run
        .deterministic_counters()
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    counters.extend(
        maint
            .deterministic_counters()
            .into_iter()
            .map(|(k, v)| (k.to_string(), v)),
    );
    counters.push(("cache_entries".to_string(), cache.cache_len() as u64));
    counters.push(("memory_bytes".to_string(), cache.memory_bytes() as u64));
    // Durability gauges, mirrored from the daemon's STATS payload so the
    // served and in-process counter vectors stay byte-identical. An
    // in-process run never writes periodic snapshots and never restores,
    // so both are structurally zero here.
    counters.push(("snapshots_written".to_string(), 0));
    counters.push((
        "recovered_generation".to_string(),
        cache.recovered_generation().unwrap_or(0),
    ));

    if scenario.persist_cycle {
        let snapshot_bytes = persist_cycle(scenario, &cache, &dataset)?;
        counters.push(("persisted_entries".to_string(), cache.cache_len() as u64));
        counters.push(("snapshot_bytes".to_string(), snapshot_bytes as u64));
    }

    Ok(ScenarioReport {
        name: scenario.name.clone(),
        config: scenario.config_echo(),
        counters,
        wall_ms,
    })
}

/// Builds the scenario's cache over a freshly built Method M. Factored
/// out so the persistence cycle can stand up a second, identically
/// configured cache to restore into, and public so the served/routed
/// bench runners construct their daemons' caches (one per fleet peer)
/// through the exact same path — any construction drift would show up
/// as counter drift against the shared baseline.
pub fn build_cache(
    scenario: &Scenario,
    dataset: &gc_graph::GraphDataset,
) -> Result<GraphCache, String> {
    let method = scenario.method.build(dataset);
    let mut builder = GraphCache::builder()
        .capacity(scenario.capacity)
        .window(scenario.window)
        .eviction(scenario.eviction.as_str())
        .query_kind(scenario.kind)
        .threads(scenario.threads)
        .shards(scenario.shards)
        // Wall-time expensiveness (the cache default) leaks machine load
        // into admission decisions, greedy-dual credits and policy stats —
        // the harness always uses the deterministic work proxy so counters
        // are a pure function of the seeds even on a busy CI box.
        .cost_model(CostModel::Work)
        .fragments(scenario.fragments);
    if let Some(budget) = scenario.verify_budget {
        builder = builder.verify_budget(budget);
    }
    if let Some(admission) = &scenario.admission {
        builder = builder.admission(admission.as_str());
    }
    if let Some(bytes) = scenario.fragment_budget {
        builder = builder.fragment_budget(bytes);
    }
    if let Some(spec) = &scenario.fragment_eviction {
        builder = builder.fragment_eviction(spec.as_str());
    }
    builder
        .try_build(method)
        .map_err(|e| format!("scenario {:?}: {e}", scenario.name))
}

/// Runs the scenario's persistence cycle: save the replayed cache as a
/// binary snapshot, restore it into a freshly built (empty) cache, and
/// re-save that restored cache. The cycle passes only if the re-save is
/// byte-identical to the first snapshot — one comparison that covers
/// entries, answer sets, stored profiles, policy stats and fragments at
/// once, because the binary encoding is deterministic. Returns the
/// snapshot size in bytes.
fn persist_cycle(
    scenario: &Scenario,
    cache: &GraphCache,
    dataset: &gc_graph::GraphDataset,
) -> Result<usize, String> {
    let root = std::env::temp_dir().join(format!(
        "gc-harness-persist-{}-{}",
        std::process::id(),
        scenario.name
    ));
    let result = persist_cycle_in(scenario, cache, dataset, &root);
    // Best-effort cleanup on success and failure alike; a vanished dir
    // must not mask the cycle's real outcome.
    let _ = std::fs::remove_dir_all(&root);
    result
}

fn persist_cycle_in(
    scenario: &Scenario,
    cache: &GraphCache,
    dataset: &gc_graph::GraphDataset,
    root: &std::path::Path,
) -> Result<usize, String> {
    let ctx = |stage: &str, e: String| {
        format!("scenario {:?} persist cycle: {stage}: {e}", scenario.name)
    };
    let saved = root.join("saved");
    let resaved = root.join("resaved");
    cache
        .save_with_format(&saved, PersistFormat::Binary)
        .map_err(|e| ctx("save", e.to_string()))?;
    let original = std::fs::read(saved.join("snapshot.bin"))
        .map_err(|e| ctx("read snapshot", e.to_string()))?;

    let restored = build_cache(scenario, dataset)?;
    restored
        .restore(&saved)
        .map_err(|e| ctx("restore", e.to_string()))?;
    if restored.cache_len() != cache.cache_len() {
        return Err(ctx(
            "entry parity",
            format!(
                "restored {} entries, expected {}",
                restored.cache_len(),
                cache.cache_len()
            ),
        ));
    }
    restored
        .save_with_format(&resaved, PersistFormat::Binary)
        .map_err(|e| ctx("re-save", e.to_string()))?;
    let roundtripped = std::fs::read(resaved.join("snapshot.bin"))
        .map_err(|e| ctx("read re-saved snapshot", e.to_string()))?;
    if roundtripped != original {
        return Err(ctx(
            "byte parity",
            format!(
                "re-saved snapshot differs ({} vs {} bytes)",
                roundtripped.len(),
                original.len()
            ),
        ));
    }
    Ok(original.len())
}

/// Runs every scenario of a suite, in order, with a progress callback
/// (`|name, report|` after each scenario completes — the CLI prints its
/// table rows through this without the harness knowing about stdout).
pub fn run_suite_with<F>(suite: Suite, mut progress: F) -> Result<MatrixReport, String>
where
    F: FnMut(&ScenarioReport),
{
    let mut scenarios = Vec::new();
    for scenario in suite.scenarios() {
        let report = run_scenario(&scenario)?;
        progress(&report);
        scenarios.push(report);
    }
    Ok(MatrixReport {
        schema_version: SCHEMA_VERSION,
        suite: suite.name().to_string(),
        scenarios,
    })
}

/// Runs every scenario of a suite, in order.
pub fn run_suite(suite: Suite) -> Result<MatrixReport, String> {
    run_suite_with(suite, |_| {})
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::WorkloadSpec;

    fn tiny() -> Scenario {
        let mut s = Scenario::named("tiny");
        s.dataset_scale = 0.05; // 125 AIDS-shaped graphs (the profile scale floor)
        s.queries = 40;
        s.capacity = 15;
        s.window = 10;
        s.query_sizes = vec![4, 6];
        s.warmup = 10;
        s
    }

    #[test]
    fn scenario_reports_are_deterministic() {
        let s = tiny();
        let a = run_scenario(&s).unwrap();
        let b = run_scenario(&s).unwrap();
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.config, b.config);
        // The replay actually did work.
        assert_eq!(a.counter("queries"), Some(30)); // 40 - warmup 10
        assert!(a.counter("subiso_tests").unwrap_or(0) > 0);
        assert!(a.counter("maint_rounds").unwrap_or(0) > 0);
        assert!(a.counter("memory_bytes").unwrap_or(0) > 0);
    }

    #[test]
    fn different_seeds_change_counters() {
        let a = run_scenario(&tiny()).unwrap();
        let mut s = tiny();
        s.workload_seed = 777;
        let b = run_scenario(&s).unwrap();
        assert_ne!(
            a.counters, b.counters,
            "changing the workload seed must change the counter stream"
        );
    }

    #[test]
    fn budget_and_admission_paths_run() {
        let mut s = tiny();
        s.workload = WorkloadSpec::TypeB {
            no_answer: 0.2,
            alpha: 1.4,
        };
        s.verify_budget = Some(500);
        s.admission = Some("adaptive".into());
        s.eviction = "gcr".into();
        let r = run_scenario(&s).unwrap();
        assert_eq!(r.counter("queries"), Some(30));
        // Budgeted sweeps account their work in the budget pool.
        assert!(r.counter("budget_spent").is_some());
    }

    #[test]
    fn fragment_scenarios_report_fragment_counters() {
        use gc_methods::MethodKind;
        let mut s = tiny();
        s.fragments = true;
        s.method = MethodKind::SiVf2;
        s.workload = WorkloadSpec::Zz(1.05);
        let a = run_scenario(&s).unwrap();
        let b = run_scenario(&s).unwrap();
        assert_eq!(a.counters, b.counters, "fragment path is deterministic");
        assert!(a.counter("fragment_probes").unwrap_or(0) > 0);
        assert!(a.counter("fragments_built").unwrap_or(0) > 0);
        // Off keeps the counters present (schema-stable) but zero.
        s.fragments = false;
        let off = run_scenario(&s).unwrap();
        assert_eq!(off.counter("fragment_probes"), Some(0));
        assert_eq!(off.counter("fragments_built"), Some(0));
    }

    #[test]
    fn bad_fragment_eviction_spec_errors_with_scenario_name() {
        let mut s = tiny();
        s.fragments = true;
        s.fragment_eviction = Some("no-such-policy".into());
        let err = run_scenario(&s).unwrap_err();
        assert!(err.contains("tiny"), "{err}");
        assert!(err.contains("available"), "{err}");
    }

    #[test]
    fn bad_policy_spec_errors_with_scenario_name() {
        let mut s = tiny();
        s.eviction = "no-such-policy".into();
        let err = run_scenario(&s).unwrap_err();
        assert!(err.contains("tiny"), "{err}");
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = MatrixReport {
            schema_version: SCHEMA_VERSION,
            suite: "adhoc".into(),
            scenarios: vec![run_scenario(&tiny()).unwrap()],
        };
        let text = report.to_json(false);
        let back = MatrixReport::from_json(&text).unwrap();
        assert_eq!(back.scenarios[0].counters, report.scenarios[0].counters);
        assert!(MatrixReport::compare(&back, &report, 0.0).is_empty());
    }
}
