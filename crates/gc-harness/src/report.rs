//! Machine-readable scenario reports: a versioned JSON schema for
//! `BENCH_*.json` files, and the deterministic-counter comparison behind
//! `gc bench --check`.
//!
//! # Schema (version 1)
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "suite": "smoke",
//!   "scenarios": [
//!     {
//!       "name": "smoke-aids-zz-hd",
//!       "config": { "dataset": "AIDS", "...": "..." },
//!       "counters": { "queries": 60, "cache_assisted": 31, "...": 0 },
//!       "advisory": { "wall_ms": 12.75 }
//!     }
//!   ]
//! }
//! ```
//!
//! `counters` holds only values that are a pure function of the scenario's
//! seeds (see [`gc_core::RunCounters`]); `advisory` holds wall-clock and is
//! both optional and **never** gated — [`MatrixReport::compare`] ignores
//! it entirely. `gc bench --json` omits `advisory` unless `--timings` is
//! passed, which keeps the default output bit-identical across runs.

use crate::json::{parse, Json};

/// The report format version. Bump on any change to field names, counter
/// names, or their meaning; `--check` refuses to compare across versions.
pub const SCHEMA_VERSION: u64 = 1;

/// The measured outcome of one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name — the baseline comparison key.
    pub name: String,
    /// Configuration echo (`Scenario::config_echo`), purely descriptive.
    pub config: Vec<(String, String)>,
    /// Deterministic counters in schema order.
    pub counters: Vec<(String, u64)>,
    /// Advisory wall-clock for the whole scenario (generate + replay),
    /// milliseconds. Never compared by the gate.
    pub wall_ms: f64,
}

impl ScenarioReport {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }
}

/// A full suite run: what `gc bench --json` writes and `--check` reads.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixReport {
    /// Schema version of this report.
    pub schema_version: u64,
    /// Suite name the scenarios came from.
    pub suite: String,
    /// Per-scenario results, in suite order.
    pub scenarios: Vec<ScenarioReport>,
}

/// One gated counter that moved beyond tolerance (or disappeared).
#[derive(Debug, Clone, PartialEq)]
pub struct Drift {
    /// Scenario name.
    pub scenario: String,
    /// Counter name, or a pseudo-entry (`"<scenario>"`) when a whole
    /// scenario is missing from the current run.
    pub counter: String,
    /// Baseline value (`None` when the counter is new).
    pub baseline: Option<u64>,
    /// Current value (`None` when the counter vanished).
    pub current: Option<u64>,
    /// Relative drift in percent, against `max(baseline, 1)`.
    pub delta_pct: f64,
}

impl std::fmt::Display for Drift {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.baseline, self.current) {
            (Some(b), Some(c)) => write!(
                f,
                "{}/{}: baseline {} -> current {} ({:+.2}%)",
                self.scenario,
                self.counter,
                b,
                c,
                if c >= b {
                    self.delta_pct
                } else {
                    -self.delta_pct
                }
            ),
            (Some(b), None) => write!(
                f,
                "{}/{}: baseline {} but missing from the current run",
                self.scenario, self.counter, b
            ),
            (None, Some(c)) => write!(
                f,
                "{}/{}: new counter {} absent from the baseline",
                self.scenario, self.counter, c
            ),
            (None, None) => write!(f, "{}/{}: missing everywhere", self.scenario, self.counter),
        }
    }
}

impl MatrixReport {
    /// Serializes to the versioned JSON schema. `include_timings` adds the
    /// per-scenario `advisory` object; leave it off for byte-stable
    /// output (baselines, determinism checks).
    pub fn to_json(&self, include_timings: bool) -> String {
        let scenarios = self
            .scenarios
            .iter()
            .map(|s| {
                let mut fields = vec![
                    ("name".to_string(), Json::Str(s.name.clone())),
                    (
                        "config".to_string(),
                        Json::Obj(
                            s.config
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                                .collect(),
                        ),
                    ),
                    (
                        "counters".to_string(),
                        Json::Obj(
                            s.counters
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::Int(*v)))
                                .collect(),
                        ),
                    ),
                ];
                if include_timings {
                    fields.push((
                        "advisory".to_string(),
                        Json::Obj(vec![(
                            "wall_ms".to_string(),
                            // Round to centi-milliseconds: enough for a
                            // human, stable to print.
                            Json::Float((s.wall_ms * 100.0).round() / 100.0),
                        )]),
                    ));
                }
                Json::Obj(fields)
            })
            .collect();
        Json::Obj(vec![
            ("schema_version".to_string(), Json::Int(self.schema_version)),
            ("suite".to_string(), Json::Str(self.suite.clone())),
            ("scenarios".to_string(), Json::Arr(scenarios)),
        ])
        .to_pretty()
    }

    /// Parses a report back from JSON, validating the schema version.
    /// Unknown fields (e.g. `advisory`) are tolerated and dropped.
    pub fn from_json(text: &str) -> Result<MatrixReport, String> {
        let doc = parse(text)?;
        let version = doc
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("report is missing schema_version")?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "report schema_version {version} is not the supported {SCHEMA_VERSION}"
            ));
        }
        let suite = doc
            .get("suite")
            .and_then(Json::as_str)
            .ok_or("report is missing suite")?
            .to_string();
        let mut scenarios = Vec::new();
        for (i, s) in doc
            .get("scenarios")
            .and_then(Json::as_arr)
            .ok_or("report is missing scenarios")?
            .iter()
            .enumerate()
        {
            let name = s
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("scenario {i} is missing name"))?
                .to_string();
            let config = s
                .get("config")
                .and_then(Json::as_obj)
                .ok_or_else(|| format!("scenario {name:?} is missing config"))?
                .iter()
                .map(|(k, v)| {
                    v.as_str()
                        .map(|v| (k.clone(), v.to_string()))
                        .ok_or_else(|| format!("scenario {name:?} config {k:?} is not a string"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            let counters = s
                .get("counters")
                .and_then(Json::as_obj)
                .ok_or_else(|| format!("scenario {name:?} is missing counters"))?
                .iter()
                .map(|(k, v)| {
                    v.as_u64()
                        .map(|v| (k.clone(), v))
                        .ok_or_else(|| format!("scenario {name:?} counter {k:?} is not a u64"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            let wall_ms = s
                .get("advisory")
                .and_then(|a| a.get("wall_ms"))
                .and_then(Json::as_f64)
                .unwrap_or(0.0);
            scenarios.push(ScenarioReport {
                name,
                config,
                counters,
                wall_ms,
            });
        }
        Ok(MatrixReport {
            schema_version: version,
            suite,
            scenarios,
        })
    }

    /// Compares `current` against `baseline`, returning every gated
    /// counter whose relative drift exceeds `tolerance_pct` percent.
    ///
    /// * Scenarios are matched by name; a baseline scenario missing from
    ///   the current run is a drift. Extra current scenarios are ignored
    ///   (new scenarios land before their baseline refresh).
    /// * Counters are matched by name within a scenario; missing and new
    ///   counters are both drifts (a silently vanishing counter must not
    ///   pass the gate).
    /// * Drift is `|current - baseline| / max(baseline, 1) * 100`, so
    ///   zero baselines gate on absolute movement.
    /// * Wall-clock is advisory and never consulted.
    pub fn compare(
        baseline: &MatrixReport,
        current: &MatrixReport,
        tolerance_pct: f64,
    ) -> Vec<Drift> {
        let mut drifts = Vec::new();
        for base in &baseline.scenarios {
            let Some(cur) = current.scenarios.iter().find(|s| s.name == base.name) else {
                drifts.push(Drift {
                    scenario: base.name.clone(),
                    counter: "<scenario>".into(),
                    baseline: Some(base.counters.iter().map(|(_, v)| *v).sum()),
                    current: None,
                    delta_pct: f64::INFINITY,
                });
                continue;
            };
            for (name, bval) in &base.counters {
                match cur.counter(name) {
                    None => drifts.push(Drift {
                        scenario: base.name.clone(),
                        counter: name.clone(),
                        baseline: Some(*bval),
                        current: None,
                        delta_pct: f64::INFINITY,
                    }),
                    Some(cval) => {
                        let delta_pct =
                            (cval.abs_diff(*bval)) as f64 / (*bval).max(1) as f64 * 100.0;
                        if delta_pct > tolerance_pct {
                            drifts.push(Drift {
                                scenario: base.name.clone(),
                                counter: name.clone(),
                                baseline: Some(*bval),
                                current: Some(cval),
                                delta_pct,
                            });
                        }
                    }
                }
            }
            for (name, cval) in &cur.counters {
                if base.counter(name).is_none() {
                    drifts.push(Drift {
                        scenario: base.name.clone(),
                        counter: name.clone(),
                        baseline: None,
                        current: Some(*cval),
                        delta_pct: f64::INFINITY,
                    });
                }
            }
        }
        drifts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MatrixReport {
        MatrixReport {
            schema_version: SCHEMA_VERSION,
            suite: "smoke".into(),
            scenarios: vec![
                ScenarioReport {
                    name: "a".into(),
                    config: vec![("dataset".into(), "AIDS".into())],
                    counters: vec![("queries".into(), 60), ("gc_tests".into(), 100)],
                    wall_ms: 12.345,
                },
                ScenarioReport {
                    name: "b".into(),
                    config: vec![],
                    counters: vec![("queries".into(), 0)],
                    wall_ms: 0.0,
                },
            ],
        }
    }

    #[test]
    fn json_round_trip_without_timings() {
        let r = sample();
        let text = r.to_json(false);
        let back = MatrixReport::from_json(&text).unwrap();
        // Wall-clock is dropped by design; everything else survives.
        assert_eq!(back.suite, r.suite);
        assert_eq!(back.scenarios.len(), 2);
        assert_eq!(back.scenarios[0].counters, r.scenarios[0].counters);
        assert_eq!(back.scenarios[0].config, r.scenarios[0].config);
        assert_eq!(back.scenarios[0].wall_ms, 0.0);
        // Byte-stable: re-serializing reproduces the exact bytes.
        assert_eq!(back.to_json(false), text);
    }

    #[test]
    fn json_round_trip_with_timings() {
        let r = sample();
        let back = MatrixReport::from_json(&r.to_json(true)).unwrap();
        assert!((back.scenarios[0].wall_ms - 12.35).abs() < 1e-9);
    }

    #[test]
    fn version_mismatch_rejected() {
        let text = sample().to_json(false).replace(
            &format!("\"schema_version\": {SCHEMA_VERSION}"),
            "\"schema_version\": 999",
        );
        let err = MatrixReport::from_json(&text).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
    }

    #[test]
    fn malformed_reports_rejected() {
        for bad in [
            "{}",
            "{\"schema_version\": 1}",
            "{\"schema_version\": 1, \"suite\": \"s\"}",
            "{\"schema_version\": 1, \"suite\": \"s\", \"scenarios\": [{}]}",
            "{\"schema_version\": 1, \"suite\": \"s\", \"scenarios\": [{\"name\": \"x\"}]}",
        ] {
            assert!(MatrixReport::from_json(bad).is_err(), "{bad:?}");
        }
        // A counter that is not a u64 is a schema violation.
        let text = sample().to_json(false).replace("100", "-1");
        assert!(MatrixReport::from_json(&text).is_err());
    }

    #[test]
    fn identical_reports_have_no_drift() {
        let r = sample();
        assert!(MatrixReport::compare(&r, &r, 0.0).is_empty());
    }

    #[test]
    fn drift_beyond_tolerance_detected() {
        let base = sample();
        let mut cur = sample();
        cur.scenarios[0].counters[1].1 = 110; // 100 -> 110 = +10%
        assert!(MatrixReport::compare(&base, &cur, 10.0).is_empty());
        let drifts = MatrixReport::compare(&base, &cur, 9.0);
        assert_eq!(drifts.len(), 1);
        assert_eq!(drifts[0].counter, "gc_tests");
        assert!((drifts[0].delta_pct - 10.0).abs() < 1e-9);
        // Display renders the direction.
        assert!(format!("{}", drifts[0]).contains("+10.00%"));
    }

    #[test]
    fn zero_baseline_gates_absolute_movement() {
        let base = sample();
        let mut cur = sample();
        cur.scenarios[1].counters[0].1 = 1; // 0 -> 1 over max(0,1) = 100%
        let drifts = MatrixReport::compare(&base, &cur, 50.0);
        assert_eq!(drifts.len(), 1);
        assert_eq!(drifts[0].scenario, "b");
    }

    #[test]
    fn missing_scenario_and_counters_are_drifts() {
        let base = sample();
        let mut cur = sample();
        cur.scenarios.remove(1);
        cur.scenarios[0].counters.remove(1);
        cur.scenarios[0].counters.push(("brand_new".into(), 7));
        let drifts = MatrixReport::compare(&base, &cur, 100.0);
        let kinds: Vec<&str> = drifts.iter().map(|d| d.counter.as_str()).collect();
        assert!(kinds.contains(&"<scenario>"));
        assert!(kinds.contains(&"gc_tests"));
        assert!(kinds.contains(&"brand_new"));
        // Extra current-only scenarios are not drifts.
        let mut extra = sample();
        extra.scenarios.push(ScenarioReport {
            name: "new".into(),
            config: vec![],
            counters: vec![],
            wall_ms: 0.0,
        });
        assert!(MatrixReport::compare(&base, &extra, 0.0).is_empty());
    }
}
