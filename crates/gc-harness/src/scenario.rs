//! Declarative scenarios: one point of the paper's evaluation matrix —
//! dataset profile × scale × workload kind × method × policies × cache
//! configuration × seeds — plus the named suites `gc bench` runs.

use gc_core::QueryKind;
use gc_graph::GraphDataset;
use gc_methods::MethodKind;
use gc_workload::{
    generate_type_a, generate_type_b, DatasetProfile, TypeAConfig, TypeBConfig, Workload,
};

/// The paper's six workload categories (§7.2), parameterised. Owned by the
/// harness (scenarios name their workload through it); `gc-bench`
/// re-exports it for the figure binaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadSpec {
    /// Type A with Zipf graph + Zipf node selection.
    Zz(f64),
    /// Type A with Zipf graph + uniform node selection.
    Zu(f64),
    /// Type A, uniform at both levels.
    Uu,
    /// Type B with the given no-answer probability and Zipf α.
    TypeB {
        /// No-answer pool probability (0.0 / 0.2 / 0.5).
        no_answer: f64,
        /// Within-pool Zipf α.
        alpha: f64,
    },
}

impl WorkloadSpec {
    /// The six default categories in the paper's figure order.
    pub fn paper_six() -> [WorkloadSpec; 6] {
        [
            WorkloadSpec::Zz(1.4),
            WorkloadSpec::Zu(1.4),
            WorkloadSpec::Uu,
            WorkloadSpec::TypeB {
                no_answer: 0.0,
                alpha: 1.4,
            },
            WorkloadSpec::TypeB {
                no_answer: 0.2,
                alpha: 1.4,
            },
            WorkloadSpec::TypeB {
                no_answer: 0.5,
                alpha: 1.4,
            },
        ]
    }

    /// Display name ("ZZ", "UU", "20%", …).
    pub fn name(&self) -> String {
        match self {
            WorkloadSpec::Zz(_) => "ZZ".into(),
            WorkloadSpec::Zu(_) => "ZU".into(),
            WorkloadSpec::Uu => "UU".into(),
            WorkloadSpec::TypeB { no_answer, .. } => {
                format!("{}%", (no_answer * 100.0).round() as u32)
            }
        }
    }

    /// Generates the workload over a dataset with the paper's query sizes
    /// for that dataset family. The per-family seed XORs are kept from the
    /// original harness so existing figure replays stay reproducible.
    pub fn generate(
        &self,
        dataset: &GraphDataset,
        sizes: &[usize],
        count: usize,
        seed: u64,
    ) -> Workload {
        match *self {
            WorkloadSpec::Zz(a) => generate_type_a(
                dataset,
                &TypeAConfig::zz(a)
                    .sizes(sizes.to_vec())
                    .count(count)
                    .seed(seed ^ 0x5a5a),
            ),
            WorkloadSpec::Zu(a) => generate_type_a(
                dataset,
                &TypeAConfig::zu(a)
                    .sizes(sizes.to_vec())
                    .count(count)
                    .seed(seed ^ 0x5a50),
            ),
            WorkloadSpec::Uu => generate_type_a(
                dataset,
                &TypeAConfig::uu()
                    .sizes(sizes.to_vec())
                    .count(count)
                    .seed(seed ^ 0x5055),
            ),
            WorkloadSpec::TypeB { no_answer, alpha } => generate_type_b(
                dataset,
                &TypeBConfig::with_no_answer_prob(no_answer)
                    .zipf(alpha)
                    .sizes(sizes.to_vec())
                    .pools((count / 5).clamp(30, 400), (count / 15).clamp(10, 120))
                    .count(count)
                    .seed(seed ^ 0xb0b0),
            ),
        }
    }
}

/// One fully specified end-to-end run: everything needed to reproduce a
/// cell of the evaluation matrix bit-for-bit.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Unique scenario name — the baseline comparison key.
    pub name: String,
    /// Dataset shape profile (AIDS / PDBS / PCM / Synthetic).
    pub dataset: DatasetProfile,
    /// Graph-count scale applied to the profile. Note
    /// [`DatasetProfile::scaled`] floors the scale at 0.05, so values
    /// below that are effectively 0.05 — the report's `graphs` config
    /// entry echoes the graph count actually generated.
    pub dataset_scale: f64,
    /// Dataset generation seed.
    pub dataset_seed: u64,
    /// Workload family.
    pub workload: WorkloadSpec,
    /// Query node-count targets.
    pub query_sizes: Vec<usize>,
    /// Number of queries to generate and replay.
    pub queries: usize,
    /// Workload generation seed.
    pub workload_seed: u64,
    /// Method M.
    pub method: MethodKind,
    /// Eviction policy registry spec (`"hd"`, `"slru:protected=0.5"`, …).
    pub eviction: String,
    /// Admission policy registry spec; `None` = admit-all.
    pub admission: Option<String>,
    /// Cache capacity (entries).
    pub capacity: usize,
    /// Window size (queries per maintenance round).
    pub window: usize,
    /// Snapshot shard count (0 = derive from threads).
    pub shards: usize,
    /// Per-query hit-verification work budget; `None` = unbounded.
    pub verify_budget: Option<u64>,
    /// Client threads for `run_batch`. Suites keep this at 1: with one
    /// client the counter stream is a pure function of the seeds, which is
    /// what the regression gate relies on. Values > 1 exercise the
    /// concurrent path but make admission order scheduling-dependent.
    pub threads: usize,
    /// Subgraph or supergraph semantics.
    pub kind: QueryKind,
    /// Queries excluded from the measured counters (the paper allows one
    /// window before measuring).
    pub warmup: usize,
    /// Enable the sub-query fragment cache (default off, matching the
    /// cache default).
    pub fragments: bool,
    /// Fragment-store byte budget; `None` = the cache default.
    pub fragment_budget: Option<usize>,
    /// Fragment-store eviction policy registry spec; `None` = the cache
    /// default (`lru`).
    pub fragment_eviction: Option<String>,
    /// After the replay, run a persistence cycle: save the cache as a
    /// binary snapshot, restore it into a freshly built cache, and fail
    /// the scenario unless the restored cache re-saves to byte-identical
    /// snapshot bytes (entry/stat/profile/fragment parity in one check).
    /// Adds the `persisted_entries` and `snapshot_bytes` counters.
    pub persist_cycle: bool,
}

impl Scenario {
    /// A scenario with the harness defaults: AIDS-shaped dataset at a
    /// small scale, ZZ workload, GGSX, HD eviction, capacity 100 /
    /// window 20, sequential client, one window of warm-up.
    pub fn named(name: impl Into<String>) -> Self {
        Scenario {
            name: name.into(),
            dataset: DatasetProfile::aids(),
            dataset_scale: 0.05,
            dataset_seed: 42,
            workload: WorkloadSpec::Zz(1.4),
            query_sizes: vec![4, 8, 12, 16, 20],
            queries: 120,
            workload_seed: 42,
            method: MethodKind::Ggsx,
            eviction: "hd".into(),
            admission: None,
            capacity: 100,
            window: 20,
            shards: 0,
            verify_budget: None,
            threads: 1,
            kind: QueryKind::Subgraph,
            warmup: 20,
            fragments: false,
            fragment_budget: None,
            fragment_eviction: None,
            persist_cycle: false,
        }
    }

    /// Configuration echo serialized into the report, so a baseline file
    /// is self-describing: `(key, value)` pairs in schema order.
    pub fn config_echo(&self) -> Vec<(String, String)> {
        let mut echo = vec![
            ("dataset".to_string(), self.dataset.name.to_string()),
            (
                "dataset_scale".to_string(),
                format!("{}", self.dataset_scale),
            ),
            // The graph count the scale actually resolves to (the profile
            // floors scales below 0.05), so the echo cannot misdescribe
            // the run.
            (
                "graphs".to_string(),
                format!(
                    "{}",
                    self.dataset.clone().scaled(self.dataset_scale).graph_count
                ),
            ),
            ("dataset_seed".to_string(), format!("{}", self.dataset_seed)),
            ("workload".to_string(), self.workload.name()),
            ("queries".to_string(), format!("{}", self.queries)),
            (
                "workload_seed".to_string(),
                format!("{}", self.workload_seed),
            ),
            (
                "method".to_string(),
                self.method.registry_name().to_string(),
            ),
            ("eviction".to_string(), self.eviction.clone()),
            (
                "admission".to_string(),
                self.admission.clone().unwrap_or_else(|| "none".into()),
            ),
            ("capacity".to_string(), format!("{}", self.capacity)),
            ("window".to_string(), format!("{}", self.window)),
            ("shards".to_string(), format!("{}", self.shards)),
            ("threads".to_string(), format!("{}", self.threads)),
            (
                "kind".to_string(),
                match self.kind {
                    QueryKind::Subgraph => "subgraph".to_string(),
                    QueryKind::Supergraph => "supergraph".to_string(),
                },
            ),
            ("warmup".to_string(), format!("{}", self.warmup)),
            // Pinned by the runner: the deterministic work-based cost
            // proxy, never wall time (see `runner::run_scenario`).
            ("cost_model".to_string(), "work".to_string()),
            (
                "fragments".to_string(),
                if self.fragments { "on" } else { "off" }.to_string(),
            ),
        ];
        if let Some(b) = self.verify_budget {
            echo.push(("verify_budget".to_string(), format!("{b}")));
        }
        if let Some(b) = self.fragment_budget {
            echo.push(("fragment_budget".to_string(), format!("{b}")));
        }
        if let Some(spec) = &self.fragment_eviction {
            echo.push(("fragment_eviction".to_string(), spec.clone()));
        }
        if self.persist_cycle {
            echo.push(("persist_cycle".to_string(), "on".to_string()));
        }
        echo
    }
}

/// A named scenario list `gc bench` can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// Small and fast — the CI regression gate. Covers both workload
    /// families, both special cases, budgeted verification, sharding and
    /// an admission policy in a few seconds even in debug builds.
    Smoke,
    /// The paper's matrix: all four dataset shapes × the six workload
    /// categories (bench scale).
    Paper,
    /// One dataset/workload replayed across the policy registry's
    /// eviction and admission strategies.
    Policies,
    /// The fragment cache's home turf: a low-repetition Zipf workload of
    /// structurally overlapping queries over a filterless method, paired
    /// with fragments on vs off so the uplift is directly comparable.
    Fragments,
    /// Persistence round-trips: replay, save a binary arena snapshot,
    /// restore it into a fresh cache, and require the restored cache to
    /// re-save byte-identically (the save→restore→parity gate CI runs).
    Restore,
}

impl Suite {
    /// All suites, for listings.
    pub const ALL: [Suite; 5] = [
        Suite::Smoke,
        Suite::Paper,
        Suite::Policies,
        Suite::Fragments,
        Suite::Restore,
    ];

    /// The CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            Suite::Smoke => "smoke",
            Suite::Paper => "paper",
            Suite::Policies => "policies",
            Suite::Fragments => "fragments",
            Suite::Restore => "restore",
        }
    }

    /// Parses a CLI name.
    pub fn from_name(name: &str) -> Option<Suite> {
        match name {
            "smoke" => Some(Suite::Smoke),
            "paper" => Some(Suite::Paper),
            "policies" => Some(Suite::Policies),
            "fragments" => Some(Suite::Fragments),
            "restore" => Some(Suite::Restore),
            _ => None,
        }
    }

    /// The suite's scenario list. Deterministic: same list, same order,
    /// same seeds on every call.
    pub fn scenarios(&self) -> Vec<Scenario> {
        match self {
            Suite::Smoke => smoke_scenarios(),
            Suite::Paper => paper_scenarios(),
            Suite::Policies => policy_scenarios(),
            Suite::Fragments => fragment_scenarios(),
            Suite::Restore => restore_scenarios(),
        }
    }
}

/// The smoke suite stays deliberately tiny: `tests/cli_smoke.rs` replays
/// it several times through the debug binary, and the CI gate runs it on
/// every push — a handful of seconds total is the budget.
fn smoke_scenarios() -> Vec<Scenario> {
    let mut zz = Scenario::named("smoke-aids-zz-hd");
    zz.dataset_scale = 0.05;
    zz.queries = 80;
    zz.capacity = 40;
    zz.query_sizes = vec![4, 8, 12];

    // Type B exercises the empty-answer shortcut; the adaptive admission
    // policy and a verification budget ride along, plus a fixed shard
    // count so the sharded maintenance path is pinned.
    let mut b20 = Scenario::named("smoke-aids-b20-gcr-adaptive");
    b20.workload = WorkloadSpec::TypeB {
        no_answer: 0.2,
        alpha: 1.4,
    };
    b20.dataset_scale = 0.05;
    b20.queries = 80;
    b20.capacity = 40;
    b20.query_sizes = vec![4, 8, 12];
    b20.eviction = "gcr".into();
    b20.admission = Some("adaptive".into());
    // Tight enough that some sweeps run dry: the `truncated` counter must
    // be pinned above zero or the budget-degradation path goes ungated.
    b20.verify_budget = Some(25);
    b20.shards = 4;

    // Dense graphs (PCM shape) under supergraph semantics — the other
    // query direction, a different method, and the segmented-LRU policy.
    let mut pcm = Scenario::named("smoke-pcm-zu-slru-super");
    pcm.dataset = DatasetProfile::pcm();
    pcm.dataset_scale = 0.2;
    pcm.workload = WorkloadSpec::Zu(1.4);
    pcm.queries = 50;
    pcm.capacity = 30;
    pcm.query_sizes = vec![4, 6, 8];
    pcm.method = MethodKind::SiVf2;
    pcm.eviction = "slru:protected=0.5".into();
    pcm.kind = QueryKind::Supergraph;

    vec![zz, b20, pcm]
}

fn paper_scenarios() -> Vec<Scenario> {
    let datasets = [
        (DatasetProfile::aids(), 0.05, vec![4, 8, 12, 16, 20]),
        (DatasetProfile::pdbs(), 0.1, vec![4, 8, 12, 16, 20]),
        (DatasetProfile::pcm(), 0.5, vec![4, 8, 12, 16, 20]),
        (DatasetProfile::synthetic(), 0.15, vec![4, 8, 12, 16, 20]),
    ];
    let mut out = Vec::new();
    for (profile, scale, sizes) in datasets {
        for spec in WorkloadSpec::paper_six() {
            let mut s = Scenario::named(format!(
                "paper-{}-{}",
                profile.name.to_lowercase(),
                spec.name().replace('%', "pct"),
            ));
            s.dataset = profile.clone();
            s.dataset_scale = scale;
            s.workload = spec;
            s.query_sizes = sizes.clone();
            s.queries = 150;
            out.push(s);
        }
    }
    out
}

fn policy_scenarios() -> Vec<Scenario> {
    let evictions = [
        "lru",
        "pop",
        "pin",
        "pinc",
        "hd",
        "slru:protected=0.5",
        "greedy-dual",
    ];
    let mut out = Vec::new();
    for ev in evictions {
        let mut s = Scenario::named(format!(
            "policies-aids-zz-{}",
            ev.split(':').next().unwrap_or(ev)
        ));
        s.dataset_scale = 0.05;
        s.queries = 120;
        s.capacity = 50;
        s.eviction = ev.into();
        out.push(s);
    }
    for adm in ["threshold", "adaptive"] {
        let mut s = Scenario::named(format!("policies-aids-zz-hd-{adm}"));
        s.dataset_scale = 0.05;
        s.queries = 120;
        s.capacity = 50;
        s.admission = Some(adm.into());
        out.push(s);
    }
    out
}

/// The fragment suite's regime is chosen so fragment pruning is the only
/// savings channel left: a flat Zipf (α = 1.05) keeps exact repeats rare,
/// while small query sizes over one dataset shape make queries *share
/// structure* without containing each other — and `si_vf2` has no filter
/// index, so CS_M is the whole dataset and exact fragment occurrence sets
/// have maximal room to prune. The on/off pair differs in nothing but the
/// `fragments` switch.
fn fragment_scenarios() -> Vec<Scenario> {
    let base = |name: &str| {
        let mut s = Scenario::named(name);
        s.dataset_scale = 0.05;
        s.workload = WorkloadSpec::Zz(1.05);
        s.queries = 80;
        s.capacity = 40;
        s.window = 10;
        s.query_sizes = vec![4, 6, 8];
        s.method = MethodKind::SiVf2;
        s.warmup = 10;
        s
    };
    let mut on = base("fragments-aids-zz-on");
    on.fragments = true;
    let off = base("fragments-aids-zz-off");
    // A second pair under the slru fragment policy and a tight budget, so
    // the fragment store's own eviction loop is exercised by the gate.
    let mut slru = base("fragments-aids-zz-slru-tight");
    slru.fragments = true;
    slru.fragment_eviction = Some("slru:protected=0.5".into());
    slru.fragment_budget = Some(16 * 1024);
    vec![on, off, slru]
}

/// The restore suite keeps CI-smoke size but flips the persistence cycle
/// on: a plain subgraph scenario, an evicting supergraph scenario (so
/// tombstone/compaction state precedes the save), and a fragments-on
/// scenario (so the snapshot's FRAGMENTS section is non-trivial). Each
/// cycle asserts byte-identical re-save of the restored cache.
fn restore_scenarios() -> Vec<Scenario> {
    let mut zz = Scenario::named("restore-aids-zz-binary");
    zz.dataset_scale = 0.05;
    zz.queries = 80;
    zz.capacity = 40;
    zz.query_sizes = vec![4, 8, 12];
    zz.persist_cycle = true;

    let mut sup = Scenario::named("restore-pcm-zu-super-binary");
    sup.dataset = DatasetProfile::pcm();
    sup.dataset_scale = 0.2;
    sup.workload = WorkloadSpec::Zu(1.4);
    sup.queries = 50;
    sup.capacity = 20; // tight: eviction churn precedes the save
    sup.query_sizes = vec![4, 6, 8];
    sup.method = MethodKind::SiVf2;
    sup.kind = QueryKind::Supergraph;
    sup.persist_cycle = true;

    let mut frags = Scenario::named("restore-aids-zz-fragments-binary");
    frags.dataset_scale = 0.05;
    frags.workload = WorkloadSpec::Zz(1.05);
    frags.queries = 60;
    frags.capacity = 40;
    frags.window = 10;
    frags.query_sizes = vec![4, 6, 8];
    frags.method = MethodKind::SiVf2;
    frags.warmup = 10;
    frags.fragments = true;
    frags.persist_cycle = true;

    vec![zz, sup, frags]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn spec_names() {
        let names: Vec<String> = WorkloadSpec::paper_six().iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["ZZ", "ZU", "UU", "0%", "20%", "50%"]);
    }

    #[test]
    fn suite_names_round_trip() {
        for s in Suite::ALL {
            assert_eq!(Suite::from_name(s.name()), Some(s));
        }
        assert_eq!(Suite::from_name("nope"), None);
    }

    #[test]
    fn scenario_names_are_unique_within_each_suite() {
        for suite in Suite::ALL {
            let scenarios = suite.scenarios();
            assert!(!scenarios.is_empty());
            let names: HashSet<String> = scenarios.iter().map(|s| s.name.clone()).collect();
            assert_eq!(names.len(), scenarios.len(), "{} suite", suite.name());
        }
    }

    #[test]
    fn suites_are_deterministic_lists() {
        let a = Suite::Smoke.scenarios();
        let b = Suite::Smoke.scenarios();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.config_echo(), y.config_echo());
        }
    }

    #[test]
    fn suites_keep_one_client_thread() {
        // The regression gate only holds with a sequential client; a suite
        // scenario quietly flipping to threads > 1 would make the
        // committed baseline flaky.
        for suite in Suite::ALL {
            for s in suite.scenarios() {
                assert_eq!(s.threads, 1, "{}", s.name);
            }
        }
    }

    #[test]
    fn workload_generation_matches_spec() {
        let d = DatasetProfile::aids().scaled(0.02).generate(3);
        let w = WorkloadSpec::Zz(1.4).generate(&d, &[4, 8], 30, 9);
        assert_eq!(w.len(), 30);
        let w2 = WorkloadSpec::Zz(1.4).generate(&d, &[4, 8], 30, 9);
        for (a, b) in w.graphs().zip(w2.graphs()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn config_echo_graphs_matches_generated_dataset() {
        // Even a sub-floor scale (clamped to 0.05 by the profile) must be
        // echoed as the graph count that actually runs.
        let mut s = Scenario::named("clamped");
        s.dataset_scale = 0.01;
        let echoed: usize = s
            .config_echo()
            .into_iter()
            .find(|(k, _)| k == "graphs")
            .expect("graphs echoed")
            .1
            .parse()
            .unwrap();
        let generated = s
            .dataset
            .clone()
            .scaled(s.dataset_scale)
            .generate(s.dataset_seed)
            .len();
        assert_eq!(echoed, generated);
    }

    #[test]
    fn suite_scales_are_not_silently_clamped() {
        // DatasetProfile::scaled floors the scale at 0.05; a suite
        // scenario below the floor would echo a scale the run never used.
        for suite in Suite::ALL {
            for s in suite.scenarios() {
                assert!(
                    s.dataset_scale >= 0.05,
                    "{}: scale {} is below the profile floor",
                    s.name,
                    s.dataset_scale
                );
            }
        }
    }

    #[test]
    fn config_echo_covers_budget_only_when_set() {
        let s = Scenario::named("x");
        assert!(!s.config_echo().iter().any(|(k, _)| k == "verify_budget"));
        let mut b = Scenario::named("y");
        b.verify_budget = Some(10);
        assert!(b.config_echo().iter().any(|(k, _)| k == "verify_budget"));
    }
}
