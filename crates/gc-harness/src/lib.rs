//! End-to-end scenario matrix harness for GraphCache.
//!
//! The paper's evaluation is a matrix — datasets × workload types ×
//! methods × policies — and every run used to be a hand-assembled
//! `gc generate` / `gc workload` / `gc query` pipeline whose results lived
//! only in stdout. This crate turns one cell of that matrix into a
//! declarative [`Scenario`], groups scenarios into named [`Suite`]s, runs
//! them end-to-end through the concurrent service API
//! ([`run_suite`] / [`run_scenario`]), and collects
//! [`ScenarioReport`]s whose counters are a *pure function of the seeds*:
//!
//! * deterministic counters — hit/miss composition, sub-iso tests,
//!   verification budget accounting, maintenance phase counts, final
//!   cache shape ([`gc_core::RunCounters`] +
//!   [`gc_core::MaintStats::deterministic_counters`]);
//! * wall-clock as **advisory only** — serialized on request, never
//!   compared.
//!
//! Reports serialize to a versioned JSON schema ([`report::SCHEMA_VERSION`])
//! through a small offline writer/parser ([`json`], no serde), and
//! [`MatrixReport::compare`] implements the CI regression gate behind
//! `gc bench --check benches/baseline.json --tolerance PCT`: any
//! deterministic counter drifting beyond the tolerance fails the build,
//! wall-clock never does.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod report;
pub mod runner;
pub mod scenario;

pub use json::Json;
pub use report::{Drift, MatrixReport, ScenarioReport, SCHEMA_VERSION};
pub use runner::{build_cache, run_scenario, run_suite, run_suite_with};
pub use scenario::{Scenario, Suite, WorkloadSpec};
