//! Vanilla VF2 \[Cordella, Foggia, Sansone, Vento — TPAMI 2004\], adapted to
//! non-induced, vertex-labelled, undirected subgraph isomorphism.
//!
//! The implementation follows the classic recipe: depth-first extension of a
//! partial mapping, connectivity-driven candidate generation (the next
//! pattern node adjacent to the mapped core is tried against the unmapped
//! target neighbours of its mapped neighbour's image), plus the standard
//! feasibility rules — label equality, mapped-neighbour consistency, degree
//! dominance and a one-step lookahead on unmapped neighbour counts.

use crate::common::{quick_reject, Found, Work};
use crate::{MatchConfig, MatchOutcome, Matcher};
use gc_graph::{LabeledGraph, NodeId};
use std::ops::ControlFlow;

/// The VF2 matcher. Stateless; construct once and reuse freely.
#[derive(Debug, Default, Clone, Copy)]
pub struct Vf2;

impl Vf2 {
    /// Creates a new VF2 matcher.
    pub fn new() -> Self {
        Vf2
    }
}

impl Matcher for Vf2 {
    fn name(&self) -> &'static str {
        "VF2"
    }

    fn contains_with(
        &self,
        pattern: &LabeledGraph,
        target: &LabeledGraph,
        cfg: &MatchConfig,
    ) -> MatchOutcome {
        let mut driver = Driver::decide();
        run(pattern, target, cfg, &mut driver)
    }

    fn find_embedding(&self, pattern: &LabeledGraph, target: &LabeledGraph) -> Option<Vec<NodeId>> {
        let mut driver = Driver::find();
        run(pattern, target, &MatchConfig::UNBOUNDED, &mut driver);
        driver.embedding
    }

    fn count_embeddings(&self, pattern: &LabeledGraph, target: &LabeledGraph, limit: u64) -> u64 {
        let mut driver = Driver::count(limit);
        run(pattern, target, &MatchConfig::UNBOUNDED, &mut driver);
        driver.count
    }
}

/// Shared enumeration driver used by all three entry points (and reused by
/// the other matchers in this crate).
pub(crate) struct Driver {
    mode: Mode,
    pub(crate) found: bool,
    pub(crate) count: u64,
    pub(crate) embedding: Option<Vec<NodeId>>,
}

enum Mode {
    Decide,
    Find,
    Count { limit: u64 },
}

impl Driver {
    pub(crate) fn decide() -> Self {
        Driver {
            mode: Mode::Decide,
            found: false,
            count: 0,
            embedding: None,
        }
    }

    pub(crate) fn find() -> Self {
        Driver {
            mode: Mode::Find,
            found: false,
            count: 0,
            embedding: None,
        }
    }

    pub(crate) fn count(limit: u64) -> Self {
        Driver {
            mode: Mode::Count { limit },
            found: false,
            count: 0,
            embedding: None,
        }
    }

    /// Records a complete embedding; returns whether to keep searching.
    pub(crate) fn on_embedding(&mut self, mapping: &[Option<NodeId>]) -> Found {
        self.found = true;
        self.count += 1;
        match self.mode {
            Mode::Decide => Found::Stop,
            Mode::Find => {
                self.embedding = Some(mapping.iter().map(|m| m.expect("complete")).collect());
                Found::Stop
            }
            Mode::Count { limit } => {
                if self.count >= limit {
                    Found::Stop
                } else {
                    Found::Continue
                }
            }
        }
    }
}

fn run(
    pattern: &LabeledGraph,
    target: &LabeledGraph,
    cfg: &MatchConfig,
    driver: &mut Driver,
) -> MatchOutcome {
    if pattern.node_count() == 0 {
        // The empty pattern embeds vacuously (one empty embedding).
        driver.on_embedding(&[]);
        return MatchOutcome {
            found: true,
            complete: true,
            nodes_expanded: 0,
        };
    }
    let mut work = Work::new(cfg.budget);
    if !quick_reject(pattern, target) {
        let mut st = State {
            p: pattern,
            t: target,
            core_p: vec![None; pattern.node_count()],
            used_t: vec![false; target.node_count()],
            mapped: 0,
        };
        let _ = search(&mut st, &mut work, driver);
    }
    MatchOutcome {
        found: driver.found,
        complete: !work.exhausted,
        nodes_expanded: work.nodes,
    }
}

struct State<'a> {
    p: &'a LabeledGraph,
    t: &'a LabeledGraph,
    core_p: Vec<Option<NodeId>>,
    used_t: Vec<bool>,
    mapped: usize,
}

impl State<'_> {
    /// Picks the next pattern node: the lowest-id unmapped node adjacent to
    /// the mapped core, or the lowest-id unmapped node if none (handles
    /// disconnected patterns).
    fn next_pattern_node(&self) -> (NodeId, Option<NodeId>) {
        let mut fallback = None;
        for u in self.p.nodes() {
            if self.core_p[u as usize].is_some() {
                continue;
            }
            if fallback.is_none() {
                fallback = Some(u);
            }
            if let Some(&w) = self
                .p
                .neighbors(u)
                .iter()
                .find(|&&w| self.core_p[w as usize].is_some())
            {
                return (u, Some(w));
            }
        }
        (fallback.expect("at least one unmapped node"), None)
    }

    /// VF2 feasibility of the candidate pair `(u, v)`.
    fn feasible(&self, u: NodeId, v: NodeId) -> bool {
        if self.p.label(u) != self.t.label(v) || self.used_t[v as usize] {
            return false;
        }
        if self.p.degree(u) > self.t.degree(v) {
            return false;
        }
        // Consistency: every mapped neighbour of u must map to a neighbour
        // of v (non-induced: no converse requirement).
        let mut unmapped_p_nbrs = 0usize;
        for &w in self.p.neighbors(u) {
            match self.core_p[w as usize] {
                Some(img) => {
                    if !self.t.has_edge(img, v) {
                        return false;
                    }
                }
                None => unmapped_p_nbrs += 1,
            }
        }
        // One-step lookahead: the unmapped pattern neighbours of u need
        // distinct unmapped target neighbours of v.
        let unmapped_t_nbrs = self
            .t
            .neighbors(v)
            .iter()
            .filter(|&&x| !self.used_t[x as usize])
            .count();
        unmapped_p_nbrs <= unmapped_t_nbrs
    }
}

fn search(st: &mut State<'_>, work: &mut Work, driver: &mut Driver) -> ControlFlow<()> {
    if st.mapped == st.p.node_count() {
        return match driver.on_embedding(&st.core_p) {
            Found::Stop => ControlFlow::Break(()),
            Found::Continue => ControlFlow::Continue(()),
        };
    }
    let (u, anchor) = st.next_pattern_node();
    match anchor {
        Some(w) => {
            // Candidates: unmapped target neighbours of the image of w.
            let img = st.core_p[w as usize].expect("anchor is mapped");
            let nbrs: &[NodeId] = st.t.neighbors(img);
            // Index loop (not iterator): the body re-borrows `st` mutably.
            #[allow(clippy::needless_range_loop)]
            for i in 0..nbrs.len() {
                let v = nbrs[i];
                work.step()?;
                if st.feasible(u, v) {
                    st.core_p[u as usize] = Some(v);
                    st.used_t[v as usize] = true;
                    st.mapped += 1;
                    let flow = search(st, work, driver);
                    st.core_p[u as usize] = None;
                    st.used_t[v as usize] = false;
                    st.mapped -= 1;
                    flow?;
                }
            }
        }
        None => {
            for v in st.t.nodes() {
                work.step()?;
                if st.feasible(u, v) {
                    st.core_p[u as usize] = Some(v);
                    st.used_t[v as usize] = true;
                    st.mapped += 1;
                    let flow = search(st, work, driver);
                    st.core_p[u as usize] = None;
                    st.used_t[v as usize] = false;
                    st.mapped -= 1;
                    flow?;
                }
            }
        }
    }
    ControlFlow::Continue(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_valid_embedding;

    fn path(labels: &[u32]) -> LabeledGraph {
        let edges: Vec<(u32, u32)> = (0..labels.len() as u32 - 1).map(|i| (i, i + 1)).collect();
        LabeledGraph::from_parts(labels.to_vec(), &edges)
    }

    #[test]
    fn finds_path_in_cycle() {
        let p = path(&[0, 0, 0]);
        let t = LabeledGraph::from_parts(vec![0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let m = Vf2::new();
        assert!(m.contains(&p, &t));
        let emb = m.find_embedding(&p, &t).unwrap();
        assert!(is_valid_embedding(&p, &t, &emb));
    }

    #[test]
    fn respects_labels() {
        let p = path(&[0, 1]);
        let t = path(&[0, 0, 0]);
        assert!(!Vf2::new().contains(&p, &t));
    }

    #[test]
    fn non_induced_semantics() {
        // A 3-path embeds into a triangle even though the triangle has the
        // extra chord (induced iso would reject).
        let p = path(&[0, 0, 0]);
        let t = LabeledGraph::from_parts(vec![0, 0, 0], &[(0, 1), (1, 2), (2, 0)]);
        assert!(Vf2::new().contains(&p, &t));
    }

    #[test]
    fn counts_embeddings_in_triangle() {
        // An edge with two identically-labelled endpoints has 6 embeddings
        // into a triangle (3 edges × 2 orientations).
        let p = path(&[0, 0]);
        let t = LabeledGraph::from_parts(vec![0, 0, 0], &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(Vf2::new().count_embeddings(&p, &t, u64::MAX), 6);
    }

    #[test]
    fn count_respects_limit() {
        let p = path(&[0, 0]);
        let t = LabeledGraph::from_parts(vec![0, 0, 0], &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(Vf2::new().count_embeddings(&p, &t, 2), 2);
    }

    #[test]
    fn empty_pattern_trivially_contained() {
        let p = LabeledGraph::empty();
        let t = path(&[0, 1]);
        let m = Vf2::new();
        assert!(m.contains(&p, &t));
        assert_eq!(m.count_embeddings(&p, &t, u64::MAX), 1);
        assert_eq!(m.find_embedding(&p, &t), Some(vec![]));
    }

    #[test]
    fn disconnected_pattern() {
        let p = LabeledGraph::from_parts(vec![0, 1, 2, 3], &[(0, 1), (2, 3)]);
        let t = LabeledGraph::from_parts(vec![0, 1, 9, 2, 3], &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let m = Vf2::new();
        assert!(m.contains(&p, &t));
        let emb = m.find_embedding(&p, &t).unwrap();
        assert!(is_valid_embedding(&p, &t, &emb));
    }

    #[test]
    fn budget_exhaustion_reported() {
        // A label-free 8-clique pattern into a 12-clique with budget 1.
        let n = 8u32;
        let mut pe = vec![];
        for i in 0..n {
            for j in i + 1..n {
                pe.push((i, j));
            }
        }
        let p = LabeledGraph::from_parts(vec![0; n as usize], &pe);
        let m_t = 12u32;
        let mut te = vec![];
        for i in 0..m_t {
            for j in i + 1..m_t {
                te.push((i, j));
            }
        }
        let t = LabeledGraph::from_parts(vec![0; m_t as usize], &te);
        let out = Vf2::new().contains_with(&p, &t, &MatchConfig::bounded(1));
        assert!(!out.complete);
        assert!(!out.found);
        // Unbounded succeeds.
        assert!(Vf2::new().contains(&p, &t));
    }

    #[test]
    fn deterministic_work_count() {
        let p = path(&[0, 1, 0, 1]);
        let t = LabeledGraph::from_parts(
            vec![0, 1, 0, 1, 0],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)],
        );
        let a = Vf2::new().contains_with(&p, &t, &MatchConfig::UNBOUNDED);
        let b = Vf2::new().contains_with(&p, &t, &MatchConfig::UNBOUNDED);
        assert_eq!(a, b);
        assert!(a.nodes_expanded > 0);
    }

    #[test]
    fn pattern_larger_than_target_rejected_without_search() {
        let p = path(&[0, 0, 0, 0]);
        let t = path(&[0, 0]);
        let out = Vf2::new().contains_with(&p, &t, &MatchConfig::UNBOUNDED);
        assert!(!out.found);
        assert_eq!(out.nodes_expanded, 0);
    }
}
