//! GraphQL-style subgraph matching \[He & Singh — SIGMOD 2008\].
//!
//! GraphQL's distinctive ingredients, reproduced here:
//!
//! 1. per-pattern-node **candidate lists** seeded by label, degree and
//!    neighbour-label-profile containment;
//! 2. iterative **pseudo subgraph isomorphism refinement**: a candidate
//!    `v ∈ C(u)` survives only if the neighbours of `u` can be matched
//!    one-to-one (bipartite matching) to distinct neighbours of `v` drawn
//!    from their own candidate lists;
//! 3. a search order that greedily minimises candidate-list size, and
//!    backtracking search constrained to the refined lists.

use crate::common::{neighbor_labels_sorted, quick_reject, sorted_multiset_contained, Found, Work};
use crate::vf2::Driver;
use crate::{MatchConfig, MatchOutcome, Matcher};
use gc_graph::{LabeledGraph, NodeId};
use std::ops::ControlFlow;

/// The GraphQL matcher.
#[derive(Debug, Clone, Copy)]
pub struct GraphQl {
    /// Number of pseudo-iso refinement sweeps (the paper's GraphQL defaults
    /// to a small constant; 2 captures nearly all pruning in practice).
    refinement_rounds: usize,
}

impl Default for GraphQl {
    fn default() -> Self {
        GraphQl {
            refinement_rounds: 2,
        }
    }
}

impl GraphQl {
    /// Creates a GraphQL matcher with the default refinement depth.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a GraphQL matcher with a custom number of refinement sweeps.
    pub fn with_refinement(rounds: usize) -> Self {
        GraphQl {
            refinement_rounds: rounds,
        }
    }
}

impl Matcher for GraphQl {
    fn name(&self) -> &'static str {
        "GQL"
    }

    fn contains_with(
        &self,
        pattern: &LabeledGraph,
        target: &LabeledGraph,
        cfg: &MatchConfig,
    ) -> MatchOutcome {
        let mut driver = Driver::decide();
        run(self, pattern, target, cfg, &mut driver)
    }

    fn find_embedding(&self, pattern: &LabeledGraph, target: &LabeledGraph) -> Option<Vec<NodeId>> {
        let mut driver = Driver::find();
        run(self, pattern, target, &MatchConfig::UNBOUNDED, &mut driver);
        driver.embedding
    }

    fn count_embeddings(&self, pattern: &LabeledGraph, target: &LabeledGraph, limit: u64) -> u64 {
        let mut driver = Driver::count(limit);
        run(self, pattern, target, &MatchConfig::UNBOUNDED, &mut driver);
        driver.count
    }
}

fn run(
    gql: &GraphQl,
    pattern: &LabeledGraph,
    target: &LabeledGraph,
    cfg: &MatchConfig,
    driver: &mut Driver,
) -> MatchOutcome {
    if pattern.node_count() == 0 {
        driver.on_embedding(&[]);
        return MatchOutcome {
            found: true,
            complete: true,
            nodes_expanded: 0,
        };
    }
    let mut work = Work::new(cfg.budget);
    if !quick_reject(pattern, target) {
        if let ControlFlow::Continue(Some(cands)) =
            build_candidates(gql, pattern, target, &mut work)
        {
            let order = search_order(pattern, &cands);
            let mut st = State {
                p: pattern,
                t: target,
                cands: &cands,
                order: &order,
                core_p: vec![None; pattern.node_count()],
                used_t: vec![false; target.node_count()],
            };
            let _ = search(&mut st, 0, &mut work, driver);
        }
    }
    MatchOutcome {
        found: driver.found,
        complete: !work.exhausted,
        nodes_expanded: work.nodes,
    }
}

/// Builds and refines candidate lists. `Continue(None)` means some list
/// emptied (definite non-match); `Break` means budget exhaustion.
fn build_candidates(
    gql: &GraphQl,
    p: &LabeledGraph,
    t: &LabeledGraph,
    work: &mut Work,
) -> ControlFlow<(), Option<Vec<Vec<NodeId>>>> {
    let profiles_t: Vec<Vec<u32>> = t.nodes().map(|v| neighbor_labels_sorted(t, v)).collect();
    let mut cands: Vec<Vec<NodeId>> = Vec::with_capacity(p.node_count());
    for u in p.nodes() {
        let profile_u = neighbor_labels_sorted(p, u);
        let mut list = Vec::new();
        for v in t.nodes() {
            if let ControlFlow::Break(()) = work.step() {
                return ControlFlow::Break(());
            }
            if p.label(u) == t.label(v)
                && p.degree(u) <= t.degree(v)
                && sorted_multiset_contained(&profile_u, &profiles_t[v as usize])
            {
                list.push(v);
            }
        }
        if list.is_empty() {
            return ControlFlow::Continue(None);
        }
        cands.push(list);
    }

    // Pseudo sub-iso refinement sweeps.
    let mut in_cand: Vec<Vec<bool>> = p
        .nodes()
        .map(|u| {
            let mut row = vec![false; t.node_count()];
            for &v in &cands[u as usize] {
                row[v as usize] = true;
            }
            row
        })
        .collect();
    for _round in 0..gql.refinement_rounds {
        let mut changed = false;
        for u in p.nodes() {
            let mut kept = Vec::with_capacity(cands[u as usize].len());
            for &v in &cands[u as usize] {
                if let ControlFlow::Break(()) = work.step() {
                    return ControlFlow::Break(());
                }
                if neighbors_matchable(p, t, &in_cand, u, v) {
                    kept.push(v);
                } else {
                    in_cand[u as usize][v as usize] = false;
                    changed = true;
                }
            }
            if kept.is_empty() {
                return ControlFlow::Continue(None);
            }
            cands[u as usize] = kept;
        }
        if !changed {
            break;
        }
    }
    ControlFlow::Continue(Some(cands))
}

/// Bipartite-matching feasibility: can every neighbour of `u` be assigned a
/// distinct neighbour of `v` from its own candidate list? (Kuhn's
/// augmenting-path algorithm over the small neighbourhood bipartite graph.)
fn neighbors_matchable(
    p: &LabeledGraph,
    t: &LabeledGraph,
    in_cand: &[Vec<bool>],
    u: NodeId,
    v: NodeId,
) -> bool {
    let left: &[NodeId] = p.neighbors(u);
    let right: &[NodeId] = t.neighbors(v);
    if left.len() > right.len() {
        return false;
    }
    // match_right[j] = index into `left` currently matched to right[j].
    let mut match_right: Vec<Option<usize>> = vec![None; right.len()];
    let mut seen = vec![false; right.len()];
    for i in 0..left.len() {
        seen.iter_mut().for_each(|s| *s = false);
        if !augment(i, left, right, in_cand, &mut match_right, &mut seen) {
            return false;
        }
    }
    true
}

/// One augmenting-path attempt for left node `i` (Kuhn's algorithm).
fn augment(
    i: usize,
    left: &[NodeId],
    right: &[NodeId],
    in_cand: &[Vec<bool>],
    match_right: &mut [Option<usize>],
    seen: &mut [bool],
) -> bool {
    let un = left[i];
    for j in 0..right.len() {
        let vn = right[j];
        if seen[j] || !in_cand[un as usize][vn as usize] {
            continue;
        }
        seen[j] = true;
        let free_or_reroutable = match match_right[j] {
            None => true,
            Some(prev) => augment(prev, left, right, in_cand, match_right, seen),
        };
        if free_or_reroutable {
            match_right[j] = Some(i);
            return true;
        }
    }
    false
}

/// Greedy candidate-size-first search order with connectivity preference.
fn search_order(p: &LabeledGraph, cands: &[Vec<NodeId>]) -> Vec<NodeId> {
    let n = p.node_count();
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    let mut connected = vec![false; n];
    for _ in 0..n {
        let pick = p
            .nodes()
            .filter(|&u| !placed[u as usize])
            .min_by(|&a, &b| {
                connected[b as usize]
                    .cmp(&connected[a as usize])
                    .then(cands[a as usize].len().cmp(&cands[b as usize].len()))
                    .then(p.degree(b).cmp(&p.degree(a)))
                    .then(a.cmp(&b))
            })
            .expect("unplaced node");
        placed[pick as usize] = true;
        order.push(pick);
        for &w in p.neighbors(pick) {
            connected[w as usize] = true;
        }
    }
    order
}

struct State<'a> {
    p: &'a LabeledGraph,
    t: &'a LabeledGraph,
    cands: &'a [Vec<NodeId>],
    order: &'a [NodeId],
    core_p: Vec<Option<NodeId>>,
    used_t: Vec<bool>,
}

impl State<'_> {
    fn consistent(&self, u: NodeId, v: NodeId) -> bool {
        if self.used_t[v as usize] {
            return false;
        }
        for &w in self.p.neighbors(u) {
            if let Some(img) = self.core_p[w as usize] {
                if !self.t.has_edge(img, v) {
                    return false;
                }
            }
        }
        true
    }
}

fn search(
    st: &mut State<'_>,
    depth: usize,
    work: &mut Work,
    driver: &mut Driver,
) -> ControlFlow<()> {
    if depth == st.order.len() {
        return match driver.on_embedding(&st.core_p) {
            Found::Stop => ControlFlow::Break(()),
            Found::Continue => ControlFlow::Continue(()),
        };
    }
    let u = st.order[depth];
    let cands = st.cands[u as usize].clone();
    for v in cands {
        work.step()?;
        if st.consistent(u, v) {
            st.core_p[u as usize] = Some(v);
            st.used_t[v as usize] = true;
            let flow = search(st, depth + 1, work, driver);
            st.core_p[u as usize] = None;
            st.used_t[v as usize] = false;
            flow?;
        }
    }
    ControlFlow::Continue(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_valid_embedding;
    use crate::vf2::Vf2;

    fn path(labels: &[u32]) -> LabeledGraph {
        let edges: Vec<(u32, u32)> = (0..labels.len() as u32 - 1).map(|i| (i, i + 1)).collect();
        LabeledGraph::from_parts(labels.to_vec(), &edges)
    }

    #[test]
    fn agrees_with_vf2() {
        let cases = [
            (path(&[0, 1, 0]), path(&[0, 1, 0, 1])),
            (path(&[0, 0]), path(&[1, 1])),
            (
                LabeledGraph::from_parts(vec![0, 0, 0], &[(0, 1), (1, 2), (2, 0)]),
                path(&[0, 0, 0, 0]),
            ),
            (
                LabeledGraph::from_parts(vec![1, 2, 3], &[(0, 1), (1, 2)]),
                LabeledGraph::from_parts(vec![1, 2, 3, 1], &[(0, 1), (1, 2), (2, 3)]),
            ),
        ];
        for (p, t) in cases {
            assert_eq!(
                GraphQl::new().contains(&p, &t),
                Vf2::new().contains(&p, &t),
                "disagree on {p:?} vs {t:?}"
            );
        }
    }

    #[test]
    fn embedding_valid() {
        let p = LabeledGraph::from_parts(vec![2, 3, 2], &[(0, 1), (1, 2)]);
        let t = LabeledGraph::from_parts(
            vec![2, 3, 2, 3, 2],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)],
        );
        let emb = GraphQl::new().find_embedding(&p, &t).unwrap();
        assert!(is_valid_embedding(&p, &t, &emb));
    }

    #[test]
    fn profile_filter_prunes() {
        // Pattern centre needs neighbours {1, 2}; the only label-0 target
        // node has neighbour labels {1, 1} — candidate list becomes empty
        // with zero search steps beyond candidate construction.
        let p = LabeledGraph::from_parts(vec![0, 1, 2], &[(0, 1), (0, 2)]);
        let t = LabeledGraph::from_parts(vec![0, 1, 1], &[(0, 1), (0, 2)]);
        assert!(!GraphQl::new().contains(&p, &t));
    }

    #[test]
    fn count_matches_vf2() {
        let p = path(&[0, 0]);
        let t = LabeledGraph::from_parts(vec![0, 0, 0], &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(
            GraphQl::new().count_embeddings(&p, &t, u64::MAX),
            Vf2::new().count_embeddings(&p, &t, u64::MAX)
        );
    }

    #[test]
    fn budget_respected() {
        let p = LabeledGraph::from_parts(vec![0; 5], &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut te = vec![];
        for i in 0..9u32 {
            for j in i + 1..9 {
                te.push((i, j));
            }
        }
        let t = LabeledGraph::from_parts(vec![0; 9], &te);
        let out = GraphQl::new().contains_with(&p, &t, &MatchConfig::bounded(1));
        assert!(!out.complete);
    }

    #[test]
    fn refinement_rounds_configurable() {
        let m = GraphQl::with_refinement(0);
        let p = path(&[0, 1]);
        let t = path(&[1, 0, 1]);
        assert!(m.contains(&p, &t));
    }
}
