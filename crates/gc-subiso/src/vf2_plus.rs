//! "VF2+": VF2 augmented with a rarity-driven static variable ordering and a
//! label-aware one-step lookahead.
//!
//! The paper uses a modified VF2 provided by the CT-Index authors (denoted
//! VF2+ in §7.1). The exact modifications are not published; the consensus
//! improvements for labelled databases — ordering pattern vertices by label
//! rarity in the target and strongest-connectivity-first (as in RI/VF3), and
//! pruning with per-label neighbour counts — are implemented here. VF2+ is
//! typically several times faster than vanilla VF2 on labelled graphs, which
//! is the behaviour the paper's figures rely on.

use crate::common::{quick_reject, sorted_multiset_contained, Found, Work};
use crate::vf2::Driver;
use crate::{MatchConfig, MatchOutcome, Matcher};
use gc_graph::{Label, LabeledGraph, NodeId};
use std::collections::HashMap;
use std::ops::ControlFlow;

/// The VF2+ matcher. Stateless; construct once and reuse freely.
#[derive(Debug, Default, Clone, Copy)]
pub struct Vf2Plus;

impl Vf2Plus {
    /// Creates a new VF2+ matcher.
    pub fn new() -> Self {
        Vf2Plus
    }
}

impl Matcher for Vf2Plus {
    fn name(&self) -> &'static str {
        "VF2+"
    }

    fn contains_with(
        &self,
        pattern: &LabeledGraph,
        target: &LabeledGraph,
        cfg: &MatchConfig,
    ) -> MatchOutcome {
        let mut driver = Driver::decide();
        run(pattern, target, cfg, &mut driver)
    }

    fn find_embedding(&self, pattern: &LabeledGraph, target: &LabeledGraph) -> Option<Vec<NodeId>> {
        let mut driver = Driver::find();
        run(pattern, target, &MatchConfig::UNBOUNDED, &mut driver);
        driver.embedding
    }

    fn count_embeddings(&self, pattern: &LabeledGraph, target: &LabeledGraph, limit: u64) -> u64 {
        let mut driver = Driver::count(limit);
        run(pattern, target, &MatchConfig::UNBOUNDED, &mut driver);
        driver.count
    }
}

fn run(
    pattern: &LabeledGraph,
    target: &LabeledGraph,
    cfg: &MatchConfig,
    driver: &mut Driver,
) -> MatchOutcome {
    if pattern.node_count() == 0 {
        driver.on_embedding(&[]);
        return MatchOutcome {
            found: true,
            complete: true,
            nodes_expanded: 0,
        };
    }
    let mut work = Work::new(cfg.budget);
    if !quick_reject(pattern, target) {
        let plan = Plan::build(pattern, target);
        let mut st = State {
            p: pattern,
            t: target,
            plan: &plan,
            core_p: vec![None; pattern.node_count()],
            used_t: vec![false; target.node_count()],
        };
        let _ = search(&mut st, 0, &mut work, driver);
    }
    MatchOutcome {
        found: driver.found,
        complete: !work.exhausted,
        nodes_expanded: work.nodes,
    }
}

/// Static search plan: pattern-node visit order plus, for each position, an
/// anchor (an earlier-ordered pattern neighbour) when one exists.
struct Plan {
    order: Vec<NodeId>,
    anchor: Vec<Option<NodeId>>,
    label_index: HashMap<Label, Vec<NodeId>>,
}

impl Plan {
    fn build(p: &LabeledGraph, t: &LabeledGraph) -> Plan {
        // Target label frequencies: rare labels first.
        let mut freq: HashMap<Label, u32> = HashMap::new();
        for &l in t.labels() {
            *freq.entry(l).or_insert(0) += 1;
        }
        let rarity = |u: NodeId| freq.get(&p.label(u)).copied().unwrap_or(0);

        let n = p.node_count();
        let mut order: Vec<NodeId> = Vec::with_capacity(n);
        let mut anchor: Vec<Option<NodeId>> = Vec::with_capacity(n);
        let mut placed = vec![false; n];
        let mut connectivity = vec![0u32; n]; // # already-ordered neighbours
        for _ in 0..n {
            // Greatest constraint first: maximise connectivity to the
            // ordered prefix, then minimise label frequency in the target,
            // then maximise degree; node id breaks remaining ties.
            let best = p
                .nodes()
                .filter(|&u| !placed[u as usize])
                .min_by(|&a, &b| {
                    connectivity[b as usize]
                        .cmp(&connectivity[a as usize])
                        .then(rarity(a).cmp(&rarity(b)))
                        .then(p.degree(b).cmp(&p.degree(a)))
                        .then(a.cmp(&b))
                })
                .expect("unplaced node exists");
            placed[best as usize] = true;
            // Anchor: the earliest-ordered neighbour, if any.
            let a = order.iter().copied().find(|&w| p.has_edge(w, best));
            order.push(best);
            anchor.push(a);
            for &w in p.neighbors(best) {
                connectivity[w as usize] += 1;
            }
        }

        let mut label_index: HashMap<Label, Vec<NodeId>> = HashMap::new();
        for v in t.nodes() {
            label_index.entry(t.label(v)).or_default().push(v);
        }
        Plan {
            order,
            anchor,
            label_index,
        }
    }
}

struct State<'a> {
    p: &'a LabeledGraph,
    t: &'a LabeledGraph,
    plan: &'a Plan,
    core_p: Vec<Option<NodeId>>,
    used_t: Vec<bool>,
}

impl State<'_> {
    fn feasible(&self, u: NodeId, v: NodeId) -> bool {
        if self.p.label(u) != self.t.label(v) || self.used_t[v as usize] {
            return false;
        }
        if self.p.degree(u) > self.t.degree(v) {
            return false;
        }
        let mut unmapped_p_labels: Vec<Label> = Vec::new();
        for &w in self.p.neighbors(u) {
            match self.core_p[w as usize] {
                Some(img) => {
                    if !self.t.has_edge(img, v) {
                        return false;
                    }
                }
                None => unmapped_p_labels.push(self.p.label(w)),
            }
        }
        if unmapped_p_labels.is_empty() {
            return true;
        }
        // Label-aware lookahead: each unmapped pattern neighbour needs a
        // distinct unmapped target neighbour carrying the same label.
        let mut unmapped_t_labels: Vec<Label> = self
            .t
            .neighbors(v)
            .iter()
            .filter(|&&x| !self.used_t[x as usize])
            .map(|&x| self.t.label(x))
            .collect();
        unmapped_p_labels.sort_unstable();
        unmapped_t_labels.sort_unstable();
        sorted_multiset_contained(&unmapped_p_labels, &unmapped_t_labels)
    }
}

fn search(
    st: &mut State<'_>,
    depth: usize,
    work: &mut Work,
    driver: &mut Driver,
) -> ControlFlow<()> {
    if depth == st.plan.order.len() {
        return match driver.on_embedding(&st.core_p) {
            Found::Stop => ControlFlow::Break(()),
            Found::Continue => ControlFlow::Continue(()),
        };
    }
    let u = st.plan.order[depth];
    match st.plan.anchor[depth] {
        Some(w) => {
            let img = st.core_p[w as usize].expect("anchor ordered earlier");
            let nbrs = st.t.neighbors(img);
            // Index loop (not iterator): the body re-borrows `st` mutably.
            #[allow(clippy::needless_range_loop)]
            for i in 0..nbrs.len() {
                let v = nbrs[i];
                work.step()?;
                if st.feasible(u, v) {
                    descend(st, depth, u, v, work, driver)?;
                }
            }
        }
        None => {
            if let Some(cands) = st.plan.label_index.get(&st.p.label(u)) {
                #[allow(clippy::needless_range_loop)]
                for i in 0..cands.len() {
                    let v = cands[i];
                    work.step()?;
                    if st.feasible(u, v) {
                        descend(st, depth, u, v, work, driver)?;
                    }
                }
            }
        }
    }
    ControlFlow::Continue(())
}

#[inline]
fn descend(
    st: &mut State<'_>,
    depth: usize,
    u: NodeId,
    v: NodeId,
    work: &mut Work,
    driver: &mut Driver,
) -> ControlFlow<()> {
    st.core_p[u as usize] = Some(v);
    st.used_t[v as usize] = true;
    let flow = search(st, depth + 1, work, driver);
    st.core_p[u as usize] = None;
    st.used_t[v as usize] = false;
    flow
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_valid_embedding;
    use crate::vf2::Vf2;

    fn path(labels: &[u32]) -> LabeledGraph {
        let edges: Vec<(u32, u32)> = (0..labels.len() as u32 - 1).map(|i| (i, i + 1)).collect();
        LabeledGraph::from_parts(labels.to_vec(), &edges)
    }

    #[test]
    fn agrees_with_vf2_on_basics() {
        let cases = [
            (path(&[0, 1, 0]), path(&[0, 1, 0, 1])),
            (path(&[0, 0]), path(&[1, 1])),
            (
                LabeledGraph::from_parts(vec![0, 0, 0], &[(0, 1), (1, 2), (2, 0)]),
                path(&[0, 0, 0, 0]),
            ),
        ];
        for (p, t) in cases {
            assert_eq!(
                Vf2Plus::new().contains(&p, &t),
                Vf2::new().contains(&p, &t),
                "disagree on {p:?} vs {t:?}"
            );
        }
    }

    #[test]
    fn embedding_valid() {
        let p = LabeledGraph::from_parts(vec![2, 3, 2], &[(0, 1), (1, 2)]);
        let t = LabeledGraph::from_parts(
            vec![2, 3, 2, 3, 2],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)],
        );
        let emb = Vf2Plus::new().find_embedding(&p, &t).unwrap();
        assert!(is_valid_embedding(&p, &t, &emb));
    }

    #[test]
    fn count_matches_vf2() {
        let p = path(&[0, 0]);
        let t = LabeledGraph::from_parts(vec![0, 0, 0], &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(
            Vf2Plus::new().count_embeddings(&p, &t, u64::MAX),
            Vf2::new().count_embeddings(&p, &t, u64::MAX)
        );
    }

    #[test]
    fn disconnected_pattern_handled() {
        let p = LabeledGraph::from_parts(vec![5, 7], &[]);
        let t = LabeledGraph::from_parts(vec![7, 9, 5], &[(0, 1), (1, 2)]);
        assert!(Vf2Plus::new().contains(&p, &t));
        let only_one = LabeledGraph::from_parts(vec![7, 9], &[(0, 1)]);
        assert!(!Vf2Plus::new().contains(&p, &only_one));
    }

    #[test]
    fn ordering_prefers_rare_labels() {
        // Target: one node labelled 9 (rare) and many labelled 0. A pattern
        // containing label 9 should anchor there and explore little.
        let mut labels = vec![0u32; 20];
        labels[10] = 9;
        let edges: Vec<(u32, u32)> = (0..19u32).map(|i| (i, i + 1)).collect();
        let t = LabeledGraph::from_parts(labels, &edges);
        let p = LabeledGraph::from_parts(vec![9, 0], &[(0, 1)]);
        let out = Vf2Plus::new().contains_with(&p, &t, &MatchConfig::UNBOUNDED);
        assert!(out.found);
        // Rare-first ordering pins node 10 immediately: tiny search.
        assert!(out.nodes_expanded <= 4, "expanded {}", out.nodes_expanded);
    }

    #[test]
    fn label_lookahead_prunes() {
        // u's unmapped neighbours have labels {1, 2}; candidate v offers
        // only {1, 1} — must be pruned at depth 0 rather than depth 2.
        let p = LabeledGraph::from_parts(vec![0, 1, 2], &[(0, 1), (0, 2)]);
        let t = LabeledGraph::from_parts(vec![0, 1, 1], &[(0, 1), (0, 2)]);
        let out = Vf2Plus::new().contains_with(&p, &t, &MatchConfig::UNBOUNDED);
        assert!(!out.found);
        assert!(out.nodes_expanded <= 2, "expanded {}", out.nodes_expanded);
    }

    #[test]
    fn budget_respected() {
        let p = LabeledGraph::from_parts(vec![0; 6], &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let mut te = vec![];
        for i in 0..10u32 {
            for j in i + 1..10 {
                te.push((i, j));
            }
        }
        let t = LabeledGraph::from_parts(vec![0; 10], &te);
        let out = Vf2Plus::new().contains_with(&p, &t, &MatchConfig::bounded(2));
        assert!(!out.complete);
    }
}
