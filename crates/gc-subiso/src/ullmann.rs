//! Ullmann's subgraph isomorphism algorithm \[Ullmann — JACM 1976\],
//! adapted to labelled, undirected, non-induced matching.
//!
//! Ullmann maintains a boolean candidate matrix `M[u][v]` ("pattern node `u`
//! may map to target node `v`") that is repeatedly *refined*: a candidate
//! survives only while every neighbour of `u` still has some candidate among
//! the neighbours of `v`. Search then assigns rows in order, re-running the
//! refinement as forward checking after each assignment.
//!
//! The paper cites Ullmann as the classic expensive baseline; in this repo it
//! additionally serves as an algorithmically independent referee for the
//! property tests (its search strategy shares no code with VF2/GraphQL).

use crate::common::{quick_reject, Found, Work};
use crate::vf2::Driver;
use crate::{MatchConfig, MatchOutcome, Matcher};
use gc_graph::{LabeledGraph, NodeId};
use std::ops::ControlFlow;

/// The Ullmann matcher. Stateless; construct once and reuse freely.
#[derive(Debug, Default, Clone, Copy)]
pub struct Ullmann;

impl Ullmann {
    /// Creates a new Ullmann matcher.
    pub fn new() -> Self {
        Ullmann
    }
}

impl Matcher for Ullmann {
    fn name(&self) -> &'static str {
        "Ullmann"
    }

    fn contains_with(
        &self,
        pattern: &LabeledGraph,
        target: &LabeledGraph,
        cfg: &MatchConfig,
    ) -> MatchOutcome {
        let mut driver = Driver::decide();
        run(pattern, target, cfg, &mut driver)
    }

    fn find_embedding(&self, pattern: &LabeledGraph, target: &LabeledGraph) -> Option<Vec<NodeId>> {
        let mut driver = Driver::find();
        run(pattern, target, &MatchConfig::UNBOUNDED, &mut driver);
        driver.embedding
    }

    fn count_embeddings(&self, pattern: &LabeledGraph, target: &LabeledGraph, limit: u64) -> u64 {
        let mut driver = Driver::count(limit);
        run(pattern, target, &MatchConfig::UNBOUNDED, &mut driver);
        driver.count
    }
}

fn run(
    pattern: &LabeledGraph,
    target: &LabeledGraph,
    cfg: &MatchConfig,
    driver: &mut Driver,
) -> MatchOutcome {
    if pattern.node_count() == 0 {
        driver.on_embedding(&[]);
        return MatchOutcome {
            found: true,
            complete: true,
            nodes_expanded: 0,
        };
    }
    let mut work = Work::new(cfg.budget);
    if !quick_reject(pattern, target) {
        let np = pattern.node_count();
        let nt = target.node_count();
        let mut m = vec![false; np * nt];
        for u in pattern.nodes() {
            for v in target.nodes() {
                m[u as usize * nt + v as usize] =
                    pattern.label(u) == target.label(v) && pattern.degree(u) <= target.degree(v);
            }
        }
        let mut st = State {
            p: pattern,
            t: target,
            nt,
            core_p: vec![None; np],
            used_t: vec![false; nt],
        };
        if refine(&st, &mut m, &mut work).is_continue() && !any_row_empty(&m, np, nt) {
            let _ = search(&mut st, 0, m, &mut work, driver);
        }
    }
    MatchOutcome {
        found: driver.found,
        complete: !work.exhausted,
        nodes_expanded: work.nodes,
    }
}

struct State<'a> {
    p: &'a LabeledGraph,
    t: &'a LabeledGraph,
    nt: usize,
    core_p: Vec<Option<NodeId>>,
    used_t: Vec<bool>,
}

/// Ullmann refinement to fixpoint: `M[u][v] &= ∀u'∈N(u) ∃v'∈N(v): M[u'][v']`.
fn refine(st: &State<'_>, m: &mut [bool], work: &mut Work) -> ControlFlow<()> {
    let nt = st.nt;
    loop {
        let mut changed = false;
        for u in st.p.nodes() {
            for v in st.t.nodes() {
                if !m[u as usize * nt + v as usize] {
                    continue;
                }
                work.step()?;
                let ok = st.p.neighbors(u).iter().all(|&up| {
                    st.t.neighbors(v)
                        .iter()
                        .any(|&vp| m[up as usize * nt + vp as usize])
                });
                if !ok {
                    m[u as usize * nt + v as usize] = false;
                    changed = true;
                }
            }
        }
        if !changed {
            return ControlFlow::Continue(());
        }
    }
}

fn any_row_empty(m: &[bool], np: usize, nt: usize) -> bool {
    (0..np).any(|u| !m[u * nt..(u + 1) * nt].iter().any(|&b| b))
}

fn search(
    st: &mut State<'_>,
    depth: usize,
    m: Vec<bool>,
    work: &mut Work,
    driver: &mut Driver,
) -> ControlFlow<()> {
    let np = st.p.node_count();
    if depth == np {
        return match driver.on_embedding(&st.core_p) {
            Found::Stop => ControlFlow::Break(()),
            Found::Continue => ControlFlow::Continue(()),
        };
    }
    let nt = st.nt;
    let u = depth as NodeId; // rows assigned in id order (classic Ullmann)
    for v in st.t.nodes() {
        if !m[depth * nt + v as usize] || st.used_t[v as usize] {
            continue;
        }
        work.step()?;
        // Consistency with already-assigned neighbours.
        let consistent =
            st.p.neighbors(u)
                .iter()
                .all(|&w| match st.core_p[w as usize] {
                    Some(img) => st.t.has_edge(img, v),
                    None => true,
                });
        if !consistent {
            continue;
        }
        // Forward checking: pin row u to v, clear column v from later rows,
        // then refine the copy.
        let mut next = m.clone();
        for x in 0..nt {
            next[depth * nt + x] = x == v as usize;
        }
        for row in depth + 1..np {
            next[row * nt + v as usize] = false;
        }
        st.core_p[u as usize] = Some(v);
        st.used_t[v as usize] = true;
        let flow = if refine(st, &mut next, work).is_break() {
            ControlFlow::Break(())
        } else if any_row_empty(&next, np, nt) {
            ControlFlow::Continue(())
        } else {
            search(st, depth + 1, next, work, driver)
        };
        st.core_p[u as usize] = None;
        st.used_t[v as usize] = false;
        flow?;
    }
    ControlFlow::Continue(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_valid_embedding;
    use crate::vf2::Vf2;

    fn path(labels: &[u32]) -> LabeledGraph {
        let edges: Vec<(u32, u32)> = (0..labels.len() as u32 - 1).map(|i| (i, i + 1)).collect();
        LabeledGraph::from_parts(labels.to_vec(), &edges)
    }

    #[test]
    fn agrees_with_vf2() {
        let cases = [
            (path(&[0, 1, 0]), path(&[0, 1, 0, 1])),
            (path(&[0, 0]), path(&[1, 1])),
            (
                LabeledGraph::from_parts(vec![0, 0, 0], &[(0, 1), (1, 2), (2, 0)]),
                path(&[0, 0, 0, 0]),
            ),
        ];
        for (p, t) in cases {
            assert_eq!(
                Ullmann::new().contains(&p, &t),
                Vf2::new().contains(&p, &t),
                "disagree on {p:?} vs {t:?}"
            );
        }
    }

    #[test]
    fn embedding_valid() {
        let p = LabeledGraph::from_parts(vec![2, 3, 2], &[(0, 1), (1, 2)]);
        let t = LabeledGraph::from_parts(
            vec![2, 3, 2, 3, 2],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)],
        );
        let emb = Ullmann::new().find_embedding(&p, &t).unwrap();
        assert!(is_valid_embedding(&p, &t, &emb));
    }

    #[test]
    fn counting_matches_vf2() {
        let p = path(&[0, 0]);
        let t = LabeledGraph::from_parts(vec![0, 0, 0], &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(
            Ullmann::new().count_embeddings(&p, &t, u64::MAX),
            Vf2::new().count_embeddings(&p, &t, u64::MAX),
        );
    }

    #[test]
    fn refinement_alone_can_reject() {
        // Pattern: square (4-cycle); target: star. Degrees pass for leaves
        // but refinement wipes the matrix without search.
        let square = LabeledGraph::from_parts(vec![0; 4], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let star = LabeledGraph::from_parts(vec![0; 5], &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert!(!Ullmann::new().contains(&square, &star));
    }

    #[test]
    fn budget_respected() {
        let p = LabeledGraph::from_parts(vec![0; 5], &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut te = vec![];
        for i in 0..9u32 {
            for j in i + 1..9 {
                te.push((i, j));
            }
        }
        let t = LabeledGraph::from_parts(vec![0; 9], &te);
        let out = Ullmann::new().contains_with(&p, &t, &MatchConfig::bounded(1));
        assert!(!out.complete);
    }
}
