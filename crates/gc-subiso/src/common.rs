//! Shared plumbing for the matcher implementations: quick-reject tests,
//! label statistics, and the search driver protocol.

use gc_graph::{Label, LabeledGraph, NodeId};
use std::collections::HashMap;
use std::ops::ControlFlow;

/// Cheap necessary conditions for `pattern ⊆ target`; returning `false`
/// proves non-containment without any search.
pub(crate) fn quick_reject(pattern: &LabeledGraph, target: &LabeledGraph) -> bool {
    if pattern.node_count() > target.node_count() || pattern.edge_count() > target.edge_count() {
        return true;
    }
    // Label multiset containment.
    let pc = label_counts(pattern);
    let tc = label_counts(target);
    for (l, n) in &pc {
        if tc.get(l).copied().unwrap_or(0) < *n {
            return true;
        }
    }
    // Sorted-descending degree dominance: the i-th largest pattern degree
    // must not exceed the i-th largest target degree (each pattern node
    // needs a distinct image of at least its own degree).
    let mut pd: Vec<usize> = pattern.nodes().map(|v| pattern.degree(v)).collect();
    let mut td: Vec<usize> = target.nodes().map(|v| target.degree(v)).collect();
    pd.sort_unstable_by(|a, b| b.cmp(a));
    td.sort_unstable_by(|a, b| b.cmp(a));
    pd.iter().zip(td.iter()).any(|(p, t)| p > t)
}

/// Label → occurrence count.
pub(crate) fn label_counts(g: &LabeledGraph) -> HashMap<Label, u32> {
    let mut m = HashMap::with_capacity(g.node_count().min(64));
    for &l in g.labels() {
        *m.entry(l).or_insert(0) += 1;
    }
    m
}

/// Sorted multiset of the labels of `v`'s neighbours.
pub(crate) fn neighbor_labels_sorted(g: &LabeledGraph, v: NodeId) -> Vec<Label> {
    let mut ls: Vec<Label> = g.neighbors(v).iter().map(|&w| g.label(w)).collect();
    ls.sort_unstable();
    ls
}

/// Multiset containment over two sorted slices: every element of `a` (with
/// multiplicity) appears in `b`.
pub(crate) fn sorted_multiset_contained(a: &[Label], b: &[Label]) -> bool {
    let mut j = 0usize;
    for &x in a {
        // advance j to the first b element >= x
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j >= b.len() || b[j] != x {
            return false;
        }
        j += 1;
    }
    true
}

/// What a search driver should do after an embedding is reported.
pub(crate) enum Found {
    /// Stop the search (decision / first-embedding mode).
    Stop,
    /// Keep enumerating (count mode, below the limit).
    Continue,
}

/// Budget-aware step counter shared by all searches.
pub(crate) struct Work {
    pub nodes: u64,
    budget: Option<u64>,
    pub exhausted: bool,
}

impl Work {
    pub fn new(budget: Option<u64>) -> Self {
        Work {
            nodes: 0,
            budget,
            exhausted: false,
        }
    }

    /// Counts one recursion step; returns `Break` when the budget trips.
    #[inline]
    pub fn step(&mut self) -> ControlFlow<()> {
        self.nodes += 1;
        if let Some(b) = self.budget {
            if self.nodes > b {
                self.exhausted = true;
                return ControlFlow::Break(());
            }
        }
        ControlFlow::Continue(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_reject_catches_size_and_labels() {
        let small = LabeledGraph::from_parts(vec![0, 1], &[(0, 1)]);
        let big = LabeledGraph::from_parts(vec![0, 1, 2], &[(0, 1), (1, 2)]);
        assert!(quick_reject(&big, &small)); // more nodes than target
        let wrong_label = LabeledGraph::from_parts(vec![9, 1], &[(0, 1)]);
        assert!(quick_reject(&wrong_label, &big));
        assert!(!quick_reject(&small, &big));
    }

    #[test]
    fn quick_reject_degree_dominance() {
        // Star with 3 leaves needs a target node of degree >= 3.
        let star = LabeledGraph::from_parts(vec![0, 0, 0, 0], &[(0, 1), (0, 2), (0, 3)]);
        let path = LabeledGraph::from_parts(vec![0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3)]);
        assert!(quick_reject(&star, &path));
    }

    #[test]
    fn multiset_containment() {
        assert!(sorted_multiset_contained(&[1, 2, 2], &[1, 2, 2, 3]));
        assert!(!sorted_multiset_contained(&[2, 2, 2], &[1, 2, 2, 3]));
        assert!(sorted_multiset_contained(&[], &[1]));
        assert!(!sorted_multiset_contained(&[1], &[]));
    }

    #[test]
    fn work_budget_trips() {
        let mut w = Work::new(Some(2));
        assert!(w.step().is_continue());
        assert!(w.step().is_continue());
        assert!(w.step().is_break());
        assert!(w.exhausted);
        assert_eq!(w.nodes, 3);
    }

    #[test]
    fn work_unbounded() {
        let mut w = Work::new(None);
        for _ in 0..1000 {
            assert!(w.step().is_continue());
        }
        assert!(!w.exhausted);
    }
}
