//! Subgraph isomorphism algorithms for GraphCache.
//!
//! The paper bundles GraphCache with three well-established SI methods —
//! VF2 \[Cordella et al. 2004\], a modified VF2 ("VF2+") and GraphQL
//! \[He & Singh 2008\] — and uses them both as standalone Method M instances
//! and as the verifiers of the FTV methods. This crate implements all three
//! plus Ullmann's algorithm (used as an independent referee in property
//! tests).
//!
//! All matchers solve the **decision** version of non-induced, vertex-
//! labelled, undirected subgraph isomorphism (`g ⊆ G` of paper §3) and can
//! also enumerate embeddings. Each search counts its recursion steps
//! ("nodes expanded"), giving a deterministic work measure used by the
//! deterministic cost model, and accepts an optional budget so pathological
//! instances cannot hang a benchmark run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod common;
pub mod cost;
mod graphql;
mod ullmann;
mod vf2;
mod vf2_plus;

pub use graphql::GraphQl;
pub use ullmann::Ullmann;
pub use vf2::Vf2;
pub use vf2_plus::Vf2Plus;

use gc_graph::{LabeledGraph, NodeId};

/// Search limits for a single sub-iso test.
#[derive(Debug, Clone, Copy, Default)]
pub struct MatchConfig {
    /// Maximum number of recursion steps ("nodes expanded") before the
    /// search gives up. `None` means unbounded. When the budget trips, the
    /// outcome reports `complete == false` and `found == false`.
    pub budget: Option<u64>,
}

impl MatchConfig {
    /// Unbounded search.
    pub const UNBOUNDED: MatchConfig = MatchConfig { budget: None };

    /// Search bounded to `budget` recursion steps.
    pub fn bounded(budget: u64) -> Self {
        MatchConfig {
            budget: Some(budget),
        }
    }
}

/// Outcome of a single sub-iso decision test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchOutcome {
    /// Whether an embedding of the pattern into the target was found.
    pub found: bool,
    /// False when the search aborted on budget exhaustion before reaching a
    /// decision; `found` is then necessarily `false`.
    pub complete: bool,
    /// Number of recursion steps performed — the deterministic work measure.
    pub nodes_expanded: u64,
}

/// Aggregate counters over many sub-iso tests (the Statistics Monitor feeds
/// on these; paper §5.2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Number of decision tests executed.
    pub tests: u64,
    /// Number of tests that found an embedding.
    pub positives: u64,
    /// Total recursion steps across all tests.
    pub nodes_expanded: u64,
    /// Number of tests that hit the budget.
    pub incomplete: u64,
}

impl MatchStats {
    /// Folds one outcome into the counters.
    pub fn record(&mut self, o: MatchOutcome) {
        self.tests += 1;
        self.positives += o.found as u64;
        self.nodes_expanded += o.nodes_expanded;
        self.incomplete += (!o.complete) as u64;
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &MatchStats) {
        self.tests += other.tests;
        self.positives += other.positives;
        self.nodes_expanded += other.nodes_expanded;
        self.incomplete += other.incomplete;
    }
}

/// A subgraph-isomorphism algorithm.
///
/// Implementations must be deterministic: the same `(pattern, target)` pair
/// always produces the same outcome and the same `nodes_expanded` count.
pub trait Matcher: Send + Sync {
    /// Short algorithm name as used in the paper ("VF2", "VF2+", "GQL", …).
    fn name(&self) -> &'static str;

    /// Decision test with explicit limits.
    fn contains_with(
        &self,
        pattern: &LabeledGraph,
        target: &LabeledGraph,
        cfg: &MatchConfig,
    ) -> MatchOutcome;

    /// Unbounded decision test: is `pattern ⊆ target`?
    fn contains(&self, pattern: &LabeledGraph, target: &LabeledGraph) -> bool {
        self.contains_with(pattern, target, &MatchConfig::UNBOUNDED)
            .found
    }

    /// Returns one embedding as a mapping `pattern node → target node`, if
    /// any exists.
    fn find_embedding(&self, pattern: &LabeledGraph, target: &LabeledGraph) -> Option<Vec<NodeId>>;

    /// Counts embeddings up to `limit` (use `u64::MAX` for all). Two
    /// embeddings differ when any pattern node maps to a different target
    /// node — automorphisms of the pattern are counted separately, matching
    /// the usual "matching problem" semantics (paper §2).
    fn count_embeddings(&self, pattern: &LabeledGraph, target: &LabeledGraph, limit: u64) -> u64;
}

/// The matcher implementations shipped with GraphCache, as a plain enum for
/// configuration plumbing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatcherKind {
    /// Vanilla VF2 (used by several FTV implementations; paper §7.1).
    Vf2,
    /// VF2 with rarity-driven static ordering and label-aware lookahead,
    /// standing in for the paper's "VF2+".
    Vf2Plus,
    /// GraphQL-style matching (candidate refinement + backtracking).
    GraphQl,
    /// Ullmann's algorithm (extra baseline / property-test referee).
    Ullmann,
}

impl MatcherKind {
    /// Instantiates the matcher.
    pub fn build(self) -> Box<dyn Matcher> {
        match self {
            MatcherKind::Vf2 => Box::new(Vf2::new()),
            MatcherKind::Vf2Plus => Box::new(Vf2Plus::new()),
            MatcherKind::GraphQl => Box::new(GraphQl::new()),
            MatcherKind::Ullmann => Box::new(Ullmann::new()),
        }
    }

    /// All shipped matchers (useful for agreement tests and benches).
    pub const ALL: [MatcherKind; 4] = [
        MatcherKind::Vf2,
        MatcherKind::Vf2Plus,
        MatcherKind::GraphQl,
        MatcherKind::Ullmann,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            MatcherKind::Vf2 => "VF2",
            MatcherKind::Vf2Plus => "VF2+",
            MatcherKind::GraphQl => "GQL",
            MatcherKind::Ullmann => "Ullmann",
        }
    }
}

/// Verifies that an explicit mapping is a valid non-induced embedding —
/// shared by tests and by the matchers' debug assertions.
pub fn is_valid_embedding(
    pattern: &LabeledGraph,
    target: &LabeledGraph,
    mapping: &[NodeId],
) -> bool {
    if mapping.len() != pattern.node_count() {
        return false;
    }
    // Injectivity.
    let mut seen = vec![false; target.node_count()];
    for &t in mapping {
        if t as usize >= target.node_count() || seen[t as usize] {
            return false;
        }
        seen[t as usize] = true;
    }
    // Labels.
    for u in pattern.nodes() {
        if pattern.label(u) != target.label(mapping[u as usize]) {
            return false;
        }
    }
    // Edges (non-induced: only pattern edges must be present).
    for (u, v) in pattern.edges() {
        if !target.has_edge(mapping[u as usize], mapping[v as usize]) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn match_stats_accumulate() {
        let mut s = MatchStats::default();
        s.record(MatchOutcome {
            found: true,
            complete: true,
            nodes_expanded: 10,
        });
        s.record(MatchOutcome {
            found: false,
            complete: false,
            nodes_expanded: 5,
        });
        assert_eq!(s.tests, 2);
        assert_eq!(s.positives, 1);
        assert_eq!(s.nodes_expanded, 15);
        assert_eq!(s.incomplete, 1);

        let mut t = MatchStats::default();
        t.merge(&s);
        t.merge(&s);
        assert_eq!(t.tests, 4);
    }

    #[test]
    fn matcher_kind_builds_all() {
        for kind in MatcherKind::ALL {
            let m = kind.build();
            assert_eq!(m.name(), kind.name());
        }
    }

    #[test]
    fn embedding_validator() {
        let p = LabeledGraph::from_parts(vec![0, 1], &[(0, 1)]);
        let t = LabeledGraph::from_parts(vec![1, 0, 2], &[(0, 1), (1, 2)]);
        assert!(is_valid_embedding(&p, &t, &[1, 0]));
        assert!(!is_valid_embedding(&p, &t, &[0, 1])); // wrong labels
        assert!(!is_valid_embedding(&p, &t, &[1, 1])); // not injective
        assert!(!is_valid_embedding(&p, &t, &[1])); // wrong arity
        assert!(!is_valid_embedding(&p, &t, &[1, 9])); // out of range
    }
}
