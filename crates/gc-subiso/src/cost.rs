//! The paper's sub-iso cost estimator (§5.2).
//!
//! GraphCache estimates the cost of a sub-iso test of query `g` (with `n`
//! nodes) against a dataset graph `G` (with `N ≥ n` nodes and `L` distinct
//! labels) as
//!
//! ```text
//! c(g, G) = N · N! / (L^(n+1) · (N − n)!)
//! ```
//!
//! i.e. the number of injective node assignments, discounted by the label
//! selectivity. The factorials overflow `f64` beyond trivial sizes, so the
//! estimate is computed in log-space and only exponentiated at the end,
//! saturating at `f64::MAX`.

use gc_graph::LabeledGraph;

/// Natural log of the falling factorial `N·(N−1)·…·(N−n+1) = N!/(N−n)!`.
fn ln_falling_factorial(n_big: u64, n_small: u64) -> f64 {
    debug_assert!(n_small <= n_big);
    ((n_big - n_small + 1)..=n_big)
        .map(|k| (k as f64).ln())
        .sum()
}

/// The paper's cost estimate `c(g, G)` given the raw parameters: `n` query
/// nodes, `cap_n` dataset-graph nodes, `labels` distinct labels in `G`.
///
/// Returns 0.0 when `cap_n < n` (the test would be trivially negative) and
/// saturates at `f64::MAX` instead of overflowing.
pub fn estimate_raw(n: u64, cap_n: u64, labels: u64) -> f64 {
    if cap_n < n {
        return 0.0;
    }
    let l = labels.max(1) as f64;
    // ln c = ln N + ln(N!/(N-n)!) - (n+1)·ln L
    let ln_c =
        (cap_n.max(1) as f64).ln() + ln_falling_factorial(cap_n, n) - (n as f64 + 1.0) * l.ln();
    if ln_c > f64::MAX.ln() {
        f64::MAX
    } else {
        ln_c.exp()
    }
}

/// The paper's cost estimate `c(g, G)` for a query/dataset-graph pair.
pub fn estimate(query: &LabeledGraph, dataset_graph: &LabeledGraph) -> f64 {
    estimate_raw(
        query.node_count() as u64,
        dataset_graph.node_count() as u64,
        dataset_graph.distinct_label_count() as u64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_closed_form_small() {
        // N=5, n=3, L=2: c = 5 * 5!/2! / 2^4 = 5 * 60 / 16 = 18.75
        let c = estimate_raw(3, 5, 2);
        assert!((c - 18.75).abs() < 1e-9, "c = {c}");
    }

    #[test]
    fn zero_when_query_larger() {
        assert_eq!(estimate_raw(10, 5, 3), 0.0);
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let c = estimate_raw(170, 10_000, 1);
        assert!(c.is_finite());
        assert!(c > 0.0);
    }

    #[test]
    fn monotone_in_target_size() {
        let small = estimate_raw(4, 10, 3);
        let large = estimate_raw(4, 100, 3);
        assert!(large > small);
    }

    #[test]
    fn more_labels_cheaper() {
        let few = estimate_raw(4, 50, 2);
        let many = estimate_raw(4, 50, 20);
        assert!(many < few);
    }

    #[test]
    fn graph_level_wrapper() {
        let q = LabeledGraph::from_parts(vec![0, 1, 0], &[(0, 1), (1, 2)]);
        let g = LabeledGraph::from_parts(vec![0, 1, 0, 1, 0], &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let c = estimate(&q, &g);
        // N=5, n=3, L=2 → 18.75 as above.
        assert!((c - 18.75).abs() < 1e-9);
    }

    #[test]
    fn empty_query_cost_positive() {
        let q = LabeledGraph::empty();
        let g = LabeledGraph::from_parts(vec![0, 1], &[(0, 1)]);
        let c = estimate(&q, &g);
        assert!(c.is_finite() && c > 0.0);
    }
}
