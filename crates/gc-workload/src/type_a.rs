//! Type A workloads (paper §7.2): BFS-extracted queries with configurable
//! selection skew.
//!
//! "First, a source graph is selected randomly from the dataset graphs;
//! then, a node is selected randomly in said graph; finally, a query size
//! is selected uniformly at random from several pre-defined sizes and a BFS
//! is performed starting from the selected node. […] we have used two
//! different distributions; namely, Uniform (U) and Zipf (Z)" — giving the
//! workload categories UU, ZU and ZZ (first letter: graph selection;
//! second: node selection).

use crate::workload::{QueryOrigin, Workload, WorkloadQuery};
use gc_graph::random::bfs_edge_subgraph;
use gc_graph::zipf::Selector;
use gc_graph::GraphDataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a Type A workload.
#[derive(Debug, Clone)]
pub struct TypeAConfig {
    /// Distribution for choosing the source graph.
    pub graph_selector: Selector,
    /// Distribution for choosing the BFS start node within the graph.
    pub node_selector: Selector,
    /// Query sizes in edges, sampled uniformly (paper: 4–20 for AIDS/PDBS,
    /// 20–40 for PCM/Synthetic).
    pub sizes: Vec<usize>,
    /// Number of queries to generate.
    pub count: usize,
    /// RNG seed.
    pub seed: u64,
}

impl TypeAConfig {
    fn with_selectors(graph: Selector, node: Selector, name_hint: &str) -> Self {
        let _ = name_hint;
        TypeAConfig {
            graph_selector: graph,
            node_selector: node,
            sizes: vec![4, 8, 12, 16, 20],
            count: 1_000,
            seed: 42,
        }
    }

    /// "UU": uniform graph + uniform node selection (the caching worst
    /// case the paper highlights).
    pub fn uu() -> Self {
        Self::with_selectors(Selector::Uniform, Selector::Uniform, "UU")
    }

    /// "ZU": Zipf(α) graph selection, uniform node selection.
    pub fn zu(alpha: f64) -> Self {
        Self::with_selectors(Selector::Zipf(alpha), Selector::Uniform, "ZU")
    }

    /// "ZZ": Zipf(α) at both levels (the most cache-friendly workload).
    pub fn zz(alpha: f64) -> Self {
        Self::with_selectors(Selector::Zipf(alpha), Selector::Zipf(alpha), "ZZ")
    }

    /// Workload name per the paper's convention ("UU", "ZU", "ZZ").
    pub fn name(&self) -> String {
        format!(
            "{}{}",
            self.graph_selector.code(),
            self.node_selector.code()
        )
    }

    /// Sets the query sizes (builder style).
    pub fn sizes(mut self, sizes: Vec<usize>) -> Self {
        self.sizes = sizes;
        self
    }

    /// Sets the query count (builder style).
    pub fn count(mut self, count: usize) -> Self {
        self.count = count;
        self
    }

    /// Sets the RNG seed (builder style).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Generates a Type A workload from a dataset.
///
/// # Panics
/// If the dataset is empty or `sizes` is empty.
pub fn generate_type_a(dataset: &GraphDataset, cfg: &TypeAConfig) -> Workload {
    assert!(
        !dataset.is_empty(),
        "cannot extract queries from an empty dataset"
    );
    assert!(!cfg.sizes.is_empty(), "need at least one query size");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let graph_sampler = cfg.graph_selector.build(dataset.len());
    let mut queries = Vec::with_capacity(cfg.count);
    let mut guard = 0usize;
    let guard_cap = cfg.count * 200 + 1000;
    while queries.len() < cfg.count && guard < guard_cap {
        guard += 1;
        let gid = graph_sampler.sample(&mut rng);
        let g = dataset.graph(gc_graph::GraphId(gid as u32));
        if g.node_count() == 0 {
            continue;
        }
        // The node sampler depends on the chosen graph's size; Zipf tables
        // are cached per distinct size to keep generation cheap.
        let node = cfg.node_selector.build(g.node_count()).sample(&mut rng) as u32;
        let size = cfg.sizes[rng.gen_range(0..cfg.sizes.len())];
        if let Some(sub) = bfs_edge_subgraph(g, node, size) {
            queries.push(WorkloadQuery {
                graph: sub,
                origin: QueryOrigin::Extracted,
            });
        }
    }
    assert!(
        queries.len() == cfg.count,
        "query extraction starved: got {} of {} (dataset too small or disconnected?)",
        queries.len(),
        cfg.count
    );
    Workload {
        name: cfg.name(),
        queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;
    use gc_subiso::{Matcher, Vf2};

    fn dataset() -> GraphDataset {
        datasets::aids_like(0.05, 11)
    }

    #[test]
    fn names() {
        assert_eq!(TypeAConfig::uu().name(), "UU");
        assert_eq!(TypeAConfig::zu(1.4).name(), "ZU");
        assert_eq!(TypeAConfig::zz(1.4).name(), "ZZ");
    }

    #[test]
    fn queries_have_requested_sizes() {
        let d = dataset();
        let cfg = TypeAConfig::uu().sizes(vec![4, 8]).count(50).seed(3);
        let w = generate_type_a(&d, &cfg);
        assert_eq!(w.len(), 50);
        for q in &w.queries {
            let m = q.graph.edge_count();
            assert!(m == 4 || m == 8 || m < 8, "size {m} unexpected");
            assert!(q.graph.is_connected());
        }
    }

    #[test]
    fn extracted_queries_always_answerable() {
        // The defining property of Type A: every query is a subgraph of at
        // least one dataset graph.
        let d = dataset();
        let cfg = TypeAConfig::zz(1.4).count(25).seed(5);
        let w = generate_type_a(&d, &cfg);
        let vf2 = Vf2::new();
        for q in &w.queries {
            assert!(
                d.graphs().iter().any(|g| vf2.contains(&q.graph, g)),
                "extracted query has no answer"
            );
        }
    }

    #[test]
    fn zipf_graph_selection_repeats_sources() {
        // ZZ with strong skew reuses the same source graphs, which is what
        // makes the workload cache-friendly. Indirect check: many duplicate
        // query graphs appear.
        let d = dataset();
        let take = |cfg: TypeAConfig| {
            let w = generate_type_a(&d, &cfg.count(200).seed(9));
            let mut uniq: Vec<&gc_graph::LabeledGraph> = Vec::new();
            for q in &w.queries {
                if !uniq.iter().any(|u| **u == q.graph) {
                    uniq.push(&q.graph);
                }
            }
            uniq.len()
        };
        let zz = take(TypeAConfig::zz(1.7));
        let uu = take(TypeAConfig::uu());
        assert!(
            zz < uu,
            "ZZ must produce more duplicates than UU ({zz} vs {uu})"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let d = dataset();
        let cfg = TypeAConfig::zu(1.4).count(20).seed(77);
        let a = generate_type_a(&d, &cfg);
        let b = generate_type_a(&d, &cfg);
        for (x, y) in a.queries.iter().zip(&b.queries) {
            assert_eq!(x.graph, y.graph);
        }
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        generate_type_a(&GraphDataset::default(), &TypeAConfig::uu());
    }
}
