//! Synthetic stand-ins for the paper's datasets (§7.2).
//!
//! The paper's real datasets are not redistributable here, so each is
//! replaced by a generator reproducing its *published shape statistics* —
//! the properties GraphCache's behaviour actually depends on:
//!
//! | dataset   | graphs | nodes avg (std, max)  | deg  | labels | character |
//! |-----------|--------|-----------------------|------|--------|-----------|
//! | AIDS      | 40,000 | 45 (22, 245)          | 2.09 | ~51    | many small sparse molecules |
//! | PDBS      | 600    | 2,939 (3,215, 16,341) | 2.13 | ~10    | few, very large, sparse |
//! | PCM       | 200    | 377 (187, 883)        | 22.4 | ~20    | few, dense (contact maps) |
//! | Synthetic | 1,000  | 892 (417, 7,135)      | 19.5 | ~20    | 5× PCM count, 2–3× PCM size |
//!
//! `DatasetProfile::paper_scale()` carries those numbers; `bench()` returns
//! the laptop-scale defaults the experiment harness uses (identical shape,
//! smaller counts — NP-complete verification makes full scale a cluster
//! job, cf. DESIGN.md §4/§7). Both scale linearly via [`DatasetProfile::scaled`].

use gc_graph::random::{random_connected_graph, sample_normal_clamped, LabelModel};
use gc_graph::{GraphDataset, LabeledGraph};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Shape parameters of a generated dataset.
#[derive(Debug, Clone)]
pub struct DatasetProfile {
    /// Dataset name ("AIDS", "PDBS", "PCM", "Synthetic").
    pub name: &'static str,
    /// Number of graphs.
    pub graph_count: usize,
    /// Mean node count per graph.
    pub avg_nodes: f64,
    /// Standard deviation of node counts.
    pub std_nodes: f64,
    /// Smallest allowed node count.
    pub min_nodes: usize,
    /// Largest allowed node count.
    pub max_nodes: usize,
    /// Target average degree.
    pub avg_degree: f64,
    /// Label domain size.
    pub labels: u32,
    /// Zipf skew of the label distribution (`None` = uniform). Chemical
    /// datasets are heavily skewed (carbon dominates AIDS).
    pub label_skew: Option<f64>,
}

impl DatasetProfile {
    /// AIDS at published scale: 40,000 small sparse molecule graphs.
    pub fn aids_paper() -> Self {
        DatasetProfile {
            name: "AIDS",
            graph_count: 40_000,
            avg_nodes: 45.0,
            std_nodes: 22.0,
            min_nodes: 8,
            max_nodes: 245,
            avg_degree: 2.09,
            labels: 51,
            label_skew: Some(2.0),
        }
    }

    /// PDBS at published scale: 600 large sparse macromolecule graphs.
    pub fn pdbs_paper() -> Self {
        DatasetProfile {
            name: "PDBS",
            graph_count: 600,
            avg_nodes: 2_939.0,
            std_nodes: 3_215.0,
            min_nodes: 100,
            max_nodes: 16_341,
            avg_degree: 2.13,
            labels: 10,
            label_skew: Some(1.6),
        }
    }

    /// PCM at published scale: 200 dense protein contact maps.
    pub fn pcm_paper() -> Self {
        DatasetProfile {
            name: "PCM",
            graph_count: 200,
            avg_nodes: 377.0,
            std_nodes: 187.0,
            min_nodes: 60,
            max_nodes: 883,
            avg_degree: 22.39,
            labels: 20,
            label_skew: None,
        }
    }

    /// Synthetic at published scale: 5× PCM's graph count, 2–3× its size,
    /// similar density (the paper built it with GraphGen).
    pub fn synthetic_paper() -> Self {
        DatasetProfile {
            name: "Synthetic",
            graph_count: 1_000,
            avg_nodes: 892.0,
            std_nodes: 417.0,
            min_nodes: 150,
            max_nodes: 7_135,
            avg_degree: 19.52,
            labels: 20,
            label_skew: None,
        }
    }

    /// AIDS shape at bench scale.
    pub fn aids() -> Self {
        DatasetProfile {
            graph_count: 2_500,
            max_nodes: 160,
            ..Self::aids_paper()
        }
    }

    /// PDBS shape at bench scale: fewer but much larger sparse graphs
    /// (node counts scaled ~10×, preserving the AIDS:PDBS size ratio
    /// direction).
    pub fn pdbs() -> Self {
        DatasetProfile {
            graph_count: 200,
            avg_nodes: 600.0,
            std_nodes: 350.0,
            min_nodes: 100,
            max_nodes: 1_800,
            ..Self::pdbs_paper()
        }
    }

    /// PCM shape at bench scale: few, dense graphs. Density is the active
    /// ingredient for the admission-control experiments (Fig. 9).
    pub fn pcm() -> Self {
        DatasetProfile {
            graph_count: 60,
            avg_nodes: 110.0,
            std_nodes: 45.0,
            min_nodes: 40,
            max_nodes: 240,
            avg_degree: 12.0,
            ..Self::pcm_paper()
        }
    }

    /// Synthetic shape at bench scale: 3× the bench PCM's count, 2× its
    /// size, similar density — preserving the paper's PCM↔Synthetic
    /// relationship.
    pub fn synthetic() -> Self {
        DatasetProfile {
            graph_count: 180,
            avg_nodes: 220.0,
            std_nodes: 90.0,
            min_nodes: 70,
            max_nodes: 480,
            avg_degree: 10.0,
            ..Self::synthetic_paper()
        }
    }

    /// Looks up a bench-scale profile by its CLI name (`"aids"`, `"pdbs"`,
    /// `"pcm"`, `"synthetic"`, case-insensitive) — the single source for
    /// `gc generate --profile` and scenario files.
    pub fn by_name(name: &str) -> Option<DatasetProfile> {
        match name.to_ascii_lowercase().as_str() {
            "aids" => Some(Self::aids()),
            "pdbs" => Some(Self::pdbs()),
            "pcm" => Some(Self::pcm()),
            "synthetic" => Some(Self::synthetic()),
            _ => None,
        }
    }

    /// Scales graph count by `scale` (≥ 0.05), leaving per-graph shape
    /// untouched. Used by the harness's `--scale` / `GC_SCALE` knob.
    pub fn scaled(mut self, scale: f64) -> Self {
        let s = scale.max(0.05);
        self.graph_count = ((self.graph_count as f64 * s).round() as usize).max(4);
        self
    }

    /// Generates the dataset deterministically from a seed.
    pub fn generate(&self, seed: u64) -> GraphDataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let label_model = match self.label_skew {
            Some(a) => LabelModel::zipf(self.labels, a),
            None => LabelModel::uniform(self.labels),
        };
        let sampler = label_model.sampler();
        let graphs: Vec<LabeledGraph> = (0..self.graph_count)
            .map(|_| {
                let n = sample_normal_clamped(
                    &mut rng,
                    self.avg_nodes,
                    self.std_nodes,
                    self.min_nodes,
                    self.max_nodes,
                );
                random_connected_graph(&mut rng, n, self.avg_degree, &sampler)
            })
            .collect();
        GraphDataset::new(graphs)
    }
}

/// Bench-scale AIDS stand-in (see [`DatasetProfile::aids`]).
pub fn aids_like(scale: f64, seed: u64) -> GraphDataset {
    DatasetProfile::aids().scaled(scale).generate(seed)
}

/// Bench-scale PDBS stand-in.
pub fn pdbs_like(scale: f64, seed: u64) -> GraphDataset {
    DatasetProfile::pdbs().scaled(scale).generate(seed)
}

/// Bench-scale PCM stand-in.
pub fn pcm_like(scale: f64, seed: u64) -> GraphDataset {
    DatasetProfile::pcm().scaled(scale).generate(seed)
}

/// Bench-scale Synthetic stand-in.
pub fn synthetic_like(scale: f64, seed: u64) -> GraphDataset {
    DatasetProfile::synthetic().scaled(scale).generate(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aids_shape_statistics() {
        let d = DatasetProfile::aids().scaled(0.2).generate(1);
        let s = d.stats();
        assert_eq!(s.graph_count, DatasetProfile::aids().graph_count / 5);
        assert!(
            (s.avg_nodes - 45.0).abs() < 6.0,
            "avg nodes {} off-profile",
            s.avg_nodes
        );
        assert!(
            (s.avg_degree - 2.09).abs() < 0.4,
            "avg degree {} off-profile",
            s.avg_degree
        );
        assert!(s.distinct_labels <= 51);
        assert!(s.distinct_labels > 10, "label diversity collapsed");
    }

    #[test]
    fn pcm_denser_than_aids() {
        let aids = DatasetProfile::aids().scaled(0.1).generate(2);
        let pcm = DatasetProfile::pcm().scaled(0.5).generate(2);
        assert!(pcm.stats().avg_degree > 3.0 * aids.stats().avg_degree);
    }

    #[test]
    fn pdbs_fewer_larger_than_aids() {
        let aids = DatasetProfile::aids().scaled(0.1).generate(3);
        let pdbs = DatasetProfile::pdbs().scaled(0.5).generate(3);
        assert!(pdbs.stats().graph_count < aids.stats().graph_count);
        assert!(pdbs.stats().avg_nodes > 3.0 * aids.stats().avg_nodes);
    }

    #[test]
    fn synthetic_matches_paper_relation_to_pcm() {
        let pcm = DatasetProfile::pcm();
        let syn = DatasetProfile::synthetic();
        assert!(syn.graph_count >= 2 * pcm.graph_count);
        assert!(syn.avg_nodes >= 1.8 * pcm.avg_nodes);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = aids_like(0.05, 7);
        let b = aids_like(0.05, 7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.graphs().iter().zip(b.graphs()) {
            assert_eq!(x, y);
        }
        let c = aids_like(0.05, 8);
        assert_ne!(
            a.graphs()[0].labels(),
            c.graphs()[0].labels(),
            "different seed must differ"
        );
    }

    #[test]
    fn all_graphs_connected() {
        for d in [
            aids_like(0.05, 1),
            pdbs_like(0.1, 1),
            pcm_like(0.2, 1),
            synthetic_like(0.05, 1),
        ] {
            assert!(d.graphs().iter().all(|g| g.is_connected()));
        }
    }

    #[test]
    fn by_name_resolves_every_cli_profile() {
        for name in ["aids", "pdbs", "pcm", "synthetic", "AIDS"] {
            let p = DatasetProfile::by_name(name).expect(name);
            assert_eq!(p.name.to_ascii_lowercase(), name.to_ascii_lowercase());
        }
        assert!(DatasetProfile::by_name("nope").is_none());
    }

    #[test]
    fn scaled_floor() {
        let p = DatasetProfile::aids().scaled(0.0);
        assert!(p.graph_count >= 4);
    }
}
