//! Type B workloads (paper §7.2): pool-based generation with no-answer
//! queries.
//!
//! Two pools per configuration:
//!
//! * the **answerable pool**: queries extracted by a random walk from a
//!   start node chosen uniformly *across all nodes of all dataset graphs*;
//! * the **no-answer pool**: answerable-style queries whose node labels are
//!   repeatedly randomised "until the resulting query has a non-empty
//!   candidate set but an empty answer set" — i.e. they survive filtering
//!   yet match nothing, the worst case for FTV methods.
//!
//! The workload then flips a biased coin per query (no-answer probability
//! 0%, 20% or 50%) and Zipf-selects a query from the chosen pool.

use crate::workload::{QueryOrigin, Workload, WorkloadQuery};
use gc_graph::random::random_walk_subgraph;
use gc_graph::zipf::ZipfSampler;
use gc_graph::{GraphDataset, GraphId, Label, LabeledGraph};
use gc_index::{FilterIndex, GgsxConfig, PathTrie};
use gc_subiso::{MatchConfig, Matcher, Vf2};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Budget for the no-answer certification tests. Dense datasets (PCM,
/// Synthetic) can make a single adversarial relabelled query arbitrarily
/// expensive to refute; an incomplete test conservatively counts as "has an
/// answer" and the candidate relabelling is discarded, keeping pool
/// construction bounded while every admitted no-answer query remains
/// *provably* unanswerable.
const CERTIFY_BUDGET: u64 = 2_000_000;

/// Configuration of a Type B workload.
#[derive(Debug, Clone)]
pub struct TypeBConfig {
    /// Query sizes in edges.
    pub sizes: Vec<usize>,
    /// Answerable pool size (paper: 10,000; bench default scaled down).
    pub answer_pool: usize,
    /// No-answer pool size (paper: 3,000; bench default scaled down).
    pub no_answer_pool: usize,
    /// Probability of drawing from the no-answer pool (0.0 / 0.2 / 0.5).
    pub no_answer_prob: f64,
    /// Zipf α for within-pool selection (paper default: 1.4).
    pub zipf_alpha: f64,
    /// Number of queries in the workload.
    pub count: usize,
    /// RNG seed.
    pub seed: u64,
    /// Relabelling attempts per base query before drawing a fresh base.
    pub relabel_attempts: usize,
}

impl Default for TypeBConfig {
    fn default() -> Self {
        TypeBConfig {
            sizes: vec![4, 8, 12, 16, 20],
            answer_pool: 150,
            no_answer_pool: 50,
            no_answer_prob: 0.2,
            zipf_alpha: 1.4,
            count: 1_000,
            seed: 42,
            relabel_attempts: 40,
        }
    }
}

impl TypeBConfig {
    /// The paper's "0%" / "20%" / "50%" workload categories.
    pub fn with_no_answer_prob(p: f64) -> Self {
        TypeBConfig {
            no_answer_prob: p,
            ..Default::default()
        }
    }

    /// Workload name per the paper's convention.
    pub fn name(&self) -> String {
        format!("{}%", (self.no_answer_prob * 100.0).round() as u32)
    }

    /// Sets query sizes (builder style).
    pub fn sizes(mut self, sizes: Vec<usize>) -> Self {
        self.sizes = sizes;
        self
    }

    /// Sets workload length (builder style).
    pub fn count(mut self, count: usize) -> Self {
        self.count = count;
        self
    }

    /// Sets the Zipf α (builder style; Fig. 7 sweeps 1.1 / 1.4 / 1.7).
    pub fn zipf(mut self, alpha: f64) -> Self {
        self.zipf_alpha = alpha;
        self
    }

    /// Sets the seed (builder style).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets pool sizes (builder style).
    pub fn pools(mut self, answerable: usize, no_answer: usize) -> Self {
        self.answer_pool = answerable;
        self.no_answer_pool = no_answer;
        self
    }
}

/// Generates a Type B workload. Internally builds a GGSX filter and a VF2
/// matcher to certify the no-answer pool ("non-empty candidate set, empty
/// answer set").
///
/// # Panics
/// If the dataset is empty, `sizes` is empty, or pool construction starves.
pub fn generate_type_b(dataset: &GraphDataset, cfg: &TypeBConfig) -> Workload {
    assert!(
        !dataset.is_empty(),
        "cannot extract queries from an empty dataset"
    );
    assert!(!cfg.sizes.is_empty(), "need at least one query size");
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Start-node table: uniform across all nodes of all dataset graphs.
    let node_index: Vec<(GraphId, u32)> = dataset
        .iter()
        .flat_map(|(id, g)| g.nodes().map(move |v| (id, v)))
        .collect();
    assert!(!node_index.is_empty(), "dataset has no nodes");

    let mut answerable: Vec<LabeledGraph> = Vec::with_capacity(cfg.answer_pool);
    let mut guard = 0usize;
    let guard_cap = cfg.answer_pool * 200 + 1000;
    while answerable.len() < cfg.answer_pool && guard < guard_cap {
        guard += 1;
        if let Some(q) = draw_walk_query(dataset, &node_index, &cfg.sizes, &mut rng) {
            answerable.push(q);
        }
    }
    assert_eq!(answerable.len(), cfg.answer_pool, "answerable pool starved");

    // No-answer pool needs filtering + verification machinery.
    let no_answer = if cfg.no_answer_pool > 0 && cfg.no_answer_prob > 0.0 {
        build_no_answer_pool(dataset, &node_index, cfg, &mut rng)
    } else {
        Vec::new()
    };

    // Mix: biased coin between pools, Zipf within the pool.
    let zipf_a = ZipfSampler::new(answerable.len(), cfg.zipf_alpha);
    let zipf_n = (!no_answer.is_empty()).then(|| ZipfSampler::new(no_answer.len(), cfg.zipf_alpha));
    let mut queries = Vec::with_capacity(cfg.count);
    for _ in 0..cfg.count {
        let from_no_answer = zipf_n.is_some() && rng.gen::<f64>() < cfg.no_answer_prob;
        if from_no_answer {
            let z = zipf_n.as_ref().expect("checked above");
            queries.push(WorkloadQuery {
                graph: no_answer[z.sample(&mut rng)].clone(),
                origin: QueryOrigin::NoAnswer,
            });
        } else {
            queries.push(WorkloadQuery {
                graph: answerable[zipf_a.sample(&mut rng)].clone(),
                origin: QueryOrigin::Extracted,
            });
        }
    }
    Workload {
        name: cfg.name(),
        queries,
    }
}

fn draw_walk_query(
    dataset: &GraphDataset,
    node_index: &[(GraphId, u32)],
    sizes: &[usize],
    rng: &mut StdRng,
) -> Option<LabeledGraph> {
    let (gid, start) = node_index[rng.gen_range(0..node_index.len())];
    let size = sizes[rng.gen_range(0..sizes.len())];
    random_walk_subgraph(dataset.graph(gid), start, size, rng)
}

fn build_no_answer_pool(
    dataset: &GraphDataset,
    node_index: &[(GraphId, u32)],
    cfg: &TypeBConfig,
    rng: &mut StdRng,
) -> Vec<LabeledGraph> {
    let filter = PathTrie::build(dataset, GgsxConfig::default());
    let matcher = Vf2::new();
    // "Randomly selected labels from the dataset": sample from the label
    // *multiset* (frequency-weighted), not the bare domain — common labels
    // keep the candidate set non-empty while the exact structure fails.
    let labels: Vec<Label> = dataset
        .graphs()
        .iter()
        .flat_map(|g| g.labels().iter().copied())
        .collect();
    let mut pool: Vec<LabeledGraph> = Vec::with_capacity(cfg.no_answer_pool);
    let mut bases = 0usize;
    let base_cap = cfg.no_answer_pool * 60 + 400;
    'outer: while pool.len() < cfg.no_answer_pool && bases < base_cap {
        bases += 1;
        let Some(base) = draw_walk_query(dataset, node_index, &cfg.sizes, rng) else {
            continue;
        };
        // "we continuously relabel the nodes in the query with randomly
        // selected labels from the dataset, until the resulting query has a
        // non-empty candidate set but an empty answer set".
        for _ in 0..cfg.relabel_attempts {
            let relabelled = base.relabeled(|_, _| labels[rng.gen_range(0..labels.len())]);
            let candidates = filter.filter(&relabelled);
            if candidates.is_empty() {
                continue;
            }
            let certified_empty = candidates.iter().all(|&id| {
                let out = matcher.contains_with(
                    &relabelled,
                    dataset.graph(id),
                    &MatchConfig::bounded(CERTIFY_BUDGET),
                );
                !out.found && out.complete
            });
            if certified_empty {
                pool.push(relabelled);
                continue 'outer;
            }
        }
    }
    // Dense datasets make certified no-answer queries scarce (most
    // relabellings either fail filtering or genuinely match something); a
    // partial pool only shifts the realised mix ratio slightly, so degrade
    // gracefully rather than refusing to generate the workload.
    assert!(
        !pool.is_empty(),
        "no-answer pool completely starved after {bases} base draws"
    );
    if pool.len() < cfg.no_answer_pool {
        eprintln!(
            "[type_b] warning: no-answer pool filled {}/{} after {bases} base draws",
            pool.len(),
            cfg.no_answer_pool
        );
    }
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;

    fn dataset() -> GraphDataset {
        datasets::aids_like(0.05, 13)
    }

    fn small_cfg(p: f64) -> TypeBConfig {
        TypeBConfig::with_no_answer_prob(p)
            .pools(20, 8)
            .count(60)
            .sizes(vec![4, 8])
            .seed(5)
    }

    #[test]
    fn names() {
        assert_eq!(TypeBConfig::with_no_answer_prob(0.0).name(), "0%");
        assert_eq!(TypeBConfig::with_no_answer_prob(0.2).name(), "20%");
        assert_eq!(TypeBConfig::with_no_answer_prob(0.5).name(), "50%");
    }

    #[test]
    fn zero_percent_workload_all_answerable() {
        let d = dataset();
        let w = generate_type_b(&d, &small_cfg(0.0));
        assert_eq!(w.len(), 60);
        assert_eq!(w.no_answer_fraction(), 0.0);
    }

    #[test]
    fn mixed_workload_fraction_tracks_probability() {
        let d = dataset();
        let w = generate_type_b(&d, &small_cfg(0.5).count(400));
        let f = w.no_answer_fraction();
        assert!((f - 0.5).abs() < 0.12, "no-answer fraction {f}");
    }

    #[test]
    fn no_answer_queries_truly_unanswerable_but_filterable() {
        let d = dataset();
        let w = generate_type_b(&d, &small_cfg(0.5));
        let filter = PathTrie::build(&d, GgsxConfig::default());
        let vf2 = Vf2::new();
        for q in w
            .queries
            .iter()
            .filter(|q| q.origin == QueryOrigin::NoAnswer)
        {
            let cs = filter.filter(&q.graph);
            assert!(!cs.is_empty(), "no-answer query must pass filtering");
            assert!(
                cs.iter().all(|&id| !vf2.contains(&q.graph, d.graph(id))),
                "no-answer query matched a dataset graph"
            );
        }
    }

    #[test]
    fn answerable_queries_have_answers() {
        let d = dataset();
        let w = generate_type_b(&d, &small_cfg(0.0).count(30));
        let vf2 = Vf2::new();
        for q in &w.queries {
            assert!(d.graphs().iter().any(|g| vf2.contains(&q.graph, g)));
        }
    }

    #[test]
    fn zipf_selection_repeats_popular_queries() {
        let d = dataset();
        let w = generate_type_b(&d, &small_cfg(0.0).count(200));
        // With α = 1.4 over a 20-query pool, the head query dominates.
        let mut counts = std::collections::HashMap::new();
        for q in &w.queries {
            *counts.entry(q.graph.labels().to_vec()).or_insert(0usize) += 1;
        }
        let max = counts.values().max().copied().unwrap_or(0);
        assert!(max > 20, "head query repeated only {max} times");
    }

    #[test]
    fn deterministic_given_seed() {
        let d = dataset();
        let a = generate_type_b(&d, &small_cfg(0.2));
        let b = generate_type_b(&d, &small_cfg(0.2));
        for (x, y) in a.queries.iter().zip(&b.queries) {
            assert_eq!(x.graph, y.graph);
            assert_eq!(x.origin, y.origin);
        }
    }
}
