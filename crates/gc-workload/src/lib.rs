//! Dataset profiles and query workload generators (paper §7.2).
//!
//! The paper evaluates GraphCache on three real datasets (AIDS, PDBS, PCM)
//! and one synthetic dataset, with two workload generator families:
//!
//! * **Type A** — extract a BFS subgraph from a randomly chosen dataset
//!   graph/start node, with Uniform or Zipf selection at both levels
//!   (workloads "UU", "ZU", "ZZ");
//! * **Type B** — pre-build pools of answerable (random-walk extracted) and
//!   *no-answer* (relabelled until unmatchable) queries, then mix them with
//!   a biased coin (0% / 20% / 50% no-answer) and Zipf-select within pools.
//!
//! The real datasets are not redistributable, so [`datasets`] provides
//! generators that reproduce their published shape statistics (graph count,
//! node count mean/std, average degree, label count) at a configurable
//! scale — see DESIGN.md §4 for the substitution rationale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datasets;
mod type_a;
mod type_b;
mod workload;

pub use datasets::DatasetProfile;
pub use type_a::{generate_type_a, TypeAConfig};
pub use type_b::{generate_type_b, TypeBConfig};
pub use workload::{QueryOrigin, Workload, WorkloadQuery};
