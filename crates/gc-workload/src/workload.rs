//! Workload containers.

use gc_graph::LabeledGraph;

/// Where a workload query came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryOrigin {
    /// Extracted from a dataset graph (guaranteed at least one answer).
    Extracted,
    /// Relabelled until it has a non-empty candidate set but an empty
    /// answer set (Type B's "no-answer" pool).
    NoAnswer,
}

/// One query of a workload.
#[derive(Debug, Clone)]
pub struct WorkloadQuery {
    /// The query graph.
    pub graph: LabeledGraph,
    /// Provenance (used by tests and the Type B mix accounting).
    pub origin: QueryOrigin,
}

/// An ordered sequence of queries to replay against a method or cache.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Workload name in the paper's nomenclature ("ZZ", "UU", "20%", …).
    pub name: String,
    /// The queries, in submission order.
    pub queries: Vec<WorkloadQuery>,
}

impl Workload {
    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Iterator over the query graphs in order.
    pub fn graphs(&self) -> impl Iterator<Item = &LabeledGraph> {
        self.queries.iter().map(|q| &q.graph)
    }

    /// Fraction of queries drawn from the no-answer pool.
    pub fn no_answer_fraction(&self) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        self.queries
            .iter()
            .filter(|q| q.origin == QueryOrigin::NoAnswer)
            .count() as f64
            / self.queries.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting() {
        let g = LabeledGraph::from_parts(vec![0, 1], &[(0, 1)]);
        let w = Workload {
            name: "test".into(),
            queries: vec![
                WorkloadQuery {
                    graph: g.clone(),
                    origin: QueryOrigin::Extracted,
                },
                WorkloadQuery {
                    graph: g,
                    origin: QueryOrigin::NoAnswer,
                },
            ],
        };
        assert_eq!(w.len(), 2);
        assert!(!w.is_empty());
        assert_eq!(w.graphs().count(), 2);
        assert!((w.no_answer_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_workload() {
        let w = Workload {
            name: "empty".into(),
            queries: vec![],
        };
        assert!(w.is_empty());
        assert_eq!(w.no_answer_fraction(), 0.0);
    }
}
