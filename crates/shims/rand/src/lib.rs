//! Offline shim for the `rand` crate (0.8-era API subset).
//!
//! The build environment has no network access, so this workspace provides
//! its own implementation of the pieces it uses: the [`Rng`] trait with
//! `gen`, `gen_range` and `gen_bool`, [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`]. `StdRng` here is xoshiro256++ seeded through SplitMix64
//! — a high-quality, deterministic generator, though its stream differs
//! from upstream rand's ChaCha-based `StdRng` (callers in this workspace
//! only rely on seeds being deterministic, not on a particular stream).

use std::ops::Range;

/// Types that can be sampled uniformly from the "standard" distribution
/// (rand's `Standard`): `f64` in `[0, 1)` and `bool` fair-coin.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges a value can be drawn from uniformly (rand's `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    ///
    /// # Panics
    /// If the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded draw (Lemire); bias is < 2^-64 per
                // draw for the span sizes used here.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the exclusive bound.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// The random-number-generator trait: a `u64` source plus the sampling
/// helpers the workspace calls.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (rand's `SeedableRng`, `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// state-initialised with SplitMix64 as its authors recommend.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let i = rng.gen_range(0..5usize);
            seen[i] = true;
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
            let u = rng.gen_range(10..20u32);
            assert!((10..20).contains(&u));
        }
        assert!(seen.iter().all(|&s| s), "all range values reachable");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn works_through_mut_reference() {
        fn draw(rng: &mut impl Rng) -> usize {
            rng.gen_range(0..10usize)
        }
        let mut rng = StdRng::seed_from_u64(4);
        let r = &mut rng;
        let _ = draw(r);
        let _ = draw(r);
    }
}
