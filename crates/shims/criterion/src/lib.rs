//! Offline shim for the `criterion` crate.
//!
//! Implements the subset of the criterion 0.5 API used by this workspace's
//! benches (`criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`, `bench_with_input`, `Bencher::iter`) with a simple
//! mean/min/max timing loop instead of criterion's statistical machinery.
//! Results print one line per benchmark; there is no HTML report.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value, rendered `name/param`.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// Only a parameter value.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Hint for how expensive a batch's setup value is (accepted for
/// criterion API compatibility; the shim times one batch per sample
/// regardless).
#[derive(Debug, Clone, Copy, Default)]
pub enum BatchSize {
    /// Small per-iteration input.
    #[default]
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Times closures handed to it by a benchmark function.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` repeatedly (one warm-up call plus the configured sample
    /// count) and records one wall-clock duration per sample. As in
    /// upstream criterion, the routine's return value is dropped *outside*
    /// the timed region, so deallocating a large output does not pollute
    /// the measurement.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        std::hint::black_box(f()); // warm-up, untimed
        for _ in 0..self.samples {
            let t0 = Instant::now();
            let out = f();
            self.results.push(t0.elapsed());
            drop(std::hint::black_box(out));
        }
    }

    /// Like [`iter`](Self::iter), but `setup` runs outside the timed
    /// region — use it when per-iteration state (caches, buffers) must be
    /// rebuilt fresh without its construction polluting the measurement.
    /// The routine's output is likewise dropped untimed.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        std::hint::black_box(routine(setup())); // warm-up, untimed
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            let out = routine(input);
            self.results.push(t0.elapsed());
            drop(std::hint::black_box(out));
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn run_one(full_id: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        results: Vec::new(),
    };
    f(&mut b);
    if b.results.is_empty() {
        println!("{full_id:<40} (no samples)");
        return;
    }
    let total: Duration = b.results.iter().sum();
    let mean = total / b.results.len() as u32;
    let min = *b.results.iter().min().expect("non-empty");
    let max = *b.results.iter().max().expect("non-empty");
    println!(
        "{full_id:<40} time: [{} {} {}]",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max)
    );
}

/// A named set of related benchmarks sharing a sample count.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, f);
        self
    }

    /// Runs one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (a no-op here; criterion computes summaries).
    pub fn finish(&mut self) {
        let _ = self.criterion;
    }
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: self.sample_size,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_one(&id.into().id, self.sample_size, f);
        self
    }
}

/// Prevents the compiler from optimising a value away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, optionally with a configured
/// [`Criterion`] instance.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("group");
        group.sample_size(3);
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with", 4), &4u32, |b, &n| b.iter(|| n * 2));
        group.finish();
        c.bench_function("top_level", |b| b.iter(|| black_box(3) * 3));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(2);
        targets = sample_bench
    }

    criterion_group!(benches_default, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
        benches_default();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter("p").id, "p");
        assert_eq!(BenchmarkId::from("s").id, "s");
    }

    #[test]
    fn duration_formatting() {
        assert!(fmt_duration(Duration::from_nanos(5)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(50)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(50)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(50)).ends_with(" s"));
    }
}
