//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no network access, so this workspace ships a
//! minimal drop-in replacement exposing exactly the API surface GraphCache
//! uses: [`Mutex`] and [`RwLock`] whose guards are obtained without a
//! poisoning `Result`. Poisoning is handled the way parking_lot does — a
//! panicking critical section does not poison the lock for later users.

use std::sync::{
    Mutex as StdMutex, MutexGuard, PoisonError, RwLock as StdRwLock, RwLockReadGuard,
    RwLockWriteGuard,
};

/// A mutual-exclusion lock with parking_lot's non-poisoning `lock()` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's non-poisoning `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
