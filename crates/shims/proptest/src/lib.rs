//! Offline shim for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace ships a
//! minimal property-testing harness with the proptest API surface its tests
//! use: the [`Strategy`](strategy::Strategy) trait with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`collection::vec`],
//! [`arbitrary::any`], `ProptestConfig::with_cases`, and the [`proptest!`],
//! [`prop_assert!`] and [`prop_assert_eq!`] macros.
//!
//! Differences from upstream: inputs are generated from a fixed-seed
//! deterministic generator (every run explores the same cases) and failing
//! cases are not shrunk — the panic message reports the case number so a
//! failure is still reproducible by rerunning the test.

/// Test-runner configuration and RNG plumbing.
pub mod test_runner {
    pub use rand::rngs::StdRng as TestRng;
    use rand::SeedableRng;

    /// How many random cases each property runs.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of generated cases.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// The deterministic per-test generator (fixed seed: runs are
    /// reproducible; pass a different constant here to explore new cases).
    pub fn new_rng() -> TestRng {
        TestRng::seed_from_u64(0x9E37_79B9_7F4A_7C15)
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Builds a second strategy from each generated value and draws
        /// from it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(*self.start()..self.end() + 1)
                }
            }
        )*};
    }

    range_strategy!(usize, u64, u32, u16, u8);

    macro_rules! tuple_strategy {
        ($(($($n:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($n,)+) = self;
                    ($($n.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! { (A) (A, B) (A, B, C) (A, B, C, D) }
}

/// Strategies for `any::<T>()`.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.gen::<bool>()
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.gen::<u64>()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.gen::<f64>()
        }
    }

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Admissible element counts for [`fn@vec`]: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub enum SizeRange {
        /// Exactly this many elements.
        Fixed(usize),
        /// Uniformly drawn from the half-open range.
        Between(Range<usize>),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Fixed(n)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange::Between(r)
        }
    }

    /// Strategy returned by [`fn@vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = match &self.size {
                SizeRange::Fixed(n) => *n,
                SizeRange::Between(r) => rng.gen_range(r.clone()),
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `element` and whose
    /// length comes from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Asserts a condition inside a property (plain `assert!` here; upstream
/// proptest additionally records the failing case for shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: expands one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::new_rng();
            for case in 0..config.cases {
                let ($($pat,)+) = (
                    $($crate::strategy::Strategy::generate(&($strat), &mut rng),)+
                );
                let run = || $body;
                if let Err(e) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                    eprintln!(
                        "proptest: property {} failed at case {}/{}",
                        stringify!($name),
                        case + 1,
                        config.cases
                    );
                    ::std::panic::resume_unwind(e);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even(limit: usize) -> impl Strategy<Value = usize> {
        (0..limit).prop_map(|n| n * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(n in 3..10usize, m in 1..=4u32) {
            prop_assert!((3..10).contains(&n));
            prop_assert!((1..=4).contains(&m));
        }

        #[test]
        fn mapped_values_even(n in arb_even(50)) {
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn flat_map_vec_lengths(
            v in (1..5usize).prop_flat_map(|n| crate::collection::vec(0..10u32, n)),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn tuples_and_any(pair in (0..4usize, 0..4usize), flag in any::<bool>()) {
            prop_assert!(pair.0 < 4 && pair.1 < 4);
            let _ = flag;
        }
    }

    #[test]
    fn vec_sizes() {
        let mut rng = crate::test_runner::new_rng();
        let s = crate::collection::vec(0..5u32, 3usize);
        assert_eq!(s.generate(&mut rng).len(), 3);
        let s = crate::collection::vec(0..5u32, 1..4usize);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }
}
