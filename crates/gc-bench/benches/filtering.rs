//! Microbenchmarks of the FTV filtering indexes: build time and per-query
//! filtering time (GGSX vs Grapes vs CT-Index) on an AIDS-shaped dataset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gc_graph::LabeledGraph;
use gc_index::{CtConfig, CtIndex, FilterIndex, GgsxConfig, GrapesConfig, GrapesIndex, PathTrie};
use gc_workload::{datasets, generate_type_a, TypeAConfig};

fn bench_build(c: &mut Criterion) {
    let d = datasets::aids_like(0.05, 5);
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    group.bench_function("GGSX", |b| {
        b.iter(|| PathTrie::build(&d, GgsxConfig::default()).graph_count())
    });
    group.bench_function("Grapes", |b| {
        b.iter(|| GrapesIndex::build(&d, GrapesConfig::default()).graph_count())
    });
    group.bench_function("CT-Index", |b| {
        b.iter(|| CtIndex::build(&d, CtConfig::default()).graph_count())
    });
    group.finish();
}

fn bench_filter(c: &mut Criterion) {
    let d = datasets::aids_like(0.2, 5);
    let queries: Vec<LabeledGraph> = generate_type_a(&d, &TypeAConfig::uu().count(32).seed(3))
        .queries
        .into_iter()
        .map(|q| q.graph)
        .collect();
    let ggsx = PathTrie::build(&d, GgsxConfig::default());
    let grapes = GrapesIndex::build(&d, GrapesConfig::default());
    let ct = CtIndex::build(&d, CtConfig::default());

    let mut group = c.benchmark_group("filter");
    let filters: [(&str, &dyn FilterIndex); 3] =
        [("GGSX", &ggsx), ("Grapes", &grapes), ("CT-Index", &ct)];
    for (name, idx) in filters {
        group.bench_with_input(BenchmarkId::from_parameter(name), &queries, |b, qs| {
            b.iter(|| qs.iter().map(|q| idx.filter(q).len()).sum::<usize>())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_build, bench_filter
}
criterion_main!(benches);
