//! Microbenchmarks of the workload machinery: Zipf sampling, Type A
//! generation, and path-feature enumeration (the shared filtering
//! primitive).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gc_graph::zipf::ZipfSampler;
use gc_index::paths::enumerate_paths;
use gc_workload::{datasets, generate_type_a, TypeAConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_zipf(c: &mut Criterion) {
    let mut group = c.benchmark_group("zipf");
    for n in [100usize, 10_000] {
        let z = ZipfSampler::new(n, 1.4);
        group.bench_with_input(BenchmarkId::from_parameter(n), &z, |b, z| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| z.sample(&mut rng))
        });
    }
    group.finish();
}

fn bench_type_a(c: &mut Criterion) {
    let d = datasets::aids_like(0.05, 3);
    c.bench_function("type_a_generate_100", |b| {
        b.iter(|| generate_type_a(&d, &TypeAConfig::zz(1.4).count(100).seed(9)).len())
    });
}

fn bench_path_enumeration(c: &mut Criterion) {
    let d = datasets::aids_like(0.05, 3);
    let graphs = d.graphs();
    let mut group = c.benchmark_group("enumerate_paths");
    for len in [3usize, 4, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, &len| {
            b.iter(|| {
                graphs
                    .iter()
                    .take(20)
                    .map(|g| match enumerate_paths(g, len, u64::MAX) {
                        gc_index::paths::PathProfile::Counts(c) => c.len(),
                        gc_index::paths::PathProfile::Overflow => 0,
                    })
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_zipf, bench_type_a, bench_path_enumeration
}
criterion_main!(benches);
