//! Microbenchmarks of GraphCache's own machinery: the full query path on
//! hit-heavy vs miss-heavy streams, and the candidate-set pruner.

use criterion::{criterion_group, criterion_main, Criterion};
use gc_core::pruner::{prune, HitAnswer};
use gc_core::{CostModel, GraphCache};
use gc_graph::GraphId;
use gc_methods::MethodBuilder;
use gc_workload::{datasets, generate_type_a, TypeAConfig};

fn bench_query_path(c: &mut Criterion) {
    let d = datasets::aids_like(0.1, 9);
    let hits = generate_type_a(&d, &TypeAConfig::zz(1.7).count(64).seed(1));
    let misses = generate_type_a(&d, &TypeAConfig::uu().count(64).seed(2));

    let mut group = c.benchmark_group("gc_query");
    group.sample_size(10);
    group.bench_function("hit_heavy_zz", |b| {
        b.iter(|| {
            let cache = GraphCache::builder()
                .capacity(50)
                .window(10)
                .cost_model(CostModel::Work)
                .build(MethodBuilder::ggsx().build(&d));
            let mut answers = 0usize;
            for _ in 0..3 {
                for q in hits.graphs() {
                    answers += cache.run(q).answer.len();
                }
            }
            answers
        })
    });
    group.bench_function("miss_heavy_uu", |b| {
        b.iter(|| {
            let cache = GraphCache::builder()
                .capacity(50)
                .window(10)
                .cost_model(CostModel::Work)
                .build(MethodBuilder::ggsx().build(&d));
            let mut answers = 0usize;
            for q in misses.graphs() {
                answers += cache.run(q).answer.len();
            }
            answers
        })
    });
    group.finish();
}

fn bench_pruner(c: &mut Criterion) {
    let cs: Vec<GraphId> = (0..2000).map(GraphId).collect();
    let a1: Vec<GraphId> = (0..2000).filter(|i| i % 3 == 0).map(GraphId).collect();
    let a2: Vec<GraphId> = (0..2000).filter(|i| i % 2 == 0).map(GraphId).collect();
    let a3: Vec<GraphId> = (500..1500).map(GraphId).collect();
    c.bench_function("pruner_2000_candidates", |b| {
        b.iter(|| {
            let r = prune(
                &cs,
                &[HitAnswer {
                    serial: 1,
                    answer: &a1,
                }],
                &[
                    HitAnswer {
                        serial: 2,
                        answer: &a2,
                    },
                    HitAnswer {
                        serial: 3,
                        answer: &a3,
                    },
                ],
            );
            r.remaining.len() + r.direct_answer.len()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_query_path, bench_pruner
}
criterion_main!(benches);
