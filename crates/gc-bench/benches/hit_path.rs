//! Hit-detection pipeline cost on a candidate-heavy Zipf workload: naive
//! flat sweep vs cost-ordered budgeted sweep vs fingerprint-first exact
//! resolution.
//!
//! The cache holds paths over a 2-letter alphabet, so the feature filter
//! passes often and every query drags a large candidate set into
//! verification — the worst case the paper's §5 premise (hit detection
//! must stay cheap) worries about. Queries are drawn Zipf(1.4) over the
//! cached population: the popular head produces exact repeats, the tail
//! produces fresh near-misses.
//!
//! The headline counters are *hardware-independent* (matcher `tests` and
//! `work`, not wall time); this bench asserts the pipeline's contract —
//!
//! * the budgeted ordered sweep spends ≥ 5x less matcher work than the
//!   naive sweep on the same queries, and
//! * exact repeats resolve through the fingerprint map with **zero**
//!   candidate sub-iso tests —
//!
//! and then times all three pipelines with criterion.

use criterion::{criterion_group, criterion_main, Criterion};
use gc_core::processors::{find_hits_naive, find_hits_opts, HitQuery, VerifyOptions};
use gc_core::{CacheEntry, CacheSnapshot, QueryIndexConfig};
use gc_graph::zipf::ZipfSampler;
use gc_graph::{GraphId, LabeledGraph};
use gc_index::paths::enumerate_paths;
use gc_methods::QueryKind;
use gc_subiso::{MatchConfig, Vf2};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const SHARDS: usize = 8;
const CACHED: u64 = 120;
const QUERIES: usize = 200;
/// Target reduction of the budgeted sweep (the assertion checks ≥ 5x).
const BUDGET_DIVISOR: u64 = 8;

/// Labelled path over {0, 1}: shared alphabet, varied length/sequence, so
/// containment candidates are plentiful.
fn seeded_graph(seed: u64) -> LabeledGraph {
    let h = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let len = 3 + (h % 6) as usize;
    let labels: Vec<u32> = (0..len).map(|i| ((h >> i) & 1) as u32).collect();
    let edges: Vec<(u32, u32)> = (0..len as u32 - 1).map(|i| (i, i + 1)).collect();
    LabeledGraph::from_parts(labels, &edges)
}

fn entry_for(serial: u64) -> Arc<CacheEntry> {
    let graph = seeded_graph(serial);
    let cfg = QueryIndexConfig::default();
    let profile = enumerate_paths(&graph, cfg.max_path_len, cfg.work_cap);
    Arc::new(CacheEntry::new(
        serial,
        Arc::new(graph),
        vec![GraphId((serial % 16) as u32)],
        QueryKind::Subgraph,
        profile,
    ))
}

/// The workload: Zipf-ranked draws over the cached population. Head ranks
/// resubmit the cached graph verbatim (exact repeats); tail ranks perturb
/// the seed (fresh queries with heavy candidate overlap). Returns the
/// queries plus which of them are exact repeats.
fn workload(snapshot_entries: u64) -> (Vec<LabeledGraph>, Vec<bool>) {
    let zipf = ZipfSampler::new(snapshot_entries as usize, 1.4);
    let mut rng = StdRng::seed_from_u64(7);
    let mut queries = Vec::with_capacity(QUERIES);
    let mut is_repeat = Vec::with_capacity(QUERIES);
    for i in 0..QUERIES {
        let rank = zipf.sample(&mut rng) as u64;
        if i % 2 == 0 {
            queries.push(seeded_graph(rank + 1)); // serials are 1-based
            is_repeat.push(true);
        } else {
            queries.push(seeded_graph(rank + 1 + snapshot_entries * 31));
            is_repeat.push(false);
        }
    }
    (queries, is_repeat)
}

struct Totals {
    tests: u64,
    work: u64,
    hits: usize,
}

fn sweep(
    snap: &CacheSnapshot,
    queries: &[LabeledGraph],
    mut f: impl FnMut(&CacheSnapshot, &LabeledGraph) -> (u64, u64, usize),
) -> Totals {
    let mut t = Totals {
        tests: 0,
        work: 0,
        hits: 0,
    };
    for q in queries {
        let (tests, work, hits) = f(snap, q);
        t.tests += tests;
        t.work += work;
        t.hits += hits;
    }
    t
}

fn run_naive(snap: &CacheSnapshot, q: &LabeledGraph) -> (u64, u64, usize) {
    let h = find_hits_naive(
        snap,
        q,
        QueryKind::Subgraph,
        &Vf2::new(),
        &MatchConfig::UNBOUNDED,
    );
    (h.tests, h.work, h.sub.len() + h.super_.len())
}

fn run_opts(snap: &CacheSnapshot, q: &LabeledGraph, opts: &VerifyOptions) -> (u64, u64, usize) {
    let profile = snap.profile_of(q);
    let h = find_hits_opts(
        snap,
        &HitQuery::new(q, QueryKind::Subgraph, &profile),
        &Vf2::new(),
        &MatchConfig::UNBOUNDED,
        opts,
    );
    (h.tests, h.work, h.sub.len() + h.super_.len())
}

fn bench_hit_path(c: &mut Criterion) {
    let cfg = QueryIndexConfig::default();
    let entries: Vec<Arc<CacheEntry>> = (1..=CACHED).map(entry_for).collect();
    let snap = CacheSnapshot::build_sharded(cfg, SHARDS, entries);
    let (queries, is_repeat) = workload(CACHED);

    // ---- Hardware-independent counters (asserted, printed once). ----
    let naive = sweep(&snap, &queries, run_naive);
    let per_query_budget = (naive.work / QUERIES as u64 / BUDGET_DIVISOR).max(1);
    let budgeted_opts = VerifyOptions {
        budget: Some(per_query_budget),
        ..VerifyOptions::default()
    };
    let budgeted = sweep(&snap, &queries, |s, q| run_opts(s, q, &budgeted_opts));
    let fp_opts = VerifyOptions {
        exact_shortcut: true,
        ..VerifyOptions::default()
    };
    let fp_first = sweep(&snap, &queries, |s, q| run_opts(s, q, &fp_opts));

    // Exact repeats must complete with zero candidate sub-iso tests.
    let mut repeat_tests = 0u64;
    for (q, &rep) in queries.iter().zip(&is_repeat) {
        if rep {
            let (tests, _, _) = run_opts(&snap, q, &fp_opts);
            repeat_tests += tests;
        }
    }

    println!("hit-path counters over {QUERIES} queries, {CACHED} cached, {SHARDS} shards:");
    println!(
        "  naive flat sweep     : {:>8} tests {:>10} work {:>5} hits",
        naive.tests, naive.work, naive.hits
    );
    println!(
        "  ordered + budget {per_query_budget:>4}: {:>8} tests {:>10} work {:>5} hits ({:.1}x less work, {:.0}% hit recall)",
        budgeted.tests,
        budgeted.work,
        budgeted.hits,
        naive.work as f64 / budgeted.work.max(1) as f64,
        100.0 * budgeted.hits as f64 / naive.hits.max(1) as f64,
    );
    println!(
        "  fingerprint-first    : {:>8} tests {:>10} work {:>5} hits (exact-repeat tests: {repeat_tests})",
        fp_first.tests, fp_first.work, fp_first.hits
    );

    assert!(
        budgeted.work * 5 <= naive.work,
        "budgeted sweep must cut matcher work ≥5x: {} vs {}",
        budgeted.work,
        naive.work
    );
    assert_eq!(
        repeat_tests, 0,
        "exact repeats must resolve via the fingerprint with zero sub-iso tests"
    );

    // ---- Wall-clock comparison of the same three pipelines. ----
    let mut group = c.benchmark_group("hit_path");
    group.sample_size(10);
    group.bench_function("naive", |b| {
        b.iter(|| sweep(&snap, &queries, run_naive).work)
    });
    group.bench_function("ordered_budgeted", |b| {
        b.iter(|| sweep(&snap, &queries, |s, q| run_opts(s, q, &budgeted_opts)).work)
    });
    group.bench_function("fingerprint_first", |b| {
        b.iter(|| sweep(&snap, &queries, |s, q| run_opts(s, q, &fp_opts)).work)
    });
    group.finish();
}

criterion_group!(benches, bench_hit_path);
criterion_main!(benches);
