//! Full-rebuild vs incremental snapshot maintenance across cache sizes and
//! churn rates.
//!
//! Models one maintenance round at steady state: a cache of `size` entries
//! takes a window whose delta evicts and admits `size × churn` entries.
//!
//! * `full` — the pre-sharding path: clone the surviving entries and
//!   rebuild every shard index from stored profiles (O(|cache|) per
//!   round, however small the delta).
//! * `incremental` — the live path: tombstone the victims and append the
//!   admissions in the touched shards, compacting only past the debt
//!   threshold (O(delta + touched shards); in place when no reader holds
//!   a shard).
//! * `incremental-cow` — the same patch when a concurrent reader pins
//!   every shard, forcing copy-on-write of each touched shard (the
//!   contended upper bound).
//!
//! Incremental round time should track the churn rate, not the cache
//! size: at 10k entries / 1% churn the incremental round is expected to
//! be well over 5x faster than the full rebuild.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use gc_core::{shard_for, CacheEntry, CacheSnapshot, QueryIndexConfig, Shard};
use gc_graph::{GraphId, LabeledGraph};
use gc_index::paths::enumerate_paths;
use gc_methods::QueryKind;
use std::sync::Arc;

const SHARDS: usize = 16;
const COMPACT_DEBT: f64 = 0.5;

/// A small deterministic labelled path graph (3–6 nodes, 8 labels) — the
/// shape of typical cached queries.
fn seeded_graph(seed: u64) -> LabeledGraph {
    let len = 3 + (seed % 4) as usize;
    let labels: Vec<u32> = (0..len).map(|i| ((seed >> (3 * i)) & 7) as u32).collect();
    let edges: Vec<(u32, u32)> = (0..len as u32 - 1).map(|i| (i, i + 1)).collect();
    LabeledGraph::from_parts(labels, &edges)
}

fn entry_for(serial: u64) -> Arc<CacheEntry> {
    let graph = seeded_graph(serial.wrapping_mul(0x9E37_79B9));
    let cfg = QueryIndexConfig::default();
    let profile = enumerate_paths(&graph, cfg.max_path_len, cfg.work_cap);
    Arc::new(CacheEntry::new(
        serial,
        Arc::new(graph),
        vec![GraphId((serial % 64) as u32)],
        QueryKind::Subgraph,
        profile,
    ))
}

/// Applies one round's delta to the shards, exactly as `window::maintain`
/// does: tombstone victims, append admissions, compact past the threshold.
fn apply_delta(shards: &mut [Arc<Shard>], victims: &[u64], admits: &[Arc<CacheEntry>]) {
    let n = shards.len();
    for &v in victims {
        Arc::make_mut(&mut shards[shard_for(v, n)]).remove(v);
    }
    for e in admits {
        Arc::make_mut(&mut shards[shard_for(e.serial, n)]).insert(e.clone());
    }
    for shard in shards.iter_mut() {
        if shard.tombstone_debt() > COMPACT_DEBT {
            Arc::make_mut(shard).compact();
        }
    }
}

fn bench_maintenance(c: &mut Criterion) {
    let cfg = QueryIndexConfig::default();
    let mut group = c.benchmark_group("maintenance");
    group.sample_size(10);

    for &size in &[1_000u64, 10_000] {
        for &churn in &[0.01f64, 0.10] {
            let delta = ((size as f64 * churn) as u64).max(1);
            let label = format!("{size}x{}%", (churn * 100.0) as u64);

            let base: Vec<Arc<CacheEntry>> = (1..=size).map(entry_for).collect();
            let victims: Vec<u64> = (1..=delta).collect();
            let admits: Vec<Arc<CacheEntry>> = (size + 1..=size + delta).map(entry_for).collect();
            // The surviving entry set the full rebuild starts from.
            let survivors: Vec<Arc<CacheEntry>> = base[delta as usize..].to_vec();
            let base_snapshot = CacheSnapshot::build_sharded(cfg, SHARDS, base.clone());

            // Old path: clone survivors + admissions, rebuild all indexes.
            group.bench_with_input(BenchmarkId::new("full", &label), &(), |b, _| {
                b.iter(|| {
                    let mut entries = survivors.clone();
                    entries.extend(admits.iter().cloned());
                    CacheSnapshot::build_sharded(cfg, SHARDS, entries)
                })
            });

            // Live path, uncontended: unique shard Arcs, patched in place.
            group.bench_with_input(BenchmarkId::new("incremental", &label), &(), |b, _| {
                b.iter_batched(
                    || {
                        base_snapshot
                            .shards()
                            .iter()
                            .map(|s| Arc::new(s.as_ref().clone()))
                            .collect::<Vec<Arc<Shard>>>()
                    },
                    |mut shards| {
                        apply_delta(&mut shards, &victims, &admits);
                        shards
                    },
                    BatchSize::LargeInput,
                )
            });

            // Live path under reader contention: every touched shard is
            // copied-on-write before the patch lands.
            group.bench_with_input(BenchmarkId::new("incremental-cow", &label), &(), |b, _| {
                b.iter_batched(
                    || base_snapshot.shards().to_vec(),
                    |mut shards| {
                        apply_delta(&mut shards, &victims, &admits);
                        shards
                    },
                    BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_maintenance);
criterion_main!(benches);
