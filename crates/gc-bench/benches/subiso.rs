//! Microbenchmarks of the four sub-iso matchers on AIDS-shaped instances:
//! positive (extracted subgraph) and negative (relabelled) decision tests.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gc_graph::random::bfs_edge_subgraph;
use gc_graph::LabeledGraph;
use gc_subiso::MatcherKind;
use gc_workload::datasets;

type Cases = Vec<(LabeledGraph, LabeledGraph)>;

fn instances() -> (Cases, Cases) {
    let d = datasets::aids_like(0.05, 77);
    let mut positive = Vec::new();
    let mut negative = Vec::new();
    for (i, g) in d.graphs().iter().enumerate().take(16) {
        if let Some(q) = bfs_edge_subgraph(g, (i % 3) as u32, 12) {
            // Negative twin: shift every label out of range.
            let neg = q.relabeled(|_, l| l + 1000);
            positive.push((q, g.clone()));
            negative.push((neg, g.clone()));
        }
    }
    (positive, negative)
}

fn bench_matchers(c: &mut Criterion) {
    let (positive, negative) = instances();
    let mut group = c.benchmark_group("subiso");
    for kind in MatcherKind::ALL {
        let matcher = kind.build();
        group.bench_with_input(
            BenchmarkId::new("positive", kind.name()),
            &positive,
            |b, cases| b.iter(|| cases.iter().filter(|(q, g)| matcher.contains(q, g)).count()),
        );
        group.bench_with_input(
            BenchmarkId::new("negative", kind.name()),
            &negative,
            |b, cases| b.iter(|| cases.iter().filter(|(q, g)| matcher.contains(q, g)).count()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matchers
}
criterion_main!(benches);
