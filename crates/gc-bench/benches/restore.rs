//! Snapshot restore latency on a 10k-entry cache: binary arena snapshot
//! vs text parse.
//!
//! A restore is decode + materialisation (`into_snapshot_sharded`). The
//! text path parses every entry line token-by-token and re-enumerates
//! every entry graph's simple paths — the dominant cost of standing a
//! cache back up. The binary path bulk-reads the arena sections after a
//! single checksum pass and reuses the stored profiles verbatim, so its
//! materialisation is a copy, not a re-computation.
//!
//! Both paths pay the same index-rebuild cost (`build_sharded` from
//! profiles), so the comparison isolates exactly what the format change
//! buys. The bench asserts the binary restore is ≥ 5x faster than the
//! text restore before handing both to criterion.

use criterion::{criterion_group, criterion_main, Criterion};
use gc_core::{PersistedCache, QueryIndexConfig, StatsStore, StoredProfiles};
use gc_graph::{GraphId, LabeledGraph};
use gc_index::fingerprint::iso_hash;
use gc_index::paths::enumerate_paths;
use gc_methods::QueryKind;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const ENTRIES: u64 = 10_000;
const SHARDS: usize = 8;
/// The format-change contract this bench gates on.
const MIN_SPEEDUP: f64 = 5.0;

/// A 10–12 node labelled path with chords at distance 2 and 3 over a
/// 2-letter alphabet. The density makes the simple-path walk expensive
/// (thousands of walks per graph — the cost the text restore pays per
/// entry), while the tiny alphabet collapses those walks into few
/// distinct features, so the stored profile the binary restore reuses
/// stays small and cheap to decode.
fn seeded_graph(seed: u64) -> LabeledGraph {
    let h = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let len = 10 + (h % 3) as usize;
    let labels: Vec<u32> = (0..len).map(|i| ((h >> i) & 1) as u32).collect();
    let mut edges: Vec<(u32, u32)> = (0..len as u32 - 1).map(|i| (i, i + 1)).collect();
    for i in 0..len as u32 - 2 {
        edges.push((i, i + 2));
    }
    for i in 0..len as u32 - 3 {
        edges.push((i, i + 3));
    }
    for i in (0..len as u32 - 4).step_by(2) {
        edges.push((i, i + 4));
    }
    LabeledGraph::from_parts(labels, &edges)
}

/// Builds the 10k-entry persisted state, profiles included (the text
/// save drops them — only `snapshot.bin` carries a PROFILES section).
fn corpus(cfg: &QueryIndexConfig) -> PersistedCache {
    let mut entries = Vec::with_capacity(ENTRIES as usize);
    let mut profiles = Vec::with_capacity(ENTRIES as usize);
    for serial in 1..=ENTRIES {
        let graph = seeded_graph(serial);
        let fingerprint = iso_hash(&graph);
        profiles.push(enumerate_paths(&graph, cfg.max_path_len, cfg.work_cap));
        let answers = vec![GraphId((serial % 256) as u32), GraphId(300)];
        entries.push((serial, graph, answers, QueryKind::Subgraph, fingerprint));
    }
    PersistedCache {
        entries,
        stats: StatsStore::default(),
        next_serial: ENTRIES + 1,
        policy: Some("lru".to_string()),
        fragments: Vec::new(),
        profiles: Some(StoredProfiles {
            max_path_len: cfg.max_path_len,
            work_cap: cfg.work_cap,
            profiles,
        }),
    }
}

/// One full restore: auto-detected load from `dir` + sharded
/// materialisation. Returns the entry count so the work can't be
/// optimised away.
fn restore(dir: &Path, cfg: QueryIndexConfig) -> usize {
    let loaded = PersistedCache::load_auto(dir, QueryKind::Subgraph).expect("load");
    let (snap, _stats, _serial) = loaded.into_snapshot_sharded(cfg, SHARDS);
    snap.len()
}

/// Best-of-3 wall time for the hardware gate (criterion's distributions
/// come after; the assertion wants a stable point estimate).
fn best_of_3(mut f: impl FnMut() -> usize) -> (Duration, usize) {
    let mut best = Duration::MAX;
    let mut n = 0;
    for _ in 0..3 {
        let t0 = Instant::now();
        n = f();
        best = best.min(t0.elapsed());
    }
    (best, n)
}

fn bench_restore(c: &mut Criterion) {
    let cfg = QueryIndexConfig::default();
    let root: PathBuf =
        std::env::temp_dir().join(format!("gc-bench-restore-{}", std::process::id()));
    let text_dir = root.join("text");
    let bin_dir = root.join("binary");
    let state = corpus(&cfg);
    state.save(&text_dir).expect("text save");
    state.save_binary(&bin_dir).expect("binary save");
    let bin_bytes = std::fs::metadata(bin_dir.join("snapshot.bin"))
        .expect("snapshot.bin")
        .len();

    // ---- The ≥5x restore contract (asserted, printed once). ----
    let (text_t, text_n) = best_of_3(|| restore(&text_dir, cfg));
    let (bin_t, bin_n) = best_of_3(|| restore(&bin_dir, cfg));
    assert_eq!(text_n, ENTRIES as usize);
    assert_eq!(bin_n, ENTRIES as usize);
    let speedup = text_t.as_secs_f64() / bin_t.as_secs_f64().max(1e-9);
    println!("restore of {ENTRIES} entries into {SHARDS} shards ({bin_bytes} snapshot bytes):");
    println!(
        "  text parse + re-enumerate : {:>9.1} ms",
        text_t.as_secs_f64() * 1e3
    );
    println!(
        "  binary arena snapshot     : {:>9.1} ms  ({speedup:.1}x faster)",
        bin_t.as_secs_f64() * 1e3
    );
    assert!(
        speedup >= MIN_SPEEDUP,
        "binary restore must be ≥{MIN_SPEEDUP}x faster than text: {speedup:.2}x"
    );

    // ---- Wall-clock distributions of the same two paths. ----
    let mut group = c.benchmark_group("restore");
    group.sample_size(10);
    group.bench_function("text", |b| b.iter(|| restore(&text_dir, cfg)));
    group.bench_function("binary", |b| b.iter(|| restore(&bin_dir, cfg)));
    group.finish();

    let _ = std::fs::remove_dir_all(&root);
}

criterion_group!(benches, bench_restore);
criterion_main!(benches);
