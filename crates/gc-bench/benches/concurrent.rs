//! Concurrent service throughput: `run_batch` over one shared cache at
//! 1/2/4/8 worker threads, so future PRs can track scaling of the `&self`
//! query path (snapshot reads are lock-free; the Window, statistics and
//! admission stores are the contended state).
//!
//! Cache and request construction happens in the untimed setup phase —
//! only the query replay itself is measured.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use gc_core::{CostModel, GraphCache, QueryRequest};
use gc_methods::MethodBuilder;
use gc_workload::{datasets, generate_type_a, TypeAConfig};

fn bench_run_batch(c: &mut Criterion) {
    let d = datasets::aids_like(0.1, 9);
    let workload = generate_type_a(&d, &TypeAConfig::zz(1.4).count(96).seed(11));

    let mut group = c.benchmark_group("run_batch");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter_batched(
                    || {
                        let cache = GraphCache::builder()
                            .capacity(50)
                            .window(10)
                            .threads(threads)
                            .cost_model(CostModel::Work)
                            .build(MethodBuilder::ggsx().build(&d));
                        let requests: Vec<QueryRequest> =
                            workload.graphs().map(QueryRequest::from).collect();
                        (cache, requests)
                    },
                    |(cache, requests)| {
                        let responses = cache.run_batch(requests);
                        responses
                            .iter()
                            .map(|r| r.result.answer.len())
                            .sum::<usize>()
                    },
                    BatchSize::PerIteration,
                )
            },
        );
    }
    group.finish();
}

fn bench_shared_handle_threads(c: &mut Criterion) {
    let d = datasets::aids_like(0.1, 9);
    let workload = generate_type_a(&d, &TypeAConfig::zz(1.4).count(96).seed(12));

    let mut group = c.benchmark_group("shared_handle");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter_batched(
                    || {
                        GraphCache::builder()
                            .capacity(50)
                            .window(10)
                            .cost_model(CostModel::Work)
                            .build(MethodBuilder::ggsx().build(&d))
                    },
                    |cache| {
                        let queries: Vec<_> = workload.graphs().collect();
                        let total = std::sync::atomic::AtomicUsize::new(0);
                        std::thread::scope(|s| {
                            for t in 0..threads {
                                let cache = &cache;
                                let queries = &queries;
                                let total = &total;
                                s.spawn(move || {
                                    let mut answers = 0usize;
                                    for q in queries.iter().skip(t).step_by(threads) {
                                        answers += cache.run(q).answer.len();
                                    }
                                    total.fetch_add(answers, std::sync::atomic::Ordering::Relaxed);
                                });
                            }
                        });
                        total.into_inner()
                    },
                    BatchSize::PerIteration,
                )
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_run_batch, bench_shared_handle_threads
}
criterion_main!(benches);
