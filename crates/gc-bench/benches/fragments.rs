//! Fragment-cache payoff on the `fragments` suite regime: a flat Zipf
//! workload (few exact repeats) over the index-free `vf2` baseline, where
//! whole-query caching has little to offer but structurally-overlapping
//! queries share path fragments.
//!
//! The headline counters are *hardware-independent* (total sub-iso tests
//! and cache-assisted queries); this bench asserts the layer's contract —
//!
//! * fragments-on spends measurably fewer matcher tests than the same
//!   scenario with the layer off (candidate pre-pruning is real), and
//! * fragments-on assists strictly more queries (fragment hits raise the
//!   hit rate on a workload whole-query caching barely touches) —
//!
//! and then times both replays with criterion.

use criterion::{criterion_group, criterion_main, Criterion};
use gc_harness::{run_scenario, Scenario, Suite};

/// Pulls a named scenario out of the committed `fragments` suite, so the
/// bench measures exactly what `gc bench --suite fragments` runs and CI
/// gates against `benches/baseline.json`.
fn suite_scenario(name: &str) -> Scenario {
    Suite::from_name("fragments")
        .expect("fragments suite exists")
        .scenarios()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("scenario {name:?} missing from the fragments suite"))
}

fn bench_fragments(c: &mut Criterion) {
    let on = suite_scenario("fragments-aids-zz-on");
    let off = suite_scenario("fragments-aids-zz-off");

    // ---- Hardware-independent counters (asserted, printed once). ----
    let r_on = run_scenario(&on).expect("fragments-on scenario");
    let r_off = run_scenario(&off).expect("fragments-off scenario");
    let get = |r: &gc_harness::ScenarioReport, key: &str| {
        r.counter(key)
            .unwrap_or_else(|| panic!("{} is missing counter {key}", r.name))
    };

    let tests_on = get(&r_on, "subiso_tests");
    let tests_off = get(&r_off, "subiso_tests");
    let assisted_on = get(&r_on, "cache_assisted");
    let assisted_off = get(&r_off, "cache_assisted");
    println!("fragment-cache counters on the suite's Zipf(1.05)/vf2 regime:");
    println!("  fragments off: {tests_off:>9} sub-iso tests {assisted_off:>4} assisted",);
    println!(
        "  fragments on : {tests_on:>9} sub-iso tests {assisted_on:>4} assisted \
         ({} probes, {} hits, {} candidates pruned, {} built)",
        get(&r_on, "fragment_probes"),
        get(&r_on, "fragment_hits"),
        get(&r_on, "fragment_pruned"),
        get(&r_on, "fragments_built"),
    );

    assert!(
        get(&r_on, "fragment_pruned") > 0,
        "the suite regime must actually prune candidates"
    );
    assert!(
        tests_on < tests_off,
        "fragment pruning must cut matcher tests: {tests_on} vs {tests_off}"
    );
    assert!(
        assisted_on > assisted_off,
        "fragment hits must raise the assisted-query count: {assisted_on} vs {assisted_off}"
    );

    // ---- Wall-clock comparison of the same two replays. ----
    let mut group = c.benchmark_group("fragments");
    group.sample_size(10);
    group.bench_function("suite_scenario_off", |b| {
        b.iter(|| run_scenario(&off).expect("off").counters.len())
    });
    group.bench_function("suite_scenario_on", |b| {
        b.iter(|| run_scenario(&on).expect("on").counters.len())
    });
    group.finish();
}

criterion_group!(benches, bench_fragments);
criterion_main!(benches);
