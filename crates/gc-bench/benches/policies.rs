//! Microbenchmarks of replacement-policy victim selection at various cache
//! sizes (the Window Manager invokes this once per full window).
//!
//! The candidate set comes from [`gc_core::registry`], so any policy
//! registered there — including the post-paper built-ins and future
//! additions — is benchmarked automatically, with no edit here.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use gc_core::policy::{PolicyRow, PolicyView};
use gc_core::registry;

fn rows(n: usize) -> Vec<PolicyRow> {
    (0..n as u64)
        .map(|i| PolicyRow {
            serial: i + 1,
            last_hit: i + 1 + (i * 7) % 90,
            hits: (i * 13) % 40,
            r_total: (i * 31) % 500,
            c_total: ((i * 17) % 1000) as f64,
        })
        .collect()
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_select");
    for n in [100usize, 500, 5000] {
        let table = rows(n);
        for name in registry::eviction_names() {
            group.bench_with_input(BenchmarkId::new(&name, n), &table, |b, table| {
                // Stateful policies mutate in select_victims (credits are
                // consumed, inflation moves), so each sample gets a freshly
                // built and warmed policy via the untimed setup closure —
                // every iteration then measures the same steady state, not
                // a drifting (eventually empty) bookkeeping map.
                b.iter_batched(
                    || {
                        let mut policy =
                            registry::build_eviction(&name).expect("registry name builds");
                        for row in table {
                            policy.on_admit(row.serial, row.c_total);
                        }
                        policy
                    },
                    |mut policy| {
                        policy
                            .select_victims(&PolicyView::new(table, n as u64 + 100), 20)
                            .len()
                    },
                    BatchSize::SmallInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
