//! Microbenchmarks of replacement-policy victim selection at various cache
//! sizes (the Window Manager invokes this once per full window).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gc_core::policy::{PolicyKind, PolicyRow};

fn rows(n: usize) -> Vec<PolicyRow> {
    (0..n as u64)
        .map(|i| PolicyRow {
            serial: i + 1,
            last_hit: i + 1 + (i * 7) % 90,
            hits: (i * 13) % 40,
            r_total: (i * 31) % 500,
            c_total: ((i * 17) % 1000) as f64,
        })
        .collect()
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_select");
    for n in [100usize, 500, 5000] {
        let table = rows(n);
        for kind in PolicyKind::ALL {
            group.bench_with_input(BenchmarkId::new(kind.name(), n), &table, |b, table| {
                b.iter(|| kind.select_victims(table, 20, n as u64 + 100).len())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
