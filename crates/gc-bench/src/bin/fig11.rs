//! Figure 11: GraphCache query-time speedups over the SI methods VF2+ and
//! GraphQL (GQL), on AIDS and PDBS, Type A workloads — "GC provides a new
//! way to expedite sub-iso tests … usable with any mainstream SI method".
//!
//! Also reproduces the paper's ZU-vs-UU insight: ZU has more exact-match
//! hits, UU compensates with more sub/supergraph hits.
//!
//! Run with: `cargo run --release -p gc-bench --bin fig11`

use gc_bench::runner::*;
use gc_core::GraphCache;
use gc_methods::{MethodKind, QueryKind};
use gc_workload::datasets;

fn main() {
    let exp = Experiment::from_args(400);
    let specs = [
        WorkloadSpec::Zz(1.4),
        WorkloadSpec::Zu(1.4),
        WorkloadSpec::Uu,
    ];
    let columns: Vec<String> = ["AIDS", "PDBS"]
        .iter()
        .flat_map(|d| specs.iter().map(move |s| format!("{d}/{}", s.name())))
        .collect();

    // Paper's printed values: AIDS (ZZ, ZU, UU) then PDBS (ZZ, ZU, UU).
    let paper = [
        Series {
            label: "VF2+".into(),
            values: vec![8.85, 6.49, 7.18, 3.56, 2.02, 1.99],
        },
        Series {
            label: "GQL".into(),
            values: vec![6.11, 4.80, 4.15, 9.49, 4.35, 3.31],
        },
    ];

    let aids = datasets::aids_like(exp.scale, exp.seed);
    let pdbs = datasets::pdbs_like(exp.scale, exp.seed);
    eprintln!("[fig11] AIDS: {}", aids.stats());
    eprintln!("[fig11] PDBS: {}", pdbs.stats());
    let sizes = vec![4usize, 8, 12, 16, 20];

    let mut measured = vec![
        Series {
            label: "VF2+".into(),
            values: Vec::new(),
        },
        Series {
            label: "GQL".into(),
            values: Vec::new(),
        },
    ];
    let mut hit_mix: Vec<String> = Vec::new();
    for dataset in [&aids, &pdbs] {
        let workloads: Vec<_> = specs
            .iter()
            .map(|s| s.generate(dataset, &sizes, exp.queries, exp.seed))
            .collect();
        for (ki, kind) in [MethodKind::SiVf2Plus, MethodKind::SiGraphQl]
            .into_iter()
            .enumerate()
        {
            let baseline_method = kind.build(dataset);
            for (spec, workload) in specs.iter().zip(&workloads) {
                let base = summarize(&baseline_records(
                    &baseline_method,
                    workload,
                    QueryKind::Subgraph,
                ));
                let cache = GraphCache::builder()
                    .capacity(100)
                    .window(20)
                    .parallel_dispatch(true)
                    .build(kind.build(dataset));
                let records = gc_records(&cache, workload);
                let gc = summarize(&records);
                measured[ki].values.push(gc.time_speedup_vs(&base));
                if ki == 0 {
                    let exact: usize = records.iter().filter(|r| r.exact_hit).count();
                    let relational: usize = records
                        .iter()
                        .filter(|r| !r.exact_hit && (r.sub_hits > 0 || r.super_hits > 0))
                        .count();
                    hit_mix.push(format!(
                        "{}: exact {} / sub-super {}",
                        spec.name(),
                        exact,
                        relational
                    ));
                }
                eprintln!("[fig11] {}/{} done", kind.name(), spec.name());
            }
        }
    }
    print_series(
        "Fig 11 — GC query-time speedup over SI methods (C=100, W=20)",
        &columns,
        &paper,
        &measured,
    );
    println!("\nhit mix under VF2+ (paper: ZU ≈ 2.5× the exact hits of UU; UU ≈ 2× the sub/super hits of ZU):");
    for line in hit_mix {
        println!("  {line}");
    }
}
