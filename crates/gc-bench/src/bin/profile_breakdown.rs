//! Diagnostic: per-query time breakdown for GraphCache vs baseline.
//!
//! Env knobs: `GC_METHOD` = ggsx|grapes1|grapes6|ct|vf2|vf2plus|gql,
//! `GC_WL` = zz|zu|uu|b0|b20|b50, `GC_DATASET` = aids|pdbs|pcm|synthetic,
//! plus the usual GC_SCALE / GC_QUERIES / GC_SEED.

use gc_bench::runner::*;
use gc_core::GraphCache;
use gc_methods::{MethodKind, QueryKind};
use gc_workload::datasets;

fn main() {
    let exp = Experiment::from_args(300);
    let method_name = std::env::var("GC_METHOD").unwrap_or_else(|_| "ggsx".into());
    let wl_name = std::env::var("GC_WL").unwrap_or_else(|_| "zz".into());
    let ds_name = std::env::var("GC_DATASET").unwrap_or_else(|_| "aids".into());

    let (d, sizes) = match ds_name.as_str() {
        "pdbs" => (
            datasets::pdbs_like(exp.scale, exp.seed),
            vec![4, 8, 12, 16, 20],
        ),
        "pcm" => (
            datasets::pcm_like(exp.scale, exp.seed),
            vec![20, 25, 30, 35, 40],
        ),
        "synthetic" => (
            datasets::synthetic_like(exp.scale, exp.seed),
            vec![20, 25, 30, 35, 40],
        ),
        _ => (
            datasets::aids_like(exp.scale, exp.seed),
            vec![4, 8, 12, 16, 20],
        ),
    };
    let spec = match wl_name.as_str() {
        "zu" => WorkloadSpec::Zu(1.4),
        "uu" => WorkloadSpec::Uu,
        "b0" => WorkloadSpec::TypeB {
            no_answer: 0.0,
            alpha: 1.4,
        },
        "b20" => WorkloadSpec::TypeB {
            no_answer: 0.2,
            alpha: 1.4,
        },
        "b50" => WorkloadSpec::TypeB {
            no_answer: 0.5,
            alpha: 1.4,
        },
        _ => WorkloadSpec::Zz(1.4),
    };
    let kind = match method_name.as_str() {
        "grapes1" => MethodKind::Grapes1,
        "grapes6" => MethodKind::Grapes6,
        "ct" => MethodKind::CtIndex,
        "vf2" => MethodKind::SiVf2,
        "vf2plus" => MethodKind::SiVf2Plus,
        "gql" => MethodKind::SiGraphQl,
        _ => MethodKind::Ggsx,
    };
    eprintln!("[profile] {} / {} / {}", ds_name, kind.name(), spec.name());

    let w = spec.generate(&d, &sizes, exp.queries, exp.seed);
    let method = kind.build(&d);
    let baseline = kind.build(&d);
    let cache = GraphCache::builder().capacity(100).window(20).build(method);

    let base = baseline_records(&baseline, &w, QueryKind::Subgraph);
    let gc = gc_records(&cache, &w);
    let avg = |f: &dyn Fn(&gc_core::QueryRecord) -> f64, rs: &[gc_core::QueryRecord]| {
        rs.iter().map(f).sum::<f64>() / rs.len() as f64
    };
    println!(
        "baseline: m_filter {:.0}us verify {:.0}us tests {:.1} cs {:.1}",
        avg(&|r| r.m_filter.as_secs_f64() * 1e6, &base),
        avg(&|r| r.verify.as_secs_f64() * 1e6, &base),
        avg(&|r| r.subiso_tests as f64, &base),
        avg(&|r| r.cs_m_size as f64, &base)
    );
    println!(
        "gc:       m_filter {:.0}us gc_filter {:.0}us verify {:.0}us maint {:.0}us tests {:.1} cs_gc {:.1} hits(sub {:.2} super {:.2} exact {:.2})",
        avg(&|r| r.m_filter.as_secs_f64() * 1e6, &gc),
        avg(&|r| r.gc_filter.as_secs_f64() * 1e6, &gc),
        avg(&|r| r.verify.as_secs_f64() * 1e6, &gc),
        avg(&|r| r.maintenance.as_secs_f64() * 1e6, &gc),
        avg(&|r| r.subiso_tests as f64, &gc),
        avg(&|r| r.cs_gc_size as f64, &gc),
        avg(&|r| r.sub_hits as f64, &gc),
        avg(&|r| r.super_hits as f64, &gc),
        avg(&|r| r.exact_hit as u8 as f64, &gc)
    );
}
