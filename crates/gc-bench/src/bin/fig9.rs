//! Figure 9: cache admission control on the dense datasets (PCM and
//! Synthetic) against Grapes6, Type B workloads.
//!
//! Paper claims to reproduce: (a) enabling admission control ("C + AC")
//! *increases* query-time speedups; (b) it *decreases* the speedup in
//! number of sub-iso tests — because the cache stops chasing cheap queries
//! and prioritises the expensive ones. The `--detail` section prints the
//! top-1% expensive-query analysis the paper uses to explain the effect.
//!
//! Run with: `cargo run --release -p gc-bench --bin fig9`

use gc_bench::runner::*;
use gc_core::{AdmissionConfig, GraphCache};
use gc_methods::{MethodBuilder, QueryKind};
use gc_workload::datasets;

fn main() {
    let exp = Experiment::from_args(300);
    let detail = std::env::args().any(|a| a == "--detail");
    let probs = [0.0, 0.2, 0.5];
    let columns: Vec<String> = ["PCM", "Synthetic"]
        .iter()
        .flat_map(|d| {
            probs
                .iter()
                .map(move |p| format!("{d}/{}%", (p * 100.0) as u32))
        })
        .collect();

    // Paper's printed values: PCM then Synthetic, each (0%, 20%, 50%).
    let paper_time = [
        Series {
            label: "C".into(),
            values: vec![4.35, 3.04, 2.94, 1.67, 1.73, 1.47],
        },
        Series {
            label: "C+AC".into(),
            values: vec![5.71, 4.05, 5.44, 2.50, 2.24, 1.92],
        },
    ];
    let paper_tests = [
        Series {
            label: "C".into(),
            values: vec![3.20, 2.97, 2.50, 4.36, 4.05, 3.97],
        },
        Series {
            label: "C+AC".into(),
            values: vec![2.57, 2.31, 2.28, 1.93, 1.95, 2.59],
        },
    ];

    let pcm = datasets::pcm_like(exp.scale, exp.seed);
    let synthetic = datasets::synthetic_like(exp.scale, exp.seed);
    eprintln!("[fig9] PCM: {}", pcm.stats());
    eprintln!("[fig9] Synthetic: {}", synthetic.stats());
    // The paper uses 20–40-edge queries on 377-node PCM graphs; the bench
    // datasets are ~3× smaller, so query sizes scale down proportionally
    // (keeping the paper's sizes would make single sub-iso tests dominate
    // whole runs on dense graphs). A generous work budget guards against
    // pathological tests without changing any measured outcome ordering —
    // it applies identically to the baseline and the cached runs.
    let sizes = vec![8usize, 11, 14, 17, 20];

    let mut measured_time = [
        Series {
            label: "C".into(),
            values: Vec::new(),
        },
        Series {
            label: "C+AC".into(),
            values: Vec::new(),
        },
    ];
    let mut measured_tests = [
        Series {
            label: "C".into(),
            values: Vec::new(),
        },
        Series {
            label: "C+AC".into(),
            values: Vec::new(),
        },
    ];

    for (dname, dataset) in [("PCM", &pcm), ("Synthetic", &synthetic)] {
        let budget = gc_subiso::MatchConfig::bounded(20_000_000);
        let baseline_method = MethodBuilder::grapes(6).match_config(budget).build(dataset);
        for &p in &probs {
            let spec = WorkloadSpec::TypeB {
                no_answer: p,
                alpha: 1.4,
            };
            let workload = spec.generate(dataset, &sizes, exp.queries, exp.seed);
            let base_records = baseline_records(&baseline_method, &workload, QueryKind::Subgraph);
            let base = summarize(&base_records);
            for (ac, series_idx) in [(false, 0usize), (true, 1usize)] {
                let admission = if ac {
                    AdmissionConfig::enabled()
                } else {
                    AdmissionConfig::default()
                };
                let cache = GraphCache::builder()
                    .capacity(100)
                    .window(20)
                    .admission(admission)
                    .parallel_dispatch(true)
                    .hit_match(budget)
                    .build(MethodBuilder::grapes(6).match_config(budget).build(dataset));
                let records = gc_records(&cache, &workload);
                let gc = summarize(&records);
                measured_time[series_idx]
                    .values
                    .push(gc.time_speedup_vs(&base));
                measured_tests[series_idx]
                    .values
                    .push(gc.subiso_speedup_vs(&base));

                if detail && dname == "Synthetic" && (p - 0.5).abs() < 1e-9 {
                    top1_detail(&base_records, &records, ac);
                }
            }
            eprintln!("[fig9] {dname} {}% done", (p * 100.0) as u32);
        }
    }

    print_series(
        "Fig 9(a) — query-time speedup vs Grapes6, Type B (C vs C+AC)",
        &columns,
        &paper_time,
        &measured_time,
    );
    print_series(
        "Fig 9(b) — sub-iso-test speedup vs Grapes6, Type B (C vs C+AC)",
        &columns,
        &paper_tests,
        &measured_tests,
    );
    println!(
        "\nShape checks: C+AC time speedups ≥ C time speedups; C+AC\n\
         sub-iso speedups ≤ C sub-iso speedups (the paper's pollution\n\
         insight). Run with --detail for the top-1% analysis."
    );
}

/// The paper's explanation device: average time of the top-1% most
/// expensive queries vs the rest, with and without admission control.
fn top1_detail(base: &[gc_core::QueryRecord], gc: &[gc_core::QueryRecord], ac: bool) {
    let mut order: Vec<usize> = (0..base.len()).collect();
    order.sort_by(|&a, &b| base[b].query_time().cmp(&base[a].query_time()));
    let k = (base.len() / 100).max(1);
    let (top, rest) = order.split_at(k);
    let avg = |idx: &[usize], rs: &[gc_core::QueryRecord]| {
        idx.iter()
            .map(|&i| rs[i].query_time().as_secs_f64() * 1e3)
            .sum::<f64>()
            / idx.len() as f64
    };
    println!(
        "[detail Synthetic-50% {}] top-1%: base {:.1} ms → gc {:.1} ms ({:.2}x); rest: base {:.2} ms → gc {:.2} ms ({:.2}x)",
        if ac { "C+AC" } else { "C" },
        avg(top, base),
        avg(top, gc),
        avg(top, base) / avg(top, gc).max(1e-9),
        avg(rest, base),
        avg(rest, gc),
        avg(rest, base) / avg(rest, gc).max(1e-9),
    );
}
