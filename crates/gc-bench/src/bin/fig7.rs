//! Figure 7: GraphCache query-time speedups for Type B workloads on AIDS,
//! sweeping the Zipf skew α ∈ {1.1, 1.4, 1.7} — "the more skewed the query
//! distribution, the higher the gains from caching".
//!
//! Run with: `cargo run --release -p gc-bench --bin fig7`

use gc_bench::runner::*;
use gc_core::GraphCache;
use gc_methods::{MethodKind, QueryKind};
use gc_workload::datasets;

fn main() {
    let exp = Experiment::from_args(600);
    let alphas = [1.1, 1.4, 1.7];
    let probs = [0.0, 0.2, 0.5];
    let columns: Vec<String> = probs
        .iter()
        .flat_map(|p| {
            alphas
                .iter()
                .map(move |a| format!("{}%/α{a}", (p * 100.0) as u32))
        })
        .collect();

    // Paper's printed values, grouped (0%, 20%, 50%) × (α 1.1, 1.4, 1.7).
    let paper = [
        Series {
            label: "CT-Index".into(),
            values: vec![4.42, 9.68, 22.99, 4.22, 9.76, 23.31, 4.09, 8.43, 16.55],
        },
        Series {
            label: "GGSX".into(),
            values: vec![2.82, 5.47, 10.22, 2.70, 5.38, 9.52, 2.65, 4.98, 8.27],
        },
        Series {
            label: "Grapes1".into(),
            values: vec![2.66, 3.70, 5.02, 2.52, 4.10, 4.82, 2.42, 3.45, 4.25],
        },
        Series {
            label: "Grapes6".into(),
            values: vec![1.66, 1.96, 2.17, 1.57, 1.96, 2.18, 1.56, 1.73, 1.99],
        },
    ];

    let dataset = datasets::aids_like(exp.scale, exp.seed);
    eprintln!("[fig7] AIDS: {}", dataset.stats());
    let sizes = vec![4usize, 8, 12, 16, 20];
    let mut workloads = Vec::new();
    for &p in &probs {
        for &alpha in &alphas {
            let spec = WorkloadSpec::TypeB {
                no_answer: p,
                alpha,
            };
            workloads.push(spec.generate(&dataset, &sizes, exp.queries, exp.seed));
        }
    }
    eprintln!("[fig7] workloads generated");

    let mut measured = Vec::new();
    for kind in MethodKind::FTV {
        let baseline_method = kind.build(&dataset);
        eprintln!("[fig7] {} index built", kind.name());
        let mut series = Series {
            label: kind.name().into(),
            values: Vec::new(),
        };
        for (wi, workload) in workloads.iter().enumerate() {
            let base = summarize(&baseline_records(
                &baseline_method,
                workload,
                QueryKind::Subgraph,
            ));
            let cache = GraphCache::builder()
                .capacity(100)
                .window(20)
                .parallel_dispatch(true)
                .build(kind.build(&dataset));
            let gc = summarize(&gc_records(&cache, workload));
            series.values.push(gc.time_speedup_vs(&base));
            if wi % 3 == 2 {
                eprintln!("[fig7] {} {}/{} done", kind.name(), wi + 1, workloads.len());
            }
        }
        measured.push(series);
    }
    print_series(
        "Fig 7 — GC query-time speedup, AIDS Type B, Zipf α sweep",
        &columns,
        &paper,
        &measured,
    );
    println!(
        "\nShape check: within each no-answer level, speedup should rise\n\
         with α (more skew ⇒ more cache hits), for every method."
    );
}
