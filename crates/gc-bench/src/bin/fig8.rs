//! Figure 8: GraphCache speedup in query time against GGSX for varying
//! cache sizes (c100 / c300 / c500, all with W = 20), on AIDS and PDBS,
//! Type A and Type B workloads — "increasing the cache size improves the
//! performance of the cache".
//!
//! Run with: `cargo run --release -p gc-bench --bin fig8`

use gc_bench::runner::*;
use gc_core::GraphCache;
use gc_methods::{MethodBuilder, QueryKind};
use gc_workload::datasets;

fn main() {
    let exp = Experiment::from_args(800);
    let capacities = [100usize, 300, 500];
    let type_a: Vec<WorkloadSpec> = vec![
        WorkloadSpec::Zz(1.4),
        WorkloadSpec::Zu(1.4),
        WorkloadSpec::Uu,
    ];
    let type_b: Vec<WorkloadSpec> = vec![
        WorkloadSpec::TypeB {
            no_answer: 0.0,
            alpha: 1.4,
        },
        WorkloadSpec::TypeB {
            no_answer: 0.2,
            alpha: 1.4,
        },
        WorkloadSpec::TypeB {
            no_answer: 0.5,
            alpha: 1.4,
        },
    ];

    // Paper's printed values per panel: rows c100/c300/c500.
    let paper: [(&str, [[f64; 3]; 3]); 4] = [
        (
            "AIDS/TypeA",
            [[3.39, 3.00, 2.81], [4.07, 3.82, 3.87], [4.31, 4.00, 4.05]],
        ),
        (
            "AIDS/TypeB",
            [[5.47, 5.38, 4.98], [7.94, 7.51, 6.34], [8.48, 7.86, 6.53]],
        ),
        (
            "PDBS/TypeA",
            [[5.72, 1.86, 1.53], [8.92, 2.68, 2.04], [10.00, 3.08, 2.30]],
        ),
        (
            "PDBS/TypeB",
            [[3.88, 2.83, 2.17], [5.23, 4.28, 4.11], [6.83, 5.47, 5.80]],
        ),
    ];

    let aids = datasets::aids_like(exp.scale, exp.seed);
    let pdbs = datasets::pdbs_like(exp.scale, exp.seed);
    eprintln!("[fig8] AIDS: {}", aids.stats());
    eprintln!("[fig8] PDBS: {}", pdbs.stats());
    let sizes = vec![4usize, 8, 12, 16, 20];

    let panels: [(&str, &gc_graph::GraphDataset, &[WorkloadSpec]); 4] = [
        ("AIDS/TypeA", &aids, &type_a),
        ("AIDS/TypeB", &aids, &type_b),
        ("PDBS/TypeA", &pdbs, &type_a),
        ("PDBS/TypeB", &pdbs, &type_b),
    ];

    for (panel_idx, (panel, dataset, specs)) in panels.into_iter().enumerate() {
        let columns: Vec<String> = specs.iter().map(|s| s.name()).collect();
        let baseline_method = MethodBuilder::ggsx().build(dataset);
        let workloads: Vec<_> = specs
            .iter()
            .map(|s| s.generate(dataset, &sizes, exp.queries, exp.seed))
            .collect();
        let bases: Vec<_> = workloads
            .iter()
            .map(|w| summarize(&baseline_records(&baseline_method, w, QueryKind::Subgraph)))
            .collect();
        let paper_rows: Vec<Series> = capacities
            .iter()
            .enumerate()
            .map(|(ci, c)| Series {
                label: format!("c{c}-b20"),
                values: paper[panel_idx].1[ci].to_vec(),
            })
            .collect();
        let mut measured_rows = Vec::new();
        for &capacity in &capacities {
            let mut series = Series {
                label: format!("c{capacity}-b20"),
                values: Vec::new(),
            };
            for (workload, base) in workloads.iter().zip(&bases) {
                let cache = GraphCache::builder()
                    .capacity(capacity)
                    .window(20)
                    .parallel_dispatch(true)
                    .build(MethodBuilder::ggsx().build(dataset));
                let gc = summarize(&gc_records(&cache, workload));
                series.values.push(gc.time_speedup_vs(base));
            }
            eprintln!("[fig8] {panel} c{capacity} done");
            measured_rows.push(series);
        }
        print_series(
            &format!("Fig 8 — GC query-time speedup vs GGSX, {panel}"),
            &columns,
            &paper_rows,
            &measured_rows,
        );
    }
    println!("\nShape check: within every panel/column, speedup should be\nnon-decreasing in cache size.");
}
