//! Figure 12: GraphCache over plain VF2+ pitched against full CT-Index —
//! "GC can replace the best-performing FTV methods, achieving comparable
//! or better performance for a fraction of the space and no pre-processing
//! cost".
//!
//! Speedup here is CT-Index's avg query time over GC/VF2+'s (>1 means the
//! cache beats the index). Space figures are printed alongside.
//!
//! Run with: `cargo run --release -p gc-bench --bin fig12`

use gc_bench::runner::*;
use gc_core::GraphCache;
use gc_methods::{MethodBuilder, QueryKind};
use gc_workload::datasets;

fn main() {
    let exp = Experiment::from_args(500);
    let specs = [
        WorkloadSpec::Zz(1.4),
        WorkloadSpec::Zu(1.4),
        WorkloadSpec::Uu,
    ];
    let columns: Vec<String> = ["AIDS", "PDBS"]
        .iter()
        .flat_map(|d| specs.iter().map(move |s| format!("{d}/{}", s.name())))
        .collect();

    // Paper's printed values: AIDS (ZZ, ZU, UU) then PDBS (ZZ, ZU, UU).
    let paper = [
        Series {
            label: "c100-b20".into(),
            values: vec![0.74, 0.55, 1.02, 1.82, 1.02, 0.86],
        },
        Series {
            label: "c500-b20".into(),
            values: vec![1.82, 1.80, 1.85, 3.58, 1.69, 1.35],
        },
    ];

    let aids = datasets::aids_like(exp.scale, exp.seed);
    let pdbs = datasets::pdbs_like(exp.scale, exp.seed);
    eprintln!("[fig12] AIDS: {}", aids.stats());
    eprintln!("[fig12] PDBS: {}", pdbs.stats());
    let sizes = vec![4usize, 8, 12, 16, 20];

    let mut measured = vec![
        Series {
            label: "c100-b20".into(),
            values: Vec::new(),
        },
        Series {
            label: "c500-b20".into(),
            values: Vec::new(),
        },
    ];
    for (dname, dataset) in [("AIDS", &aids), ("PDBS", &pdbs)] {
        let ct = MethodBuilder::ct_index().build(dataset);
        let ct_index_bytes = ct.index_memory_bytes().unwrap_or(0);
        for spec in &specs {
            let workload = spec.generate(dataset, &sizes, exp.queries, exp.seed);
            let ct_summary = summarize(&baseline_records(&ct, &workload, QueryKind::Subgraph));
            for (ci, capacity) in [(0usize, 100usize), (1, 500)] {
                let cache = GraphCache::builder()
                    .capacity(capacity)
                    .window(20)
                    .parallel_dispatch(true)
                    .build(MethodBuilder::si_vf2_plus().build(dataset));
                let gc = summarize(&gc_records(&cache, &workload));
                // Speedup of GC/VF2+ relative to CT-Index.
                measured[ci].values.push(gc.time_speedup_vs(&ct_summary));
                if ci == 1 && spec.name() == "ZZ" {
                    println!(
                        "[space {dname}] GC stores {:.0} KiB vs CT-Index {:.0} KiB ({:.1}%)",
                        cache.memory_bytes() as f64 / 1024.0,
                        ct_index_bytes as f64 / 1024.0,
                        cache.memory_bytes() as f64 / ct_index_bytes.max(1) as f64 * 100.0
                    );
                }
            }
            eprintln!("[fig12] {dname}/{} done", spec.name());
        }
    }
    print_series(
        "Fig 12 — GC/VF2+ vs CT-Index (query-time ratio; >1 = GC wins)",
        &columns,
        &paper,
        &measured,
    );
    println!(
        "\nShape checks: c500 beats c100 in every column; c500 matches or\n\
         beats CT-Index across the board (paper: avg 1.8×); GC space is a\n\
         fraction of the CT-Index index."
    );
}
