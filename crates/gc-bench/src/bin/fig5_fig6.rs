//! Figures 5 and 6: GraphCache speedups on PDBS across all four FTV
//! methods (CT-Index, GGSX, Grapes1, Grapes6) and all six workloads,
//! in query time (Fig. 5) and in number of sub-iso tests (Fig. 6).
//!
//! The paper prints every bar value; both reference series are embedded
//! below. Headline takeaways to reproduce: GC improves both metrics for
//! every method, and test-count reductions do *not* translate 1:1 into
//! time reductions.
//!
//! Run with: `cargo run --release -p gc-bench --bin fig5_fig6`

use gc_bench::runner::*;
use gc_core::GraphCache;
use gc_methods::{MethodKind, QueryKind};
use gc_workload::datasets;

fn main() {
    let exp = Experiment::from_args(600);
    let specs = WorkloadSpec::paper_six();
    let columns: Vec<String> = specs.iter().map(|s| s.name()).collect();

    // Figure 5 — query-time speedups on PDBS (paper's printed values).
    let paper_time = [
        Series {
            label: "CT-Index".into(),
            values: vec![3.43, 1.60, 1.29, 2.54, 2.20, 1.43],
        },
        Series {
            label: "GGSX".into(),
            values: vec![5.72, 1.86, 1.53, 3.88, 2.83, 2.17],
        },
        Series {
            label: "Grapes1".into(),
            values: vec![42.37, 14.72, 10.92, 14.92, 16.44, 11.69],
        },
        Series {
            label: "Grapes6".into(),
            values: vec![22.09, 11.24, 8.29, 11.10, 10.39, 7.93],
        },
    ];
    // Figure 6 — sub-iso-test speedups on PDBS (paper's printed values).
    let paper_tests = [
        Series {
            label: "CT-Index".into(),
            values: vec![9.60, 4.46, 3.52, 8.77, 9.17, 7.80],
        },
        Series {
            label: "GGSX".into(),
            values: vec![9.11, 4.05, 3.25, 7.88, 6.09, 4.19],
        },
        Series {
            label: "Grapes1".into(),
            values: vec![10.56, 4.86, 3.75, 8.88, 9.33, 7.31],
        },
        Series {
            label: "Grapes6".into(),
            values: vec![10.56, 4.86, 3.75, 8.88, 9.33, 7.31],
        },
    ];

    let dataset = datasets::pdbs_like(exp.scale, exp.seed);
    eprintln!("[fig5/6] PDBS: {}", dataset.stats());
    let sizes = vec![4usize, 8, 12, 16, 20];
    // Workloads are shared across all four methods (generation — in
    // particular the Type B no-answer pools — is expensive on PDBS).
    let workloads: Vec<_> = specs
        .iter()
        .map(|s| s.generate(&dataset, &sizes, exp.queries, exp.seed))
        .collect();
    eprintln!("[fig5/6] workloads generated");

    let mut measured_time: Vec<Series> = Vec::new();
    let mut measured_tests: Vec<Series> = Vec::new();
    for kind in MethodKind::FTV {
        let baseline_method = kind.build(&dataset);
        eprintln!("[fig5/6] {} index built", kind.name());
        let mut t = Series {
            label: kind.name().into(),
            values: Vec::new(),
        };
        let mut n = Series {
            label: kind.name().into(),
            values: Vec::new(),
        };
        for (spec, workload) in specs.iter().zip(&workloads) {
            let base = summarize(&baseline_records(
                &baseline_method,
                workload,
                QueryKind::Subgraph,
            ));
            let cache = GraphCache::builder()
                .capacity(100)
                .window(20)
                .parallel_dispatch(true)
                .build(kind.build(&dataset));
            let gc = summarize(&gc_records(&cache, workload));
            t.values.push(gc.time_speedup_vs(&base));
            n.values.push(gc.subiso_speedup_vs(&base));
            eprintln!("[fig5/6] {}/{} done", kind.name(), spec.name());
        }
        measured_time.push(t);
        measured_tests.push(n);
    }

    print_series(
        "Fig 5 — GC query-time speedup, PDBS (C=100, W=20, HD)",
        &columns,
        &paper_time,
        &measured_time,
    );
    print_series(
        "Fig 6 — GC sub-iso-test speedup, PDBS (C=100, W=20, HD)",
        &columns,
        &paper_tests,
        &measured_tests,
    );
    println!(
        "\nShape checks: every measured speedup should be > 1; ZZ should be\n\
         the best Type-A column; test-count speedups generally exceed the\n\
         corresponding time speedups for the cheap-filter methods."
    );
}
