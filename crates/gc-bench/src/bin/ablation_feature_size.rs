//! §7.3 feature-size ablation: bump every FTV method's feature size by one
//! (paths ≤ 5 for GGSX/Grapes; trees ≤ 7, cycles ≤ 9, 8192-bit maps for
//! CT-Index). Paper findings: ~10% lower average query time, but nearly 2×
//! the index space — while GraphCache achieves its speedup "for a
//! negligible space overhead".
//!
//! Run with: `cargo run --release -p gc-bench --bin ablation_feature_size`

use gc_bench::runner::*;
use gc_index::{CtConfig, GgsxConfig};
use gc_methods::{MethodBuilder, QueryKind};
use gc_workload::datasets;

fn main() {
    let exp = Experiment::from_args(400);
    let dataset = datasets::aids_like(exp.scale, exp.seed);
    eprintln!("[ablation] AIDS: {}", dataset.stats());
    let sizes = vec![4usize, 8, 12, 16, 20];
    let workload = WorkloadSpec::TypeB {
        no_answer: 0.2,
        alpha: 1.4,
    }
    .generate(&dataset, &sizes, exp.queries, exp.seed);

    println!("\n=== §7.3 ablation — FTV feature size +1 (AIDS, 20% workload) ===");
    println!(
        "{:<22} {:>14} {:>14} {:>12} {:>10}",
        "method", "avg query", "avg sub-iso", "index KiB", "Δtime"
    );

    let mut base_time = 0.0f64;
    for (name, method) in [
        ("GGSX len4 (default)", MethodBuilder::ggsx().build(&dataset)),
        (
            "GGSX len5 (+1)",
            MethodBuilder::ggsx_with(GgsxConfig::with_path_len(5)).build(&dataset),
        ),
        (
            "CT-Index 6/8/4096",
            MethodBuilder::ct_index().build(&dataset),
        ),
        (
            "CT-Index 7/9/8192",
            MethodBuilder::ct_index_with(CtConfig::enlarged()).build(&dataset),
        ),
    ] {
        let s = summarize(&baseline_records(&method, &workload, QueryKind::Subgraph));
        let delta = if name.ends_with("(+1)") || name.ends_with("8192") {
            format!("{:+.1}%", (s.avg_query_time_us / base_time - 1.0) * 100.0)
        } else {
            base_time = s.avg_query_time_us;
            "—".to_string()
        };
        println!(
            "{:<22} {:>11.0} µs {:>14.1} {:>12.0} {:>10}",
            name,
            s.avg_query_time_us,
            s.avg_subiso_tests,
            method.index_memory_bytes().unwrap_or(0) as f64 / 1024.0,
            delta
        );
        eprintln!("[ablation] {name} done");
    }
    println!(
        "\nPaper reference: +1 feature size ⇒ ≈10% lower query time but\n\
         ≈2× index space, across all FTV methods."
    );
}
