//! Figure 4: query-time speedups over CT-Index across replacement policies.
//!
//! Paper setup: AIDS and PDBS, workloads {ZZ, ZU, UU, 0%, 20%, 50%},
//! Method M = CT-Index, C = 100, W = 20, policies {LRU, POP, PIN, PINC,
//! HD}. The paper prints no bar values for this figure; the claims to
//! reproduce are qualitative:
//!
//! 1. "it is always one of the GC-exclusive policies (PIN, PINC) that
//!    produces the best results";
//! 2. PIN vs PINC flips between datasets ("PIN dominates the scene for
//!    queries against the AIDS dataset but it is PINC that takes the lead
//!    when querying the PDBS dataset");
//! 3. "HD … always manages to do better or on par with the best of the
//!    alternatives" (speedups up to ≈10× on AIDS, ≈4× axis on PDBS).
//!
//! Run with: `cargo run --release -p gc-bench --bin fig4`

use gc_bench::runner::*;
use gc_core::{GraphCache, PolicyKind};
use gc_methods::{MethodBuilder, QueryKind};
use gc_workload::datasets;

fn main() {
    let exp = Experiment::from_args(800);
    let specs = WorkloadSpec::paper_six();
    let columns: Vec<String> = specs.iter().map(|s| s.name()).collect();

    for (dataset_name, dataset) in [
        ("AIDS", datasets::aids_like(exp.scale, exp.seed)),
        ("PDBS", datasets::pdbs_like(exp.scale, exp.seed)),
    ] {
        eprintln!("[fig4] {dataset_name}: {}", dataset.stats());
        let baseline_method = MethodBuilder::ct_index().build(&dataset);
        eprintln!("[fig4] CT-Index built");
        let sizes = vec![4usize, 8, 12, 16, 20];

        let mut measured: Vec<Series> = PolicyKind::ALL
            .iter()
            .map(|p| Series {
                label: p.name().into(),
                values: Vec::new(),
            })
            .collect();

        for spec in &specs {
            let workload = spec.generate(&dataset, &sizes, exp.queries, exp.seed);
            let base = summarize(&baseline_records(
                &baseline_method,
                &workload,
                QueryKind::Subgraph,
            ));
            for (pi, policy) in PolicyKind::ALL.into_iter().enumerate() {
                let method = MethodBuilder::ct_index().build(&dataset);
                let cache = GraphCache::builder()
                    .capacity(100)
                    .window(20)
                    .policy(policy)
                    .parallel_dispatch(true)
                    .build(method);
                let gc = summarize(&gc_records(&cache, &workload));
                measured[pi].values.push(gc.time_speedup_vs(&base));
            }
            eprintln!("[fig4] {dataset_name}/{} done", spec.name());
        }
        print_series(
            &format!("Fig 4 — query-time speedup over CT-Index, {dataset_name} (C=100, W=20)"),
            &columns,
            &[],
            &measured,
        );

        // The paper's takeaway checks, evaluated on the measured data.
        let mut hd_near_best_everywhere = true;
        let mut exclusive_best = 0usize;
        for col in 0..columns.len() {
            let best = measured
                .iter()
                .map(|s| s.values[col])
                .fold(f64::MIN, f64::max);
            let hd = measured[4].values[col];
            if hd < 0.9 * best {
                hd_near_best_everywhere = false;
            }
            let pin = measured[2].values[col];
            let pinc = measured[3].values[col];
            if pin.max(pinc) >= best - 1e-9 {
                exclusive_best += 1;
            }
        }
        println!(
            "takeaway checks for {dataset_name}: GC-exclusive policy best in {}/{} workloads; HD within 10% of best everywhere: {}",
            exclusive_best,
            columns.len(),
            hd_near_best_everywhere
        );
    }
}
