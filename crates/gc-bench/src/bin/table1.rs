//! Table 1 (paper §6.3): the cache-replacement running example.
//!
//! Reproduces the exact eviction decisions of every policy on the paper's
//! hypothetical GCstats snapshot, evicting 2 of 6 entries at time 100.
//!
//! Run with: `cargo run --release -p gc-bench --bin table1`

use gc_core::policy::{squared_cov, PolicyKind, PolicyRow};

fn main() {
    let row = |serial, last_hit, hits, r_total, c_total: f64| PolicyRow {
        serial,
        last_hit,
        hits,
        r_total,
        c_total,
    };
    // SerialNo | LastHit | Hits | R (CS reduction) | C (SI cost reduction)
    let table = vec![
        row(11, 91, 23, 170, 2600.0),
        row(13, 51, 32, 80, 1200.0),
        row(37, 69, 26, 76, 780.0),
        row(53, 78, 13, 210, 360.0),
        row(82, 90, 5, 120, 150.0),
        row(91, 95, 4, 10, 270.0),
    ];

    println!("Table 1 — Running Example: Cached Query Statistics");
    println!(
        "{:>8} {:>9} {:>6} {:>6} {:>8}",
        "Serial", "LastHit", "Hits", "R", "C"
    );
    for r in &table {
        println!(
            "{:>8} {:>9} {:>6} {:>6} {:>8.0}",
            r.serial, r.last_hit, r.hits, r.r_total, r.c_total
        );
    }

    let paper: [(&str, [u64; 2]); 5] = [
        ("LRU", [13, 37]),
        ("POP", [11, 53]),
        ("PIN", [13, 91]),
        ("PINC", [53, 82]),
        ("HD", [53, 82]),
    ];

    println!("\nEvictions at time 100 (2 victims):");
    println!(
        "{:<8} {:>16} {:>16} {:>6}",
        "policy", "paper", "measured", "match"
    );
    let mut all_match = true;
    for (name, expected) in paper {
        let kind = PolicyKind::ALL
            .into_iter()
            .find(|k| k.name() == name)
            .expect("known policy");
        let mut victims = kind.select_victims(&table, 2, 100);
        victims.sort_unstable();
        let ok = victims == expected;
        all_match &= ok;
        println!(
            "{:<8} {:>16} {:>16} {:>6}",
            name,
            format!("{expected:?}"),
            format!("{victims:?}"),
            if ok { "yes" } else { "NO" }
        );
    }

    let cov2 = squared_cov(table.iter().map(|r| r.r_total as f64));
    println!(
        "\nHD dispatch: CoV(R) = {:.2} (paper ≈ 0.65) ⇒ {} scoring",
        cov2.sqrt(),
        if cov2 > 1.0 { "PIN" } else { "PINC" }
    );
    assert!(all_match, "Table 1 reproduction failed");
    println!("\nAll five policies reproduce the paper's evictions exactly.");
}
