//! Figure 10: average per-query execution time and cache-maintenance
//! overhead (milliseconds) for the 20% Type B workload on AIDS, across
//! CT-Index / GGSX / Grapes6 and cache sizes c100/c300/c500.
//!
//! Paper claims to reproduce: (1) GC's query time is far below Method M's;
//! (2) the maintenance overhead is trivial relative to query time; (3) the
//! overhead grows with cache size.
//!
//! Run with: `cargo run --release -p gc-bench --bin fig10`

use gc_bench::runner::*;
use gc_core::GraphCache;
use gc_methods::{MethodKind, QueryKind};
use gc_workload::datasets;

fn main() {
    let exp = Experiment::from_args(600);
    let capacities = [100usize, 300, 500];

    // Paper's printed bars (ms/query): per method, Method M alone then GC
    // at c100/c300/c500; below them the overhead bars per cache size.
    let paper_query_ms = [
        ("CT-Index", [1285.0, 132.0, 68.0, 60.0]),
        ("GGSX", [697.0, 130.0, 93.0, 89.0]),
        ("Grapes6", [664.0, 338.0, 335.0, 320.0]),
    ];
    let paper_overhead_ms = [
        ("CT-Index", [6.0, 21.0, 34.0]),
        ("GGSX", [7.0, 18.0, 31.0]),
        ("Grapes6", [7.0, 20.0, 31.0]),
    ];

    let dataset = datasets::aids_like(exp.scale, exp.seed);
    eprintln!("[fig10] AIDS: {}", dataset.stats());
    let sizes = vec![4usize, 8, 12, 16, 20];
    let spec = WorkloadSpec::TypeB {
        no_answer: 0.2,
        alpha: 1.4,
    };
    let workload = spec.generate(&dataset, &sizes, exp.queries, exp.seed);

    println!("\n=== Fig 10 — avg query time + maintenance overhead, AIDS 20% workload ===");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12} | {:>10} {:>10} {:>10}",
        "method", "M alone", "GC c100", "GC c300", "GC c500", "ovh c100", "ovh c300", "ovh c500"
    );
    for (mi, kind) in [MethodKind::CtIndex, MethodKind::Ggsx, MethodKind::Grapes6]
        .into_iter()
        .enumerate()
    {
        let baseline_method = kind.build(&dataset);
        let base = summarize(&baseline_records(
            &baseline_method,
            &workload,
            QueryKind::Subgraph,
        ));
        let mut row_q = vec![base.avg_query_time_us / 1e3];
        let mut row_o = Vec::new();
        for &capacity in &capacities {
            let cache = GraphCache::builder()
                .capacity(capacity)
                .window(20)
                .parallel_dispatch(true)
                .build(kind.build(&dataset));
            let records = gc_records(&cache, &workload);
            let gc = summarize(&records);
            // Overhead = total maintenance / number of maintenance-eligible
            // queries (the paper reports it per query).
            let overhead_ms = cache.maintenance_total().as_secs_f64() * 1e3 / records.len() as f64;
            row_q.push(gc.avg_query_time_us / 1e3);
            row_o.push(overhead_ms);
            eprintln!("[fig10] {} c{capacity} done", kind.name());
        }
        println!(
            "{:<10} {:>9.2} ms {:>9.2} ms {:>9.2} ms {:>9.2} ms | {:>7.3} ms {:>7.3} ms {:>7.3} ms",
            kind.name(),
            row_q[0],
            row_q[1],
            row_q[2],
            row_q[3],
            row_o[0],
            row_o[1],
            row_o[2]
        );
        println!(
            "{:<10} {:>9.0} ms {:>9.0} ms {:>9.0} ms {:>9.0} ms | {:>7.0} ms {:>7.0} ms {:>7.0} ms   (paper)",
            "",
            paper_query_ms[mi].1[0],
            paper_query_ms[mi].1[1],
            paper_query_ms[mi].1[2],
            paper_query_ms[mi].1[3],
            paper_overhead_ms[mi].1[0],
            paper_overhead_ms[mi].1[1],
            paper_overhead_ms[mi].1[2]
        );
    }
    println!(
        "\nShape checks: GC query time < Method M alone; overhead ≪ query\n\
         time; overhead grows with cache size."
    );
}
