//! §7.3 space-overhead comparison: GraphCache's stores (cached queries +
//! answer sets + query index + statistics) versus the FTV methods' dataset
//! indexes. Paper: "for the AIDS dataset the memory and disk space required
//! by GraphCache was just over 1% of the space required for the indexes of
//! the various FTV methods"; even the 500-entry cache stays well below
//! CT-Index's (smallest) index.
//!
//! Run with: `cargo run --release -p gc-bench --bin ablation_space`

use gc_bench::runner::*;
use gc_core::GraphCache;
use gc_methods::MethodKind;
use gc_workload::datasets;

fn main() {
    let exp = Experiment::from_args(600);
    for (dname, dataset) in [
        ("AIDS", datasets::aids_like(exp.scale, exp.seed)),
        ("PDBS", datasets::pdbs_like(exp.scale, exp.seed)),
    ] {
        eprintln!("[space] {dname}: {}", dataset.stats());
        let sizes = vec![4usize, 8, 12, 16, 20];
        let workload = WorkloadSpec::Zz(1.4).generate(&dataset, &sizes, exp.queries, exp.seed);

        println!("\n=== §7.3 space — {dname} ===");
        println!("{:<22} {:>14}", "store", "KiB");
        for kind in MethodKind::FTV {
            let m = kind.build(&dataset);
            println!(
                "{:<22} {:>14.0}",
                format!("{} index", kind.name()),
                m.index_memory_bytes().unwrap_or(0) as f64 / 1024.0
            );
        }
        for capacity in [100usize, 500] {
            let cache = GraphCache::builder()
                .capacity(capacity)
                .window(20)
                .build(MethodKind::Ggsx.build(&dataset));
            for q in workload.graphs() {
                cache.run(q);
            }
            println!(
                "{:<22} {:>14.0}",
                format!("GraphCache c{capacity}"),
                cache.memory_bytes() as f64 / 1024.0
            );
        }
        eprintln!("[space] {dname} done");
    }
    println!(
        "\nPaper reference: GC ≈ 1% of FTV index space on AIDS (c100);\n\
         c500 under ≈70% of CT-Index's index on PDBS, under 1% on AIDS."
    );
}
