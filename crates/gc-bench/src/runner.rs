//! Shared experiment plumbing: scale knobs, workload specs, baseline/GC
//! runners and table printing.

use gc_core::{GraphCache, QueryRecord, QueryRequest, RunSummary};
use gc_methods::{Method, QueryKind};
use gc_workload::Workload;

// The workload-category vocabulary moved into the scenario harness (it is
// part of a `Scenario`'s identity now); the figure binaries keep using it
// from here.
pub use gc_harness::WorkloadSpec;

/// The paper measures after letting one window pass (§7.2: "We only allow
/// one Window (i.e., 20 queries) before starting measuring").
pub const WARMUP: usize = 20;

/// Experiment-wide knobs, parsed from argv and the environment.
#[derive(Debug, Clone, Copy)]
pub struct Experiment {
    /// Dataset scale multiplier (`--scale`, `GC_SCALE`; default 1.0 =
    /// bench-scale profiles from `gc_workload::datasets`).
    pub scale: f64,
    /// Queries per workload (`--queries`, `GC_QUERIES`).
    pub queries: usize,
    /// Master seed (`--seed`, `GC_SEED`).
    pub seed: u64,
}

impl Experiment {
    /// Parses knobs with a figure-specific default query count.
    pub fn from_args(default_queries: usize) -> Self {
        let mut exp = Experiment {
            scale: std::env::var("GC_SCALE")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(1.0),
            queries: std::env::var("GC_QUERIES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default_queries),
            seed: std::env::var("GC_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(42),
        };
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i + 1 < args.len() {
            match args[i].as_str() {
                "--scale" => exp.scale = args[i + 1].parse().expect("--scale <f64>"),
                "--queries" => exp.queries = args[i + 1].parse().expect("--queries <usize>"),
                "--seed" => exp.seed = args[i + 1].parse().expect("--seed <u64>"),
                _ => {
                    i += 1;
                    continue;
                }
            }
            i += 2;
        }
        exp
    }
}

/// Runs the uncached Method M over a workload, returning per-query records.
pub fn baseline_records(method: &Method, workload: &Workload, kind: QueryKind) -> Vec<QueryRecord> {
    workload
        .graphs()
        .map(|q| {
            let r = method.run_directed(q, kind);
            QueryRecord {
                m_filter: r.filter.duration,
                verify: r.verify.duration,
                subiso_tests: r.verify.stats.tests,
                verify_work: r.verify.stats.nodes_expanded,
                cs_m_size: r.filter.candidates.len(),
                cs_gc_size: r.filter.candidates.len(),
                answer_size: r.answer.len(),
                ..Default::default()
            }
        })
        .collect()
}

/// Replays a workload through a GraphCache, returning per-query records.
///
/// Queries run sequentially on the calling thread (the paper's setup: one
/// client, so the figures measure only the cache's benefit). Since
/// [`GraphCache::run`] takes `&self`, the cache can be shared.
pub fn gc_records(cache: &GraphCache, workload: &Workload) -> Vec<QueryRecord> {
    workload.graphs().map(|q| cache.run(q).record).collect()
}

/// Replays a workload through [`GraphCache::run_batch`], fanning queries
/// across the cache's worker threads. Records come back in workload order.
pub fn gc_records_batch(cache: &GraphCache, workload: &Workload) -> Vec<QueryRecord> {
    cache
        .run_batch(workload.graphs().map(QueryRequest::from))
        .into_iter()
        .map(|resp| resp.result.record)
        .collect()
}

/// One printed series: a label, the paper's numbers, and ours.
#[derive(Debug, Clone)]
pub struct Series {
    /// Row label (e.g. a policy or method name).
    pub label: String,
    /// Values per column.
    pub values: Vec<f64>,
}

/// Prints a figure-style table: one column per workload/parameter, one row
/// per series, with the paper's reference row(s) above.
pub fn print_series(title: &str, columns: &[String], paper: &[Series], measured: &[Series]) {
    println!("\n=== {title} ===");
    print!("{:<26}", "");
    for c in columns {
        print!("{c:>9}");
    }
    println!();
    for s in paper {
        print!("{:<26}", format!("paper {}", s.label));
        for v in &s.values {
            print!("{v:>9.2}");
        }
        println!();
    }
    for s in measured {
        print!("{:<26}", format!("measured {}", s.label));
        for v in &s.values {
            print!("{v:>9.2}");
        }
        println!();
    }
}

/// Convenience: builds the run summary with the paper's warm-up skip.
pub fn summarize(records: &[QueryRecord]) -> RunSummary {
    RunSummary::from_records(records, WARMUP)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_methods::MethodBuilder;
    use gc_workload::datasets;

    #[test]
    fn spec_names() {
        let names: Vec<String> = WorkloadSpec::paper_six().iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["ZZ", "ZU", "UU", "0%", "20%", "50%"]);
    }

    #[test]
    fn runners_produce_matching_record_counts() {
        let d = datasets::aids_like(0.04, 3);
        let exp = Experiment {
            scale: 1.0,
            queries: 30,
            seed: 9,
        };
        let w = WorkloadSpec::Zz(1.4).generate(&d, &[4, 8], exp.queries, exp.seed);
        assert_eq!(w.len(), 30);
        let m = MethodBuilder::ggsx().build(&d);
        let base = baseline_records(&m, &w, QueryKind::Subgraph);
        assert_eq!(base.len(), 30);
        let cache = gc_core::GraphCache::builder()
            .capacity(10)
            .window(5)
            .build(MethodBuilder::ggsx().build(&d));
        let gc = gc_records(&cache, &w);
        assert_eq!(gc.len(), 30);
        // Answers agree (summaries exist).
        let _ = summarize(&base);
        let _ = summarize(&gc);
    }

    #[test]
    fn batch_runner_matches_workload_order() {
        let d = datasets::aids_like(0.04, 3);
        let exp = Experiment {
            scale: 1.0,
            queries: 20,
            seed: 10,
        };
        let w = WorkloadSpec::Uu.generate(&d, &[4], exp.queries, exp.seed);
        let cache = gc_core::GraphCache::builder()
            .capacity(10)
            .window(5)
            .threads(4)
            .build(MethodBuilder::ggsx().build(&d));
        let records = gc_records_batch(&cache, &w);
        assert_eq!(records.len(), 20);
        let m = MethodBuilder::ggsx().build(&d);
        for (r, q) in records.iter().zip(w.graphs()) {
            assert_eq!(r.answer_size, m.run(q).answer.len());
        }
    }
}
