//! Experiment harness reproducing every table and figure of the GraphCache
//! paper's evaluation (§7).
//!
//! Each `src/bin/figN.rs` binary regenerates one figure: it builds the
//! scaled dataset stand-ins, generates the paper's workloads, runs the
//! uncached Method M baseline and GraphCache over the same query stream,
//! and prints the speedup series next to the paper's published numbers.
//!
//! Absolute numbers differ (synthetic stand-in datasets, laptop-scale
//! sizes); the *shape* — who wins, rough factors, orderings — is the
//! reproduction target. See EXPERIMENTS.md for recorded results.
//!
//! Scale knobs (all binaries): `--scale <f>` / env `GC_SCALE` multiplies
//! dataset sizes; `--queries <n>` / env `GC_QUERIES` sets workload length;
//! `--seed <n>` / env `GC_SEED` reseeds everything.

pub mod runner;

pub use runner::{baseline_records, gc_records, print_series, Experiment, Series, WorkloadSpec};
