//! The Candidate Set Pruner (paper §5.1): equations (1) and (2), the two
//! special cases, and the inverse handling for supergraph queries.
//!
//! For a **subgraph** query `g`:
//!
//! * *expanding hits* are cached queries `q ⊇ g` (`Result_sub(g)`): every
//!   graph in `Answer(q) ∩ CS_M(g)` certainly contains `g` and moves
//!   straight into the answer — equation (1);
//! * *restricting hits* are cached queries `q ⊆ g` (`Result_super(g)`):
//!   any graph outside `Answer(q)` cannot contain `g`, so the remaining
//!   candidate set is intersected with each hit's answer — equation (2);
//! * if a restricting hit has an **empty answer**, the whole result is
//!   empty (second special case).
//!
//! For a **supergraph** query the roles swap exactly (paper §5.1,
//! "Supergraph Query Processing"): answers of cached queries contained in
//! `g` expand the result; answers of cached queries containing `g`
//! restrict it; the empty-answer shortcut moves to the restricting side —
//! which is again handled by the same code path, with the hit sets swapped
//! by the caller.

use crate::stats::QuerySerial;
use gc_graph::{idset, GraphId};

/// How a query was resolved by the pruner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneOutcome {
    /// No special case: `direct_answer` comes from cache, `remaining` still
    /// needs verification.
    Pruned,
    /// A restricting hit had an empty answer — the result is necessarily
    /// empty and verification is skipped entirely (greatest possible gain).
    EmptyShortcut(QuerySerial),
}

/// A cached query's contribution to pruning one new query — feeds the
/// statistics monitor ("the Candidate Set Pruner knows exactly which graphs
/// from the answer set of each matched cached query were removed", §5.2).
#[derive(Debug, Clone)]
pub struct Contribution {
    /// The cached query's serial.
    pub serial: QuerySerial,
    /// Dataset graphs this hit removed from the candidate set.
    pub removed: Vec<GraphId>,
}

/// Result of pruning one candidate set.
#[derive(Debug, Clone)]
pub struct PruneResult {
    /// Outcome kind.
    pub outcome: PruneOutcome,
    /// Graphs answered directly from the cache (already known positive).
    pub direct_answer: Vec<GraphId>,
    /// Candidates that still need sub-iso verification.
    pub remaining: Vec<GraphId>,
    /// Per-hit removal attribution.
    pub contributions: Vec<Contribution>,
}

/// One hit as seen by the pruner: the cached query's serial and its answer.
#[derive(Debug, Clone, Copy)]
pub struct HitAnswer<'a> {
    /// Serial of the cached query.
    pub serial: QuerySerial,
    /// Its cached (sorted) answer set.
    pub answer: &'a [GraphId],
}

/// Applies equations (1) and (2) to `cs_m`.
///
/// `expanding` are the hits whose answers inject graphs into the result
/// (for subgraph queries: `Result_sub`); `restricting` are the hits whose
/// answers bound it (for subgraph queries: `Result_super`). The caller
/// swaps the two for supergraph queries.
pub fn prune(
    cs_m: &[GraphId],
    expanding: &[HitAnswer<'_>],
    restricting: &[HitAnswer<'_>],
) -> PruneResult {
    // Second special case first: it short-circuits everything.
    if let Some(hit) = restricting.iter().find(|h| h.answer.is_empty()) {
        return PruneResult {
            outcome: PruneOutcome::EmptyShortcut(hit.serial),
            direct_answer: Vec::new(),
            remaining: Vec::new(),
            contributions: vec![Contribution {
                serial: hit.serial,
                removed: cs_m.to_vec(),
            }],
        };
    }

    let mut contributions: Vec<Contribution> = Vec::new();

    // Equation (1): remove ∪ Answer(q) from CS_M, moving the intersection
    // directly into the answer.
    let mut union_expanding: Vec<GraphId> = Vec::new();
    for hit in expanding {
        let removed = idset::intersect(cs_m, hit.answer);
        if !removed.is_empty() {
            contributions.push(Contribution {
                serial: hit.serial,
                removed,
            });
        } else {
            // A hit with nothing to remove still counts as a hit upstream;
            // record the empty contribution for bookkeeping.
            contributions.push(Contribution {
                serial: hit.serial,
                removed: Vec::new(),
            });
        }
        union_expanding = idset::union(&union_expanding, hit.answer);
    }
    let direct_answer = idset::intersect(cs_m, &union_expanding);
    let mut remaining = idset::difference(cs_m, &union_expanding);

    // Equation (2): intersect with each restricting hit's answer.
    for hit in restricting {
        let removed = idset::difference(&remaining, hit.answer);
        contributions.push(Contribution {
            serial: hit.serial,
            removed: removed.clone(),
        });
        if !removed.is_empty() {
            remaining = idset::intersect(&remaining, hit.answer);
        }
    }

    PruneResult {
        outcome: PruneOutcome::Pruned,
        direct_answer,
        remaining,
        contributions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<GraphId> {
        v.iter().copied().map(GraphId).collect()
    }

    /// The worked example of Fig. 3(a): CS_M = {G1..G4}, a sub-hit with
    /// answer {G1, G2} ⇒ G1, G2 go straight to the answer, G3, G4 remain.
    #[test]
    fn paper_figure_3a_subgraph_case() {
        let cs = ids(&[1, 2, 3, 4]);
        let answer = ids(&[1, 2]);
        let hit = HitAnswer {
            serial: 42,
            answer: &answer,
        };
        let r = prune(&cs, &[hit], &[]);
        assert_eq!(r.outcome, PruneOutcome::Pruned);
        assert_eq!(r.direct_answer, ids(&[1, 2]));
        assert_eq!(r.remaining, ids(&[3, 4]));
        assert_eq!(r.contributions.len(), 1);
        assert_eq!(r.contributions[0].removed, ids(&[1, 2]));
    }

    /// The worked example of Fig. 3(b): CS_M = {G1..G4}, a super-hit with
    /// answer {G1, G5} ⇒ only G1 can still match; G2, G3, G4 are pruned.
    #[test]
    fn paper_figure_3b_supergraph_case() {
        let cs = ids(&[1, 2, 3, 4]);
        let answer = ids(&[1, 5]);
        let hit = HitAnswer {
            serial: 43,
            answer: &answer,
        };
        let r = prune(&cs, &[], &[hit]);
        assert_eq!(r.direct_answer, ids(&[]));
        assert_eq!(r.remaining, ids(&[1]));
        assert_eq!(r.contributions[0].removed, ids(&[2, 3, 4]));
    }

    /// Both equations together: (1) first, then (2) on what's left.
    #[test]
    fn combined_pruning() {
        let cs = ids(&[1, 2, 3, 4, 5]);
        let exp_answer = ids(&[1, 2]);
        let res_answer = ids(&[2, 3, 9]);
        let r = prune(
            &cs,
            &[HitAnswer {
                serial: 1,
                answer: &exp_answer,
            }],
            &[HitAnswer {
                serial: 2,
                answer: &res_answer,
            }],
        );
        assert_eq!(r.direct_answer, ids(&[1, 2]));
        // After eq (1): {3,4,5}; eq (2) keeps only those in {2,3,9}: {3}.
        assert_eq!(r.remaining, ids(&[3]));
        let removed_by_2: &Contribution = r.contributions.iter().find(|c| c.serial == 2).unwrap();
        assert_eq!(removed_by_2.removed, ids(&[4, 5]));
    }

    #[test]
    fn multiple_expanding_hits_union() {
        let cs = ids(&[1, 2, 3, 4]);
        let a1 = ids(&[1]);
        let a2 = ids(&[2, 9]);
        let r = prune(
            &cs,
            &[
                HitAnswer {
                    serial: 1,
                    answer: &a1,
                },
                HitAnswer {
                    serial: 2,
                    answer: &a2,
                },
            ],
            &[],
        );
        assert_eq!(r.direct_answer, ids(&[1, 2]));
        assert_eq!(r.remaining, ids(&[3, 4]));
    }

    #[test]
    fn multiple_restricting_hits_intersect() {
        let cs = ids(&[1, 2, 3, 4]);
        let a1 = ids(&[1, 2, 3]);
        let a2 = ids(&[2, 3, 4]);
        let r = prune(
            &cs,
            &[],
            &[
                HitAnswer {
                    serial: 1,
                    answer: &a1,
                },
                HitAnswer {
                    serial: 2,
                    answer: &a2,
                },
            ],
        );
        assert_eq!(r.remaining, ids(&[2, 3]));
    }

    /// Second special case: a restricting hit with an empty answer empties
    /// the result outright.
    #[test]
    fn empty_answer_shortcut() {
        let cs = ids(&[1, 2, 3]);
        let empty: Vec<GraphId> = vec![];
        let full = ids(&[1, 2, 3]);
        let r = prune(
            &cs,
            &[HitAnswer {
                serial: 9,
                answer: &full,
            }],
            &[HitAnswer {
                serial: 7,
                answer: &empty,
            }],
        );
        assert_eq!(r.outcome, PruneOutcome::EmptyShortcut(7));
        assert!(r.direct_answer.is_empty());
        assert!(r.remaining.is_empty());
        assert_eq!(r.contributions[0].serial, 7);
        assert_eq!(r.contributions[0].removed, ids(&[1, 2, 3]));
    }

    #[test]
    fn no_hits_passthrough() {
        let cs = ids(&[4, 5]);
        let r = prune(&cs, &[], &[]);
        assert_eq!(r.outcome, PruneOutcome::Pruned);
        assert!(r.direct_answer.is_empty());
        assert_eq!(r.remaining, ids(&[4, 5]));
        assert!(r.contributions.is_empty());
    }

    /// Invariants: direct ∪ remaining ⊆ cs, direct ∩ remaining = ∅.
    #[test]
    fn partition_invariants() {
        let cs = ids(&[1, 2, 3, 4, 5, 6]);
        let a1 = ids(&[2, 4]);
        let a2 = ids(&[1, 2, 4, 5]);
        let r = prune(
            &cs,
            &[HitAnswer {
                serial: 1,
                answer: &a1,
            }],
            &[HitAnswer {
                serial: 2,
                answer: &a2,
            }],
        );
        assert!(idset::intersect(&r.direct_answer, &r.remaining).is_empty());
        let both = idset::union(&r.direct_answer, &r.remaining);
        assert_eq!(idset::intersect(&both, &cs), both);
    }
}
