//! Cache entries, index shards, and immutable sharded cache snapshots.
//!
//! The cache contents are partitioned into `N` serial-hashed [`Shard`]s,
//! each pairing its entries with its own [`QueryIndex`]. A maintenance
//! round only touches the shards its victims/admissions hash into —
//! patching them incrementally (tombstone removals, appended insertions)
//! and compacting a shard only when its tombstone debt crosses a
//! threshold — so maintenance cost is O(delta + touched shards), not
//! O(|cache|). Readers assemble a [`CacheSnapshot`] view from per-shard
//! `Arc`s; the paper's "old index keeps serving reads" invariant holds per
//! shard (see [`crate::window`]).

use crate::query_index::{HitCandidates, QueryIndex, QueryIndexConfig};
use crate::stats::QuerySerial;
use gc_graph::{sizing, GraphId, LabeledGraph};
use gc_index::fingerprint::iso_hash;
use gc_index::fx::FxHashMap;
use gc_index::paths::{enumerate_paths, PathProfile};
use gc_methods::QueryKind;
use std::sync::Arc;

/// One cached query: the query graph and its full answer set (paper §6.1,
/// first Cache store component).
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The query's serial number (the store key).
    pub serial: QuerySerial,
    /// The query graph as submitted, shared with the execution that
    /// produced it (entries never deep-copy the graph).
    pub graph: Arc<LabeledGraph>,
    /// The query's answer set: sorted ids of dataset graphs containing it
    /// (subgraph mode) or contained in it (supergraph mode).
    pub answer: Vec<GraphId>,
    /// The direction the answer was computed under. Queries of one kind
    /// must never prune (or exactly answer) queries of the other — the
    /// answer sets mean different things — so the processors only consider
    /// entries whose kind matches the incoming request.
    pub kind: QueryKind,
    /// The query's path-feature profile, computed once at execution time so
    /// index rebuilds never re-enumerate cached graphs.
    pub profile: PathProfile,
    /// Isomorphism-invariant fingerprint of the query graph
    /// ([`gc_index::fingerprint::iso_hash`]), computed once at execution
    /// time — the key of the shard's exact-match map.
    pub fingerprint: u64,
}

impl CacheEntry {
    /// Assembles an entry, computing the graph's iso fingerprint. Callers
    /// that already hold the fingerprint (the Window Manager) construct the
    /// struct directly instead.
    pub fn new(
        serial: QuerySerial,
        graph: Arc<LabeledGraph>,
        answer: Vec<GraphId>,
        kind: QueryKind,
        profile: PathProfile,
    ) -> Self {
        let fingerprint = iso_hash(&graph);
        CacheEntry {
            serial,
            graph,
            answer,
            kind,
            profile,
            fingerprint,
        }
    }

    /// Approximate memory footprint in bytes, including the retained
    /// feature profile (kept for index patching, so it counts toward the
    /// §7.3 space overhead just as it does while pending in the Window).
    pub fn memory_bytes(&self) -> usize {
        self.graph.memory_bytes()
            + sizing::slice_bytes::<GraphId>(self.answer.len())
            + self.profile.memory_bytes()
            + sizing::ENTRY_OVERHEAD
    }
}

/// Routes a serial to its shard: a fixed multiplicative hash, so every
/// layer (snapshot build, lookup, maintenance delta, persistence restore)
/// agrees on placement without coordination.
pub fn shard_for(serial: QuerySerial, shards: usize) -> usize {
    debug_assert!(shards > 0);
    (serial.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % shards
}

/// One cache partition: its entries plus the query index over them.
///
/// Slots are positions in the shard's entry vector; a removed entry leaves
/// a `None` tombstone so surviving slots never shift and the index postings
/// stay valid. [`compact`](Self::compact) rebuilds both densely when the
/// debt grows. Shards are patched through `Arc::make_mut` by the Window
/// Manager: with no concurrent reader holding the `Arc` the patch is
/// in-place, otherwise it copies-on-write and readers keep the old state.
#[derive(Debug, Clone)]
pub struct Shard {
    /// Entry per slot, aligned with the index; `None` marks a tombstone.
    /// The full entry (graph + profile) is only dereferenced once a slot
    /// survives candidate filtering — the filter itself runs on the packed
    /// columns below.
    entries: Vec<Option<Arc<CacheEntry>>>,
    /// The combined subgraph/supergraph index over this shard's entries.
    index: QueryIndex,
    /// Iso fingerprint → live slots carrying it — the exact-match fast
    /// path's key map, maintained incrementally alongside the index
    /// (`insert` appends the slot, `remove` prunes it eagerly, so the map
    /// never accumulates tombstone debt).
    exact: FxHashMap<u64, Vec<u32>>,
    /// Per-slot iso fingerprints, packed (struct-of-arrays hot lane).
    fingerprints: Vec<u64>,
    /// Per-slot query kinds, packed — the gather stage's direction filter
    /// reads this column instead of chasing the entry `Arc`.
    kinds: Vec<QueryKind>,
    /// Per-slot distinct-label counts, packed. Computed once at admission:
    /// `distinct_label_count` sorts the graph's label vector on every call,
    /// so the §5.2 cost estimate used to pay that sort per candidate per
    /// query.
    distinct_labels: Vec<u32>,
    /// Per-slot `(offset, len)` range into the shared [`answers`] arena.
    /// Tombstoned slots keep their range; the ids behind it become
    /// reserved-but-dead bytes until compaction reclaims them.
    ///
    /// [`answers`]: Shard::answers
    answer_ranges: Vec<(u32, u32)>,
    /// Shared answer arena: every slot's answer ids flattened contiguously
    /// in admission order, so the verify stage walks packed ids instead of
    /// per-entry `Vec` allocations scattered across the heap.
    answers: Vec<GraphId>,
    /// Answer ids belonging to live slots — the arena-utilization
    /// numerator ([`arena_utilization`](Self::arena_utilization)).
    answers_live: usize,
}

impl Shard {
    /// An empty shard.
    pub fn empty(cfg: QueryIndexConfig) -> Self {
        Shard {
            entries: Vec::new(),
            index: QueryIndex::build_from_profiles(cfg, std::iter::empty()),
            exact: FxHashMap::default(),
            fingerprints: Vec::new(),
            kinds: Vec::new(),
            distinct_labels: Vec::new(),
            answer_ranges: Vec::new(),
            answers: Vec::new(),
            answers_live: 0,
        }
    }

    /// Builds a dense shard (and its index) from entries, reusing each
    /// entry's stored feature profile.
    pub fn build(cfg: QueryIndexConfig, entries: Vec<Arc<CacheEntry>>) -> Self {
        let mut shard = Shard::empty(cfg);
        for e in entries {
            shard.insert(e);
        }
        shard
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when the shard holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The shard's query index.
    pub fn index(&self) -> &QueryIndex {
        &self.index
    }

    /// Looks up a live entry by serial (O(1) via the index's slot map).
    pub fn entry(&self, serial: QuerySerial) -> Option<&Arc<CacheEntry>> {
        self.index
            .slot_of(serial)
            .and_then(|slot| self.entries[slot as usize].as_ref())
    }

    /// The entry at an index slot (`None` for tombstoned slots).
    pub fn entry_at(&self, slot: u32) -> Option<&Arc<CacheEntry>> {
        self.entries.get(slot as usize).and_then(|e| e.as_ref())
    }

    /// Iterates the live entries in slot order.
    pub fn live_entries(&self) -> impl Iterator<Item = &Arc<CacheEntry>> {
        self.entries.iter().flatten()
    }

    /// Admits an entry: appends a slot, indexes its profile and threads its
    /// fingerprint into the exact-match map. The serial must not already be
    /// live in this shard.
    pub fn insert(&mut self, entry: Arc<CacheEntry>) {
        let slot = self.index.insert_profile(
            entry.serial,
            (
                entry.graph.node_count() as u32,
                entry.graph.edge_count() as u32,
            ),
            &entry.profile,
        );
        debug_assert_eq!(slot as usize, self.entries.len());
        self.exact.entry(entry.fingerprint).or_default().push(slot);
        self.fingerprints.push(entry.fingerprint);
        self.kinds.push(entry.kind);
        self.distinct_labels
            .push(entry.graph.distinct_label_count() as u32);
        let offset = self.answers.len() as u32;
        self.answers.extend_from_slice(&entry.answer);
        self.answer_ranges.push((offset, entry.answer.len() as u32));
        self.answers_live += entry.answer.len();
        self.entries.push(Some(entry));
    }

    /// Evicts an entry: tombstones its slot in place and prunes the
    /// exact-match map. Returns whether the serial was live here.
    pub fn remove(&mut self, serial: QuerySerial) -> bool {
        match self.index.remove(serial) {
            Some(slot) => {
                if let Some(entry) = self.entries[slot as usize].take() {
                    if let Some(slots) = self.exact.get_mut(&entry.fingerprint) {
                        slots.retain(|&s| s != slot);
                        if slots.is_empty() {
                            self.exact.remove(&entry.fingerprint);
                        }
                    }
                    // The range stays behind in `answer_ranges`/`answers`
                    // as reserved-dead bytes; only the live counter moves.
                    self.answers_live -= self.answer_ranges[slot as usize].1 as usize;
                }
                true
            }
            None => false,
        }
    }

    /// Live slots whose entries carry the given iso fingerprint — the
    /// exact-match fast path probe. Candidates, not proof: the caller must
    /// confirm isomorphism (hash collisions are possible, just rare).
    pub fn exact_slots(&self, fingerprint: u64) -> &[u32] {
        self.exact.get(&fingerprint).map_or(&[], |v| v.as_slice())
    }

    /// The query kind at a slot, from the packed column (valid for any
    /// allocated slot, including tombstones).
    pub fn kind_at(&self, slot: u32) -> QueryKind {
        self.kinds[slot as usize]
    }

    /// The iso fingerprint at a slot, from the packed column.
    pub fn fingerprint_at(&self, slot: u32) -> u64 {
        self.fingerprints[slot as usize]
    }

    /// Distinct-label count of the graph at a slot, from the packed column
    /// (precomputed at admission; see [`LabeledGraph::distinct_label_count`]).
    pub fn distinct_labels_at(&self, slot: u32) -> u32 {
        self.distinct_labels[slot as usize]
    }

    /// Answer-set length at a slot, from the packed range column — the
    /// cost-estimation input the gather stage reads without dereferencing
    /// the entry.
    pub fn answer_len_at(&self, slot: u32) -> u32 {
        self.answer_ranges[slot as usize].1
    }

    /// The answer ids at a slot, as a contiguous arena segment.
    pub fn answer_at(&self, slot: u32) -> &[GraphId] {
        let (offset, len) = self.answer_ranges[slot as usize];
        &self.answers[offset as usize..(offset + len) as usize]
    }

    /// Arena utilization of this shard as `(bytes_live, bytes_reserved)`:
    /// postings-arena and answer-arena bytes still referenced by live slots
    /// versus total bytes held, so fragmentation left behind by tombstones
    /// is observable before compaction reclaims it.
    pub fn arena_utilization(&self) -> (usize, usize) {
        let (index_live, index_reserved) = self.index.arena_utilization();
        (
            index_live + sizing::slice_bytes::<GraphId>(self.answers_live),
            index_reserved + sizing::slice_bytes::<GraphId>(self.answers.len()),
        )
    }

    /// Fraction of slots that are tombstones — the compaction-debt signal
    /// the Window Manager compares against its threshold.
    pub fn tombstone_debt(&self) -> f64 {
        let slots = self.index.slots();
        if slots == 0 {
            0.0
        } else {
            self.index.tombstones() as f64 / slots as f64
        }
    }

    /// Fraction of postings-arena slots owned by tombstoned entries — the
    /// second compaction-debt signal. Evicting a few feature-rich entries
    /// can rot most of the postings arena while tombstone debt still looks
    /// healthy, so the Window Manager checks both.
    pub fn postings_debt(&self) -> f64 {
        self.index.postings_debt()
    }

    /// A dense rebuild of this shard from its live entries (slot order
    /// preserved), reclaiming tombstoned postings — the per-shard
    /// full-rebuild fallback, O(|shard|). Non-mutating so the Window
    /// Manager can build it off-lock and swap it in with a pointer store.
    pub fn compacted(&self) -> Shard {
        Shard::build(
            self.index.config(),
            self.live_entries().cloned().collect::<Vec<_>>(),
        )
    }

    /// In-place [`compacted`](Self::compacted) (owned-state callers).
    pub fn compact(&mut self) {
        *self = self.compacted();
    }

    /// A dense rebuild with slots reordered by a maintenance rank: entries
    /// with smaller keys pack into the lowest slots, so the policy-hot
    /// entries a sweep visits most often share cache lines instead of being
    /// scattered in admission order. The key must totally order the live
    /// serials (callers tie-break on the serial itself) so the layout is
    /// deterministic; candidate *sets* are unchanged by construction — only
    /// slot numbering moves, and hit assembly is serial-ordered downstream.
    pub fn compacted_ranked<K, F>(&self, rank: F) -> Shard
    where
        K: Ord,
        F: Fn(QuerySerial) -> K,
    {
        let mut live: Vec<Arc<CacheEntry>> = self.live_entries().cloned().collect();
        live.sort_by_cached_key(|e| (rank(e.serial), e.serial));
        Shard::build(self.index.config(), live)
    }

    /// Approximate memory footprint of entries + index + exact map + packed
    /// columns, in bytes.
    pub fn memory_bytes(&self) -> usize {
        let exact: usize = self
            .exact
            .values()
            .map(|v| sizing::slice_bytes::<u32>(v.len()) + sizing::MAP_NODE_OVERHEAD)
            .sum();
        let columns = sizing::slice_bytes::<u64>(self.fingerprints.len())
            + sizing::slice_bytes::<QueryKind>(self.kinds.len())
            + sizing::slice_bytes::<u32>(self.distinct_labels.len())
            + sizing::slice_bytes::<(u32, u32)>(self.answer_ranges.len())
            + sizing::slice_bytes::<GraphId>(self.answers.len());
        self.live_entries().map(|e| e.memory_bytes()).sum::<usize>()
            + self.index.memory_bytes()
            + exact
            + columns
    }
}

/// An immutable view of the cache contents: one `Arc` per shard, assembled
/// by a reader from the per-shard locks. The Window Manager patches (or
/// swaps) only the shards a maintenance round touches; a reader's snapshot
/// keeps every shard it captured alive, exactly as the paper's old index
/// keeps serving in-flight queries — per shard (paper §6.2: swaps are
/// "simple in-memory reference (pointer) swaps").
#[derive(Debug, Clone)]
pub struct CacheSnapshot {
    cfg: QueryIndexConfig,
    shards: Vec<Arc<Shard>>,
}

impl CacheSnapshot {
    /// An empty single-shard snapshot (system start: "GraphCache's data
    /// stores are initially all empty", §5.1).
    pub fn empty(cfg: QueryIndexConfig) -> Self {
        Self::empty_sharded(cfg, 1)
    }

    /// An empty snapshot with `shards` partitions.
    pub fn empty_sharded(cfg: QueryIndexConfig, shards: usize) -> Self {
        CacheSnapshot {
            cfg,
            shards: (0..shards.max(1))
                .map(|_| Arc::new(Shard::empty(cfg)))
                .collect(),
        }
    }

    /// Builds a single-shard snapshot from a set of entries, reusing each
    /// entry's stored feature profile.
    pub fn build(cfg: QueryIndexConfig, entries: Vec<Arc<CacheEntry>>) -> Self {
        Self::build_sharded(cfg, 1, entries)
    }

    /// Builds a snapshot with `shards` partitions; entries are routed by
    /// [`shard_for`] and keep their relative order within each shard.
    pub fn build_sharded(
        cfg: QueryIndexConfig,
        shards: usize,
        entries: Vec<Arc<CacheEntry>>,
    ) -> Self {
        let n = shards.max(1);
        let mut parts: Vec<Vec<Arc<CacheEntry>>> = (0..n).map(|_| Vec::new()).collect();
        for e in entries {
            parts[shard_for(e.serial, n)].push(e);
        }
        CacheSnapshot {
            cfg,
            shards: parts
                .into_iter()
                .map(|p| Arc::new(Shard::build(cfg, p)))
                .collect(),
        }
    }

    /// Assembles a snapshot view from already-built shards.
    pub fn from_shards(cfg: QueryIndexConfig, shards: Vec<Arc<Shard>>) -> Self {
        debug_assert!(!shards.is_empty());
        CacheSnapshot { cfg, shards }
    }

    /// The shards, in routing order.
    pub fn shards(&self) -> &[Arc<Shard>] {
        &self.shards
    }

    /// Decomposes the view into its shards (used when installing a rebuilt
    /// snapshot, e.g. on restore).
    pub fn into_shards(self) -> Vec<Arc<Shard>> {
        self.shards
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The index configuration shared by every shard.
    pub fn index_cfg(&self) -> QueryIndexConfig {
        self.cfg
    }

    /// Number of cached queries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// True when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Looks up an entry by serial in its home shard.
    pub fn entry(&self, serial: QuerySerial) -> Option<&Arc<CacheEntry>> {
        self.shards[shard_for(serial, self.shards.len())].entry(serial)
    }

    /// Iterates all live entries, shard by shard in slot order.
    pub fn iter_entries(&self) -> impl Iterator<Item = &Arc<CacheEntry>> {
        self.shards.iter().flat_map(|s| s.live_entries())
    }

    /// Enumerates a query's feature profile under this snapshot's index
    /// configuration (computed once per query, reused for candidate probing
    /// across every shard and for eventual admission).
    pub fn profile_of(&self, query: &LabeledGraph) -> PathProfile {
        enumerate_paths(query, self.cfg.max_path_len, self.cfg.work_cap)
    }

    /// Candidate *serials* for a query, both directions, merged across
    /// shards (diagnostics and equivalence tests; the hot path works
    /// per shard on slots — see [`crate::processors`]).
    pub fn candidate_serials(&self, query: &LabeledGraph) -> (Vec<QuerySerial>, Vec<QuerySerial>) {
        let profile = self.profile_of(query);
        let (qn, qm) = (query.node_count() as u32, query.edge_count() as u32);
        let mut sub = Vec::new();
        let mut super_ = Vec::new();
        for shard in &self.shards {
            let HitCandidates { sub: s, super_: p } =
                shard.index().candidates_from_profile(&profile, qn, qm);
            sub.extend(s.iter().map(|&slot| shard.index().serial(slot)));
            super_.extend(p.iter().map(|&slot| shard.index().serial(slot)));
        }
        (sub, super_)
    }

    /// Approximate memory footprint of entries + indexes, in bytes (the
    /// space overhead the paper compares against FTV index sizes, §7.3).
    pub fn memory_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.memory_bytes()).sum()
    }

    /// Per-shard arena utilization `(bytes_live, bytes_reserved)`, in
    /// routing order (see [`Shard::arena_utilization`]).
    pub fn arena_utilization(&self) -> Vec<(usize, usize)> {
        self.shards.iter().map(|s| s.arena_utilization()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(serial: QuerySerial) -> Arc<CacheEntry> {
        let graph = LabeledGraph::from_parts(vec![0, 1], &[(0, 1)]);
        let profile = gc_index::paths::enumerate_paths(&graph, 4, u64::MAX);
        Arc::new(CacheEntry::new(
            serial,
            Arc::new(graph),
            vec![GraphId(0), GraphId(2)],
            QueryKind::Subgraph,
            profile,
        ))
    }

    #[test]
    fn empty_snapshot() {
        let s = CacheSnapshot::empty(QueryIndexConfig::default());
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.shard_count(), 1);
        assert!(s.entry(1).is_none());
    }

    #[test]
    fn build_and_lookup() {
        let s = CacheSnapshot::build(QueryIndexConfig::default(), vec![entry(5), entry(9)]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.entry(9).unwrap().serial, 9);
        assert!(s.entry(7).is_none());
        assert!(s.memory_bytes() > 0);
    }

    #[test]
    fn sharded_build_routes_and_looks_up() {
        let serials: Vec<QuerySerial> = (1..=20).collect();
        let s = CacheSnapshot::build_sharded(
            QueryIndexConfig::default(),
            4,
            serials.iter().map(|&x| entry(x)).collect(),
        );
        assert_eq!(s.shard_count(), 4);
        assert_eq!(s.len(), 20);
        for &x in &serials {
            assert_eq!(s.entry(x).unwrap().serial, x);
            // The entry lives in exactly its routed shard.
            assert!(s.shards()[shard_for(x, 4)].entry(x).is_some());
        }
        let mut seen: Vec<QuerySerial> = s.iter_entries().map(|e| e.serial).collect();
        seen.sort_unstable();
        assert_eq!(seen, serials);
    }

    #[test]
    fn shard_insert_remove_compact() {
        let mut shard = Shard::build(
            QueryIndexConfig::default(),
            vec![entry(1), entry(2), entry(3)],
        );
        assert!(shard.remove(2));
        assert!(!shard.remove(2), "double remove is a no-op");
        assert_eq!(shard.len(), 2);
        assert!(shard.entry(2).is_none());
        assert!(shard.entry(3).is_some());
        assert!((shard.tombstone_debt() - 1.0 / 3.0).abs() < 1e-9);

        shard.insert(entry(4));
        assert_eq!(shard.len(), 3);
        assert_eq!(shard.entry(4).unwrap().serial, 4);

        shard.compact();
        assert_eq!(shard.len(), 3);
        assert_eq!(shard.tombstone_debt(), 0.0);
        assert_eq!(shard.index().slots(), 3, "dense after compaction");
        let order: Vec<QuerySerial> = shard.live_entries().map(|e| e.serial).collect();
        assert_eq!(order, vec![1, 3, 4], "slot order preserved");
    }

    #[test]
    fn exact_map_follows_insert_remove_compact() {
        let mut shard = Shard::build(QueryIndexConfig::default(), vec![entry(1), entry(2)]);
        let fp = entry(1).fingerprint; // all test entries share one graph
        assert_eq!(shard.exact_slots(fp), &[0, 1]);
        assert!(shard.exact_slots(fp ^ 1).is_empty());

        shard.remove(1);
        assert_eq!(shard.exact_slots(fp), &[1], "evicted slot pruned eagerly");
        shard.insert(entry(3));
        assert_eq!(shard.exact_slots(fp), &[1, 2]);

        shard.compact();
        assert_eq!(shard.exact_slots(fp), &[0, 1], "dense slots after rebuild");
        for &slot in shard.exact_slots(fp) {
            assert!(shard.entry_at(slot).is_some());
        }
    }

    #[test]
    fn packed_columns_follow_insert_remove_compact() {
        let mut shard = Shard::build(
            QueryIndexConfig::default(),
            vec![entry(1), entry(2), entry(3)],
        );
        for slot in 0..3u32 {
            let e = shard.entry_at(slot).unwrap();
            assert_eq!(shard.fingerprint_at(slot), e.fingerprint);
            assert_eq!(shard.kind_at(slot), e.kind);
            assert_eq!(shard.answer_len_at(slot) as usize, e.answer.len());
            assert_eq!(shard.answer_at(slot), e.answer.as_slice());
        }

        let (live_full, reserved_full) = shard.arena_utilization();
        assert_eq!(live_full, reserved_full, "dense shard fully utilized");

        shard.remove(2);
        let (live, reserved) = shard.arena_utilization();
        assert!(live < reserved, "tombstoned ranges become dead bytes");
        assert_eq!(reserved, reserved_full, "reserved unchanged until compact");
        // Surviving slots still read their own columns.
        let slot3 = 2u32; // slot of serial 3 (admission order 1, 2, 3)
        assert_eq!(
            shard.answer_at(slot3),
            shard.entry(3).unwrap().answer.as_slice()
        );

        shard.compact();
        let (live, reserved) = shard.arena_utilization();
        assert_eq!(live, reserved, "compaction reclaims dead arena bytes");
    }

    #[test]
    fn ranked_compaction_reorders_but_preserves_contents() {
        let mut shard = Shard::build(
            QueryIndexConfig::default(),
            vec![entry(1), entry(2), entry(3), entry(4)],
        );
        shard.remove(2);
        // Hotter = smaller key; make serial 4 hottest, then 1, then 3.
        let heat = |serial: QuerySerial| match serial {
            4 => 0u64,
            1 => 1,
            _ => 2,
        };
        let ranked = shard.compacted_ranked(heat);
        let order: Vec<QuerySerial> = ranked.live_entries().map(|e| e.serial).collect();
        assert_eq!(order, vec![4, 1, 3], "hot entries pack into low slots");
        assert_eq!(ranked.tombstone_debt(), 0.0);
        let (live, reserved) = ranked.arena_utilization();
        assert_eq!(live, reserved);
        // Same live serials, same per-serial answers, columns realigned.
        for &serial in &[1u64, 3, 4] {
            let e = ranked.entry(serial).unwrap();
            let slot = ranked.index().slot_of(serial).unwrap();
            assert_eq!(ranked.fingerprint_at(slot), e.fingerprint);
            assert_eq!(ranked.answer_at(slot), e.answer.as_slice());
        }
        assert!(ranked.entry(2).is_none());
    }

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        for n in [1usize, 2, 3, 7, 16] {
            for serial in 0..200u64 {
                let s = shard_for(serial, n);
                assert!(s < n);
                assert_eq!(s, shard_for(serial, n), "deterministic");
            }
        }
    }
}
