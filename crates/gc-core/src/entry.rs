//! Cache entries and immutable cache snapshots.

use crate::query_index::{QueryIndex, QueryIndexConfig};
use crate::stats::QuerySerial;
use gc_graph::{GraphId, LabeledGraph};
use gc_index::paths::PathProfile;
use gc_methods::QueryKind;
use std::sync::Arc;

/// One cached query: the query graph and its full answer set (paper §6.1,
/// first Cache store component).
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The query's serial number (the store key).
    pub serial: QuerySerial,
    /// The query graph as submitted, shared with the execution that
    /// produced it (entries never deep-copy the graph).
    pub graph: Arc<LabeledGraph>,
    /// The query's answer set: sorted ids of dataset graphs containing it
    /// (subgraph mode) or contained in it (supergraph mode).
    pub answer: Vec<GraphId>,
    /// The direction the answer was computed under. Queries of one kind
    /// must never prune (or exactly answer) queries of the other — the
    /// answer sets mean different things — so the processors only consider
    /// entries whose kind matches the incoming request.
    pub kind: QueryKind,
    /// The query's path-feature profile, computed once at execution time so
    /// index rebuilds never re-enumerate cached graphs.
    pub profile: PathProfile,
}

impl CacheEntry {
    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.graph.memory_bytes() + self.answer.len() * std::mem::size_of::<GraphId>() + 24
    }
}

/// An immutable snapshot of the cache contents plus the query index built
/// over them. The Window Manager builds a *new* snapshot off the hot path
/// and swaps it in with a single pointer store (paper §6.2: "implemented as
/// simple in-memory reference (pointer) swaps").
#[derive(Debug)]
pub struct CacheSnapshot {
    /// Cached entries; the query index's slots are positions in this vector.
    pub entries: Vec<Arc<CacheEntry>>,
    /// The combined subgraph/supergraph index over the cached query graphs.
    pub index: QueryIndex,
}

impl CacheSnapshot {
    /// An empty snapshot (system start: "GraphCache's data stores are
    /// initially all empty", §5.1).
    pub fn empty(cfg: QueryIndexConfig) -> Self {
        CacheSnapshot {
            entries: Vec::new(),
            index: QueryIndex::build(cfg, std::iter::empty()),
        }
    }

    /// Builds a snapshot (and its index) from a set of entries, reusing
    /// each entry's stored feature profile.
    pub fn build(cfg: QueryIndexConfig, entries: Vec<Arc<CacheEntry>>) -> Self {
        let index = QueryIndex::build_from_profiles(
            cfg,
            entries.iter().map(|e| {
                (
                    e.serial,
                    (e.graph.node_count() as u32, e.graph.edge_count() as u32),
                    &e.profile,
                )
            }),
        );
        CacheSnapshot { entries, index }
    }

    /// Number of cached queries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up an entry by serial (linear scan; snapshots are small —
    /// C ≤ a few hundred in all the paper's configurations).
    pub fn entry(&self, serial: QuerySerial) -> Option<&Arc<CacheEntry>> {
        self.entries.iter().find(|e| e.serial == serial)
    }

    /// Approximate memory footprint of entries + index, in bytes (the space
    /// overhead the paper compares against FTV index sizes, §7.3).
    pub fn memory_bytes(&self) -> usize {
        self.entries.iter().map(|e| e.memory_bytes()).sum::<usize>() + self.index.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(serial: QuerySerial) -> Arc<CacheEntry> {
        let graph = LabeledGraph::from_parts(vec![0, 1], &[(0, 1)]);
        let profile = gc_index::paths::enumerate_paths(&graph, 4, u64::MAX);
        Arc::new(CacheEntry {
            serial,
            graph: Arc::new(graph),
            answer: vec![GraphId(0), GraphId(2)],
            kind: QueryKind::Subgraph,
            profile,
        })
    }

    #[test]
    fn empty_snapshot() {
        let s = CacheSnapshot::empty(QueryIndexConfig::default());
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(s.entry(1).is_none());
    }

    #[test]
    fn build_and_lookup() {
        let s = CacheSnapshot::build(QueryIndexConfig::default(), vec![entry(5), entry(9)]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.entry(9).unwrap().serial, 9);
        assert!(s.entry(7).is_none());
        assert!(s.memory_bytes() > 0);
    }
}
