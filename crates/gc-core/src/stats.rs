//! The Statistics Manager's key-value store (paper §6.1).
//!
//! The paper describes the statistics stores as triplets of the form
//! `{key, column name, column value}`, accessible by key (a "row"), by
//! column name alone (a "column"), or by both (a single cell). This module
//! implements exactly that interface; rows are keyed by query serial
//! number, and the columns used by GraphCache are named by the constants in
//! [`columns`].
//!
//! # Concurrency
//!
//! [`StatsStore`] itself is a plain single-threaded map. In the service
//! API it lives behind the shared state's statistics mutex (see
//! `window::Shared`), which concurrent queries take once per query to
//! credit hit contributions — so every operation here must stay O(row)
//! cheap and must never block (no IO, no allocation beyond the row).

use std::collections::{BTreeMap, HashMap};

/// Serial number of a query — assigned on arrival, used as the key of all
/// cache/window/statistics stores (paper §6.1).
pub type QuerySerial = u64;

/// Column names used by GraphCache's statistics (paper §5.2 lists the
/// monitored quantities).
pub mod columns {
    /// Number of nodes in the query.
    pub const NODES: &str = "nodes";
    /// Number of edges in the query.
    pub const EDGES: &str = "edges";
    /// Number of distinct labels in the query.
    pub const LABELS: &str = "labels";
    /// Total filtering time (µs) when the query was first executed.
    pub const FILTER_US: &str = "filter_us";
    /// Total verification time (µs) when the query was first executed.
    pub const VERIFY_US: &str = "verify_us";
    /// Times the query was matched by either GC processor (`H`).
    pub const HITS: &str = "hits";
    /// Number of special-case (exact / empty-shortcut) matches.
    pub const SPECIAL_HITS: &str = "special_hits";
    /// Serial number of the last benefited query.
    pub const LAST_HIT: &str = "last_hit";
    /// Total candidate-set reduction contributed (`R`).
    pub const R_TOTAL: &str = "r_total";
    /// Total estimated time saving contributed (`C`).
    pub const C_TOTAL: &str = "c_total";
    /// The query's "expensiveness" score (verification/filtering ratio).
    pub const EXPENSIVENESS: &str = "expensiveness";
}

/// A statistics cell value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Integer-valued statistic (counts, serials).
    Int(i64),
    /// Real-valued statistic (times, costs, ratios).
    Float(f64),
}

impl Value {
    /// The value as f64 (integers widen).
    pub fn as_f64(self) -> f64 {
        match self {
            Value::Int(i) => i as f64,
            Value::Float(f) => f,
        }
    }

    /// The value as i64 (floats truncate).
    pub fn as_i64(self) -> i64 {
        match self {
            Value::Int(i) => i,
            Value::Float(f) => f as i64,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

/// The triplet store: `{key, column, value}` with row/column/cell access.
#[derive(Debug, Clone, Default)]
pub struct StatsStore {
    rows: HashMap<QuerySerial, BTreeMap<&'static str, Value>>,
}

impl StatsStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a single cell.
    pub fn set(&mut self, key: QuerySerial, column: &'static str, value: impl Into<Value>) {
        self.rows
            .entry(key)
            .or_default()
            .insert(column, value.into());
    }

    /// Adds `delta` to an integer cell (creating it at 0).
    pub fn add_int(&mut self, key: QuerySerial, column: &'static str, delta: i64) {
        let row = self.rows.entry(key).or_default();
        let cur = row.get(column).map(|v| v.as_i64()).unwrap_or(0);
        row.insert(column, Value::Int(cur + delta));
    }

    /// Adds `delta` to a float cell (creating it at 0.0).
    pub fn add_float(&mut self, key: QuerySerial, column: &'static str, delta: f64) {
        let row = self.rows.entry(key).or_default();
        let cur = row.get(column).map(|v| v.as_f64()).unwrap_or(0.0);
        row.insert(column, Value::Float(cur + delta));
    }

    /// Reads a single cell.
    pub fn get(&self, key: QuerySerial, column: &str) -> Option<Value> {
        self.rows.get(&key).and_then(|r| r.get(column)).copied()
    }

    /// Reads a whole row: all `{column, value}` pairs of a key, sorted by
    /// column name (the store keeps columns sorted, as the paper notes).
    pub fn row(&self, key: QuerySerial) -> Option<&BTreeMap<&'static str, Value>> {
        self.rows.get(&key)
    }

    /// Reads a whole column: all `{key, value}` pairs carrying the column.
    pub fn column(&self, column: &str) -> Vec<(QuerySerial, Value)> {
        let mut out: Vec<(QuerySerial, Value)> = self
            .rows
            .iter()
            .filter_map(|(k, r)| r.get(column).map(|v| (*k, *v)))
            .collect();
        out.sort_unstable_by_key(|(k, _)| *k);
        out
    }

    /// True when a row exists for `key`. Used by the hit-crediting path to
    /// avoid resurrecting the row of an entry a concurrent maintenance
    /// round just evicted (such a row would never be cleaned up again).
    pub fn contains_row(&self, key: QuerySerial) -> bool {
        self.rows.contains_key(&key)
    }

    /// Removes a row (when its query is evicted from the cache).
    pub fn remove_row(&mut self, key: QuerySerial) {
        self.rows.remove(&key);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the store has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterator over all keys (unordered).
    pub fn keys(&self) -> impl Iterator<Item = QuerySerial> + '_ {
        self.rows.keys().copied()
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.rows
            .values()
            .map(|r| r.len() * (std::mem::size_of::<(&str, Value)>() + 16) + 48)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_cell() {
        let mut s = StatsStore::new();
        s.set(7, columns::NODES, 12i64);
        s.set(7, columns::EXPENSIVENESS, 3.5);
        assert_eq!(s.get(7, columns::NODES), Some(Value::Int(12)));
        assert_eq!(s.get(7, columns::EXPENSIVENESS), Some(Value::Float(3.5)));
        assert_eq!(s.get(7, "missing"), None);
        assert_eq!(s.get(8, columns::NODES), None);
    }

    #[test]
    fn add_accumulates() {
        let mut s = StatsStore::new();
        s.add_int(1, columns::HITS, 1);
        s.add_int(1, columns::HITS, 2);
        s.add_float(1, columns::C_TOTAL, 1.5);
        s.add_float(1, columns::C_TOTAL, 2.5);
        assert_eq!(s.get(1, columns::HITS), Some(Value::Int(3)));
        assert_eq!(s.get(1, columns::C_TOTAL), Some(Value::Float(4.0)));
    }

    #[test]
    fn row_access_sorted_by_column() {
        let mut s = StatsStore::new();
        s.set(1, columns::VERIFY_US, 10i64);
        s.set(1, columns::EDGES, 4i64);
        let row = s.row(1).unwrap();
        let cols: Vec<&str> = row.keys().copied().collect();
        let mut sorted = cols.clone();
        sorted.sort_unstable();
        assert_eq!(cols, sorted);
        assert!(s.row(99).is_none());
    }

    #[test]
    fn column_access_sorted_by_key() {
        let mut s = StatsStore::new();
        s.set(5, columns::HITS, 50i64);
        s.set(2, columns::HITS, 20i64);
        s.set(9, columns::NODES, 1i64); // no HITS column
        let col = s.column(columns::HITS);
        assert_eq!(col, vec![(2, Value::Int(20)), (5, Value::Int(50))]);
    }

    #[test]
    fn remove_row_and_len() {
        let mut s = StatsStore::new();
        s.set(1, columns::NODES, 1i64);
        s.set(2, columns::NODES, 2i64);
        assert_eq!(s.len(), 2);
        s.remove_row(1);
        assert_eq!(s.len(), 1);
        assert!(s.get(1, columns::NODES).is_none());
        assert!(!s.is_empty());
        assert!(s.memory_bytes() > 0);
        assert_eq!(s.keys().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(3i64).as_f64(), 3.0);
        assert_eq!(Value::from(3u64).as_i64(), 3);
        assert_eq!(Value::from(2.9f64).as_i64(), 2);
    }
}
