//! Cache persistence (paper §6.1): the cached-queries store and the
//! statistics store are "loaded from disk on startup and written back to
//! disk on shutdown"; the query index is rebuilt from the loaded entries.
//!
//! Format: a directory with two line-oriented text files —
//!
//! * `entries.txt` — a `next_serial <n>` header, an optional
//!   `policy <name>` header recording the eviction policy the statistics
//!   were accumulated under (absent in saves predating the pluggable
//!   policy engine), then for each cached query: an
//!   `@entry <serial> [sub|super] [fp:<hex>]` header (the query direction
//!   the answer was computed under — `sub` when omitted, for saves
//!   predating direction-tagged entries — and the entry's iso fingerprint;
//!   when the token is absent the fingerprint is recomputed on load), the
//!   query graph in the `gc_graph::io` record format, then an
//!   `answers: <id> <id> …` line;
//! * `stats.txt` — one `row <serial>` line per statistics row followed by
//!   `  <column> <int|float> <value>` lines;
//! * `fragments.txt` — the sub-query fragment store: a `fragments_v1`
//!   version header, then per fragment an
//!   `@fragment key:<hex> hits:<n> last:<n> r:<n> c:<float>` header, the
//!   fragment graph in the `gc_graph::io` record format, and an
//!   `occs: <id> <id> …` line with the fragment's exact occurrence set.
//!   The file is absent in saves predating the fragment cache; such
//!   legacy directories load with an empty fragment list and the store
//!   simply rebuilds from scratch.
//!
//! Loading is strict: malformed input yields an error rather than a
//! silently truncated cache.
//!
//! A second on-disk representation, persist format v2, stores the same
//! state as a single checksummed binary image (`snapshot.bin`) that
//! mirrors the in-memory arena layout — see [`crate::snapshot_bin`] for
//! the byte-level specification. [`PersistedCache::load_auto`] detects
//! which format a directory holds, so either format restores through the
//! same call; [`PersistedCache::save_as`] picks the format at save time
//! and removes the other format's files so a directory never holds both.

use crate::entry::{CacheEntry, CacheSnapshot};
use crate::query_index::QueryIndexConfig;
use crate::stats::{QuerySerial, StatsStore, Value};
use gc_graph::{io, GraphError, GraphId};
use gc_index::fingerprint::iso_hash;
use gc_index::paths::{enumerate_paths, PathProfile};
use gc_methods::QueryKind;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use std::sync::Arc;

/// On-disk representation selector for [`PersistedCache::save_as`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PersistFormat {
    /// The line-oriented text format (`entries.txt` + `stats.txt` +
    /// `fragments.txt`) — human-readable, diff-friendly, and what every
    /// save before format v2 produced.
    #[default]
    Text,
    /// Persist format v2: one checksummed little-endian binary image
    /// (`snapshot.bin`) holding the arena layout directly, restored by a
    /// bulk read + validate with no per-entry text parsing.
    Binary,
}

/// Path-feature profiles captured at save time, so a binary restore can
/// skip re-enumerating every entry graph's simple paths — the dominant
/// cost of materialising a restored cache. The index configuration they
/// were enumerated under is recorded alongside; profiles are only reused
/// when the restoring configuration matches (see
/// [`PersistedCache::into_snapshot_sharded`]).
#[derive(Debug, Clone)]
pub struct StoredProfiles {
    /// `max_path_len` the profiles were enumerated with.
    pub max_path_len: usize,
    /// `work_cap` the profiles were enumerated with.
    pub work_cap: u64,
    /// One profile per entry, parallel to [`PersistedCache::entries`].
    pub profiles: Vec<PathProfile>,
}

/// One persisted cache entry: serial, query graph, answer set, the query
/// direction the answer was computed under, and the graph's iso
/// fingerprint (recomputed on load when the save predates fingerprints).
pub type PersistedEntry = (
    QuerySerial,
    gc_graph::LabeledGraph,
    Vec<GraphId>,
    QueryKind,
    u64,
);

/// Serialisable cache state: entries plus their statistics rows.
#[derive(Debug, Default)]
pub struct PersistedCache {
    /// The cached queries with serials, answer sets and query kinds.
    pub entries: Vec<PersistedEntry>,
    /// The statistics rows.
    pub stats: StatsStore,
    /// The serial counter at shutdown (so a restarted cache continues
    /// numbering without collisions).
    pub next_serial: QuerySerial,
    /// Registry name of the eviction policy the statistics were
    /// accumulated under; `None` for saves predating the policy engine.
    /// Restoring under a different policy logs a warning (see
    /// [`GraphCache::restore`](crate::GraphCache::restore)).
    pub policy: Option<String>,
    /// The sub-query fragment store (empty for caches without the
    /// fragment layer, and for legacy saves without `fragments.txt`).
    pub fragments: Vec<PersistedFragment>,
    /// Path-feature profiles captured at save time, parallel to
    /// `entries`; `None` for text saves and binary saves taken without
    /// profiles. Only the binary format persists them.
    pub profiles: Option<StoredProfiles>,
}

/// What [`PersistedCache::load_resilient`] recovered: the state plus the
/// generation it came from (`None` for legacy flat-file directories with
/// no `MANIFEST`).
#[derive(Debug)]
pub struct RecoveredSnapshot {
    /// The recovered cache state.
    pub state: PersistedCache,
    /// The manifest generation the state was read from, when one exists.
    pub generation: Option<u64>,
}

/// One persisted fragment of the sub-query fragment cache: the canonical
/// (iso-invariant) key, the fragment's path graph, its exact occurrence
/// set, and the usage statistics that re-seed the fragment eviction
/// policy after a restore.
#[derive(Debug, Clone, PartialEq)]
pub struct PersistedFragment {
    /// Iso-invariant fragment key (`gc_index::fingerprint::iso_hash` of
    /// the fragment graph).
    pub key: u64,
    /// The fragment's path graph.
    pub graph: gc_graph::LabeledGraph,
    /// The fragment's exact occurrence set (sorted dataset graph ids).
    pub occs: Vec<GraphId>,
    /// Probe hits credited to this fragment.
    pub hits: u64,
    /// Serial of the last query that credited this fragment.
    pub last_hit: u64,
    /// Total candidates removed thanks to this fragment.
    pub r_total: u64,
    /// Total estimated matcher work avoided thanks to this fragment.
    pub c_total: f64,
}

impl PersistedCache {
    /// Writes the state into `dir` (created if missing) in the text
    /// format, through the crash-safe staged path (see
    /// [`save_staged`](Self::save_staged)).
    pub fn save(&self, dir: impl AsRef<Path>) -> std::io::Result<()> {
        self.save_as(dir, PersistFormat::Text)
    }

    /// Writes the state into `dir` as a persist-format-v2 binary snapshot
    /// (see [`crate::snapshot_bin`]), removing any text-format files so
    /// the flat view of the directory holds exactly one representation.
    pub fn save_binary(&self, dir: impl AsRef<Path>) -> std::io::Result<()> {
        self.save_as(dir, PersistFormat::Binary)
    }

    /// Writes the state into `dir` in the chosen [`PersistFormat`].
    pub fn save_as(&self, dir: impl AsRef<Path>, format: PersistFormat) -> std::io::Result<()> {
        self.save_staged(dir, format, &crate::staged::RealIo)
            .map(|_| ())
    }

    /// The crash-safe save path every other save entry point funnels
    /// through: encodes the chosen format's files, stages them (write to
    /// `*.tmp`, fsync, rename) into a new generation slot, and commits by
    /// atomically replacing the checksum-validated `MANIFEST` — see
    /// [`crate::staged`]. All filesystem mutations run through `io`, so a
    /// fault-injecting [`SnapshotIo`](crate::staged::SnapshotIo) can
    /// deterministically crash the save at any operation. Returns the
    /// committed generation number.
    pub fn save_staged(
        &self,
        dir: impl AsRef<Path>,
        format: PersistFormat,
        io: &dyn crate::staged::SnapshotIo,
    ) -> std::io::Result<u64> {
        let files = self.encoded_files(format)?;
        crate::staged::commit_generation(dir.as_ref(), &files, format, io)
    }

    /// Encodes the on-disk file set of one save, fully in memory — the
    /// staged writer publishes whole files atomically, so contents are
    /// assembled before any filesystem mutation happens.
    fn encoded_files(
        &self,
        format: PersistFormat,
    ) -> std::io::Result<Vec<(&'static str, Vec<u8>)>> {
        match format {
            PersistFormat::Text => {
                let mut ef: Vec<u8> = Vec::new();
                writeln!(ef, "next_serial {}", self.next_serial)?;
                if let Some(policy) = &self.policy {
                    writeln!(ef, "policy {policy}")?;
                }
                for (serial, graph, answer, kind, fingerprint) in &self.entries {
                    let kind_tok = match kind {
                        QueryKind::Subgraph => "sub",
                        QueryKind::Supergraph => "super",
                    };
                    writeln!(ef, "@entry {serial} {kind_tok} fp:{fingerprint:016x}")?;
                    io::write_graph(&mut ef, &format!("q{serial}"), graph)?;
                    write!(ef, "answers:")?;
                    for id in answer {
                        write!(ef, " {}", id.0)?;
                    }
                    writeln!(ef)?;
                }
                let mut sf: Vec<u8> = Vec::new();
                write_stats_text(&mut sf, &self.stats)?;
                // Always (re)written, even when empty: a save into a
                // directory that previously held fragments must not leave
                // the stale file behind for the next load to pick up.
                let mut ff: Vec<u8> = Vec::new();
                write_fragments_text(&mut ff, &self.fragments)?;
                Ok(vec![
                    ("entries.txt", ef),
                    ("stats.txt", sf),
                    ("fragments.txt", ff),
                ])
            }
            PersistFormat::Binary => Ok(vec![("snapshot.bin", crate::snapshot_bin::encode(self))]),
        }
    }

    /// Reads a persist-format-v2 binary snapshot back from `dir`. All
    /// validation failures (truncation, checksum mismatch, malformed
    /// sections) surface as [`GraphError::Snapshot`] — never a panic.
    pub fn load_binary(dir: impl AsRef<Path>) -> Result<Self, GraphError> {
        let bytes = std::fs::read(dir.as_ref().join("snapshot.bin"))?;
        crate::snapshot_bin::decode(&bytes)
    }

    /// Reads the state back from `dir`, auto-detecting the format: a
    /// `snapshot.bin` loads as binary, otherwise the text files load with
    /// `default_kind` applied to legacy untagged entries (as in
    /// [`load_with_default_kind`](Self::load_with_default_kind); binary
    /// snapshots always carry explicit kinds, so the default is unused
    /// there).
    pub fn load_auto(dir: impl AsRef<Path>, default_kind: QueryKind) -> Result<Self, GraphError> {
        let dir = dir.as_ref();
        if dir.join("snapshot.bin").exists() {
            Self::load_binary(dir)
        } else {
            Self::load_with_default_kind(dir, default_kind)
        }
    }

    /// The crash-recovering load: when the directory carries a valid
    /// `MANIFEST` (see [`crate::staged`]), generations are tried newest
    /// first — each validated against its recorded checksums before
    /// parsing — and the first valid one wins, so a save that crashed
    /// mid-write falls back to the previous good generation. Directories
    /// without a manifest (or with a corrupt one) load through the legacy
    /// flat-file [`load_auto`](Self::load_auto) path.
    pub fn load_resilient(
        dir: impl AsRef<Path>,
        default_kind: QueryKind,
    ) -> Result<RecoveredSnapshot, GraphError> {
        let dir = dir.as_ref();
        let Some(manifest) = crate::staged::Manifest::read(dir) else {
            return Ok(RecoveredSnapshot {
                state: Self::load_auto(dir, default_kind)?,
                generation: None,
            });
        };
        let mut last_err: Option<GraphError> = None;
        for gen in &manifest.generations {
            match Self::load_generation(dir, gen, default_kind) {
                Ok(state) => {
                    return Ok(RecoveredSnapshot {
                        state,
                        generation: Some(gen.seq),
                    })
                }
                Err(e) => {
                    eprintln!(
                        "gc-core: warning: generation {} in {dir:?} failed to load ({e}); \
                         falling back to the previous generation",
                        gen.seq
                    );
                    last_err = Some(e);
                }
            }
        }
        Err(last_err
            .unwrap_or_else(|| GraphError::snapshot(0, "manifest lists no usable generation")))
    }

    /// Loads one manifest-listed generation, validating every file's
    /// length and checksum against the manifest before parsing — a torn
    /// or bit-flipped file is rejected without trusting its contents.
    fn load_generation(
        dir: &Path,
        gen: &crate::staged::Generation,
        default_kind: QueryKind,
    ) -> Result<Self, GraphError> {
        let slot = dir.join(crate::staged::generation_dir_name(gen.seq));
        for file in &gen.files {
            let bytes = std::fs::read(slot.join(&file.name))?;
            if bytes.len() as u64 != file.len || crate::staged::fnv1a(&bytes) != file.checksum {
                return Err(GraphError::snapshot(
                    0,
                    format!(
                        "generation {} file {} fails manifest validation",
                        gen.seq, file.name
                    ),
                ));
            }
        }
        match gen.format {
            PersistFormat::Binary => Self::load_binary(&slot),
            PersistFormat::Text => Self::load_with_default_kind(&slot, default_kind),
        }
    }

    /// Reads the state back from `dir`. Entries whose header omits the
    /// kind token load as subgraph-mode; use
    /// [`load_with_default_kind`](Self::load_with_default_kind) to supply
    /// the right default for a supergraph cache.
    pub fn load(dir: impl AsRef<Path>) -> Result<Self, GraphError> {
        Self::load_with_default_kind(dir, QueryKind::Subgraph)
    }

    /// Reads the state back from `dir`, tagging entries whose `@entry`
    /// header predates direction tagging (no `sub`/`super` token) with
    /// `default_kind`. A cache restoring its own legacy save passes its
    /// configured query kind, so old supergraph saves keep hitting
    /// supergraph queries instead of silently mis-tagging as subgraph.
    pub fn load_with_default_kind(
        dir: impl AsRef<Path>,
        default_kind: QueryKind,
    ) -> Result<Self, GraphError> {
        let dir = dir.as_ref();
        let mut out = PersistedCache::default();

        let ef = BufReader::new(std::fs::File::open(dir.join("entries.txt"))?);
        let mut lines = ef.lines();
        let first = lines
            .next()
            .transpose()?
            .ok_or_else(|| GraphError::parse(1, "missing next_serial header"))?;
        out.next_serial = first
            .strip_prefix("next_serial ")
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| GraphError::parse(1, "malformed next_serial header"))?;
        // Re-assemble records: delegate graph parsing to gc_graph::io by
        // buffering each record's lines.
        let mut pending: Vec<String> = Vec::new();
        let mut serial: Option<(QuerySerial, QueryKind, Option<u64>)> = None;
        let mut lineno = 1usize;
        let finish = |(serial, kind, fp): (QuerySerial, QueryKind, Option<u64>),
                      pending: &mut Vec<String>,
                      out: &mut PersistedCache,
                      lineno: usize|
         -> Result<(), GraphError> {
            let answers_line = pending
                .pop()
                .ok_or_else(|| GraphError::parse(lineno, "entry missing answers line"))?;
            let rest = answers_line
                .strip_prefix("answers:")
                .ok_or_else(|| GraphError::parse(lineno, "expected 'answers:' line"))?;
            let mut answer = Vec::new();
            for tok in rest.split_whitespace() {
                let id: u32 = tok
                    .parse()
                    .map_err(|_| GraphError::parse(lineno, format!("bad answer id {tok:?}")))?;
                answer.push(GraphId(id));
            }
            let text = pending.join("\n");
            let ds = io::read_dataset(text.as_bytes())?;
            if ds.len() != 1 {
                return Err(GraphError::parse(
                    lineno,
                    "expected exactly one graph record",
                ));
            }
            let graph = ds.graph(GraphId(0)).clone();
            // Saves predating fingerprints carry no token; re-hash on load.
            let fingerprint = fp.unwrap_or_else(|| iso_hash(&graph));
            out.entries.push((serial, graph, answer, kind, fingerprint));
            pending.clear();
            Ok(())
        };
        for line in lines {
            let line = line?;
            lineno += 1;
            if let Some(s) = line.strip_prefix("@entry ") {
                if let Some(prev) = serial.take() {
                    finish(prev, &mut pending, &mut out, lineno)?;
                }
                let mut toks = s.split_whitespace();
                let parsed: QuerySerial = toks
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| GraphError::parse(lineno, "bad entry serial"))?;
                // The kind and fingerprint tokens are optional: saves
                // predating direction-tagged entries carry neither (the
                // kind defaults to the caller's, the fingerprint is
                // recomputed from the graph).
                let mut kind = default_kind;
                let mut fp: Option<u64> = None;
                for tok in toks {
                    match tok {
                        "sub" => kind = QueryKind::Subgraph,
                        "super" => kind = QueryKind::Supergraph,
                        _ => {
                            let hex = tok.strip_prefix("fp:").ok_or_else(|| {
                                GraphError::parse(lineno, format!("unknown entry kind {tok:?}"))
                            })?;
                            fp = Some(u64::from_str_radix(hex, 16).map_err(|_| {
                                GraphError::parse(lineno, "malformed fingerprint token")
                            })?);
                        }
                    }
                }
                serial = Some((parsed, kind, fp));
            } else if serial.is_some() {
                pending.push(line);
            } else if let Some(p) = line.strip_prefix("policy ") {
                // Optional header (saves predating the policy engine carry
                // none); only valid once, before the first @entry.
                if out.policy.is_some() || p.trim().is_empty() {
                    return Err(GraphError::parse(lineno, "malformed policy header"));
                }
                out.policy = Some(p.trim().to_string());
            } else if !line.trim().is_empty() {
                return Err(GraphError::parse(lineno, "content before first @entry"));
            }
        }
        if let Some(prev) = serial.take() {
            finish(prev, &mut pending, &mut out, lineno)?;
        }

        let sf = BufReader::new(std::fs::File::open(dir.join("stats.txt"))?);
        read_stats_text(sf, &mut out.stats)?;

        // Fragment store: optional file (absent in saves predating the
        // fragment cache — legacy directories load an empty list), strict
        // once present.
        let fragments_path = dir.join("fragments.txt");
        if fragments_path.exists() {
            out.fragments = load_fragments(&fragments_path)?;
        }
        Ok(out)
    }

    /// Materialises a single-shard [`CacheSnapshot`] from the loaded
    /// entries (the query index is rebuilt, exactly as the paper's startup
    /// path does). See [`into_snapshot_sharded`](Self::into_snapshot_sharded)
    /// for restoring into a sharded cache.
    pub fn into_snapshot(self, cfg: QueryIndexConfig) -> (CacheSnapshot, StatsStore, QuerySerial) {
        self.into_snapshot_sharded(cfg, 1)
    }

    /// Materialises a [`CacheSnapshot`] with `shards` partitions from the
    /// loaded entries. The on-disk format carries no shard layout — shard
    /// counts are runtime configuration, so a save taken under one count
    /// restores cleanly under any other; entries are re-routed by serial
    /// hash on load.
    pub fn into_snapshot_sharded(
        self,
        cfg: QueryIndexConfig,
        shards: usize,
    ) -> (CacheSnapshot, StatsStore, QuerySerial) {
        // Stored profiles skip the per-entry path enumeration — but only
        // when they were captured under this exact index configuration
        // and cover every entry; anything else re-enumerates, so a stale
        // or mismatched profile section can never poison the index.
        let stored = self.profiles.filter(|p| {
            p.max_path_len == cfg.max_path_len
                && p.work_cap == cfg.work_cap
                && p.profiles.len() == self.entries.len()
        });
        let profiles: Vec<Option<PathProfile>> = match stored {
            Some(p) => p.profiles.into_iter().map(Some).collect(),
            None => vec![None; self.entries.len()],
        };
        let entries: Vec<Arc<CacheEntry>> = self
            .entries
            .into_iter()
            .zip(profiles)
            .map(
                |((serial, graph, answer, kind, fingerprint), stored_profile)| {
                    let profile = stored_profile
                        .unwrap_or_else(|| enumerate_paths(&graph, cfg.max_path_len, cfg.work_cap));
                    Arc::new(CacheEntry {
                        serial,
                        graph: Arc::new(graph),
                        answer,
                        kind,
                        profile,
                        fingerprint,
                    })
                },
            )
            .collect();
        (
            CacheSnapshot::build_sharded(cfg, shards, entries),
            self.stats,
            self.next_serial,
        )
    }
}

/// Writes the `stats.txt` text codec: rows in sorted-serial order, each
/// row's columns in the store's (sorted) iteration order — so identical
/// stats always serialise to identical bytes. Shared between the text
/// save and the binary snapshot's embedded STATS section.
pub(crate) fn write_stats_text(mut w: impl Write, stats: &StatsStore) -> std::io::Result<()> {
    let mut keys: Vec<QuerySerial> = stats.keys().collect();
    keys.sort_unstable();
    for key in keys {
        writeln!(w, "row {key}")?;
        if let Some(row) = stats.row(key) {
            for (col, val) in row {
                match val {
                    Value::Int(i) => writeln!(w, "  {col} int {i}")?,
                    Value::Float(f) => writeln!(w, "  {col} float {f}")?,
                }
            }
        }
    }
    Ok(())
}

/// Parses the `stats.txt` text codec into `stats`. Strict: malformed rows
/// or cells are errors, not skips.
pub(crate) fn read_stats_text(r: impl BufRead, stats: &mut StatsStore) -> Result<(), GraphError> {
    let mut current: Option<QuerySerial> = None;
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        let lineno = i + 1;
        if let Some(k) = line.strip_prefix("row ") {
            current = Some(
                k.trim()
                    .parse()
                    .map_err(|_| GraphError::parse(lineno, "bad stats key"))?,
            );
        } else if !line.trim().is_empty() {
            let key =
                current.ok_or_else(|| GraphError::parse(lineno, "stats cell before any row"))?;
            let mut parts = line.split_whitespace();
            let col = parts
                .next()
                .ok_or_else(|| GraphError::parse(lineno, "missing column name"))?;
            let kind = parts
                .next()
                .ok_or_else(|| GraphError::parse(lineno, "missing value kind"))?;
            let raw = parts
                .next()
                .ok_or_else(|| GraphError::parse(lineno, "missing value"))?;
            let col = leak_column(col);
            match kind {
                "int" => stats.set(
                    key,
                    col,
                    raw.parse::<i64>()
                        .map_err(|_| GraphError::parse(lineno, "bad int"))?,
                ),
                "float" => stats.set(
                    key,
                    col,
                    raw.parse::<f64>()
                        .map_err(|_| GraphError::parse(lineno, "bad float"))?,
                ),
                other => {
                    return Err(GraphError::parse(
                        lineno,
                        format!("unknown value kind {other:?}"),
                    ))
                }
            }
        }
    }
    Ok(())
}

/// Writes the `fragments.txt` text codec (version header + one record per
/// fragment). Shared between the text save and the binary snapshot's
/// embedded FRAGMENTS section.
pub(crate) fn write_fragments_text(
    mut w: impl Write,
    fragments: &[PersistedFragment],
) -> std::io::Result<()> {
    writeln!(w, "fragments_v1")?;
    for f in fragments {
        writeln!(
            w,
            "@fragment key:{:016x} hits:{} last:{} r:{} c:{}",
            f.key, f.hits, f.last_hit, f.r_total, f.c_total
        )?;
        io::write_graph(&mut w, &format!("f{:016x}", f.key), &f.graph)?;
        write!(w, "occs:")?;
        for id in &f.occs {
            write!(w, " {}", id.0)?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Parses the strict `fragments.txt` format (see the module docs).
fn load_fragments(path: &Path) -> Result<Vec<PersistedFragment>, GraphError> {
    read_fragments_text(BufReader::new(std::fs::File::open(path)?))
}

/// Parses the `fragments.txt` text codec from any reader. Shared between
/// the text load and the binary snapshot's embedded FRAGMENTS section.
pub(crate) fn read_fragments_text(r: impl BufRead) -> Result<Vec<PersistedFragment>, GraphError> {
    let mut lines = r.lines();
    let header = lines
        .next()
        .transpose()?
        .ok_or_else(|| GraphError::parse(1, "missing fragments version header"))?;
    if header.trim() != "fragments_v1" {
        return Err(GraphError::parse(1, "unknown fragments format version"));
    }
    let mut fragments = Vec::new();
    let mut pending: Vec<String> = Vec::new();
    let mut current: Option<PersistedFragment> = None;
    let mut lineno = 1usize;
    let finish = |mut frag: PersistedFragment,
                  pending: &mut Vec<String>,
                  fragments: &mut Vec<PersistedFragment>,
                  lineno: usize|
     -> Result<(), GraphError> {
        let occs_line = pending
            .pop()
            .ok_or_else(|| GraphError::parse(lineno, "fragment missing occs line"))?;
        let rest = occs_line
            .strip_prefix("occs:")
            .ok_or_else(|| GraphError::parse(lineno, "expected 'occs:' line"))?;
        for tok in rest.split_whitespace() {
            let id: u32 = tok
                .parse()
                .map_err(|_| GraphError::parse(lineno, format!("bad occurrence id {tok:?}")))?;
            frag.occs.push(GraphId(id));
        }
        let text = pending.join("\n");
        let ds = io::read_dataset(text.as_bytes())?;
        if ds.len() != 1 {
            return Err(GraphError::parse(
                lineno,
                "expected exactly one fragment graph record",
            ));
        }
        frag.graph = ds.graph(GraphId(0)).clone();
        fragments.push(frag);
        pending.clear();
        Ok(())
    };
    for line in lines {
        let line = line?;
        lineno += 1;
        if let Some(s) = line.strip_prefix("@fragment ") {
            if let Some(prev) = current.take() {
                finish(prev, &mut pending, &mut fragments, lineno)?;
            }
            current = Some(parse_fragment_header(s, lineno)?);
        } else if current.is_some() {
            pending.push(line);
        } else if !line.trim().is_empty() {
            return Err(GraphError::parse(lineno, "content before first @fragment"));
        }
    }
    if let Some(prev) = current.take() {
        finish(prev, &mut pending, &mut fragments, lineno)?;
    }
    Ok(fragments)
}

/// Parses one `@fragment` header's `name:value` tokens. Every token is
/// required and unknown names are rejected — a save that this code cannot
/// fully understand must fail loudly, not load a half-read fragment.
fn parse_fragment_header(s: &str, lineno: usize) -> Result<PersistedFragment, GraphError> {
    let mut key = None;
    let mut hits = None;
    let mut last_hit = None;
    let mut r_total = None;
    let mut c_total = None;
    for tok in s.split_whitespace() {
        let (name, val) = tok.split_once(':').ok_or_else(|| {
            GraphError::parse(lineno, format!("malformed fragment token {tok:?}"))
        })?;
        let bad = |what: &str| GraphError::parse(lineno, format!("bad fragment {what} {val:?}"));
        match name {
            "key" => key = Some(u64::from_str_radix(val, 16).map_err(|_| bad("key"))?),
            "hits" => hits = Some(val.parse::<u64>().map_err(|_| bad("hits"))?),
            "last" => last_hit = Some(val.parse::<u64>().map_err(|_| bad("last"))?),
            "r" => r_total = Some(val.parse::<u64>().map_err(|_| bad("r"))?),
            "c" => c_total = Some(val.parse::<f64>().map_err(|_| bad("c"))?),
            other => {
                return Err(GraphError::parse(
                    lineno,
                    format!("unknown fragment token {other:?}"),
                ))
            }
        }
    }
    let missing = |what: &str| GraphError::parse(lineno, format!("fragment missing {what} token"));
    Ok(PersistedFragment {
        key: key.ok_or_else(|| missing("key"))?,
        graph: gc_graph::LabeledGraph::from_parts(Vec::new(), &[]),
        occs: Vec::new(),
        hits: hits.ok_or_else(|| missing("hits"))?,
        last_hit: last_hit.ok_or_else(|| missing("last"))?,
        r_total: r_total.ok_or_else(|| missing("r"))?,
        c_total: c_total.ok_or_else(|| missing("c"))?,
    })
}

/// Statistics columns are `&'static str`; persisted columns outside the
/// known set are interned by leaking (bounded by the column vocabulary).
fn leak_column(name: &str) -> &'static str {
    use crate::stats::columns as c;
    for known in [
        c::NODES,
        c::EDGES,
        c::LABELS,
        c::FILTER_US,
        c::VERIFY_US,
        c::HITS,
        c::SPECIAL_HITS,
        c::LAST_HIT,
        c::R_TOTAL,
        c::C_TOTAL,
        c::EXPENSIVENESS,
    ] {
        if known == name {
            return known;
        }
    }
    Box::leak(name.to_owned().into_boxed_str())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::columns;
    use gc_graph::LabeledGraph;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("gc-persist-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> PersistedCache {
        let mut stats = StatsStore::new();
        stats.set(3, columns::HITS, 7i64);
        stats.set(3, columns::C_TOTAL, 12.5);
        stats.set(9, columns::NODES, 4i64);
        let g3 = LabeledGraph::from_parts(vec![0, 1, 0], &[(0, 1), (1, 2)]);
        let g9 = LabeledGraph::from_parts(vec![5], &[]);
        let fp3 = iso_hash(&g3);
        let fp9 = iso_hash(&g9);
        PersistedCache {
            entries: vec![
                (
                    3,
                    g3,
                    vec![GraphId(0), GraphId(4)],
                    QueryKind::Subgraph,
                    fp3,
                ),
                (9, g9, vec![], QueryKind::Supergraph, fp9),
            ],
            stats,
            next_serial: 42,
            policy: Some("hd".to_string()),
            fragments: vec![PersistedFragment {
                key: 0xdead_beef_0042_7711,
                graph: LabeledGraph::from_parts(vec![1, 2, 1], &[(0, 1), (1, 2)]),
                occs: vec![GraphId(0), GraphId(2)],
                hits: 3,
                last_hit: 40,
                r_total: 9,
                c_total: 2.25,
            }],
            profiles: None,
        }
    }

    #[test]
    fn roundtrip() {
        let dir = tmpdir("roundtrip");
        let orig = sample();
        orig.save(&dir).unwrap();
        let back = PersistedCache::load(&dir).unwrap();
        assert_eq!(back.next_serial, 42);
        assert_eq!(back.policy.as_deref(), Some("hd"));
        assert_eq!(back.entries.len(), 2);
        assert_eq!(back.entries[0].0, 3);
        assert_eq!(back.entries[0].1.labels(), &[0, 1, 0]);
        assert_eq!(back.entries[0].2, vec![GraphId(0), GraphId(4)]);
        assert_eq!(back.entries[0].3, QueryKind::Subgraph);
        assert_eq!(back.entries[0].4, iso_hash(&back.entries[0].1));
        assert_eq!(back.entries[1].2, Vec::<GraphId>::new());
        assert_eq!(back.entries[1].3, QueryKind::Supergraph);
        assert_eq!(back.stats.get(3, columns::HITS), Some(Value::Int(7)));
        assert_eq!(
            back.stats.get(3, columns::C_TOTAL),
            Some(Value::Float(12.5))
        );
        assert_eq!(back.fragments, sample().fragments);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_dirs_without_fragments_load_empty() {
        let dir = tmpdir("no-fragments");
        sample().save(&dir).unwrap();
        std::fs::remove_file(dir.join("fragments.txt")).unwrap();
        let back = PersistedCache::load(&dir).unwrap();
        assert!(back.fragments.is_empty(), "legacy save loads empty store");
        assert_eq!(back.entries.len(), 2, "entries unaffected");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_fragments_rejected() {
        let dir = tmpdir("bad-fragments");
        sample().save(&dir).unwrap();
        let text = std::fs::read_to_string(dir.join("fragments.txt")).unwrap();

        // Wrong version header.
        std::fs::write(
            dir.join("fragments.txt"),
            text.replace("fragments_v1", "fragments_v9"),
        )
        .unwrap();
        assert!(PersistedCache::load(&dir).is_err());

        // Malformed key.
        std::fs::write(dir.join("fragments.txt"), text.replace("key:", "key:zz")).unwrap();
        assert!(PersistedCache::load(&dir).is_err());

        // Unknown header token.
        std::fs::write(dir.join("fragments.txt"), text.replace("hits:", "hats:")).unwrap();
        assert!(PersistedCache::load(&dir).is_err());

        // Missing occs line.
        std::fs::write(
            dir.join("fragments.txt"),
            text.lines()
                .filter(|l| !l.starts_with("occs:"))
                .map(|l| format!("{l}\n"))
                .collect::<String>(),
        )
        .unwrap();
        assert!(PersistedCache::load(&dir).is_err());

        // The intact file still loads (sanity-check the baseline).
        std::fs::write(dir.join("fragments.txt"), &text).unwrap();
        assert!(PersistedCache::load(&dir).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_materialisation() {
        let dir = tmpdir("snapshot");
        sample().save(&dir).unwrap();
        let loaded = PersistedCache::load(&dir).unwrap();
        let (snap, stats, next) = loaded.into_snapshot(QueryIndexConfig::default());
        assert_eq!(snap.len(), 2);
        assert_eq!(next, 42);
        assert_eq!(stats.len(), 2);
        assert!(snap.entry(3).is_some());
        // The rebuilt index answers candidate queries over loaded entries.
        let probe = LabeledGraph::from_parts(vec![0, 1], &[(0, 1)]);
        let (sub, _) = snap.candidate_serials(&probe);
        assert!(!sub.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_materialisation_routes_entries() {
        let dir = tmpdir("sharded");
        sample().save(&dir).unwrap();
        let loaded = PersistedCache::load(&dir).unwrap();
        let (snap, _, _) = loaded.into_snapshot_sharded(QueryIndexConfig::default(), 4);
        assert_eq!(snap.shard_count(), 4);
        assert_eq!(snap.len(), 2);
        assert!(snap.entry(3).is_some());
        assert!(snap.entry(9).is_some());
        // Candidates match the single-shard materialisation (as sets).
        let probe = LabeledGraph::from_parts(vec![0, 1], &[(0, 1)]);
        let (mut sub, _) = snap.candidate_serials(&probe);
        let loaded = PersistedCache::load(&dir).unwrap();
        let (flat, _, _) = loaded.into_snapshot(QueryIndexConfig::default());
        let (mut flat_sub, _) = flat.candidate_serials(&probe);
        sub.sort_unstable();
        flat_sub.sort_unstable();
        assert_eq!(sub, flat_sub);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_inputs_rejected() {
        let dir = tmpdir("malformed");
        std::fs::write(dir.join("entries.txt"), "garbage\n").unwrap();
        std::fs::write(dir.join("stats.txt"), "").unwrap();
        assert!(PersistedCache::load(&dir).is_err());

        std::fs::write(dir.join("entries.txt"), "next_serial 1\nstray\n").unwrap();
        assert!(PersistedCache::load(&dir).is_err());

        std::fs::write(dir.join("entries.txt"), "next_serial 1\n").unwrap();
        std::fs::write(dir.join("stats.txt"), "  orphan int 3\n").unwrap();
        assert!(PersistedCache::load(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_headers_default_to_subgraph() {
        // Saves that predate direction tagging have bare `@entry <serial>`
        // headers; they must load as subgraph-mode entries.
        let dir = tmpdir("legacy");
        sample().save(&dir).unwrap();
        let text = std::fs::read_to_string(dir.join("entries.txt")).unwrap();
        let stripped: String = text
            .lines()
            .map(|l| {
                if let Some(rest) = l.strip_prefix("@entry ") {
                    format!("@entry {}\n", rest.split_whitespace().next().unwrap())
                } else {
                    format!("{l}\n")
                }
            })
            .collect();
        std::fs::write(dir.join("entries.txt"), stripped).unwrap();
        let back = PersistedCache::load(&dir).unwrap();
        assert!(back.entries.iter().all(|e| e.3 == QueryKind::Subgraph));
        // A supergraph cache restoring its own legacy save tags them with
        // its configured kind instead.
        let back = PersistedCache::load_with_default_kind(&dir, QueryKind::Supergraph).unwrap();
        assert!(back.entries.iter().all(|e| e.3 == QueryKind::Supergraph));

        // Unknown kind tokens are rejected, not silently defaulted.
        let bad = text.replace("@entry 3 sub", "@entry 3 sideways");
        std::fs::write(dir.join("entries.txt"), bad).unwrap();
        assert!(PersistedCache::load(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Saves without a fingerprint token load by re-hashing the graph, so
    /// the exact-match fast path works on restored legacy caches too.
    #[test]
    fn legacy_saves_recompute_fingerprints() {
        let dir = tmpdir("legacy-fp");
        sample().save(&dir).unwrap();
        let text = std::fs::read_to_string(dir.join("entries.txt")).unwrap();
        assert!(text.contains(" fp:"), "fingerprints are persisted");
        let stripped: String = text
            .lines()
            .map(|l| {
                if let Some(rest) = l.strip_prefix("@entry ") {
                    let mut toks = rest.split_whitespace();
                    format!(
                        "@entry {} {}\n",
                        toks.next().unwrap(),
                        toks.next().unwrap() // keep the kind, drop fp
                    )
                } else {
                    format!("{l}\n")
                }
            })
            .collect();
        std::fs::write(dir.join("entries.txt"), stripped).unwrap();
        let back = PersistedCache::load(&dir).unwrap();
        for (_, graph, _, _, fp) in &back.entries {
            assert_eq!(*fp, iso_hash(graph), "recomputed on load");
        }

        // A malformed fingerprint token is rejected, not guessed around.
        let bad = text.replacen(" fp:", " fp:zz", 1);
        std::fs::write(dir.join("entries.txt"), bad).unwrap();
        assert!(PersistedCache::load(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_cache_roundtrip() {
        let dir = tmpdir("empty");
        let empty = PersistedCache {
            next_serial: 1,
            ..Default::default()
        };
        empty.save(&dir).unwrap();
        let back = PersistedCache::load(&dir).unwrap();
        assert!(back.entries.is_empty());
        assert!(back.stats.is_empty());
        assert!(back.policy.is_none(), "no header written when unset");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn policy_header_optional_and_strict() {
        // Legacy saves (no `policy` line) load with `policy: None`.
        let dir = tmpdir("policy-header");
        sample().save(&dir).unwrap();
        let text = std::fs::read_to_string(dir.join("entries.txt")).unwrap();
        let without: String = text
            .lines()
            .filter(|l| !l.starts_with("policy "))
            .map(|l| format!("{l}\n"))
            .collect();
        std::fs::write(dir.join("entries.txt"), &without).unwrap();
        let back = PersistedCache::load(&dir).unwrap();
        assert!(back.policy.is_none(), "legacy save still loads");
        assert_eq!(back.entries.len(), 2);

        // A duplicated policy header is rejected.
        let doubled = text.replace("policy hd", "policy hd\npolicy lru");
        std::fs::write(dir.join("entries.txt"), doubled).unwrap();
        assert!(PersistedCache::load(&dir).is_err());

        // An empty policy name is rejected.
        let empty_name = text.replace("policy hd", "policy  ");
        std::fs::write(dir.join("entries.txt"), empty_name).unwrap();
        assert!(PersistedCache::load(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
