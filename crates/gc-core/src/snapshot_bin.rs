//! Persist format v2: a length-prefixed little-endian binary snapshot that
//! mirrors the in-memory arena layout, so restore is a bulk read +
//! validate with no per-entry text parsing.
//!
//! # On-disk layout (`snapshot.bin`)
//!
//! ```text
//! magic            8 bytes   b"GCSNAP01"
//! next_serial      u64 LE
//! entry_count      u64 LE
//! profile_max_len  u64 LE    u64::MAX when no profiles are stored
//! profile_work_cap u64 LE    meaningful only when profiles are stored
//! section_count    u64 LE
//! section table    section_count × (id u64, offset u64, len u64) LE;
//!                  offsets are relative to the payload start
//! payload          concatenated section bytes
//! checksum         u64 LE    FNV-1a over every byte before it
//! ```
//!
//! Sections are struct-of-arrays columns — the same shape the shards hold
//! in memory — plus flattened arenas indexed by the per-entry count
//! columns (an entry's range is the prefix sum of the counts before it):
//!
//! | id | section        | contents                                        |
//! |----|----------------|-------------------------------------------------|
//! | 1  | META           | `u64` policy-name length + UTF-8 bytes (0 = none) |
//! | 2  | SERIALS        | `u64 × n` entry serials                         |
//! | 3  | FINGERPRINTS   | `u64 × n` iso fingerprints                      |
//! | 4  | KINDS          | `u8 × n` query kinds (0 = sub, 1 = super)       |
//! | 5  | LABEL_COUNTS   | `u32 × n` per-entry node counts                 |
//! | 6  | EDGE_COUNTS    | `u32 × n` per-entry edge counts                 |
//! | 7  | ANSWER_LENS    | `u32 × n` per-entry answer-set lengths          |
//! | 8  | LABELS         | `u32` arena: all node labels, entry-major       |
//! | 9  | EDGES          | `u32` arena: all edges as `(u, v)` pairs        |
//! | 10 | ANSWERS        | `u32` arena: all answer ids, entry-major        |
//! | 11 | PROFILES       | `u32` stream of path-feature profiles (optional) |
//! | 12 | STATS          | the `stats.txt` text codec, embedded            |
//! | 13 | FRAGMENTS      | the `fragments.txt` text codec, embedded        |
//!
//! The PROFILES stream holds, per entry, either the single word
//! `u32::MAX` (enumeration overflowed) or a feature count followed by
//! `len, label…, count` words per feature, features in sorted label-order
//! — so an identical cache always encodes to identical bytes. Storing
//! profiles is what makes binary restore fast: materialisation reuses them
//! instead of re-enumerating every graph's simple paths (the dominant cost
//! of a text restore), provided the restoring index configuration matches
//! the one recorded in the header.
//!
//! Decoding is strict and never panics: truncation, a bad magic, a
//! checksum mismatch or any malformed section yields
//! [`GraphError::Snapshot`] with the offending byte offset.

use crate::persist::{PersistedCache, StoredProfiles};
use gc_graph::{GraphError, GraphId, LabeledGraph};
use gc_index::fx::FxHashMap;
use gc_index::paths::{PathFeature, PathProfile};
use gc_methods::QueryKind;

/// Format magic: "GC snapshot", format revision 01.
pub const MAGIC: &[u8; 8] = b"GCSNAP01";

const SEC_META: u64 = 1;
const SEC_SERIALS: u64 = 2;
const SEC_FINGERPRINTS: u64 = 3;
const SEC_KINDS: u64 = 4;
const SEC_LABEL_COUNTS: u64 = 5;
const SEC_EDGE_COUNTS: u64 = 6;
const SEC_ANSWER_LENS: u64 = 7;
const SEC_LABELS: u64 = 8;
const SEC_EDGES: u64 = 9;
const SEC_ANSWERS: u64 = 10;
const SEC_PROFILES: u64 = 11;
const SEC_STATS: u64 = 12;
const SEC_FRAGMENTS: u64 = 13;

/// FNV-1a 64-bit over a byte slice — implemented locally so the format has
/// no dependency beyond the standard library.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u32s(out: &mut Vec<u8>, vs: impl IntoIterator<Item = u32>) {
    for v in vs {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Encodes the cache into the full `snapshot.bin` byte image.
pub(crate) fn encode(cache: &PersistedCache) -> Vec<u8> {
    let n = cache.entries.len();

    // Build each section as its own byte blob.
    let mut meta = Vec::new();
    let policy = cache.policy.as_deref().unwrap_or("");
    push_u64(&mut meta, policy.len() as u64);
    meta.extend_from_slice(policy.as_bytes());

    let mut serials = Vec::with_capacity(n * 8);
    let mut fingerprints = Vec::with_capacity(n * 8);
    let mut kinds = Vec::with_capacity(n);
    let mut label_counts = Vec::with_capacity(n * 4);
    let mut edge_counts = Vec::with_capacity(n * 4);
    let mut answer_lens = Vec::with_capacity(n * 4);
    let mut labels = Vec::new();
    let mut edges = Vec::new();
    let mut answers = Vec::new();
    for (serial, graph, answer, kind, fingerprint) in &cache.entries {
        push_u64(&mut serials, *serial);
        push_u64(&mut fingerprints, *fingerprint);
        kinds.push(match kind {
            QueryKind::Subgraph => 0u8,
            QueryKind::Supergraph => 1u8,
        });
        push_u32s(&mut label_counts, [graph.node_count() as u32]);
        push_u32s(&mut edge_counts, [graph.edge_count() as u32]);
        push_u32s(&mut answer_lens, [answer.len() as u32]);
        push_u32s(&mut labels, graph.labels().iter().copied());
        push_u32s(&mut edges, graph.edges().flat_map(|(u, v)| [u, v]));
        push_u32s(&mut answers, answer.iter().map(|id| id.0));
    }

    let profiles = cache.profiles.as_ref().map(|stored| {
        let mut out = Vec::new();
        for profile in &stored.profiles {
            match profile.counts() {
                None => push_u32s(&mut out, [u32::MAX]),
                Some(counts) => {
                    let mut features: Vec<(&PathFeature, u32)> =
                        counts.iter().map(|(k, &v)| (k, v)).collect();
                    features.sort_unstable_by(|a, b| a.0.cmp(b.0));
                    push_u32s(&mut out, [features.len() as u32]);
                    for (feature, count) in features {
                        push_u32s(&mut out, [feature.len() as u32]);
                        push_u32s(&mut out, feature.iter().copied());
                        push_u32s(&mut out, [count]);
                    }
                }
            }
        }
        out
    });

    let mut stats = Vec::new();
    crate::persist::write_stats_text(&mut stats, &cache.stats).expect("vec write");
    let mut fragments = Vec::new();
    crate::persist::write_fragments_text(&mut fragments, &cache.fragments).expect("vec write");

    let mut sections: Vec<(u64, Vec<u8>)> = vec![
        (SEC_META, meta),
        (SEC_SERIALS, serials),
        (SEC_FINGERPRINTS, fingerprints),
        (SEC_KINDS, kinds),
        (SEC_LABEL_COUNTS, label_counts),
        (SEC_EDGE_COUNTS, edge_counts),
        (SEC_ANSWER_LENS, answer_lens),
        (SEC_LABELS, labels),
        (SEC_EDGES, edges),
        (SEC_ANSWERS, answers),
    ];
    if let Some(p) = profiles {
        sections.push((SEC_PROFILES, p));
    }
    sections.push((SEC_STATS, stats));
    sections.push((SEC_FRAGMENTS, fragments));

    // Assemble: header, section table, payload, checksum.
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    push_u64(&mut out, cache.next_serial);
    push_u64(&mut out, n as u64);
    match &cache.profiles {
        Some(stored) => {
            push_u64(&mut out, stored.max_path_len as u64);
            push_u64(&mut out, stored.work_cap);
        }
        None => {
            push_u64(&mut out, u64::MAX);
            push_u64(&mut out, 0);
        }
    }
    push_u64(&mut out, sections.len() as u64);
    let mut offset = 0u64;
    for (id, bytes) in &sections {
        push_u64(&mut out, *id);
        push_u64(&mut out, offset);
        push_u64(&mut out, bytes.len() as u64);
        offset += bytes.len() as u64;
    }
    for (_, bytes) in &sections {
        out.extend_from_slice(bytes);
    }
    let checksum = fnv1a(&out);
    push_u64(&mut out, checksum);
    out
}

/// A bounds-checked reader over the snapshot image. Every accessor returns
/// a typed error instead of panicking on truncated input.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], GraphError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| GraphError::snapshot(self.pos, format!("truncated {what}")))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u64(&mut self, what: &str) -> Result<u64, GraphError> {
        let bytes = self.take(8, what)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }
}

/// Decodes a `u32` column section, validating alignment.
fn u32s(bytes: &[u8], at: usize, what: &str) -> Result<Vec<u32>, GraphError> {
    if !bytes.len().is_multiple_of(4) {
        return Err(GraphError::snapshot(
            at,
            format!("{what} section length {} not a multiple of 4", bytes.len()),
        ));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect())
}

/// Decodes a `u64` column section, validating alignment.
fn u64s(bytes: &[u8], at: usize, what: &str) -> Result<Vec<u64>, GraphError> {
    if !bytes.len().is_multiple_of(8) {
        return Err(GraphError::snapshot(
            at,
            format!("{what} section length {} not a multiple of 8", bytes.len()),
        ));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect())
}

fn expect_len<T>(col: &[T], n: usize, at: usize, what: &str) -> Result<(), GraphError> {
    if col.len() != n {
        return Err(GraphError::snapshot(
            at,
            format!("{what} column has {} entries, expected {n}", col.len()),
        ));
    }
    Ok(())
}

/// Decodes a full `snapshot.bin` image back into a [`PersistedCache`].
pub(crate) fn decode(buf: &[u8]) -> Result<PersistedCache, GraphError> {
    // Trailer first: the checksum covers everything before it, so validate
    // the whole image before trusting any length field inside it.
    if buf.len() < MAGIC.len() + 5 * 8 + 8 {
        return Err(GraphError::snapshot(buf.len(), "snapshot too short"));
    }
    let body = &buf[..buf.len() - 8];
    let stored_sum = u64::from_le_bytes(buf[buf.len() - 8..].try_into().expect("8 bytes"));
    if fnv1a(body) != stored_sum {
        return Err(GraphError::snapshot(buf.len() - 8, "checksum mismatch"));
    }

    let mut cur = Cursor { buf: body, pos: 0 };
    if cur.take(8, "magic")? != MAGIC {
        return Err(GraphError::snapshot(0, "bad magic (not a gc snapshot)"));
    }
    let next_serial = cur.u64("next_serial")?;
    let entry_count = cur.u64("entry_count")? as usize;
    let profile_max_len = cur.u64("profile_max_len")?;
    let profile_work_cap = cur.u64("profile_work_cap")?;
    let section_count = cur.u64("section_count")? as usize;

    // Section table, then slice the payload.
    let mut table: Vec<(u64, usize, usize)> = Vec::with_capacity(section_count);
    for _ in 0..section_count {
        let id = cur.u64("section id")?;
        let offset = cur.u64("section offset")? as usize;
        let len = cur.u64("section length")? as usize;
        table.push((id, offset, len));
    }
    let payload_start = cur.pos;
    let payload = &body[payload_start..];
    let section = |id: u64, what: &str| -> Result<(&[u8], usize), GraphError> {
        let (_, o, l) = *table.iter().find(|&&(i, _, _)| i == id).ok_or_else(|| {
            GraphError::snapshot(payload_start, format!("missing {what} section"))
        })?;
        let end = o
            .checked_add(l)
            .filter(|&e| e <= payload.len())
            .ok_or_else(|| {
                GraphError::snapshot(payload_start + o, format!("{what} section out of bounds"))
            })?;
        Ok((&payload[o..end], payload_start + o))
    };

    let mut out = PersistedCache {
        next_serial,
        ..Default::default()
    };

    // META: optional policy name.
    let (meta, meta_at) = section(SEC_META, "meta")?;
    {
        let mut mc = Cursor { buf: meta, pos: 0 };
        let plen = mc.u64("policy length")? as usize;
        let pbytes = mc.take(plen, "policy name")?;
        if plen > 0 {
            let name = std::str::from_utf8(pbytes)
                .map_err(|_| GraphError::snapshot(meta_at, "policy name not UTF-8"))?;
            out.policy = Some(name.to_string());
        }
    }

    // Fixed-width columns.
    let (b, at) = section(SEC_SERIALS, "serials")?;
    let serials = u64s(b, at, "serials")?;
    expect_len(&serials, entry_count, at, "serials")?;
    let (b, at) = section(SEC_FINGERPRINTS, "fingerprints")?;
    let fingerprints = u64s(b, at, "fingerprints")?;
    expect_len(&fingerprints, entry_count, at, "fingerprints")?;
    let (kinds, kinds_at) = section(SEC_KINDS, "kinds")?;
    expect_len(kinds, entry_count, kinds_at, "kinds")?;
    let (b, at) = section(SEC_LABEL_COUNTS, "label counts")?;
    let label_counts = u32s(b, at, "label counts")?;
    expect_len(&label_counts, entry_count, at, "label counts")?;
    let (b, at) = section(SEC_EDGE_COUNTS, "edge counts")?;
    let edge_counts = u32s(b, at, "edge counts")?;
    expect_len(&edge_counts, entry_count, at, "edge counts")?;
    let (b, at) = section(SEC_ANSWER_LENS, "answer lengths")?;
    let answer_lens = u32s(b, at, "answer lengths")?;
    expect_len(&answer_lens, entry_count, at, "answer lengths")?;

    // Arenas, validated against the count columns' sums.
    let (b, labels_at) = section(SEC_LABELS, "labels")?;
    let labels = u32s(b, labels_at, "labels")?;
    let (b, edges_at) = section(SEC_EDGES, "edges")?;
    let edge_words = u32s(b, edges_at, "edges")?;
    let (b, answers_at) = section(SEC_ANSWERS, "answers")?;
    let answer_words = u32s(b, answers_at, "answers")?;
    let total = |counts: &[u32]| counts.iter().map(|&c| c as usize).sum::<usize>();
    if labels.len() != total(&label_counts) {
        return Err(GraphError::snapshot(
            labels_at,
            "labels arena size mismatch",
        ));
    }
    if edge_words.len() != 2 * total(&edge_counts) {
        return Err(GraphError::snapshot(edges_at, "edges arena size mismatch"));
    }
    if answer_words.len() != total(&answer_lens) {
        return Err(GraphError::snapshot(
            answers_at,
            "answers arena size mismatch",
        ));
    }

    // Reassemble entries by walking the arenas with prefix sums.
    let (mut lo, mut eo, mut ao) = (0usize, 0usize, 0usize);
    for i in 0..entry_count {
        let nl = label_counts[i] as usize;
        let ne = edge_counts[i] as usize;
        let na = answer_lens[i] as usize;
        let node_labels = labels[lo..lo + nl].to_vec();
        let mut entry_edges = Vec::with_capacity(ne);
        for pair in edge_words[2 * eo..2 * (eo + ne)].chunks_exact(2) {
            if pair[0] as usize >= nl || pair[1] as usize >= nl {
                return Err(GraphError::snapshot(
                    edges_at,
                    format!("entry {i}: edge endpoint out of node range"),
                ));
            }
            entry_edges.push((pair[0], pair[1]));
        }
        let graph = LabeledGraph::from_parts(node_labels, &entry_edges);
        let answer: Vec<GraphId> = answer_words[ao..ao + na]
            .iter()
            .map(|&w| GraphId(w))
            .collect();
        let kind = match kinds[i] {
            0 => QueryKind::Subgraph,
            1 => QueryKind::Supergraph,
            other => {
                return Err(GraphError::snapshot(
                    kinds_at + i,
                    format!("unknown query kind tag {other}"),
                ))
            }
        };
        out.entries
            .push((serials[i], graph, answer, kind, fingerprints[i]));
        lo += nl;
        eo += ne;
        ao += na;
    }

    // PROFILES (optional): one profile per entry, stream must terminate
    // exactly at the section end.
    if profile_max_len != u64::MAX {
        let (b, at) = section(SEC_PROFILES, "profiles")?;
        let words = u32s(b, at, "profiles")?;
        let mut w = 0usize;
        let mut next = |what: &str| -> Result<u32, GraphError> {
            let v = words
                .get(w)
                .copied()
                .ok_or_else(|| GraphError::snapshot(at + 4 * w, format!("truncated {what}")))?;
            w += 1;
            Ok(v)
        };
        let mut profiles = Vec::with_capacity(entry_count);
        for i in 0..entry_count {
            let head = next("profile header")?;
            if head == u32::MAX {
                profiles.push(PathProfile::Overflow);
                continue;
            }
            let mut counts: FxHashMap<PathFeature, u32> = FxHashMap::default();
            for _ in 0..head {
                let flen = next("feature length")? as usize;
                let mut feature = Vec::with_capacity(flen);
                for _ in 0..flen {
                    feature.push(next("feature label")?);
                }
                let count = next("feature count")?;
                if counts.insert(feature, count).is_some() {
                    return Err(GraphError::snapshot(
                        at + 4 * w,
                        format!("entry {i}: duplicate profile feature"),
                    ));
                }
            }
            profiles.push(PathProfile::Counts(counts));
        }
        if w != words.len() {
            return Err(GraphError::snapshot(
                at + 4 * w,
                "trailing bytes after last profile",
            ));
        }
        out.profiles = Some(StoredProfiles {
            max_path_len: profile_max_len as usize,
            work_cap: profile_work_cap,
            profiles,
        });
    }

    // STATS and FRAGMENTS: the embedded text codecs.
    let (b, at) = section(SEC_STATS, "stats")?;
    crate::persist::read_stats_text(b, &mut out.stats)
        .map_err(|e| GraphError::snapshot(at, format!("stats section: {e}")))?;
    let (b, at) = section(SEC_FRAGMENTS, "fragments")?;
    out.fragments = crate::persist::read_fragments_text(b)
        .map_err(|e| GraphError::snapshot(at, format!("fragments section: {e}")))?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::PersistedFragment;
    use crate::stats::{columns, StatsStore, Value};
    use gc_index::fingerprint::iso_hash;
    use gc_index::paths::enumerate_paths;

    fn sample(with_profiles: bool) -> PersistedCache {
        let mut stats = StatsStore::new();
        stats.set(3, columns::HITS, 7i64);
        stats.set(3, columns::C_TOTAL, 12.5);
        stats.set(9, columns::NODES, 4i64);
        let g3 = LabeledGraph::from_parts(vec![0, 1, 0], &[(0, 1), (1, 2)]);
        let g9 = LabeledGraph::from_parts(vec![5], &[]);
        let fp3 = iso_hash(&g3);
        let fp9 = iso_hash(&g9);
        let profiles = with_profiles.then(|| StoredProfiles {
            max_path_len: 4,
            work_cap: 5_000_000,
            profiles: vec![enumerate_paths(&g3, 4, 5_000_000), PathProfile::Overflow],
        });
        PersistedCache {
            entries: vec![
                (
                    3,
                    g3,
                    vec![GraphId(0), GraphId(4)],
                    QueryKind::Subgraph,
                    fp3,
                ),
                (9, g9, vec![], QueryKind::Supergraph, fp9),
            ],
            stats,
            next_serial: 42,
            policy: Some("hd".to_string()),
            fragments: vec![PersistedFragment {
                key: 0xdead_beef_0042_7711,
                graph: LabeledGraph::from_parts(vec![1, 2, 1], &[(0, 1), (1, 2)]),
                occs: vec![GraphId(0), GraphId(2)],
                hits: 3,
                last_hit: 40,
                r_total: 9,
                c_total: 2.25,
            }],
            profiles,
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        for with_profiles in [false, true] {
            let orig = sample(with_profiles);
            let bytes = encode(&orig);
            let back = decode(&bytes).unwrap();
            assert_eq!(back.next_serial, 42);
            assert_eq!(back.policy.as_deref(), Some("hd"));
            assert_eq!(back.entries.len(), 2);
            assert_eq!(back.entries[0].0, 3);
            assert_eq!(back.entries[0].1.labels(), &[0, 1, 0]);
            assert_eq!(
                back.entries[0].1.edges().collect::<Vec<_>>(),
                orig.entries[0].1.edges().collect::<Vec<_>>()
            );
            assert_eq!(back.entries[0].2, vec![GraphId(0), GraphId(4)]);
            assert_eq!(back.entries[0].3, QueryKind::Subgraph);
            assert_eq!(back.entries[0].4, orig.entries[0].4);
            assert_eq!(back.entries[1].3, QueryKind::Supergraph);
            assert_eq!(back.stats.get(3, columns::HITS), Some(Value::Int(7)));
            assert_eq!(
                back.stats.get(3, columns::C_TOTAL),
                Some(Value::Float(12.5))
            );
            assert_eq!(back.fragments, orig.fragments);
            match (&back.profiles, with_profiles) {
                (Some(p), true) => {
                    assert_eq!(p.max_path_len, 4);
                    assert_eq!(p.work_cap, 5_000_000);
                    assert_eq!(p.profiles.len(), 2);
                    assert_eq!(
                        p.profiles[0].counts(),
                        orig.profiles.as_ref().unwrap().profiles[0].counts()
                    );
                    assert!(p.profiles[1].counts().is_none(), "overflow survives");
                }
                (None, false) => {}
                other => panic!("profiles mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        // Identical caches encode to identical bytes (sorted stats rows,
        // sorted profile features, canonical edge order) — the property
        // the byte-identical re-save test in tests/persistence.rs pins
        // end-to-end.
        let a = encode(&sample(true));
        let b = encode(&sample(true));
        assert_eq!(a, b);
        let back = decode(&a).unwrap();
        assert_eq!(encode(&back), a, "decode ∘ encode is the identity on bytes");
    }

    #[test]
    fn empty_cache_roundtrips() {
        let empty = PersistedCache {
            next_serial: 1,
            ..Default::default()
        };
        let bytes = encode(&empty);
        let back = decode(&bytes).unwrap();
        assert!(back.entries.is_empty());
        assert!(back.stats.is_empty());
        assert!(back.policy.is_none());
        assert!(back.fragments.is_empty());
        assert!(back.profiles.is_none());
    }

    #[test]
    fn corruption_yields_typed_errors_not_panics() {
        let good = encode(&sample(true));

        // Truncation at every prefix length must error, never panic.
        for len in 0..good.len().min(64) {
            assert!(decode(&good[..len]).is_err(), "prefix {len} accepted");
        }
        assert!(decode(&good[..good.len() - 1]).is_err());

        // Any single flipped byte must fail the checksum (or a stricter
        // later check) — sample a spread of positions.
        for pos in (0..good.len()).step_by(97) {
            let mut bad = good.clone();
            bad[pos] ^= 0x40;
            let err = decode(&bad).expect_err("corruption accepted");
            assert!(
                matches!(err, GraphError::Snapshot { .. }),
                "wrong error type at {pos}: {err}"
            );
        }

        // Bad magic with a recomputed checksum: caught by the magic check.
        let mut bad = good.clone();
        bad[0] = b'X';
        let truncated = bad.len() - 8;
        bad.truncate(truncated);
        let sum = fnv1a(&bad);
        bad.extend_from_slice(&sum.to_le_bytes());
        let err = decode(&bad).unwrap_err();
        assert!(format!("{err}").contains("magic"), "got: {err}");
    }

    #[test]
    fn malformed_sections_rejected_after_checksum_fixup() {
        // Deeper validation than the checksum: mutate the image, then
        // recompute the trailer so the section checks themselves fire.
        let reseal = |mut body: Vec<u8>| -> Vec<u8> {
            let sum = fnv1a(&body);
            body.extend_from_slice(&sum.to_le_bytes());
            body
        };
        let good = encode(&sample(true));
        let body = &good[..good.len() - 8];

        // Entry count inflated: column-length checks fire.
        let mut bad = body.to_vec();
        bad[16..24].copy_from_slice(&999u64.to_le_bytes());
        let err = decode(&reseal(bad)).unwrap_err();
        assert!(matches!(err, GraphError::Snapshot { .. }));

        // Kind byte out of range.
        let mut bad = body.to_vec();
        let kinds_at = find_section(body, SEC_KINDS);
        bad[kinds_at] = 7;
        let err = decode(&reseal(bad)).unwrap_err();
        assert!(format!("{err}").contains("kind"), "got: {err}");

        // Edge endpoint out of node range.
        let mut bad = body.to_vec();
        let edges_at = find_section(body, SEC_EDGES);
        bad[edges_at..edges_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = decode(&reseal(bad)).unwrap_err();
        assert!(format!("{err}").contains("endpoint"), "got: {err}");
    }

    /// Test helper: absolute offset of a section's first payload byte.
    fn find_section(body: &[u8], id: u64) -> usize {
        let section_count = u64::from_le_bytes(body[40..48].try_into().unwrap()) as usize;
        let payload_start = 48 + section_count * 24;
        for i in 0..section_count {
            let row = 48 + i * 24;
            let sid = u64::from_le_bytes(body[row..row + 8].try_into().unwrap());
            if sid == id {
                let off = u64::from_le_bytes(body[row + 8..row + 16].try_into().unwrap()) as usize;
                return payload_start + off;
            }
        }
        panic!("section {id} not found");
    }
}
