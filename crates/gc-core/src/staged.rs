//! Crash-safe staged writes and generational snapshot bookkeeping.
//!
//! Every persist write goes through a staged path: file contents are
//! written to a `*.tmp` sibling, fsynced, and renamed into place, and a
//! whole save lands as one generation-numbered directory (`gen-NNNNNN/`)
//! recorded in a checksum-validated `MANIFEST` at the save root. The
//! commit point is the atomic rename of the new `MANIFEST`: a crash at
//! any earlier instant leaves the previous manifest (and every
//! generation it lists) untouched, and a crash at any later instant
//! leaves the new generation fully durable. Restore walks the manifest
//! newest-first and falls back to the previous generation when the
//! newest is truncated or corrupt — no crash point ever loses a
//! previously-good snapshot.
//!
//! # On-disk layout
//!
//! ```text
//! dir/
//!   MANIFEST            generation index, self-checksummed (see below)
//!   gen-000001/         one complete save (text or binary files)
//!   gen-000002/
//!   entries.txt …       flat "current view" of the newest generation,
//!                       refreshed after commit for legacy readers
//! ```
//!
//! The `MANIFEST` is line-oriented text:
//!
//! ```text
//! gc-manifest v1
//! gen 000002 binary snapshot.bin:<fnv1a-hex>:<len>
//! gen 000001 text entries.txt:<fnv>:<len> stats.txt:<fnv>:<len> fragments.txt:<fnv>:<len>
//! sum <fnv1a-hex of every preceding byte>
//! ```
//!
//! Generations are listed newest-first; at most
//! [`RETAINED_GENERATIONS`] are kept (the newest plus its fallback).
//! A manifest whose trailing `sum` line does not match is treated as
//! absent, which routes restore to the legacy flat-file layout.
//!
//! # Fault injection
//!
//! All mutating filesystem operations of a save run through the
//! [`SnapshotIo`] trait. [`RealIo`] is the production implementation;
//! [`FaultIo`] deterministically fails the Nth operation — cleanly,
//! with a torn (partial) write, or with ENOSPC — and refuses every
//! operation after the injected fault, modelling a process that died at
//! that instant. The fault-injection suite sweeps every operation index
//! of a save and asserts restore always recovers a valid generation.

use gc_graph::GraphError;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crate::persist::PersistFormat;

/// Name of the generation index file at the save root.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// How many generations a save keeps: the newest plus one fallback.
pub const RETAINED_GENERATIONS: usize = 2;

/// FNV-1a 64-bit — the same checksum the binary snapshot trailer uses,
/// shared so the manifest needs nothing beyond the standard library.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Directory name of a generation slot.
pub fn generation_dir_name(seq: u64) -> String {
    format!("gen-{seq:06}")
}

/// The mutating filesystem operations a staged save performs. Threading
/// them through a trait is what makes every crash point injectable: a
/// save is a fixed sequence of these calls, so "crash after the Nth
/// operation" is a deterministic, replayable event.
pub trait SnapshotIo {
    /// Creates a directory and all missing parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Creates `path`, writes `bytes`, and fsyncs before returning — the
    /// staged-write primitive (callers write to a `*.tmp` name and then
    /// [`rename`](SnapshotIo::rename) into place).
    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Atomically renames `from` to `to` (same filesystem).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file; `NotFound` is surfaced for the caller to tolerate.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
}

/// The production [`SnapshotIo`]: real filesystem calls, with
/// `write_file` fsyncing the new contents before it returns so a
/// subsequent rename never publishes an unflushed file.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealIo;

impl SnapshotIo for RealIo {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
}

/// How an injected fault manifests at the chosen operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// The operation fails cleanly with no on-disk effect.
    Fail,
    /// A `write_file` persists only the first `k` bytes before failing —
    /// the torn write a power cut mid-`write(2)` leaves behind. Other
    /// operations fail cleanly (they have no partial state).
    Tear(usize),
    /// The operation fails with `ErrorKind::StorageFull` (ENOSPC); a
    /// `write_file` leaves a truncated file behind, as a full disk does.
    NoSpace,
}

/// A deterministic fault-injecting [`SnapshotIo`]: delegates to
/// [`RealIo`] until the `fail_at`-th mutating operation (0-based),
/// injects the configured [`FaultMode`] there, and fails every
/// subsequent operation — a process that crashed at that instant
/// performs no further IO.
#[derive(Debug)]
pub struct FaultIo {
    fail_at: usize,
    mode: FaultMode,
    ops: AtomicUsize,
    fired: AtomicBool,
}

impl FaultIo {
    /// Injects `mode` at the `fail_at`-th operation of the save.
    pub fn new(fail_at: usize, mode: FaultMode) -> Self {
        FaultIo {
            fail_at,
            mode,
            ops: AtomicUsize::new(0),
            fired: AtomicBool::new(false),
        }
    }

    /// A pure operation counter: never fails, counts every call — used to
    /// learn how many crash points a save has before sweeping them.
    pub fn counting() -> Self {
        Self::new(usize::MAX, FaultMode::Fail)
    }

    /// Operations observed so far (including the failed one).
    pub fn ops(&self) -> usize {
        self.ops.load(Ordering::SeqCst)
    }

    /// Whether the fault has been injected.
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::SeqCst)
    }

    /// Claims the next operation slot; `Some(mode)` when this is the one
    /// that must fail, `Err`-worthy immediately when a fault already
    /// fired earlier.
    fn arm(&self) -> Result<Option<FaultMode>, io::Error> {
        if self.fired.load(Ordering::SeqCst) {
            return Err(io::Error::other("injected crash: process already dead"));
        }
        let n = self.ops.fetch_add(1, Ordering::SeqCst);
        if n == self.fail_at {
            self.fired.store(true, Ordering::SeqCst);
            Ok(Some(self.mode))
        } else {
            Ok(None)
        }
    }

    fn injected(&self, mode: FaultMode) -> io::Error {
        match mode {
            FaultMode::NoSpace => io::Error::new(
                io::ErrorKind::StorageFull,
                "injected ENOSPC: no space left on device",
            ),
            _ => io::Error::other(format!("injected fault at operation {}", self.fail_at)),
        }
    }
}

impl SnapshotIo for FaultIo {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        match self.arm()? {
            Some(mode) => Err(self.injected(mode)),
            None => RealIo.create_dir_all(path),
        }
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.arm()? {
            Some(mode) => {
                // Torn and ENOSPC writes leave a truncated file behind —
                // the on-disk state a crash or a full disk produces.
                if let FaultMode::Tear(k) = mode {
                    let _ = RealIo.write_file(path, &bytes[..k.min(bytes.len())]);
                } else if mode == FaultMode::NoSpace {
                    let _ = RealIo.write_file(path, &bytes[..bytes.len() / 2]);
                }
                Err(self.injected(mode))
            }
            None => RealIo.write_file(path, bytes),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.arm()? {
            Some(mode) => Err(self.injected(mode)),
            None => RealIo.rename(from, to),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        match self.arm()? {
            Some(mode) => Err(self.injected(mode)),
            None => RealIo.remove_file(path),
        }
    }
}

/// One file of a generation as the manifest records it: name, FNV-1a
/// checksum and byte length — enough to validate the file on restore
/// without parsing it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestFile {
    /// File name inside the generation directory.
    pub name: String,
    /// FNV-1a 64-bit checksum of the file contents.
    pub checksum: u64,
    /// File length in bytes.
    pub len: u64,
}

/// One committed generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Generation {
    /// Monotonic generation number (directory `gen-NNNNNN`).
    pub seq: u64,
    /// On-disk representation of this generation.
    pub format: PersistFormat,
    /// The generation's files with validation checksums.
    pub files: Vec<ManifestFile>,
}

/// The checksum-validated generation index (`MANIFEST`), newest first.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Committed generations, newest first.
    pub generations: Vec<Generation>,
}

impl Manifest {
    /// Serialises the manifest, appending the self-checksum line.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = String::from("gc-manifest v1\n");
        for g in &self.generations {
            let format = match g.format {
                PersistFormat::Text => "text",
                PersistFormat::Binary => "binary",
            };
            out.push_str(&format!("gen {:06} {format}", g.seq));
            for f in &g.files {
                out.push_str(&format!(" {}:{:016x}:{}", f.name, f.checksum, f.len));
            }
            out.push('\n');
        }
        let sum = fnv1a(out.as_bytes());
        out.push_str(&format!("sum {sum:016x}\n"));
        out.into_bytes()
    }

    /// Parses and validates a manifest image. Strict: a bad header, a
    /// malformed line, or a checksum mismatch is an error.
    pub fn decode(bytes: &[u8]) -> Result<Self, GraphError> {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| GraphError::snapshot(0, "manifest is not UTF-8"))?;
        let body_end = text
            .rfind("sum ")
            .ok_or_else(|| GraphError::snapshot(bytes.len(), "manifest missing sum line"))?;
        // The sum line must be the last line, covering everything before it.
        let (body, sum_line) = text.split_at(body_end);
        let sum_hex = sum_line
            .strip_suffix('\n')
            .and_then(|l| l.strip_prefix("sum "))
            .ok_or_else(|| GraphError::snapshot(body_end, "malformed sum line"))?;
        // Strict: exactly the 16 lowercase hex digits `encode` emits, so
        // no two distinct byte images decode to the same manifest.
        if sum_hex.len() != 16
            || !sum_hex
                .bytes()
                .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
        {
            return Err(GraphError::snapshot(body_end, "malformed sum value"));
        }
        let stored = u64::from_str_radix(sum_hex, 16)
            .map_err(|_| GraphError::snapshot(body_end, "malformed sum value"))?;
        if fnv1a(body.as_bytes()) != stored {
            return Err(GraphError::snapshot(body_end, "manifest checksum mismatch"));
        }
        let mut lines = body.lines();
        if lines.next() != Some("gc-manifest v1") {
            return Err(GraphError::snapshot(0, "unknown manifest version"));
        }
        let mut generations = Vec::new();
        for (i, line) in lines.enumerate() {
            let lineno = i + 2;
            let rest = line
                .strip_prefix("gen ")
                .ok_or_else(|| GraphError::parse(lineno, "expected 'gen' line"))?;
            let mut toks = rest.split_whitespace();
            let seq: u64 = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| GraphError::parse(lineno, "bad generation number"))?;
            let format = match toks.next() {
                Some("text") => PersistFormat::Text,
                Some("binary") => PersistFormat::Binary,
                other => {
                    return Err(GraphError::parse(
                        lineno,
                        format!("unknown generation format {other:?}"),
                    ))
                }
            };
            let mut files = Vec::new();
            for tok in toks {
                let mut parts = tok.split(':');
                let (name, sum, len) = (parts.next(), parts.next(), parts.next());
                if parts.next().is_some() {
                    return Err(GraphError::parse(lineno, "malformed file token"));
                }
                let bad = || GraphError::parse(lineno, format!("malformed file token {tok:?}"));
                files.push(ManifestFile {
                    name: name.filter(|n| !n.is_empty()).ok_or_else(bad)?.to_string(),
                    checksum: sum
                        .and_then(|s| u64::from_str_radix(s, 16).ok())
                        .ok_or_else(bad)?,
                    len: len.and_then(|l| l.parse().ok()).ok_or_else(bad)?,
                });
            }
            if files.is_empty() {
                return Err(GraphError::parse(lineno, "generation lists no files"));
            }
            generations.push(Generation { seq, format, files });
        }
        Ok(Manifest { generations })
    }

    /// Reads the manifest from a save directory. Returns `None` when the
    /// file is absent **or** fails validation — a corrupt manifest routes
    /// restore to the legacy flat-file layout rather than refusing a
    /// directory whose flat files may be perfectly good.
    pub fn read(dir: &Path) -> Option<Self> {
        let bytes = std::fs::read(dir.join(MANIFEST_FILE)).ok()?;
        Self::decode(&bytes).ok()
    }

    /// The next generation number to allocate: one past the largest seen
    /// either in the manifest or as a `gen-*` directory on disk (leftover
    /// slots from crashed saves must not be reused).
    pub fn next_seq(dir: &Path, manifest: Option<&Manifest>) -> u64 {
        let mut max = manifest
            .map(|m| m.generations.iter().map(|g| g.seq).max().unwrap_or(0))
            .unwrap_or(0);
        if let Ok(entries) = std::fs::read_dir(dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if let Some(num) = name
                    .strip_prefix("gen-")
                    .map(|r| r.trim_end_matches(".tmp"))
                    .and_then(|r| r.parse::<u64>().ok())
                {
                    max = max.max(num);
                }
            }
        }
        max + 1
    }
}

/// Writes one complete save as a new generation: stage the files into a
/// `gen-NNNNNN.tmp` directory (each file fsynced), rename the directory
/// into its slot, then commit by atomically replacing the `MANIFEST`.
/// Returns the committed generation number.
///
/// After the commit the flat "current view" files at the save root are
/// refreshed (staged rename per file) for legacy readers, the other
/// format's flat files are removed, and generations that fell out of the
/// retention window are pruned best-effort. A crash anywhere in the
/// post-commit phase leaves a fully recoverable directory: restore reads
/// the manifest, never the flat view, when a manifest is present.
pub fn commit_generation(
    dir: &Path,
    files: &[(&'static str, Vec<u8>)],
    format: PersistFormat,
    io: &dyn SnapshotIo,
) -> io::Result<u64> {
    io.create_dir_all(dir)?;
    let previous = Manifest::read(dir);
    let seq = Manifest::next_seq(dir, previous.as_ref());
    let slot = dir.join(generation_dir_name(seq));
    let stage = dir.join(format!("{}.tmp", generation_dir_name(seq)));
    // A leftover stage directory from a crashed save would make the
    // rename below land the new directory *inside* the old one; clear it
    // (pre-fault bookkeeping, not part of the injectable sequence).
    let _ = std::fs::remove_dir_all(&stage);
    io.create_dir_all(&stage)?;
    for (name, bytes) in files {
        io.write_file(&stage.join(name), bytes)?;
    }
    io.rename(&stage, &slot)?;

    let mut generations = vec![Generation {
        seq,
        format,
        files: files
            .iter()
            .map(|(name, bytes)| ManifestFile {
                name: (*name).to_string(),
                checksum: fnv1a(bytes),
                len: bytes.len() as u64,
            })
            .collect(),
    }];
    if let Some(prev) = &previous {
        generations.extend(
            prev.generations
                .iter()
                .filter(|g| g.seq < seq)
                .take(RETAINED_GENERATIONS - 1)
                .cloned(),
        );
    }
    let manifest = Manifest { generations };
    let manifest_tmp = dir.join(format!("{MANIFEST_FILE}.tmp"));
    io.write_file(&manifest_tmp, &manifest.encode())?;
    // The commit point: everything before this rename is invisible to
    // restore; everything after is cleanup of state restore ignores.
    io.rename(&manifest_tmp, &dir.join(MANIFEST_FILE))?;

    // Refresh the flat current view (legacy readers and the smoke
    // scripts look at `dir/entries.txt` / `dir/snapshot.bin` directly).
    for (name, bytes) in files {
        let tmp = dir.join(format!("{name}.tmp"));
        io.write_file(&tmp, bytes)?;
        io.rename(&tmp, &dir.join(name))?;
    }
    let stale: &[&str] = match format {
        PersistFormat::Text => &["snapshot.bin"],
        PersistFormat::Binary => &["entries.txt", "stats.txt", "fragments.txt"],
    };
    for name in stale {
        match io.remove_file(&dir.join(name)) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => return Err(e),
            _ => {}
        }
    }
    prune_unreferenced(dir, &manifest);
    Ok(seq)
}

/// Best-effort removal of generation slots (and leftover stage
/// directories) the manifest no longer references. Runs after the
/// commit, so a failure here can only leak disk space, never durability.
fn prune_unreferenced(dir: &Path, manifest: &Manifest) {
    let live: Vec<String> = manifest
        .generations
        .iter()
        .map(|g| generation_dir_name(g.seq))
        .collect();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut doomed: Vec<PathBuf> = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        let is_slot = name.starts_with("gen-") && !name.ends_with(".tmp");
        let is_stage = name.starts_with("gen-") && name.ends_with(".tmp");
        if (is_slot && !live.contains(&name)) || is_stage {
            doomed.push(entry.path());
        }
    }
    for path in doomed {
        let _ = std::fs::remove_dir_all(&path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> Manifest {
        Manifest {
            generations: vec![
                Generation {
                    seq: 2,
                    format: PersistFormat::Binary,
                    files: vec![ManifestFile {
                        name: "snapshot.bin".into(),
                        checksum: 0xdead_beef,
                        len: 412,
                    }],
                },
                Generation {
                    seq: 1,
                    format: PersistFormat::Text,
                    files: vec![
                        ManifestFile {
                            name: "entries.txt".into(),
                            checksum: 1,
                            len: 2,
                        },
                        ManifestFile {
                            name: "stats.txt".into(),
                            checksum: 3,
                            len: 4,
                        },
                    ],
                },
            ],
        }
    }

    #[test]
    fn manifest_roundtrip() {
        let m = manifest();
        let bytes = m.encode();
        let back = Manifest::decode(&bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn manifest_corruption_rejected() {
        let good = manifest().encode();
        // Any flipped byte fails the self-checksum (or a stricter check).
        for pos in 0..good.len() {
            let mut bad = good.clone();
            bad[pos] ^= 0x20;
            assert!(Manifest::decode(&bad).is_err(), "flip at {pos} accepted");
        }
        // Truncations lose the sum line or break the checksum.
        for cut in 0..good.len() {
            assert!(
                Manifest::decode(&good[..cut]).is_err(),
                "cut {cut} accepted"
            );
        }
    }

    #[test]
    fn next_seq_skips_leftover_slots() {
        let dir = std::env::temp_dir().join(format!("gc-staged-seq-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("gen-000007")).unwrap();
        std::fs::create_dir_all(dir.join("gen-000009.tmp")).unwrap();
        assert_eq!(Manifest::next_seq(&dir, None), 10);
        let m = Manifest {
            generations: vec![Generation {
                seq: 12,
                format: PersistFormat::Text,
                files: vec![ManifestFile {
                    name: "entries.txt".into(),
                    checksum: 0,
                    len: 0,
                }],
            }],
        };
        assert_eq!(Manifest::next_seq(&dir, Some(&m)), 13);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fault_io_fires_once_then_refuses_everything() {
        let dir = std::env::temp_dir().join(format!("gc-staged-fault-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let io = FaultIo::new(1, FaultMode::Tear(3));
        assert!(io.write_file(&dir.join("a"), b"hello").is_ok());
        let err = io.write_file(&dir.join("b"), b"world!").unwrap_err();
        assert!(err.to_string().contains("injected"));
        // The torn write left a 3-byte prefix behind.
        assert_eq!(std::fs::read(dir.join("b")).unwrap(), b"wor");
        assert!(io.fired());
        // Every later operation fails: the process is "dead".
        assert!(io.create_dir_all(&dir.join("c")).is_err());
        assert!(io.remove_file(&dir.join("a")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn enospc_is_typed_storage_full() {
        let dir = std::env::temp_dir().join(format!("gc-staged-enospc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let io = FaultIo::new(0, FaultMode::NoSpace);
        let err = io.write_file(&dir.join("full"), b"0123456789").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        // A full disk leaves a truncated file, not a clean absence.
        assert_eq!(std::fs::read(dir.join("full")).unwrap().len(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }
}
