//! GCindex — the combined subgraph/supergraph index over cached queries
//! (paper §6.1, second Cache store component).
//!
//! The design is "loosely based on the GraphGrepSX subgraph query index,
//! augmented with additional metadata to allow for the processing of
//! supergraph queries": cached query graphs are decomposed into labelled
//! path features with occurrence counts, and a single structure answers both
//! directions for a new query `g`:
//!
//! * **sub-candidates** — cached queries `q` that may *contain* `g`
//!   (`g ⊆ q`): standard GGSX containment filtering — every feature of `g`
//!   must appear in `q` with at least `g`'s count;
//! * **super-candidates** — cached queries `q` that may be *contained in*
//!   `g` (`q ⊆ g`): the augmented direction — every feature of `q` must
//!   appear in `g` with at least `q`'s count. This is answered in one sweep
//!   over `g`'s feature multiset by counting, per cached query, how many of
//!   its distinct features are satisfied.
//!
//! Both candidate lists are *sound overapproximations*; the GC processors
//! verify each candidate with a sub-iso test before it becomes a hit.

use crate::stats::QuerySerial;
use gc_graph::LabeledGraph;
use gc_index::fx::FxHashMap as HashMap;
use gc_index::paths::{enumerate_paths, PathFeature, PathProfile};

/// Configuration of the query index.
#[derive(Debug, Clone, Copy)]
pub struct QueryIndexConfig {
    /// Maximum feature path length in edges (GGSX default: 4).
    pub max_path_len: usize,
    /// Per-graph enumeration work cap; overflowing graphs are indexed
    /// conservatively (always candidates, in both directions).
    pub work_cap: u64,
}

impl Default for QueryIndexConfig {
    fn default() -> Self {
        QueryIndexConfig {
            max_path_len: 4,
            work_cap: 5_000_000,
        }
    }
}

/// Candidate slots for a new query, in both directions.
#[derive(Debug, Clone, Default)]
pub struct HitCandidates {
    /// Slots of cached queries possibly containing the new query (`g ⊆ q`).
    pub sub: Vec<u32>,
    /// Slots of cached queries possibly contained in it (`q ⊆ g`).
    pub super_: Vec<u32>,
}

/// The combined index. Slots are positions in the entry vector the index
/// was built from.
#[derive(Debug)]
pub struct QueryIndex {
    cfg: QueryIndexConfig,
    postings: HashMap<PathFeature, Vec<(u32, u32)>>,
    /// Per slot: number of distinct features (for super-candidate checks).
    distinct: Vec<u32>,
    /// Per slot: (node count, edge count) — cheap containment preconditions.
    sizes: Vec<(u32, u32)>,
    /// Per slot: enumeration overflowed, treat conservatively.
    overflow: Vec<bool>,
    serials: Vec<QuerySerial>,
}

impl QueryIndex {
    /// Builds the index over `(serial, graph)` pairs, in slot order,
    /// enumerating each graph's features.
    pub fn build<'a>(
        cfg: QueryIndexConfig,
        entries: impl Iterator<Item = (QuerySerial, &'a LabeledGraph)>,
    ) -> Self {
        let materialized: Vec<(QuerySerial, (u32, u32), PathProfile)> = entries
            .map(|(serial, graph)| {
                let profile = enumerate_paths(graph, cfg.max_path_len, cfg.work_cap);
                (
                    serial,
                    (graph.node_count() as u32, graph.edge_count() as u32),
                    profile,
                )
            })
            .collect();
        Self::build_from_profiles(cfg, materialized.iter().map(|(s, z, p)| (*s, *z, p)))
    }

    /// Builds the index from *precomputed* feature profiles — the Window
    /// Manager stores each query's profile at execution time so re-indexing
    /// never re-enumerates cached graphs (paper §6.2 keeps rebuild latency
    /// low; this is the mechanism).
    pub fn build_from_profiles<'a>(
        cfg: QueryIndexConfig,
        entries: impl Iterator<Item = (QuerySerial, (u32, u32), &'a PathProfile)>,
    ) -> Self {
        let mut postings: HashMap<PathFeature, Vec<(u32, u32)>> = HashMap::default();
        let mut distinct = Vec::new();
        let mut sizes = Vec::new();
        let mut overflow = Vec::new();
        let mut serials = Vec::new();
        for (slot, (serial, size, profile)) in entries.enumerate() {
            let slot = slot as u32;
            serials.push(serial);
            sizes.push(size);
            match profile {
                PathProfile::Counts(counts) => {
                    distinct.push(counts.len() as u32);
                    overflow.push(false);
                    for (feature, &count) in counts {
                        postings
                            .entry(feature.clone())
                            .or_default()
                            .push((slot, count));
                    }
                }
                PathProfile::Overflow => {
                    distinct.push(0);
                    overflow.push(true);
                }
            }
        }
        QueryIndex {
            cfg,
            postings,
            distinct,
            sizes,
            overflow,
            serials,
        }
    }

    /// Enumerates a query's feature profile under this index's
    /// configuration (callers compute it once and reuse it for candidate
    /// probing and for eventual admission into the cache).
    pub fn profile_of(&self, query: &LabeledGraph) -> PathProfile {
        enumerate_paths(query, self.cfg.max_path_len, self.cfg.work_cap)
    }

    /// Number of indexed cached queries.
    pub fn len(&self) -> usize {
        self.serials.len()
    }

    /// True when no queries are indexed.
    pub fn is_empty(&self) -> bool {
        self.serials.is_empty()
    }

    /// The serial stored at a slot.
    pub fn serial(&self, slot: u32) -> QuerySerial {
        self.serials[slot as usize]
    }

    /// The `(nodes, edges)` size of the query at a slot.
    pub fn size(&self, slot: u32) -> (u32, u32) {
        self.sizes[slot as usize]
    }

    /// Computes candidate slots for a new query, both directions, in one
    /// pass over the query's feature multiset.
    pub fn candidates(&self, query: &LabeledGraph) -> HitCandidates {
        let profile = self.profile_of(query);
        self.candidates_from_profile(
            &profile,
            query.node_count() as u32,
            query.edge_count() as u32,
        )
    }

    /// Like [`QueryIndex::candidates`] but reuses a precomputed profile.
    pub fn candidates_from_profile(
        &self,
        profile: &PathProfile,
        qn: u32,
        qm: u32,
    ) -> HitCandidates {
        let n = self.len();
        if n == 0 {
            return HitCandidates::default();
        }
        let features = match profile.counts() {
            Some(c) => c,
            None => {
                // Query enumeration overflowed: every size-compatible slot
                // stays a candidate (sound; the verifier will sort it out).
                let mut out = HitCandidates::default();
                for slot in 0..n as u32 {
                    let (sn, sm) = self.sizes[slot as usize];
                    if sn >= qn && sm >= qm {
                        out.sub.push(slot);
                    }
                    if sn <= qn && sm <= qm {
                        out.super_.push(slot);
                    }
                }
                return out;
            }
        };

        // One posting-driven sweep over the query's feature multiset covers
        // both directions (O(posting entries touched), not O(features × n)):
        //
        // * sub direction: slot q is a candidate iff it satisfies
        //   `count_q(f) ≥ count_g(f)` for EVERY feature f of g — counted in
        //   `sat_sub`, compared against the number of query features;
        // * super direction: slot q is a candidate iff g satisfies
        //   `count_q(f) ≤ count_g(f)` for every feature of q — counted in
        //   `sat_super`, compared against the slot's distinct-feature count.
        let mut sat_sub: Vec<u32> = vec![0; n];
        let mut sat_super: Vec<u32> = vec![0; n];
        let g_features = features.len() as u32;
        for (feature, &g_count) in features {
            if let Some(posting) = self.postings.get(feature) {
                for &(slot, q_count) in posting {
                    sat_super[slot as usize] += (q_count <= g_count) as u32;
                    sat_sub[slot as usize] += (q_count >= g_count) as u32;
                }
            }
        }

        let mut out = HitCandidates::default();
        for slot in 0..n {
            let (sn, sm) = self.sizes[slot];
            let size_sub = sn >= qn && sm >= qm;
            let size_super = sn <= qn && sm <= qm;
            if size_sub && (self.overflow[slot] || sat_sub[slot] == g_features) {
                out.sub.push(slot as u32);
            }
            if size_super && (self.overflow[slot] || sat_super[slot] == self.distinct[slot]) {
                out.super_.push(slot as u32);
            }
        }
        out
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        let postings: usize = self
            .postings
            .iter()
            .map(|(k, v)| k.len() * 4 + v.len() * 8 + 48)
            .sum();
        postings + self.serials.len() * 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(labels: &[u32]) -> LabeledGraph {
        let edges: Vec<(u32, u32)> = (0..labels.len() as u32 - 1).map(|i| (i, i + 1)).collect();
        LabeledGraph::from_parts(labels.to_vec(), &edges)
    }

    fn build(graphs: &[LabeledGraph]) -> QueryIndex {
        QueryIndex::build(
            QueryIndexConfig::default(),
            graphs.iter().enumerate().map(|(i, g)| (i as u64 * 10, g)),
        )
    }

    #[test]
    fn empty_index_no_candidates() {
        let idx = build(&[]);
        assert!(idx.is_empty());
        let c = idx.candidates(&path_graph(&[0, 1]));
        assert!(c.sub.is_empty() && c.super_.is_empty());
    }

    #[test]
    fn sub_candidates_found() {
        // Cached: a-b-a path (3 nodes). New query: a-b edge ⊆ cached.
        let idx = build(&[path_graph(&[0, 1, 0]), path_graph(&[5, 5])]);
        let c = idx.candidates(&path_graph(&[0, 1]));
        assert_eq!(c.sub, vec![0]);
        // The edge is not a supergraph of anything cached.
        assert!(c.super_.is_empty());
    }

    #[test]
    fn super_candidates_found() {
        // Cached: a-b edge. New query: a-b-a path ⊇ cached.
        let idx = build(&[path_graph(&[0, 1])]);
        let c = idx.candidates(&path_graph(&[0, 1, 0]));
        assert_eq!(c.super_, vec![0]);
        assert!(c.sub.is_empty());
    }

    #[test]
    fn exact_size_appears_in_both_directions() {
        let idx = build(&[path_graph(&[0, 1])]);
        let c = idx.candidates(&path_graph(&[0, 1]));
        assert_eq!(c.sub, vec![0]);
        assert_eq!(c.super_, vec![0]);
    }

    #[test]
    fn label_mismatch_filters_out() {
        let idx = build(&[path_graph(&[0, 1, 0])]);
        let c = idx.candidates(&path_graph(&[7, 8]));
        assert!(c.sub.is_empty());
        assert!(c.super_.is_empty());
    }

    #[test]
    fn count_filtering_in_sub_direction() {
        // Cached: single a-b edge. Query: star b(a,a) needs TWO a-b paths.
        let idx = build(&[path_graph(&[0, 1])]);
        let star = LabeledGraph::from_parts(vec![1, 0, 0], &[(0, 1), (0, 2)]);
        let c = idx.candidates(&star);
        assert!(c.sub.is_empty(), "count precondition must prune");
    }

    #[test]
    fn count_filtering_in_super_direction() {
        // Cached: star b(a,a). Query: single a-b edge — the star cannot be
        // contained in it (feature count 2 > 1).
        let star = LabeledGraph::from_parts(vec![1, 0, 0], &[(0, 1), (0, 2)]);
        let idx = build(&[star]);
        let c = idx.candidates(&path_graph(&[0, 1]));
        assert!(c.super_.is_empty());
    }

    #[test]
    fn soundness_on_true_containment() {
        // Whatever the filter does, true sub/super relations survive it.
        let cached = vec![
            path_graph(&[0, 1, 0, 1]),
            path_graph(&[2, 2]),
            LabeledGraph::from_parts(vec![0, 1, 2], &[(0, 1), (1, 2), (2, 0)]),
        ];
        let idx = build(&cached);
        // g = a-b-a ⊆ cached[0].
        let g = path_graph(&[0, 1, 0]);
        let c = idx.candidates(&g);
        assert!(c.sub.contains(&0), "true containment must remain");
        // g ⊇ cached[1]? No (labels differ) — but cached[1] ⊆ [2,2,...]? n/a.
        let g2 = path_graph(&[2, 2, 2]);
        let c2 = idx.candidates(&g2);
        assert!(c2.super_.contains(&1));
    }

    #[test]
    fn overflow_slots_conservative() {
        let cfg = QueryIndexConfig {
            max_path_len: 4,
            work_cap: 1,
        };
        let graphs = [path_graph(&[0, 1, 0])];
        let idx = QueryIndex::build(cfg, graphs.iter().map(|g| (7, g)));
        let c = idx.candidates(&path_graph(&[0, 1]));
        // Overflowed cached graph stays a sub-candidate (size permits).
        assert_eq!(c.sub, vec![0]);
        assert_eq!(idx.serial(0), 7);
    }

    #[test]
    fn accessors() {
        let idx = build(&[path_graph(&[0, 1, 0])]);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.serial(0), 0);
        assert_eq!(idx.size(0), (3, 2));
        assert!(idx.memory_bytes() > 0);
    }
}
