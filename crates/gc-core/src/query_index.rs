//! GCindex — the combined subgraph/supergraph index over cached queries
//! (paper §6.1, second Cache store component).
//!
//! The design is "loosely based on the GraphGrepSX subgraph query index,
//! augmented with additional metadata to allow for the processing of
//! supergraph queries": cached query graphs are decomposed into labelled
//! path features with occurrence counts, and a single structure answers both
//! directions for a new query `g`:
//!
//! * **sub-candidates** — cached queries `q` that may *contain* `g`
//!   (`g ⊆ q`): standard GGSX containment filtering — every feature of `g`
//!   must appear in `q` with at least `g`'s count;
//! * **super-candidates** — cached queries `q` that may be *contained in*
//!   `g` (`q ⊆ g`): the augmented direction — every feature of `q` must
//!   appear in `g` with at least `q`'s count. This is answered in one sweep
//!   over `g`'s feature multiset by counting, per cached query, how many of
//!   its distinct features are satisfied.
//!
//! Both candidate lists are *sound overapproximations*; the GC processors
//! verify each candidate with a sub-iso test before it becomes a hit.

use crate::stats::QuerySerial;
use gc_graph::{sizing, LabeledGraph};
use gc_index::fx::FxHashMap as HashMap;
use gc_index::paths::{enumerate_paths, PathFeature, PathProfile};

/// Configuration of the query index.
#[derive(Debug, Clone, Copy)]
pub struct QueryIndexConfig {
    /// Maximum feature path length in edges (GGSX default: 4).
    pub max_path_len: usize,
    /// Per-graph enumeration work cap; overflowing graphs are indexed
    /// conservatively (always candidates, in both directions).
    pub work_cap: u64,
}

impl Default for QueryIndexConfig {
    fn default() -> Self {
        QueryIndexConfig {
            max_path_len: 4,
            work_cap: 5_000_000,
        }
    }
}

/// Candidate slots for a new query, in both directions.
#[derive(Debug, Clone, Default)]
pub struct HitCandidates {
    /// Slots of cached queries possibly containing the new query (`g ⊆ q`).
    pub sub: Vec<u32>,
    /// Slots of cached queries possibly contained in it (`q ⊆ g`).
    pub super_: Vec<u32>,
}

/// The combined index. Slots are positions in the entry vector the index
/// was built from.
///
/// The index is *maintainable*: [`insert_profile`](Self::insert_profile)
/// appends a new slot and [`remove`](Self::remove) tombstones one in place
/// (postings are left behind; the candidate sweep skips dead slots). The
/// Window Manager patches a clone of the live index with each round's
/// delta instead of rebuilding from scratch, and compacts — a full
/// rebuild over the surviving slots — only when
/// [`tombstones`](Self::tombstones) accumulate past a debt threshold.
/// Incremental maintenance is build-equivalent: after any
/// insert/remove/compact sequence the index returns the same candidates
/// (as serials) as a fresh [`build`](Self::build) over the live entries in
/// slot order (see the equivalence proptests in `tests/`).
///
/// # Layout
///
/// Postings live in one flat **arena** of `(slot, count)` pairs, packed
/// feature-by-feature, with a compact feature → `(offset, len)` directory:
/// the candidate sweep resolves each query feature to an arena range and
/// then scans packed slots linearly instead of hopping through per-feature
/// heap vectors. A bulk build ([`build`](Self::build) /
/// [`build_from_profiles`](Self::build_from_profiles)) always ends fully
/// packed — so a compacted shard's index is 100% arena — while incremental
/// [`insert_profile`](Self::insert_profile) calls accumulate in a small
/// spill `tail` that the sweep visits after the arena range and the next
/// bulk rebuild folds back in.
#[derive(Debug, Clone)]
pub struct QueryIndex {
    cfg: QueryIndexConfig,
    /// Flat postings arena: `(slot, count)` pairs packed per feature.
    arena: Vec<(u32, u32)>,
    /// Feature → `(offset, len)` range into [`QueryIndex::arena`].
    directory: HashMap<PathFeature, (u32, u32)>,
    /// Postings appended since the last pack (incremental inserts); folded
    /// into the arena on the next bulk build.
    tail: HashMap<PathFeature, Vec<(u32, u32)>>,
    /// Number of postings resident in `tail` (totals without a map scan).
    tail_len: usize,
    /// Per slot: number of distinct features (for super-candidate checks).
    distinct: Vec<u32>,
    /// Per slot: (node count, edge count) — cheap containment preconditions.
    sizes: Vec<(u32, u32)>,
    /// Per slot: enumeration overflowed, treat conservatively.
    overflow: Vec<bool>,
    serials: Vec<QuerySerial>,
    /// Per slot: false once the slot has been tombstoned by `remove`.
    live: Vec<bool>,
    /// Live serial → slot, for O(1) removal and exact-serial lookup.
    slot_of: HashMap<QuerySerial, u32>,
    /// Number of tombstoned slots (the compaction-debt numerator).
    tombstones: usize,
    /// Per slot: postings the slot contributed (debt accounting on remove).
    feature_counts: Vec<u32>,
    /// Postings owned by tombstoned slots, resident until compaction.
    dead_postings: usize,
}

impl QueryIndex {
    /// Builds the index over `(serial, graph)` pairs, in slot order,
    /// enumerating each graph's features.
    pub fn build<'a>(
        cfg: QueryIndexConfig,
        entries: impl Iterator<Item = (QuerySerial, &'a LabeledGraph)>,
    ) -> Self {
        let materialized: Vec<(QuerySerial, (u32, u32), PathProfile)> = entries
            .map(|(serial, graph)| {
                let profile = enumerate_paths(graph, cfg.max_path_len, cfg.work_cap);
                (
                    serial,
                    (graph.node_count() as u32, graph.edge_count() as u32),
                    profile,
                )
            })
            .collect();
        Self::build_from_profiles(cfg, materialized.iter().map(|(s, z, p)| (*s, *z, p)))
    }

    /// Builds the index from *precomputed* feature profiles — the Window
    /// Manager stores each query's profile at execution time so re-indexing
    /// never re-enumerates cached graphs (paper §6.2 keeps rebuild latency
    /// low; this is the mechanism).
    pub fn build_from_profiles<'a>(
        cfg: QueryIndexConfig,
        entries: impl Iterator<Item = (QuerySerial, (u32, u32), &'a PathProfile)>,
    ) -> Self {
        let mut index = QueryIndex {
            cfg,
            arena: Vec::new(),
            directory: HashMap::default(),
            tail: HashMap::default(),
            tail_len: 0,
            distinct: Vec::new(),
            sizes: Vec::new(),
            overflow: Vec::new(),
            serials: Vec::new(),
            live: Vec::new(),
            slot_of: HashMap::default(),
            tombstones: 0,
            feature_counts: Vec::new(),
            dead_postings: 0,
        };
        for (serial, size, profile) in entries {
            index.insert_profile(serial, size, profile);
        }
        // A bulk build ends fully packed: compaction rebuilds route through
        // here, so a fresh index never carries a spill tail.
        index.pack();
        index
    }

    /// Folds the spill tail into the packed arena: every feature's postings
    /// become one contiguous, directory-addressed range. Features are laid
    /// out in sorted order so identical logical content always packs to an
    /// identical arena — the property the binary snapshot format and the
    /// byte-identical-rebuild tests rely on.
    fn pack(&mut self) {
        if self.tail.is_empty() {
            return;
        }
        let tail = std::mem::take(&mut self.tail);
        self.tail_len = 0;
        let old_arena = std::mem::take(&mut self.arena);
        let old_dir = std::mem::take(&mut self.directory);
        let mut features: Vec<PathFeature> = old_dir.keys().cloned().collect();
        features.extend(tail.keys().filter(|f| !old_dir.contains_key(*f)).cloned());
        features.sort_unstable();
        let extra: usize = tail.values().map(Vec::len).sum();
        let mut arena = Vec::with_capacity(old_arena.len() + extra);
        let mut directory = HashMap::default();
        for feature in features {
            let start = arena.len() as u32;
            if let Some(&(off, len)) = old_dir.get(&feature) {
                arena.extend_from_slice(&old_arena[off as usize..(off + len) as usize]);
            }
            if let Some(spill) = tail.get(&feature) {
                arena.extend_from_slice(spill);
            }
            let len = arena.len() as u32 - start;
            directory.insert(feature, (start, len));
        }
        self.arena = arena;
        self.directory = directory;
    }

    /// Appends a new slot for `serial` and threads its features into the
    /// postings. Returns the assigned slot. The serial must not already be
    /// live in this index (a store invariant the Window Manager enforces
    /// before admission).
    pub fn insert_profile(
        &mut self,
        serial: QuerySerial,
        size: (u32, u32),
        profile: &PathProfile,
    ) -> u32 {
        debug_assert!(
            !self.slot_of.contains_key(&serial),
            "serial {serial} inserted twice"
        );
        let slot = self.serials.len() as u32;
        self.serials.push(serial);
        self.sizes.push(size);
        self.live.push(true);
        self.slot_of.insert(serial, slot);
        match profile {
            PathProfile::Counts(counts) => {
                self.distinct.push(counts.len() as u32);
                self.overflow.push(false);
                self.feature_counts.push(counts.len() as u32);
                for (feature, &count) in counts {
                    self.tail
                        .entry(feature.clone())
                        .or_default()
                        .push((slot, count));
                }
                self.tail_len += counts.len();
            }
            PathProfile::Overflow => {
                self.distinct.push(0);
                self.overflow.push(true);
                self.feature_counts.push(0);
            }
        }
        slot
    }

    /// Tombstones the slot holding `serial`: the slot stops appearing in
    /// candidate sets but its postings stay in place until a compaction
    /// rebuilds the index densely. Returns the freed slot, or `None` when
    /// the serial is not live here.
    pub fn remove(&mut self, serial: QuerySerial) -> Option<u32> {
        let slot = self.slot_of.remove(&serial)?;
        self.live[slot as usize] = false;
        self.tombstones += 1;
        self.dead_postings += self.feature_counts[slot as usize] as usize;
        Some(slot)
    }

    /// Number of tombstoned slots still carrying postings.
    pub fn tombstones(&self) -> usize {
        self.tombstones
    }

    /// Postings owned by tombstoned slots but still resident in the arena
    /// (reclaimed only by compaction). A handful of tombstoned slots can
    /// own a large share of the postings, so this is the debt signal the
    /// slot-count ratio misses.
    pub fn dead_postings(&self) -> usize {
        self.dead_postings
    }

    /// Total resident postings, live and dead, arena and spill tail.
    pub fn postings_len(&self) -> usize {
        self.arena.len() + self.tail_len
    }

    /// Fraction of resident postings owned by tombstoned slots — the
    /// postings-side compaction-debt ratio, complementing the slot-count
    /// ratio ([`tombstones`](Self::tombstones) / [`slots`](Self::slots)).
    pub fn postings_debt(&self) -> f64 {
        let total = self.postings_len();
        if total == 0 {
            0.0
        } else {
            self.dead_postings as f64 / total as f64
        }
    }

    /// Arena utilization in bytes: `(live, reserved)`. Reserved covers
    /// every resident posting (arena + spill tail); live excludes the
    /// postings owned by tombstoned slots. The gap is the fragmentation a
    /// compaction would reclaim.
    pub fn arena_utilization(&self) -> (usize, usize) {
        let reserved = sizing::slice_bytes::<(u32, u32)>(self.postings_len());
        let live = sizing::slice_bytes::<(u32, u32)>(self.postings_len() - self.dead_postings);
        (live, reserved)
    }

    /// Total slots, live and dead (the candidate sweep's array bound).
    pub fn slots(&self) -> usize {
        self.serials.len()
    }

    /// The slot currently holding `serial`, when it is live.
    pub fn slot_of(&self, serial: QuerySerial) -> Option<u32> {
        self.slot_of.get(&serial).copied()
    }

    /// True when the slot has not been tombstoned.
    pub fn is_live(&self, slot: u32) -> bool {
        self.live[slot as usize]
    }

    /// The index configuration it was built under.
    pub fn config(&self) -> QueryIndexConfig {
        self.cfg
    }

    /// Enumerates a query's feature profile under this index's
    /// configuration (callers compute it once and reuse it for candidate
    /// probing and for eventual admission into the cache).
    pub fn profile_of(&self, query: &LabeledGraph) -> PathProfile {
        enumerate_paths(query, self.cfg.max_path_len, self.cfg.work_cap)
    }

    /// Number of *live* indexed queries (tombstoned slots excluded).
    pub fn len(&self) -> usize {
        self.serials.len() - self.tombstones
    }

    /// True when no live queries are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The serial stored at a slot.
    pub fn serial(&self, slot: u32) -> QuerySerial {
        self.serials[slot as usize]
    }

    /// The `(nodes, edges)` size of the query at a slot.
    pub fn size(&self, slot: u32) -> (u32, u32) {
        self.sizes[slot as usize]
    }

    /// Computes candidate slots for a new query, both directions, in one
    /// pass over the query's feature multiset.
    pub fn candidates(&self, query: &LabeledGraph) -> HitCandidates {
        let profile = self.profile_of(query);
        self.candidates_from_profile(
            &profile,
            query.node_count() as u32,
            query.edge_count() as u32,
        )
    }

    /// Like [`QueryIndex::candidates`] but reuses a precomputed profile.
    pub fn candidates_from_profile(
        &self,
        profile: &PathProfile,
        qn: u32,
        qm: u32,
    ) -> HitCandidates {
        let n = self.slots();
        if n == 0 || self.is_empty() {
            return HitCandidates::default();
        }
        let features = match profile.counts() {
            Some(c) => c,
            None => {
                // Query enumeration overflowed: every size-compatible live
                // slot stays a candidate (sound; the verifier sorts it out).
                let mut out = HitCandidates::default();
                for slot in 0..n as u32 {
                    if !self.live[slot as usize] {
                        continue;
                    }
                    let (sn, sm) = self.sizes[slot as usize];
                    if sn >= qn && sm >= qm {
                        out.sub.push(slot);
                    }
                    if sn <= qn && sm <= qm {
                        out.super_.push(slot);
                    }
                }
                return out;
            }
        };

        // One posting-driven sweep over the query's feature multiset covers
        // both directions (O(posting entries touched), not O(features × n)):
        //
        // * sub direction: slot q is a candidate iff it satisfies
        //   `count_q(f) ≥ count_g(f)` for EVERY feature f of g — counted in
        //   `sat_sub`, compared against the number of query features;
        // * super direction: slot q is a candidate iff g satisfies
        //   `count_q(f) ≤ count_g(f)` for every feature of q — counted in
        //   `sat_super`, compared against the slot's distinct-feature count.
        let mut sat_sub: Vec<u32> = vec![0; n];
        let mut sat_super: Vec<u32> = vec![0; n];
        let g_features = features.len() as u32;
        for (feature, &g_count) in features {
            // The packed arena range first (a linear scan over contiguous
            // postings), then any spill-tail postings appended since the
            // last pack. The counters are order-independent, so visiting
            // the two segments in sequence is build-equivalent.
            if let Some(&(off, len)) = self.directory.get(feature) {
                for &(slot, q_count) in &self.arena[off as usize..(off + len) as usize] {
                    sat_super[slot as usize] += (q_count <= g_count) as u32;
                    sat_sub[slot as usize] += (q_count >= g_count) as u32;
                }
            }
            if let Some(spill) = self.tail.get(feature) {
                for &(slot, q_count) in spill {
                    sat_super[slot as usize] += (q_count <= g_count) as u32;
                    sat_sub[slot as usize] += (q_count >= g_count) as u32;
                }
            }
        }

        let mut out = HitCandidates::default();
        for slot in 0..n {
            if !self.live[slot] {
                continue;
            }
            let (sn, sm) = self.sizes[slot];
            let size_sub = sn >= qn && sm >= qm;
            let size_super = sn <= qn && sm <= qm;
            if size_sub && (self.overflow[slot] || sat_sub[slot] == g_features) {
                out.sub.push(slot as u32);
            }
            if size_super && (self.overflow[slot] || sat_super[slot] == self.distinct[slot]) {
                out.super_.push(slot as u32);
            }
        }
        out
    }

    /// Approximate memory footprint in bytes (tombstoned slots still count
    /// until a compaction reclaims their postings).
    pub fn memory_bytes(&self) -> usize {
        let directory: usize = self
            .directory
            .keys()
            .map(|k| sizing::slice_bytes::<u32>(k.len()) + sizing::MAP_NODE_OVERHEAD)
            .sum();
        let tail: usize = self
            .tail
            .iter()
            .map(|(k, v)| {
                sizing::slice_bytes::<u32>(k.len())
                    + sizing::slice_bytes::<(u32, u32)>(v.len())
                    + sizing::MAP_NODE_OVERHEAD
            })
            .sum();
        sizing::slice_bytes::<(u32, u32)>(self.arena.len())
            + directory
            + tail
            + self.serials.len() * sizing::INDEX_SLOT_BYTES
            + self.slot_of.len() * sizing::MAP_SLOT_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(labels: &[u32]) -> LabeledGraph {
        let edges: Vec<(u32, u32)> = (0..labels.len() as u32 - 1).map(|i| (i, i + 1)).collect();
        LabeledGraph::from_parts(labels.to_vec(), &edges)
    }

    fn build(graphs: &[LabeledGraph]) -> QueryIndex {
        QueryIndex::build(
            QueryIndexConfig::default(),
            graphs.iter().enumerate().map(|(i, g)| (i as u64 * 10, g)),
        )
    }

    #[test]
    fn empty_index_no_candidates() {
        let idx = build(&[]);
        assert!(idx.is_empty());
        let c = idx.candidates(&path_graph(&[0, 1]));
        assert!(c.sub.is_empty() && c.super_.is_empty());
    }

    #[test]
    fn sub_candidates_found() {
        // Cached: a-b-a path (3 nodes). New query: a-b edge ⊆ cached.
        let idx = build(&[path_graph(&[0, 1, 0]), path_graph(&[5, 5])]);
        let c = idx.candidates(&path_graph(&[0, 1]));
        assert_eq!(c.sub, vec![0]);
        // The edge is not a supergraph of anything cached.
        assert!(c.super_.is_empty());
    }

    #[test]
    fn super_candidates_found() {
        // Cached: a-b edge. New query: a-b-a path ⊇ cached.
        let idx = build(&[path_graph(&[0, 1])]);
        let c = idx.candidates(&path_graph(&[0, 1, 0]));
        assert_eq!(c.super_, vec![0]);
        assert!(c.sub.is_empty());
    }

    #[test]
    fn exact_size_appears_in_both_directions() {
        let idx = build(&[path_graph(&[0, 1])]);
        let c = idx.candidates(&path_graph(&[0, 1]));
        assert_eq!(c.sub, vec![0]);
        assert_eq!(c.super_, vec![0]);
    }

    #[test]
    fn label_mismatch_filters_out() {
        let idx = build(&[path_graph(&[0, 1, 0])]);
        let c = idx.candidates(&path_graph(&[7, 8]));
        assert!(c.sub.is_empty());
        assert!(c.super_.is_empty());
    }

    #[test]
    fn count_filtering_in_sub_direction() {
        // Cached: single a-b edge. Query: star b(a,a) needs TWO a-b paths.
        let idx = build(&[path_graph(&[0, 1])]);
        let star = LabeledGraph::from_parts(vec![1, 0, 0], &[(0, 1), (0, 2)]);
        let c = idx.candidates(&star);
        assert!(c.sub.is_empty(), "count precondition must prune");
    }

    #[test]
    fn count_filtering_in_super_direction() {
        // Cached: star b(a,a). Query: single a-b edge — the star cannot be
        // contained in it (feature count 2 > 1).
        let star = LabeledGraph::from_parts(vec![1, 0, 0], &[(0, 1), (0, 2)]);
        let idx = build(&[star]);
        let c = idx.candidates(&path_graph(&[0, 1]));
        assert!(c.super_.is_empty());
    }

    #[test]
    fn soundness_on_true_containment() {
        // Whatever the filter does, true sub/super relations survive it.
        let cached = vec![
            path_graph(&[0, 1, 0, 1]),
            path_graph(&[2, 2]),
            LabeledGraph::from_parts(vec![0, 1, 2], &[(0, 1), (1, 2), (2, 0)]),
        ];
        let idx = build(&cached);
        // g = a-b-a ⊆ cached[0].
        let g = path_graph(&[0, 1, 0]);
        let c = idx.candidates(&g);
        assert!(c.sub.contains(&0), "true containment must remain");
        // g ⊇ cached[1]? No (labels differ) — but cached[1] ⊆ [2,2,...]? n/a.
        let g2 = path_graph(&[2, 2, 2]);
        let c2 = idx.candidates(&g2);
        assert!(c2.super_.contains(&1));
    }

    #[test]
    fn overflow_slots_conservative() {
        let cfg = QueryIndexConfig {
            max_path_len: 4,
            work_cap: 1,
        };
        let graphs = [path_graph(&[0, 1, 0])];
        let idx = QueryIndex::build(cfg, graphs.iter().map(|g| (7, g)));
        let c = idx.candidates(&path_graph(&[0, 1]));
        // Overflowed cached graph stays a sub-candidate (size permits).
        assert_eq!(c.sub, vec![0]);
        assert_eq!(idx.serial(0), 7);
    }

    #[test]
    fn accessors() {
        let idx = build(&[path_graph(&[0, 1, 0])]);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.serial(0), 0);
        assert_eq!(idx.size(0), (3, 2));
        assert_eq!(idx.slot_of(0), Some(0));
        assert!(idx.is_live(0));
        assert!(idx.memory_bytes() > 0);
    }

    #[test]
    fn remove_tombstones_slot() {
        let mut idx = build(&[path_graph(&[0, 1, 0]), path_graph(&[5, 5])]);
        assert_eq!(idx.remove(0), Some(0));
        assert_eq!(idx.remove(0), None, "already dead");
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.slots(), 2, "postings stay until compaction");
        assert_eq!(idx.tombstones(), 1);
        assert!(!idx.is_live(0));
        assert!(idx.slot_of(0).is_none());
        // The dead slot no longer produces candidates…
        let c = idx.candidates(&path_graph(&[0, 1]));
        assert!(c.sub.is_empty() && c.super_.is_empty());
        // …but the surviving one still does.
        let c = idx.candidates(&path_graph(&[5, 5]));
        assert_eq!(c.sub, vec![1]);
    }

    #[test]
    fn insert_appends_live_slot() {
        let mut idx = build(&[path_graph(&[0, 1, 0])]);
        let g = path_graph(&[5, 5]);
        let profile = enumerate_paths(&g, 4, u64::MAX);
        let slot = idx.insert_profile(70, (2, 1), &profile);
        assert_eq!(slot, 1);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.serial(1), 70);
        let c = idx.candidates(&path_graph(&[5, 5]));
        assert_eq!(c.sub, vec![1]);
        assert_eq!(c.super_, vec![1]);
    }

    /// After a mixed insert/remove history, candidates (mapped to serials)
    /// match a fresh build over the surviving entries in slot order.
    #[test]
    fn incremental_matches_fresh_build() {
        let graphs = [
            path_graph(&[0, 1, 0]),
            path_graph(&[5, 5]),
            path_graph(&[0, 1]),
            path_graph(&[1, 0, 1, 0]),
        ];
        let mut idx = QueryIndex::build(
            QueryIndexConfig::default(),
            graphs
                .iter()
                .take(2)
                .enumerate()
                .map(|(i, g)| (i as u64, g)),
        );
        idx.remove(0);
        for (i, g) in graphs.iter().enumerate().skip(2) {
            let profile = enumerate_paths(g, 4, u64::MAX);
            idx.insert_profile(
                i as u64,
                (g.node_count() as u32, g.edge_count() as u32),
                &profile,
            );
        }
        // Live entries in slot order: serials 1, 2, 3.
        let fresh = QueryIndex::build(
            QueryIndexConfig::default(),
            [1usize, 2, 3].iter().map(|&i| (i as u64, &graphs[i])),
        );
        for probe in [
            path_graph(&[0, 1]),
            path_graph(&[5, 5]),
            path_graph(&[0, 1, 0]),
            path_graph(&[1, 0, 1, 0, 1]),
        ] {
            let got = idx.candidates(&probe);
            let want = fresh.candidates(&probe);
            let to_serials = |idx: &QueryIndex, slots: &[u32]| -> Vec<QuerySerial> {
                slots.iter().map(|&s| idx.serial(s)).collect()
            };
            assert_eq!(to_serials(&idx, &got.sub), to_serials(&fresh, &want.sub));
            assert_eq!(
                to_serials(&idx, &got.super_),
                to_serials(&fresh, &want.super_)
            );
        }
    }

    #[test]
    fn bulk_build_is_fully_packed() {
        let idx = build(&[path_graph(&[0, 1, 0]), path_graph(&[5, 5])]);
        assert!(idx.tail.is_empty(), "bulk build must end arena-resident");
        assert_eq!(idx.tail_len, 0);
        assert!(idx.postings_len() > 0);
        assert_eq!(idx.postings_len(), idx.arena.len());
        // Incremental inserts spill into the tail…
        let mut idx = idx;
        let g = path_graph(&[7, 8]);
        let profile = enumerate_paths(&g, 4, u64::MAX);
        idx.insert_profile(99, (2, 1), &profile);
        assert!(idx.tail_len > 0);
        assert_eq!(idx.postings_len(), idx.arena.len() + idx.tail_len);
        // …and probing still sees them.
        let c = idx.candidates(&path_graph(&[7, 8]));
        assert_eq!(c.sub, vec![2]);
    }

    #[test]
    fn postings_debt_tracks_dead_slots() {
        // Slot 0 owns far more postings than slot 1, so removing it must
        // push the postings-debt ratio well past the slot-count ratio.
        let mut idx = build(&[path_graph(&[0, 1, 2, 3, 4]), path_graph(&[5, 5])]);
        assert_eq!(idx.dead_postings(), 0);
        assert_eq!(idx.postings_debt(), 0.0);
        let total = idx.postings_len();
        idx.remove(0);
        assert!(idx.dead_postings() > 0);
        assert_eq!(idx.postings_len(), total, "postings stay until compaction");
        assert!(
            idx.postings_debt() > 0.5,
            "big dead slot dominates the postings: {}",
            idx.postings_debt()
        );
        let (live, reserved) = idx.arena_utilization();
        assert!(live < reserved);
        assert_eq!(reserved, total * std::mem::size_of::<(u32, u32)>());
        // Rebuilding over the survivor clears the debt.
        let fresh = build(&[path_graph(&[5, 5])]);
        assert_eq!(fresh.dead_postings(), 0);
        let (l, r) = fresh.arena_utilization();
        assert_eq!(l, r);
    }

    #[test]
    fn packed_layout_is_deterministic() {
        // Same logical content → identical arena bytes, regardless of the
        // insertion history that produced it (bulk builds sort features).
        let a = build(&[path_graph(&[0, 1, 0]), path_graph(&[1, 0, 1, 0])]);
        let b = build(&[path_graph(&[0, 1, 0]), path_graph(&[1, 0, 1, 0])]);
        assert_eq!(a.arena, b.arena);
        assert_eq!(a.arena.len(), b.postings_len());
    }
}
