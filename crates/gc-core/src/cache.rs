//! The GraphCache system: query execution front end (paper §4, Fig. 2).
//!
//! [`GraphCache`] is a shared, thread-safe query *service*: `run`,
//! [`GraphCache::execute`] and [`GraphCache::run_batch`] all take `&self`,
//! so any number of threads can query one cache instance concurrently.
//! Handles are cheaply cloneable — every clone shares the same cache
//! stores, statistics and Window.

use crate::admission::{AdmissionConfig, AdmissionControl, AdmissionPolicy, CostModel};
use crate::fragments::FragmentState;
use crate::metrics::{MaintStats, QueryRecord};
use crate::policy::{EvictionPolicy, KindPolicy, PolicyKind};
use crate::processors;
use crate::pruner::{self, HitAnswer, PruneOutcome};
use crate::query_index::QueryIndexConfig;
use crate::registry::{self, PolicyError};
use crate::stats::{columns, QuerySerial, StatsStore};
use crate::window::{self, MaintMsg, MaintenanceConfig, Shared, WindowEntry};
use gc_fragments::FragmentConfig;
use gc_graph::{idset, GraphId, LabeledGraph};
use gc_methods::{FilterOutput, Method, QueryKind};
use gc_subiso::{cost, MatchConfig};
use parking_lot::Mutex;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Tunable parameters of a [`GraphCache`] instance. Defaults mirror the
/// paper's evaluation setup (§7.1): C = 100, W = 20, HD replacement,
/// admission control off.
#[derive(Debug, Clone, Copy)]
pub struct GcConfig {
    /// Cache capacity C in entries (paper default: 100).
    ///
    /// The builder clamps this to at least 1 (see
    /// [`GraphCacheBuilder::capacity`]); constructing a [`GcConfig`] by
    /// hand with `capacity == 0` is not meaningful and unsupported.
    pub capacity: usize,
    /// Window size W in queries (paper default: 20).
    ///
    /// The builder clamps this to at least 1 (see
    /// [`GraphCacheBuilder::window`]); `window == 0` is unsupported.
    pub window: usize,
    /// Replacement policy (paper recommendation: HD).
    pub policy: PolicyKind,
    /// Admission control configuration (paper default: disabled).
    pub admission: AdmissionConfig,
    /// Subgraph or supergraph query semantics. Individual requests may
    /// override this per query ([`QueryRequest::kind`]).
    pub query_kind: QueryKind,
    /// How expensiveness is computed (wall time vs deterministic work).
    pub cost_model: CostModel,
    /// Query index configuration.
    pub index: QueryIndexConfig,
    /// Search limits for cache-hit verification tests. Individual requests
    /// may override this per query ([`QueryRequest::hit_match`]).
    pub hit_match: MatchConfig,
    /// Shared verification work pool per query: hit-candidate tests are
    /// verified cheapest-first and each deducts its matcher work
    /// (`nodes_expanded`) from this pool; when it runs dry the sweep stops
    /// with a partial (still sound) hit set and the query is marked
    /// [`truncated`](crate::QueryRecord::truncated). Unlike
    /// [`hit_match`](Self::hit_match), which bounds each *individual*
    /// test, this caps the query's total hit-detection spend so one
    /// candidate-heavy query cannot burn more matcher work than a cache
    /// hit could ever save (paper §5). `None` = unbounded. Individual
    /// requests may override this ([`QueryRequest::verify_budget`]).
    pub verify_budget: Option<u64>,
    /// Worker threads for *hit-candidate verification* within one query:
    /// when a query's ordered candidate queue is large, the sweep fans
    /// across this many scoped threads. Deliberately separate from
    /// [`threads`](Self::threads) (client concurrency) — tying them
    /// together would oversubscribe `run_batch` (each of N client workers
    /// spawning N more) and make budgeted hit sets depend on thread
    /// timing. The default `1` keeps verification sequential and fully
    /// deterministic; raise it for latency-sensitive single-stream
    /// workloads with candidate-heavy queries.
    pub verify_threads: usize,
    /// Run the Window Manager on a background thread (the paper's design);
    /// `false` runs maintenance inline for deterministic tests.
    pub background: bool,
    /// Dispatch Method M's filter and GC's processors concurrently, as in
    /// the paper's Fig. 2 (step 2 sends the query to both in parallel).
    /// Answers are identical either way; only latency changes.
    pub parallel_dispatch: bool,
    /// Client concurrency: worker threads used by
    /// [`GraphCache::run_batch`], and (when `parallel_dispatch` is on) the
    /// cap on the demand-grown filter pool. `0` auto-detects from
    /// [`std::thread::available_parallelism`]. Filter workers are spawned
    /// lazily, so sequential use only ever creates one regardless of the
    /// cap.
    pub threads: usize,
    /// Number of cache shards (serial-hashed snapshot partitions; see
    /// [`crate::entry`]). A maintenance round patches only the shards its
    /// victim/admit delta touches, and concurrent readers pin shards
    /// independently. `0` (the default) sizes the shard count from the
    /// effective thread count, clamped to 64.
    pub shards: usize,
    /// Enable the sub-query fragment cache: queries are decomposed into
    /// canonical path fragments whose *exact* occurrence sets, cached
    /// across queries, intersect-prune the candidate set before
    /// verification — a fourth hit class alongside exact/sub/super.
    /// Sound because intersection with an exact occurrence superset only
    /// removes non-answers. Off by default.
    pub fragments: bool,
    /// Fragment-layer knobs (decomposition bounds, per-round build cap,
    /// byte budget). Only consulted when [`fragments`](Self::fragments)
    /// is on.
    pub fragment: FragmentConfig,
}

impl Default for GcConfig {
    fn default() -> Self {
        GcConfig {
            capacity: 100,
            window: 20,
            policy: PolicyKind::Hd,
            admission: AdmissionConfig::default(),
            query_kind: QueryKind::Subgraph,
            cost_model: CostModel::WallTime,
            index: QueryIndexConfig::default(),
            hit_match: MatchConfig::UNBOUNDED,
            verify_budget: None,
            verify_threads: 1,
            background: false,
            parallel_dispatch: false,
            threads: 0,
            shards: 0,
            fragments: false,
            fragment: FragmentConfig::default(),
        }
    }
}

/// How the builder selects the admission strategy: an explicit
/// [`AdmissionConfig`] (the original API) or a registry spec string such as
/// `"adaptive"` or `"threshold:windows=2"`. Both convert via [`From`], so
/// [`GraphCacheBuilder::admission`] accepts either directly.
#[derive(Debug, Clone)]
pub enum AdmissionSpec {
    /// Configure the paper's calibrated-threshold controller directly.
    Config(AdmissionConfig),
    /// Resolve a policy by name through [`crate::registry`].
    Named(String),
}

impl From<AdmissionConfig> for AdmissionSpec {
    fn from(cfg: AdmissionConfig) -> Self {
        AdmissionSpec::Config(cfg)
    }
}

impl From<&str> for AdmissionSpec {
    fn from(spec: &str) -> Self {
        AdmissionSpec::Named(spec.to_string())
    }
}

impl From<String> for AdmissionSpec {
    fn from(spec: String) -> Self {
        AdmissionSpec::Named(spec)
    }
}

/// Builder for [`GraphCache`].
///
/// Policies are picked either through the typed setters
/// ([`policy`](Self::policy) / [`admission`](Self::admission) with an
/// [`AdmissionConfig`]) or by registry name
/// ([`eviction`](Self::eviction) / [`admission`](Self::admission) with a
/// spec string). Name resolution happens at build time:
/// [`try_build`](Self::try_build) surfaces unknown names as a
/// [`PolicyError`], while [`build`](Self::build) panics on them.
///
/// ```
/// use gc_core::{CostModel, GraphCache};
/// use gc_graph::{GraphDataset, LabeledGraph};
/// use gc_methods::MethodBuilder;
///
/// let dataset = GraphDataset::new(vec![LabeledGraph::from_parts(
///     vec![0, 1],
///     &[(0, 1)],
/// )]);
/// let method = MethodBuilder::ggsx().build(&dataset);
/// let cache = GraphCache::builder()
///     .capacity(50)
///     .window(10)
///     .eviction("gcr")
///     .admission("adaptive")
///     .cost_model(CostModel::Work) // deterministic counters
///     .try_build(method)
///     .expect("policy names resolve");
/// assert_eq!(cache.eviction_name(), "hd"); // "gcr" is the paper's alias for HD
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphCacheBuilder {
    cfg: GcConfig,
    eviction_spec: Option<String>,
    admission_spec: Option<String>,
    fragment_eviction_spec: Option<String>,
}

impl GraphCacheBuilder {
    /// Cache capacity C (entries).
    ///
    /// A capacity of `0` would make every admission round evict the whole
    /// batch it just admitted, so the value is silently clamped to at
    /// least 1 — `capacity(0)` builds a one-entry cache. This clamp is
    /// part of the API contract and mirrored on [`GcConfig::capacity`].
    pub fn capacity(mut self, c: usize) -> Self {
        self.cfg.capacity = c.max(1);
        self
    }

    /// Window size W (queries per maintenance round).
    ///
    /// A window of `0` would never trigger a maintenance round (no query
    /// could ever be admitted), so the value is silently clamped to at
    /// least 1 — `window(0)` flushes after every query. This clamp is part
    /// of the API contract and mirrored on [`GcConfig::window`].
    pub fn window(mut self, w: usize) -> Self {
        self.cfg.window = w.max(1);
        self
    }

    /// Replacement policy by [`PolicyKind`] (the paper's §6.3 strategies).
    /// Overrides any earlier [`eviction`](Self::eviction) spec: the last
    /// policy selection wins.
    pub fn policy(mut self, p: PolicyKind) -> Self {
        self.cfg.policy = p;
        self.eviction_spec = None;
        self
    }

    /// Replacement policy by registry name, e.g. `.eviction("gcr")`,
    /// `.eviction("slru:protected=0.5")`. Any name in [`crate::registry`]
    /// — built-in or registered by the application — is accepted; the name
    /// is resolved at build time ([`try_build`](Self::try_build) reports
    /// unknown names, [`build`](Self::build) panics on them).
    pub fn eviction(mut self, spec: impl Into<String>) -> Self {
        self.eviction_spec = Some(spec.into());
        self
    }

    /// Admission strategy: either an [`AdmissionConfig`] (the paper's
    /// calibrated threshold, as before) or a registry name such as
    /// `.admission("adaptive")`. See [`AdmissionSpec`].
    pub fn admission(mut self, a: impl Into<AdmissionSpec>) -> Self {
        match a.into() {
            AdmissionSpec::Config(cfg) => {
                self.cfg.admission = cfg;
                self.admission_spec = None;
            }
            AdmissionSpec::Named(spec) => self.admission_spec = Some(spec),
        }
        self
    }

    /// Query semantics (subgraph vs supergraph).
    pub fn query_kind(mut self, k: QueryKind) -> Self {
        self.cfg.query_kind = k;
        self
    }

    /// Expensiveness cost model.
    pub fn cost_model(mut self, m: CostModel) -> Self {
        self.cfg.cost_model = m;
        self
    }

    /// Query-index configuration.
    pub fn index(mut self, cfg: QueryIndexConfig) -> Self {
        self.cfg.index = cfg;
        self
    }

    /// Budget for cache-hit verification tests.
    pub fn hit_match(mut self, cfg: MatchConfig) -> Self {
        self.cfg.hit_match = cfg;
        self
    }

    /// Per-query verification work pool for hit detection (see
    /// [`GcConfig::verify_budget`]).
    pub fn verify_budget(mut self, budget: u64) -> Self {
        self.cfg.verify_budget = Some(budget);
        self
    }

    /// Worker threads for parallel hit-candidate verification within one
    /// query (see [`GcConfig::verify_threads`]; default 1 = sequential).
    pub fn verify_threads(mut self, n: usize) -> Self {
        self.cfg.verify_threads = n.max(1);
        self
    }

    /// Background (true) vs inline (false) window maintenance.
    pub fn background(mut self, bg: bool) -> Self {
        self.cfg.background = bg;
        self
    }

    /// Concurrent (true) vs sequential (false) dispatch of Method M's
    /// filter and GC's processors.
    pub fn parallel_dispatch(mut self, on: bool) -> Self {
        self.cfg.parallel_dispatch = on;
        self
    }

    /// Worker threads for [`GraphCache::run_batch`] (0 = auto-detect).
    pub fn threads(mut self, n: usize) -> Self {
        self.cfg.threads = n;
        self
    }

    /// Number of cache shards (0 = size from the effective thread count).
    /// More shards mean smaller maintenance patches and less reader/writer
    /// interference; the shard count is fixed for the cache's lifetime.
    pub fn shards(mut self, n: usize) -> Self {
        self.cfg.shards = n;
        self
    }

    /// Enables (or disables) the sub-query fragment cache (see
    /// [`GcConfig::fragments`]).
    pub fn fragments(mut self, on: bool) -> Self {
        self.cfg.fragments = on;
        self
    }

    /// Byte budget of the fragment store (see
    /// [`FragmentConfig::budget_bytes`]).
    pub fn fragment_budget(mut self, bytes: usize) -> Self {
        self.cfg.fragment.budget_bytes = bytes;
        self
    }

    /// Full fragment-layer configuration (decomposition bounds, build
    /// cap, byte budget) — the fine-grained alternative to
    /// [`fragment_budget`](Self::fragment_budget).
    pub fn fragment_config(mut self, cfg: FragmentConfig) -> Self {
        self.cfg.fragment = cfg;
        self
    }

    /// Eviction policy for the *fragment* store by registry name (default
    /// `"lru"`), e.g. `.fragment_eviction("slru")` or
    /// `.fragment_eviction("greedy-dual")`. Resolved at build time like
    /// [`eviction`](Self::eviction); the spec is validated even when the
    /// fragment layer is disabled, so configuration errors surface
    /// regardless of the `fragments` switch.
    pub fn fragment_eviction(mut self, spec: impl Into<String>) -> Self {
        self.fragment_eviction_spec = Some(spec.into());
        self
    }

    /// Builds the cache in front of `method`.
    ///
    /// # Panics
    /// If a registry spec passed to [`eviction`](Self::eviction) /
    /// [`admission`](Self::admission) does not resolve — use
    /// [`try_build`](Self::try_build) to handle that as an error instead.
    pub fn build(self, method: Method) -> GraphCache {
        self.try_build(method)
            .unwrap_or_else(|e| panic!("GraphCacheBuilder: {e}"))
    }

    /// Builds the cache, reporting unresolvable policy specs as a
    /// [`PolicyError`] (whose message lists the available names).
    pub fn try_build(self, method: Method) -> Result<GraphCache, PolicyError> {
        let eviction: Box<dyn EvictionPolicy> = match &self.eviction_spec {
            Some(spec) => registry::build_eviction(spec)?,
            None => Box::new(KindPolicy::new(self.cfg.policy)),
        };
        let admission: Box<dyn AdmissionPolicy> = match &self.admission_spec {
            Some(spec) => registry::build_admission(spec)?,
            None => Box::new(AdmissionControl::new(self.cfg.admission)),
        };
        let fragment_eviction: Option<Box<dyn EvictionPolicy>> = match &self.fragment_eviction_spec
        {
            Some(spec) => Some(registry::build_eviction(spec)?),
            None => None,
        };
        Ok(GraphCache::assemble(
            method,
            self.cfg,
            eviction,
            admission,
            fragment_eviction,
        ))
    }
}

/// Outcome of one query through GraphCache.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The query's serial number.
    pub serial: QuerySerial,
    /// The answer set (sorted dataset graph ids).
    pub answer: Vec<GraphId>,
    /// Everything measured about the execution.
    pub record: QueryRecord,
}

/// A typed query submission: the query graph plus per-query overrides of
/// the cache-wide defaults.
///
/// ```
/// use gc_core::QueryRequest;
/// use gc_graph::LabeledGraph;
/// use gc_methods::QueryKind;
///
/// let g = LabeledGraph::from_parts(vec![0, 1], &[(0, 1)]);
/// let req = QueryRequest::new(g)
///     .kind(QueryKind::Supergraph)
///     .tag(7);
/// assert_eq!(req.tag, 7);
/// ```
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// The query graph. Held behind an `Arc` so building requests from an
    /// already-shared graph — and cloning/moving requests across batch
    /// worker threads — never deep-copies the graph.
    pub graph: Arc<LabeledGraph>,
    /// Per-query override of [`GcConfig::query_kind`].
    pub kind: Option<QueryKind>,
    /// Per-query override of the hit-verification budget
    /// ([`GcConfig::hit_match`]).
    pub hit_match: Option<MatchConfig>,
    /// Per-query override of the shared verification work pool
    /// ([`GcConfig::verify_budget`]).
    pub verify_budget: Option<u64>,
    /// The request's hit budget: stop hit verification once this many hits
    /// have been confirmed (fewer hits only means less pruning — answers
    /// are unaffected). `None` = verify every candidate the budget allows.
    pub max_hits: Option<usize>,
    /// Skip the cache entirely: the query runs through the uncached
    /// Method M and is neither admitted to the Window nor credited in the
    /// statistics. Useful for baselines and for queries known to be
    /// one-off.
    pub bypass_cache: bool,
    /// Wall-clock deadline for this request, in milliseconds from the
    /// moment execution starts. When it expires mid-query the execution
    /// aborts at the next checkpoint: the result comes back with an empty
    /// answer and
    /// [`deadline_exceeded`](crate::QueryRecord::deadline_exceeded) set,
    /// and the query is neither admitted to the Window nor credited in
    /// the statistics (an aborted query must not perturb cache state).
    /// `None` = no deadline.
    pub timeout_ms: Option<u64>,
    /// Restricts the hit-verification sweep to these candidate serials
    /// (see [`VerifyOptions::allowed`](crate::VerifyOptions::allowed)).
    /// Normally set only by the `gc route` front-end, which merges
    /// per-peer [`GraphCache::probe_candidates`] slices into this set.
    /// Restriction only removes candidates, so answers are unaffected —
    /// a missing serial just means less pruning. `None` = no filter.
    pub allow: Option<Vec<QuerySerial>>,
    /// Caller-chosen correlation tag, echoed on the [`QueryResponse`].
    /// Batch submission preserves input order, so the tag is only needed
    /// when responses are routed onward asynchronously.
    pub tag: u64,
}

impl QueryRequest {
    /// A request with cache-wide defaults for every knob.
    pub fn new(graph: impl Into<Arc<LabeledGraph>>) -> Self {
        QueryRequest {
            graph: graph.into(),
            kind: None,
            hit_match: None,
            verify_budget: None,
            max_hits: None,
            bypass_cache: false,
            timeout_ms: None,
            allow: None,
            tag: 0,
        }
    }

    /// Overrides the query direction for this request only.
    pub fn kind(mut self, kind: QueryKind) -> Self {
        self.kind = Some(kind);
        self
    }

    /// Overrides the hit-verification search budget for this request only.
    pub fn hit_match(mut self, cfg: MatchConfig) -> Self {
        self.hit_match = Some(cfg);
        self
    }

    /// Overrides the shared verification work pool for this request only.
    pub fn verify_budget(mut self, budget: u64) -> Self {
        self.verify_budget = Some(budget);
        self
    }

    /// Caps the number of verified hits for this request (early exit once
    /// the hit budget is satisfied).
    pub fn max_hits(mut self, n: usize) -> Self {
        self.max_hits = Some(n);
        self
    }

    /// Routes this request around the cache (uncached Method M execution).
    pub fn bypass_cache(mut self, bypass: bool) -> Self {
        self.bypass_cache = bypass;
        self
    }

    /// Sets a wall-clock deadline (milliseconds from execution start) for
    /// this request; expiry aborts the query at the next checkpoint.
    pub fn timeout_ms(mut self, ms: u64) -> Self {
        self.timeout_ms = Some(ms);
        self
    }

    /// Restricts the hit-verification sweep to these candidate serials.
    /// The list is sorted and deduplicated here so the sweep can binary
    /// search it.
    pub fn allow_serials(mut self, mut serials: Vec<QuerySerial>) -> Self {
        serials.sort_unstable();
        serials.dedup();
        self.allow = Some(serials);
        self
    }

    /// Attaches a correlation tag echoed on the response.
    pub fn tag(mut self, tag: u64) -> Self {
        self.tag = tag;
        self
    }
}

impl From<LabeledGraph> for QueryRequest {
    fn from(graph: LabeledGraph) -> Self {
        QueryRequest::new(graph)
    }
}

impl From<Arc<LabeledGraph>> for QueryRequest {
    fn from(graph: Arc<LabeledGraph>) -> Self {
        QueryRequest::new(graph)
    }
}

impl From<&LabeledGraph> for QueryRequest {
    fn from(graph: &LabeledGraph) -> Self {
        QueryRequest::new(graph.clone())
    }
}

/// Per-query override knobs forwarded from a [`QueryRequest`] into the
/// cached execution path (all `None` on the plain [`GraphCache::run`]).
#[derive(Debug, Clone, Default)]
struct RunOverrides {
    kind: Option<QueryKind>,
    hit_match: Option<MatchConfig>,
    verify_budget: Option<u64>,
    max_hits: Option<usize>,
    deadline: Option<Instant>,
    allowed: Option<Vec<QuerySerial>>,
}

/// True once a request's wall-clock deadline has passed.
fn deadline_past(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d)
}

/// Finishes a deadline-aborted execution: the record keeps the work
/// counters of the phases that did run (truthful accounting), the answer
/// is empty, and the caller returns without Window admission or
/// statistics credit so the abort leaves cache state untouched.
fn deadline_abort(serial: QuerySerial, mut record: QueryRecord) -> QueryResult {
    record.deadline_exceeded = true;
    record.truncated = true;
    record.answer_size = 0;
    QueryResult {
        serial,
        answer: Vec::new(),
        record,
    }
}

/// Outcome of one [`QueryRequest`]: the wrapped [`QueryResult`] plus
/// request metadata.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The tag of the request that produced this response.
    pub tag: u64,
    /// True when the request asked to bypass the cache.
    pub bypassed_cache: bool,
    /// The execution outcome (serial, answer, metrics).
    pub result: QueryResult,
}

/// What [`GraphCache::restore`] recovered: which snapshot generation it
/// came from and how many entries landed in the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestoreReport {
    /// Sequence number of the generation the state was loaded from, or
    /// `None` for a legacy flat-file (pre-MANIFEST) restore.
    pub generation: Option<u64>,
    /// Number of entries in the cache after the restore.
    pub entries: usize,
}

/// Owns the background Window Manager thread. Held behind an `Arc` by
/// every cache handle; when the last handle drops, the channel closes and
/// the manager thread is joined.
struct ManagerHandle {
    tx: Option<mpsc::Sender<MaintMsg>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ManagerHandle {
    fn sender(&self) -> &mpsc::Sender<MaintMsg> {
        self.tx.as_ref().expect("manager alive until drop")
    }
}

impl Drop for ManagerHandle {
    fn drop(&mut self) {
        drop(self.tx.take()); // close the channel so the thread exits
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// One filter request to the pool: the reply channel is owned by the
/// requesting query; dropping the [`PendingFilter`] (exact hit) sets the
/// cancel flag so a not-yet-started job is skipped entirely.
struct FilterJob {
    query: Arc<LabeledGraph>,
    kind: QueryKind,
    cancel: Arc<std::sync::atomic::AtomicBool>,
    reply: mpsc::Sender<FilterOutput>,
}

/// The requester's handle on a submitted filter job. Dropping it without
/// receiving marks the job cancelled: a worker that has not yet started it
/// skips the (discarded) computation instead of delaying live queries
/// queued behind it.
struct PendingFilter {
    rx: mpsc::Receiver<FilterOutput>,
    cancel: Arc<std::sync::atomic::AtomicBool>,
}

impl PendingFilter {
    /// Blocks for the filter result.
    ///
    /// # Panics
    /// If the worker dropped the reply without sending — i.e. Method M's
    /// filter panicked for this query. Failing fast surfaces the matcher
    /// bug rather than hanging.
    fn receive(&self) -> FilterOutput {
        self.rx
            .recv()
            .expect("Method M filter panicked for this query")
    }
}

impl Drop for PendingFilter {
    fn drop(&mut self) {
        self.cancel
            .store(true, std::sync::atomic::Ordering::Release);
    }
}

/// Persistent worker threads running Method M's filter concurrently with
/// the GC processors (Fig. 2, step 2). Unlike the old single-worker design,
/// requests carry their own reply channel, so any number of in-flight
/// queries can use the pool at once.
///
/// Workers are spawned on demand: a sequential client only ever creates
/// one, while concurrent clients grow the pool up to `cap` — submitting a
/// request when no worker is idle spawns a new one (until the cap), so
/// in-flight queries never serialise behind a fixed undersized pool.
struct FilterPool {
    method: Arc<Method>,
    tx: Option<mpsc::Sender<FilterJob>>,
    rx: Arc<Mutex<mpsc::Receiver<FilterJob>>>,
    /// Jobs submitted but not yet completed. Spawning is driven by this
    /// count (not by an "idle workers" count, which would race with a
    /// worker that has dequeued a job but not yet marked itself busy).
    inflight: Arc<std::sync::atomic::AtomicUsize>,
    /// Workers spawned so far; never exceeds `cap`.
    spawned: std::sync::atomic::AtomicUsize,
    cap: usize,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl FilterPool {
    fn new(method: Arc<Method>, cap: usize) -> Self {
        let (tx, rx) = mpsc::channel::<FilterJob>();
        FilterPool {
            method,
            tx: Some(tx),
            rx: Arc::new(Mutex::new(rx)),
            inflight: Arc::new(std::sync::atomic::AtomicUsize::new(0)),
            spawned: std::sync::atomic::AtomicUsize::new(0),
            cap: cap.max(1),
            handles: Mutex::new(Vec::new()),
        }
    }

    /// Spawns another worker while in-flight jobs outnumber workers and
    /// the cap allows. Over-spawning on a race is prevented by re-checking
    /// the claimed slot.
    fn ensure_workers(&self, inflight: usize) {
        use std::sync::atomic::Ordering;
        while inflight > self.spawned.load(Ordering::Acquire) {
            let claimed = self.spawned.fetch_add(1, Ordering::AcqRel);
            if claimed >= self.cap {
                self.spawned.fetch_sub(1, Ordering::AcqRel);
                return;
            }
            let method = self.method.clone();
            let rx = self.rx.clone();
            let inflight = self.inflight.clone();
            let handle = std::thread::Builder::new()
                .name(format!("gc-mfilter-{claimed}"))
                .spawn(move || loop {
                    // Workers take turns parking in recv() while holding
                    // the receiver lock (delivery is serialised, which is
                    // inherent to one queue); the filter computation runs
                    // after the guard is dropped, so it is fully parallel.
                    let job = rx.lock().recv();
                    match job {
                        Ok(job) => {
                            // The requester may have resolved via an exact
                            // hit and discarded its handle — skip the
                            // (unwanted) computation so live queries queued
                            // behind it are not delayed.
                            if job.cancel.load(Ordering::Acquire) {
                                inflight.fetch_sub(1, Ordering::AcqRel);
                                continue;
                            }
                            // A panicking matcher must not wedge the pool:
                            // catch it so this worker (still counted in
                            // `spawned`) lives on, decrement `inflight` on
                            // every path, and drop the reply sender so the
                            // requester's recv() fails fast instead of
                            // hanging forever.
                            let out =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    method.filter_directed(&job.query, job.kind)
                                }));
                            inflight.fetch_sub(1, Ordering::AcqRel);
                            match out {
                                Ok(out) => {
                                    let _ = job.reply.send(out);
                                }
                                Err(_) => drop(job.reply),
                            }
                        }
                        Err(_) => break,
                    }
                })
                .expect("spawn filter worker");
            self.handles.lock().push(handle);
        }
    }

    /// Submits a filter request; the returned handle yields the result (or
    /// cancels the job when dropped unreceived).
    fn request(&self, query: &Arc<LabeledGraph>, kind: QueryKind) -> PendingFilter {
        use std::sync::atomic::Ordering;
        let inflight = self.inflight.fetch_add(1, Ordering::AcqRel) + 1;
        self.ensure_workers(inflight);
        let cancel = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let (reply, rx) = mpsc::channel();
        let sent = self
            .tx
            .as_ref()
            .expect("pool alive until drop")
            .send(FilterJob {
                query: query.clone(),
                kind,
                cancel: cancel.clone(),
                reply,
            });
        if sent.is_err() {
            self.inflight.fetch_sub(1, Ordering::AcqRel);
            panic!("filter pool alive");
        }
        PendingFilter { rx, cancel }
    }
}

impl Drop for FilterPool {
    fn drop(&mut self) {
        drop(self.tx.take());
        for h in self.handles.get_mut().drain(..) {
            let _ = h.join();
        }
    }
}

/// The GraphCache service: a semantic cache wrapped around a Method M,
/// shared by any number of client threads.
///
/// All query entry points take `&self`; snapshot reads are a lock-free
/// `Arc` clone, and the per-query mutable state (Window buffer, serial
/// counter, statistics) sits behind fine-grained locks in
/// [`crate::window`] / [`crate::stats`]. Clone the handle to hand the same
/// cache to other threads, or share one instance behind an `Arc` — both
/// work, and `std::thread::scope` can borrow a single instance directly.
///
/// See the crate docs for an end-to-end example, and
/// [`run_batch`](GraphCache::run_batch) for fan-out over a thread pool.
pub struct GraphCache {
    method: Arc<Method>,
    cfg: GcConfig,
    shared: Arc<Shared>,
    worker: Option<Arc<ManagerHandle>>,
    filter_pool: Option<Arc<FilterPool>>,
}

impl Clone for GraphCache {
    /// Clones the handle, not the cache: both handles share the same
    /// stores, statistics, Window and background manager.
    fn clone(&self) -> Self {
        GraphCache {
            method: self.method.clone(),
            cfg: self.cfg,
            shared: self.shared.clone(),
            worker: self.worker.clone(),
            filter_pool: self.filter_pool.clone(),
        }
    }
}

impl GraphCache {
    /// Starts building a cache with the paper's default configuration.
    pub fn builder() -> GraphCacheBuilder {
        GraphCacheBuilder::default()
    }

    /// Creates a cache with an explicit configuration; the replacement and
    /// admission policies come from the config's [`PolicyKind`] and
    /// [`AdmissionConfig`] fields.
    pub fn with_config(method: Method, cfg: GcConfig) -> Self {
        GraphCache::with_policies(
            method,
            cfg,
            Box::new(KindPolicy::new(cfg.policy)),
            Box::new(AdmissionControl::new(cfg.admission)),
        )
    }

    /// Creates a cache with explicitly constructed policy objects —
    /// the escape hatch for strategies not in [`crate::registry`].
    /// ([`GraphCacheBuilder`] covers the common paths: `policy`/`eviction`
    /// and `admission`.)
    pub fn with_policies(
        method: Method,
        cfg: GcConfig,
        eviction: Box<dyn EvictionPolicy>,
        admission: Box<dyn AdmissionPolicy>,
    ) -> Self {
        // The fragment store defaults to LRU here; pick a different
        // fragment policy through the builder's `fragment_eviction`.
        GraphCache::assemble(method, cfg, eviction, admission, None)
    }

    /// The one true constructor: every public construction path funnels
    /// here. A `None` fragment policy means "LRU if the fragment layer is
    /// on"; the layer itself is only instantiated when `cfg.fragments`
    /// asks for it.
    fn assemble(
        method: Method,
        cfg: GcConfig,
        eviction: Box<dyn EvictionPolicy>,
        admission: Box<dyn AdmissionPolicy>,
        fragment_eviction: Option<Box<dyn EvictionPolicy>>,
    ) -> Self {
        let method = Arc::new(method);
        let fragments = cfg.fragments.then(|| {
            FragmentState::new(
                cfg.fragment,
                method.clone(),
                fragment_eviction.unwrap_or_else(|| Box::new(KindPolicy::new(PolicyKind::Lru))),
            )
        });
        let shared = Arc::new(Shared::new(
            cfg.index,
            effective_shards(&cfg),
            eviction,
            admission,
            fragments,
        ));
        let worker = cfg.background.then(|| {
            let (tx, handle) = window::spawn_manager(
                shared.clone(),
                MaintenanceConfig {
                    capacity: cfg.capacity,
                    compact_debt: window::DEFAULT_COMPACT_DEBT,
                },
            );
            Arc::new(ManagerHandle {
                tx: Some(tx),
                handle: Some(handle),
            })
        });
        // One filter worker can serve one in-flight query; the pool grows
        // on demand up to the client-concurrency cap, so sequential use
        // spawns a single worker while auto-threaded batches can expand to
        // the core count.
        let filter_pool = cfg.parallel_dispatch.then(|| {
            Arc::new(FilterPool::new(
                method.clone(),
                effective_threads(cfg.threads),
            ))
        });
        GraphCache {
            method,
            cfg,
            shared,
            worker,
            filter_pool,
        }
    }

    /// The wrapped Method M.
    pub fn method(&self) -> &Method {
        &self.method
    }

    /// The effective configuration.
    pub fn config(&self) -> &GcConfig {
        &self.cfg
    }

    /// The active eviction policy's registry name (e.g. `"hd"`, `"slru"`).
    pub fn eviction_name(&self) -> String {
        self.shared.eviction.lock().name().to_string()
    }

    /// The active admission policy's registry name (e.g. `"threshold"`).
    pub fn admission_name(&self) -> String {
        self.shared.admission.lock().name().to_string()
    }

    /// The admission policy's current threshold, when it has one.
    pub fn admission_threshold(&self) -> Option<f64> {
        self.shared.admission.lock().threshold()
    }

    /// The fragment store's eviction policy name, when the fragment layer
    /// is enabled (e.g. `Some("lru")`).
    pub fn fragment_eviction_name(&self) -> Option<String> {
        self.shared
            .fragments
            .as_ref()
            .map(|f| f.eviction.lock().name().to_string())
    }

    /// Number of fragments currently cached (0 when the layer is off).
    pub fn fragment_store_len(&self) -> usize {
        self.shared
            .fragments
            .as_ref()
            .map_or(0, |f| f.store.lock().len())
    }

    /// The worker-thread count [`run_batch`](Self::run_batch) fans out to.
    pub fn batch_threads(&self) -> usize {
        effective_threads(self.cfg.threads)
    }

    /// The number of snapshot shards this cache maintains.
    pub fn shard_count(&self) -> usize {
        self.shared.shards.len()
    }

    /// Number of queries currently cached.
    pub fn cache_len(&self) -> usize {
        self.shared.load_snapshot().len()
    }

    /// Number of queries waiting in the Window.
    pub fn window_len(&self) -> usize {
        self.shared.window.lock().len()
    }

    /// Total cache maintenance time so far (Fig. 10's overhead metric).
    pub fn maintenance_total(&self) -> Duration {
        Duration::from_micros(
            self.shared
                .maintenance_us
                .load(std::sync::atomic::Ordering::Relaxed),
        )
    }

    /// Cumulative per-phase maintenance breakdown: victim selection, index
    /// delta and statistics-upkeep durations, plus entries touched, shards
    /// patched and compactions (see [`MaintStats`]).
    pub fn maint_stats(&self) -> MaintStats {
        self.shared.maint_stats()
    }

    /// Per-shard arena utilization as `(bytes_live, bytes_reserved)` —
    /// how much of each shard's packed postings + answer arenas holds
    /// live data versus reserved-but-dead slots awaiting compaction
    /// (diagnostics; surfaced by `gc query --maint-stats`).
    pub fn arena_utilization(&self) -> Vec<(usize, usize)> {
        self.shared.load_snapshot().arena_utilization()
    }

    /// Approximate memory footprint of the cache stores (entries + query
    /// indexes + statistics + the pending Window buffer + the fragment
    /// store when enabled), for the §7.3 space-overhead comparison. The
    /// Window buffer counts because its queries hold graphs, answers and
    /// profiles that only the cache retains — omitting them would
    /// understate the overhead, and the fragment store counts for the
    /// same reason.
    pub fn memory_bytes(&self) -> usize {
        let pending: usize = self
            .shared
            .window
            .lock()
            .iter()
            .map(|e| e.memory_bytes())
            .sum();
        let fragments = self
            .shared
            .fragments
            .as_ref()
            .map_or(0, |f| f.memory_bytes());
        self.shared.load_snapshot().memory_bytes()
            + self.shared.stats.lock().memory_bytes()
            + pending
            + fragments
    }

    /// Reads a statistics cell of a cached query (testing/diagnostics).
    pub fn stat(&self, serial: QuerySerial, column: &str) -> Option<f64> {
        self.shared
            .stats
            .lock()
            .get(serial, column)
            .map(|v| v.as_f64())
    }

    /// Runs all statistics rows through a visitor (diagnostics).
    pub fn with_stats<R>(&self, f: impl FnOnce(&StatsStore) -> R) -> R {
        f(&self.shared.stats.lock())
    }

    /// Persists the cache contents and statistics to a directory (paper
    /// §6.1: stores are "written back to disk on shutdown of the Cache
    /// Manager subsystem"). Pending background maintenance is flushed
    /// first; the Window's not-yet-admitted queries are not persisted
    /// (they never reached the cache stores).
    ///
    /// The entry snapshot, statistics rows and serial counter are captured
    /// under the maintenance lock, so a maintenance round racing the save
    /// cannot produce a file whose entries and statistics disagree (an
    /// entry without its rows, or orphan rows for an unsaved entry).
    pub fn save(&self, dir: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        self.save_with_format(dir, crate::persist::PersistFormat::Text)
    }

    /// Like [`save`](Self::save), but picks the on-disk representation.
    /// The binary format additionally captures every entry's path-feature
    /// profile, so a restore under the same index configuration skips
    /// path re-enumeration entirely (the dominant cost of a text
    /// restore). Either format restores through [`restore`](Self::restore),
    /// which auto-detects what the directory holds.
    pub fn save_with_format(
        &self,
        dir: impl AsRef<std::path::Path>,
        format: crate::persist::PersistFormat,
    ) -> std::io::Result<()> {
        self.flush_pending();
        let persisted = {
            let _round = self.shared.maint.lock();
            let snapshot = self.shared.load_snapshot();
            let profiles = match format {
                crate::persist::PersistFormat::Text => None,
                crate::persist::PersistFormat::Binary => Some(crate::persist::StoredProfiles {
                    max_path_len: self.cfg.index.max_path_len,
                    work_cap: self.cfg.index.work_cap,
                    profiles: snapshot.iter_entries().map(|e| e.profile.clone()).collect(),
                }),
            };
            crate::persist::PersistedCache {
                entries: snapshot
                    .iter_entries()
                    .map(|e| {
                        (
                            e.serial,
                            e.graph.as_ref().clone(),
                            e.answer.clone(),
                            e.kind,
                            e.fingerprint,
                        )
                    })
                    .collect(),
                stats: self.shared.stats.lock().clone(),
                next_serial: self.shared.current_serial() + 1,
                policy: Some(self.eviction_name()),
                fragments: self
                    .shared
                    .fragments
                    .as_ref()
                    .map(|f| {
                        f.store
                            .lock()
                            .iter_sorted()
                            .into_iter()
                            .map(|sf| crate::persist::PersistedFragment {
                                key: sf.key,
                                graph: sf.graph.clone(),
                                occs: sf.occs.clone(),
                                hits: sf.hits,
                                last_hit: sf.last_hit,
                                r_total: sf.r_total,
                                c_total: sf.c_total,
                            })
                            .collect()
                    })
                    .unwrap_or_default(),
                profiles,
            }
        };
        // File IO happens after the lock is released.
        persisted.save_as(dir, format)
    }

    /// Restores a previously saved cache state into this instance (paper
    /// §6.1: stores are "loaded from disk on startup"); the query index is
    /// rebuilt from the loaded entries.
    ///
    /// Takes `&self` — restoring into a live service is safe: queued
    /// background maintenance is flushed first, the restore serialises
    /// with maintenance rounds, and each shard swaps atomically under its
    /// own lock. A query racing the restore may assemble a view mixing
    /// pre-restore and restored shards; since every serial routes to
    /// exactly one shard such a view is merely an intermediate cache
    /// state (answers are unaffected — the cache only removes work).
    /// Pre-restore queries still waiting in the Window
    /// are discarded (mirroring [`save`](Self::save), which never
    /// persists them); a maintenance batch already in flight when the
    /// restore lands races it — depending on which acquires the
    /// maintenance lock first, the batch is either discarded with the
    /// pre-restore state or applied on top of the restored snapshot (with
    /// duplicate serials dropped in the restored entries' favour). A query
    /// straddling the swap may briefly pair the new snapshot with
    /// pre-restore statistics, which only affects replacement-policy
    /// bookkeeping, never answers. The serial counter only moves forward
    /// (`max` with the restored value), so in-flight serials stay unique.
    pub fn restore(
        &self,
        dir: impl AsRef<std::path::Path>,
    ) -> Result<RestoreReport, gc_graph::GraphError> {
        // Generation-aware recovery: when a checksum-valid MANIFEST is
        // present the newest intact generation wins (falling back to the
        // previous one if the newest is damaged); manifest-less
        // directories keep the legacy flat-file auto-detection — a
        // `snapshot.bin` restores as a binary snapshot, text files
        // otherwise. Legacy text saves (no per-entry kind token) default
        // to this cache's configured kind — they predate mixed-direction
        // caches, so the whole save was answered under one direction.
        let recovered = crate::persist::PersistedCache::load_resilient(dir, self.cfg.query_kind)?;
        let generation = recovered.generation;
        let mut loaded = recovered.state;
        let saved_policy = loaded.policy.clone();
        let saved_fragments = std::mem::take(&mut loaded.fragments);
        // The persisted format carries no shard layout: entries are
        // re-routed into this instance's shard count on load.
        let (snapshot, stats, next_serial) =
            loaded.into_snapshot_sharded(self.cfg.index, self.shared.shards.len());
        // Drain queued background batches so none of them (built from the
        // pre-restore snapshot) lands after our swap.
        self.flush_pending();
        let _round = self.shared.maint.lock();
        // Pre-restore queries that never reached a maintenance round are
        // dropped, not merged: their serials could collide with restored
        // entries.
        self.shared.window.lock().clear();
        self.shared.install_snapshot(snapshot);
        *self.shared.stats.lock() = stats;
        self.shared.serial.fetch_max(
            next_serial.saturating_sub(1),
            std::sync::atomic::Ordering::Relaxed,
        );
        // Policy-private state is never persisted, so whatever the policy
        // accumulated in memory describes the *pre-restore* entries — and
        // restored serials can collide with them (both counters start at
        // 0). Reset unconditionally; the snapshot header only decides
        // whether to warn: it records the eviction policy that accumulated
        // the persisted statistics, and restoring those rows under a
        // different policy is worth flagging even though the rows
        // themselves are policy-agnostic. Legacy saves carry no header and
        // reset quietly.
        {
            let mut eviction = self.shared.eviction.lock();
            if let Some(saved) = saved_policy.as_deref() {
                if saved != eviction.name() {
                    eprintln!(
                        "gc-core: warning: snapshot was saved under eviction policy \
                         {saved:?} but this cache runs {:?}; resetting policy-private state",
                        eviction.name()
                    );
                }
            }
            eviction.reset();
        }
        // The fragment layer swaps to the persisted fragment set the same
        // way (legacy saves carry no fragment file and load as empty, so
        // the store simply rebuilds from scratch). When this instance runs
        // without the fragment layer, persisted fragments are dropped.
        if let Some(frags) = &self.shared.fragments {
            frags.install(saved_fragments);
        }
        self.shared.recovered_generation.store(
            generation.unwrap_or(0),
            std::sync::atomic::Ordering::Relaxed,
        );
        Ok(RestoreReport {
            generation,
            entries: self.cache_len(),
        })
    }

    /// The generation the cache was last [`restore`](Self::restore)d from,
    /// or `None` when it never restored from a generational snapshot
    /// (fresh cache, or a legacy flat-file restore).
    pub fn recovered_generation(&self) -> Option<u64> {
        match self
            .shared
            .recovered_generation
            .load(std::sync::atomic::Ordering::Relaxed)
        {
            0 => None,
            g => Some(g),
        }
    }

    /// Blocks until all queued background maintenance has been applied.
    /// No-op in inline mode.
    pub fn flush_pending(&self) {
        if let Some(worker) = &self.worker {
            let (rtx, rrx) = mpsc::channel();
            if worker.sender().send(MaintMsg::Sync(rtx)).is_ok() {
                let _ = rrx.recv();
            }
        }
    }

    /// Executes one query with cache-wide defaults (Fig. 2's data flow)
    /// and returns the answer with full metrics.
    ///
    /// Takes `&self`: any number of threads may call `run` on the same
    /// instance concurrently.
    ///
    /// ```
    /// use gc_core::GraphCache;
    /// use gc_graph::{GraphDataset, LabeledGraph};
    /// use gc_methods::MethodBuilder;
    ///
    /// let dataset = GraphDataset::new(vec![LabeledGraph::from_parts(
    ///     vec![0, 1, 0],
    ///     &[(0, 1), (1, 2)],
    /// )]);
    /// let method = MethodBuilder::ggsx().build(&dataset);
    /// let cache = GraphCache::builder().capacity(10).window(4).build(method);
    ///
    /// let query = LabeledGraph::from_parts(vec![0, 1], &[(0, 1)]);
    /// let first = cache.run(&query);
    /// let repeat = cache.run(&query); // exact repeat: served by the cache
    /// assert_eq!(first.answer, repeat.answer);
    /// assert!(repeat.record.exact_hit || !repeat.record.any_hit());
    /// ```
    pub fn run(&self, query: &LabeledGraph) -> QueryResult {
        // The one unavoidable copy on this borrowed-graph entry point: the
        // graph is shared from here on (filter pool, Window, cache entry
        // all take Arc clones).
        self.run_overridden(&Arc::new(query.clone()), RunOverrides::default())
    }

    /// Executes one typed request, honouring its per-query overrides.
    pub fn execute(&self, request: QueryRequest) -> QueryResponse {
        self.execute_ref(&request)
    }

    /// Executes a batch of requests, fanning them across
    /// [`batch_threads`](Self::batch_threads) worker threads. Responses
    /// are returned in input order.
    ///
    /// Answers are identical to running the requests sequentially — the
    /// only observable differences are serial-number assignment order and
    /// which queries happen to benefit from which cached entries.
    pub fn run_batch(
        &self,
        requests: impl IntoIterator<Item = QueryRequest>,
    ) -> Vec<QueryResponse> {
        let requests: Vec<QueryRequest> = requests.into_iter().collect();
        let workers = self.batch_threads().min(requests.len());
        if workers <= 1 {
            return requests.iter().map(|r| self.execute_ref(r)).collect();
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        let mut responses: Vec<Option<QueryResponse>> = Vec::new();
        responses.resize_with(requests.len(), || None);
        let slots = Mutex::new(&mut responses);
        std::thread::scope(|s| {
            for _ in 0..workers {
                let next = &next;
                let slots = &slots;
                let requests = &requests;
                s.spawn(move || loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= requests.len() {
                        break;
                    }
                    let resp = self.execute_ref(&requests[i]);
                    slots.lock()[i] = Some(resp);
                });
            }
        });
        responses
            .into_iter()
            .map(|r| r.expect("every batch slot filled"))
            .collect()
    }

    fn execute_ref(&self, request: &QueryRequest) -> QueryResponse {
        let result = if request.bypass_cache {
            self.run_uncached(
                request.graph.as_ref(),
                request.kind.unwrap_or(self.cfg.query_kind),
            )
        } else {
            self.run_overridden(
                &request.graph,
                RunOverrides {
                    kind: request.kind,
                    hit_match: request.hit_match,
                    verify_budget: request.verify_budget,
                    max_hits: request.max_hits,
                    deadline: request
                        .timeout_ms
                        .map(|ms| Instant::now() + Duration::from_millis(ms)),
                    allowed: request.allow.clone(),
                },
            )
        };
        QueryResponse {
            tag: request.tag,
            bypassed_cache: request.bypass_cache,
            result,
        }
    }

    /// Uncached execution for [`QueryRequest::bypass_cache`]: straight
    /// through Method M, no Window admission, no statistics credit.
    fn run_uncached(&self, query: &LabeledGraph, kind: QueryKind) -> QueryResult {
        let serial = self.shared.next_serial();
        let m = self.method.run_directed(query, kind);
        let record = QueryRecord {
            serial,
            m_filter: m.filter.duration,
            verify: m.verify.duration,
            subiso_tests: m.verify.stats.tests,
            verify_work: m.verify.stats.nodes_expanded,
            cs_m_size: m.filter.candidates.len(),
            cs_gc_size: m.filter.candidates.len(),
            answer_size: m.answer.len(),
            ..Default::default()
        };
        QueryResult {
            serial,
            answer: m.answer,
            record,
        }
    }

    /// Enumerates the `(serial, entry fingerprint)` pairs the
    /// hit-verification sweep would consider for `query` — a pure read
    /// with no matcher tests, no serial consumption and no statistics
    /// side effects (see
    /// [`processors::candidate_serials`](crate::candidate_serials)).
    ///
    /// This is the cache half of the routed-fleet `PROBE` frame: each peer
    /// enumerates its candidates, keeps the slice of the fingerprint space
    /// it owns, and the router merges the slices into
    /// [`QueryRequest::allow_serials`] for the executing peer.
    pub fn probe_candidates(
        &self,
        query: &LabeledGraph,
        kind: Option<QueryKind>,
    ) -> Vec<(QuerySerial, u64)> {
        let kind = kind.unwrap_or(self.cfg.query_kind);
        let snapshot = self.shared.load_snapshot();
        let profile = snapshot.profile_of(query);
        let hit_query = processors::HitQuery::new(query, kind, &profile);
        processors::candidate_serials(&snapshot, &hit_query)
    }

    /// The cached query path with optional per-query overrides. The graph
    /// arrives behind an `Arc` so the filter pool, the Window and the
    /// eventual cache entry all share it without deep copies.
    fn run_overridden(&self, query: &Arc<LabeledGraph>, ov: RunOverrides) -> QueryResult {
        let serial = self.shared.next_serial();
        let kind = ov.kind.unwrap_or(self.cfg.query_kind);
        let hit_match = ov.hit_match.unwrap_or(self.cfg.hit_match);
        let verify_budget = ov.verify_budget.or(self.cfg.verify_budget);

        // (2)-(3): Method M filtering and GC processors, dispatched in
        // parallel when configured (Fig. 2 step 2). In sequential mode the
        // GC processors run FIRST so an exact hit can skip Mfilter
        // entirely — the paper's first special case "completely avoid[s]
        // any further processing".
        let t_phase = Instant::now();
        let pending_filter = self
            .filter_pool
            .as_ref()
            .map(|pool| pool.request(query, kind));

        let t_gc = Instant::now();
        let snapshot = self.shared.load_snapshot();
        // The query's feature profile and iso fingerprint are computed once
        // here and reused for candidate probing across every shard and for
        // index patching if the query is later admitted to the cache.
        let profile = snapshot.profile_of(query);
        let hit_query = processors::HitQuery::new(query, kind, &profile);
        let fingerprint = hit_query.fingerprint;
        let hits = processors::find_hits_opts(
            &snapshot,
            &hit_query,
            self.method.matcher().as_ref(),
            &hit_match,
            &processors::VerifyOptions {
                budget: verify_budget,
                max_hits: ov.max_hits,
                // An exact hit answers the query outright, so candidate
                // verification would be wasted work on that path.
                exact_shortcut: true,
                threads: self.cfg.verify_threads.max(1),
                deadline: ov.deadline,
                allowed: ov.allowed,
                ..processors::VerifyOptions::default()
            },
        );
        let gc_filter = t_gc.elapsed();

        let mut record = QueryRecord {
            serial,
            gc_filter,
            sub_hits: hits.sub.len(),
            super_hits: hits.super_.len(),
            gc_tests: hits.tests,
            budget_spent: hits.work,
            truncated: hits.truncated,
            exact_via_fingerprint: hits.exact_via_fingerprint,
            ..Default::default()
        };

        // Deadline checkpoint: the hit sweep itself timed out. Abort with
        // an empty answer before any cache-state side effect (no Window
        // admission, no statistics credit) — an aborted query must leave
        // the cache exactly as it found it.
        if hits.deadline_exceeded {
            drop(pending_filter);
            return deadline_abort(serial, record);
        }

        // First special case: an isomorphic cached query answers instantly,
        // without waiting for (or even running) Method M's filter; a
        // pending pool request is simply dropped and its result discarded.
        if let Some(source) = hits.exact {
            drop(pending_filter);
            let answer = snapshot
                .entry(source)
                .map(|e| e.answer.clone())
                .unwrap_or_default();
            record.exact_hit = true;
            record.cs_gc_size = 0;
            record.answer_size = answer.len();
            self.credit_exact(source, serial, query, &answer);
            let maintenance = self.push_window(query, kind, profile, fingerprint, &answer, &record);
            record.maintenance = maintenance;
            return QueryResult {
                serial,
                answer,
                record,
            };
        }

        let (m_out, m_charge) = match pending_filter {
            None => {
                let out = self.method.filter_directed(query, kind);
                let d = out.duration;
                (out, d)
            }
            Some(pending) => {
                let out = pending.receive();
                // With parallel dispatch the filtering phase's wall time is
                // the slower of the two legs; charge M only the latency it
                // added beyond the GC processors.
                (out, t_phase.elapsed().saturating_sub(gc_filter))
            }
        };
        record.m_filter = m_charge;
        record.cs_m_size = m_out.candidates.len();

        // Deadline checkpoint after Method M's filter (the last phase
        // before pruning touches statistics).
        if deadline_past(ov.deadline) {
            return deadline_abort(serial, record);
        }

        // (4): candidate set pruning via equations (1) and (2).
        let (expanding, restricting) = match kind {
            QueryKind::Subgraph => (&hits.sub, &hits.super_),
            QueryKind::Supergraph => (&hits.super_, &hits.sub),
        };
        let expanding_answers: Vec<HitAnswer<'_>> = expanding
            .iter()
            .filter_map(|s| {
                snapshot.entry(*s).map(|e| HitAnswer {
                    serial: *s,
                    answer: &e.answer,
                })
            })
            .collect();
        let restricting_answers: Vec<HitAnswer<'_>> = restricting
            .iter()
            .filter_map(|s| {
                snapshot.entry(*s).map(|e| HitAnswer {
                    serial: *s,
                    answer: &e.answer,
                })
            })
            .collect();
        let mut pruned = pruner::prune(&m_out.candidates, &expanding_answers, &restricting_answers);
        record.cs_gc_size = pruned.remaining.len();

        // (4b): fragment-layer pruning. The query's canonical fragments
        // probe the fragment store; surviving candidates are intersected
        // with each hit fragment's *exact* occurrence set — sound because
        // every answer of the query contains every fragment of the query,
        // so intersection can only remove non-answers. Restricted to
        // subgraph semantics (occurrence sets certify containment of the
        // fragment, which says nothing about supergraph answers), and
        // skipped entirely when decomposition overflowed its work cap: a
        // truncated fragment set is never treated as the whole query's
        // fragments.
        if kind == QueryKind::Subgraph
            && matches!(pruned.outcome, PruneOutcome::Pruned)
            && !pruned.remaining.is_empty()
        {
            if let Some(frags) = &self.shared.fragments {
                if let Some(keys) = frags.query_keys(query) {
                    let probe = frags.probe(&keys);
                    record.fragment_probes = probe.probes;
                    record.fragment_hits = probe.hit_ids.len() as u64;
                    if let Some(occs) = &probe.intersection {
                        let narrowed = idset::intersect(&pruned.remaining, occs);
                        let removed = (pruned.remaining.len() - narrowed.len()) as u64;
                        record.fragment_pruned = removed;
                        if !probe.hit_ids.is_empty() {
                            // Credit the contributing fragments (store
                            // rows + fragment eviction policy), mirroring
                            // the entry-level Statistics Manager: R is the
                            // candidate reduction, C the estimated matcher
                            // work avoided on the removed candidates.
                            let saved: f64 = idset::difference(&pruned.remaining, &narrowed)
                                .iter()
                                .map(|&id| cost::estimate(query, self.method.dataset().graph(id)))
                                .sum();
                            frags.credit(&probe.hit_ids, removed, saved, serial);
                        }
                        pruned.remaining = narrowed;
                        record.cs_gc_size = pruned.remaining.len();
                    }
                }
            }
        }

        // Deadline checkpoint before Mverify — the NP-complete sweep is
        // the phase most likely to blow a latency budget, so it never
        // starts once the deadline has passed. (A test already in flight
        // inside Mverify runs to completion; deadlines are checked between
        // phases and between matcher tests, never inside one.)
        if deadline_past(ov.deadline) {
            return deadline_abort(serial, record);
        }

        // (5): verification of the reduced candidate set by Mverifier.
        let (answer, verify_duration) = match pruned.outcome {
            PruneOutcome::EmptyShortcut(_) => {
                record.empty_shortcut = true;
                (Vec::new(), Duration::ZERO)
            }
            PruneOutcome::Pruned => {
                let v = self.method.verify_directed(query, &pruned.remaining, kind);
                record.subiso_tests = v.stats.tests;
                record.verify_work = v.stats.nodes_expanded;
                let answer = idset::union(&pruned.direct_answer, &v.answer);
                (answer, v.duration)
            }
        };
        record.verify = verify_duration;
        record.answer_size = answer.len();

        // Statistics Manager updates (hit credit per contribution).
        self.credit_contributions(serial, query, &pruned);

        // (6)-(7): window admission and batched cache maintenance.
        let maintenance = self.push_window(query, kind, profile, fingerprint, &answer, &record);
        record.maintenance = maintenance;

        QueryResult {
            serial,
            answer,
            record,
        }
    }

    /// Credits an exact hit. The entire candidate set is avoided, but it is
    /// never computed on this path (that is the point of the special case),
    /// so the contribution is estimated from the cached answer set — the
    /// sub-iso tests that would certainly have run.
    fn credit_exact(
        &self,
        source: QuerySerial,
        now: QuerySerial,
        query: &LabeledGraph,
        answer: &[GraphId],
    ) {
        let saved_cost: f64 = answer
            .iter()
            .map(|&id| cost::estimate(query, self.method.dataset().graph(id)))
            .sum();
        let saved_cost = saved_cost.max(1.0);
        {
            let mut stats = self.shared.stats.lock();
            if !stats.contains_row(source) {
                // The source entry was evicted (and its row removed) by a
                // maintenance round that ran after our snapshot read;
                // crediting now would recreate an orphan row nothing ever
                // cleans up.
                return;
            }
            stats.add_int(source, columns::HITS, 1);
            stats.add_int(source, columns::SPECIAL_HITS, 1);
            stats.set(source, columns::LAST_HIT, now as i64);
            stats.add_int(source, columns::R_TOTAL, answer.len().max(1) as i64);
            stats.add_float(source, columns::C_TOTAL, saved_cost);
        }
        // The eviction policy observes the hit after the stats lock is
        // released (the two locks are never held together).
        self.shared.eviction.lock().on_hit(source, now, saved_cost);
    }

    /// Credits every pruning contribution (paper §5.2: hit count, last-hit
    /// serial, candidate-set reduction R, estimated time saving C).
    fn credit_contributions(
        &self,
        now: QuerySerial,
        query: &LabeledGraph,
        pruned: &pruner::PruneResult,
    ) {
        if pruned.contributions.is_empty() {
            return;
        }
        let dataset = self.method.dataset();
        let mut hit_events: Vec<(QuerySerial, f64)> = Vec::new();
        {
            let mut stats = self.shared.stats.lock();
            for c in &pruned.contributions {
                if !stats.contains_row(c.serial) {
                    // Evicted by a concurrent maintenance round; see
                    // `credit_exact`.
                    continue;
                }
                stats.add_int(c.serial, columns::HITS, 1);
                stats.set(c.serial, columns::LAST_HIT, now as i64);
                if matches!(pruned.outcome, PruneOutcome::EmptyShortcut(_)) {
                    stats.add_int(c.serial, columns::SPECIAL_HITS, 1);
                }
                let mut saved = 0.0;
                if !c.removed.is_empty() {
                    saved = c
                        .removed
                        .iter()
                        .map(|&id| cost::estimate(query, dataset.graph(id)))
                        .sum();
                    stats.add_int(c.serial, columns::R_TOTAL, c.removed.len() as i64);
                    stats.add_float(c.serial, columns::C_TOTAL, saved);
                }
                hit_events.push((c.serial, saved));
            }
        }
        // Eviction-policy hit events fire after the stats lock is released
        // (the two locks are never held together).
        if !hit_events.is_empty() {
            let mut eviction = self.shared.eviction.lock();
            for (serial, saved) in hit_events {
                eviction.on_hit(serial, now, saved);
            }
        }
    }

    /// Adds the executed query to the Window; flushes when full. Returns
    /// inline maintenance time (zero in background mode).
    fn push_window(
        &self,
        query: &Arc<LabeledGraph>,
        kind: QueryKind,
        profile: gc_index::paths::PathProfile,
        fingerprint: u64,
        answer: &[GraphId],
        record: &QueryRecord,
    ) -> Duration {
        let filter_us = (record.m_filter + record.gc_filter).as_secs_f64() * 1e6;
        let verify_us = record.verify.as_secs_f64() * 1e6;
        let expensiveness =
            self.cfg
                .cost_model
                .expensiveness(filter_us, verify_us, record.verify_work);
        // Benefit signal for adaptive admission policies: how much work the
        // cache saved this query. Exact hits avoid the entire verification
        // (proxied by the answer size); otherwise it is the candidate-set
        // reduction delivered by pruning.
        let benefit = if record.exact_hit {
            record.answer_size.max(1) as f64
        } else {
            record.cs_m_size.saturating_sub(record.cs_gc_size) as f64
        };
        self.shared.admission.lock().observe(expensiveness, benefit);
        // The entry is assembled before taking the window lock so the
        // critical section is a bare Vec push — concurrent queries must
        // not convoy on copy work that needs no synchronisation.
        let entry = WindowEntry {
            serial: record.serial,
            graph: query.clone(), // Arc clone — no graph copy
            answer: answer.to_vec(),
            kind,
            profile,
            fingerprint,
            filter_us,
            verify_us,
            expensiveness,
        };
        let batch = {
            let mut window = self.shared.window.lock();
            window.push(entry);
            if window.len() < self.cfg.window {
                return Duration::ZERO;
            }
            std::mem::take(&mut *window)
        };
        // The batch is flushed outside the window lock so concurrent
        // queries keep accumulating while maintenance runs.
        let now = self.shared.current_serial();
        match &self.worker {
            Some(worker) => {
                let _ = worker.sender().send(MaintMsg::Batch(batch, now));
                Duration::ZERO
            }
            None => {
                let cfg = MaintenanceConfig {
                    capacity: self.cfg.capacity,
                    compact_debt: window::DEFAULT_COMPACT_DEBT,
                };
                window::maintain(&self.shared, &cfg, batch, now)
            }
        }
    }
}

/// Resolves a configured thread count (0 = auto-detect).
fn effective_threads(configured: usize) -> usize {
    if configured > 0 {
        configured
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Resolves the snapshot shard count: explicit when configured, otherwise
/// sized from the effective thread count (one shard per expected client
/// thread keeps reader interference and patch sizes down) and clamped so
/// tiny caches are not shredded into dozens of near-empty partitions.
fn effective_shards(cfg: &GcConfig) -> usize {
    if cfg.shards > 0 {
        cfg.shards
    } else {
        effective_threads(cfg.threads).clamp(1, 64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::GraphDataset;
    use gc_methods::MethodBuilder;

    fn path_graph(labels: &[u32]) -> LabeledGraph {
        let edges: Vec<(u32, u32)> = (0..labels.len() as u32 - 1).map(|i| (i, i + 1)).collect();
        LabeledGraph::from_parts(labels.to_vec(), &edges)
    }

    fn dataset() -> GraphDataset {
        GraphDataset::new(vec![
            path_graph(&[0, 1, 0, 1, 0]),
            path_graph(&[0, 1, 2, 1, 0]),
            LabeledGraph::from_parts(vec![0, 1, 2], &[(0, 1), (1, 2), (2, 0)]),
            path_graph(&[3, 3]),
        ])
    }

    fn cache() -> GraphCache {
        let method = MethodBuilder::ggsx().build(&dataset());
        GraphCache::builder()
            .capacity(10)
            .window(2)
            .cost_model(CostModel::Work)
            .build(method)
    }

    #[test]
    fn answers_match_baseline() {
        let d = dataset();
        let method = MethodBuilder::ggsx().build(&d);
        let gc = cache();
        let queries = [
            path_graph(&[0, 1]),
            path_graph(&[0, 1, 0]),
            path_graph(&[0, 1]), // exact repeat
            path_graph(&[1, 0, 1]),
            path_graph(&[9, 9]),
            path_graph(&[0, 1, 2]),
        ];
        for q in &queries {
            let expected = method.run(q).answer;
            let got = gc.run(q).answer;
            assert_eq!(got, expected, "query {q:?}");
        }
    }

    #[test]
    fn exact_hit_skips_verification() {
        let gc = cache();
        let q = path_graph(&[0, 1, 0]);
        let first = gc.run(&q);
        assert!(!first.record.exact_hit);
        assert!(first.record.subiso_tests > 0);
        // Window flushes after 2 queries; run one filler then repeat.
        gc.run(&path_graph(&[0, 1]));
        let repeat = gc.run(&q);
        assert!(repeat.record.exact_hit, "second run must be an exact hit");
        assert_eq!(repeat.record.subiso_tests, 0);
        assert_eq!(repeat.answer, first.answer);
    }

    #[test]
    fn empty_shortcut_fires() {
        let gc = cache();
        // Query with empty answer: path 3-3-3 (dataset has only edge 3-3).
        let empty_q = path_graph(&[3, 3, 3]);
        let r1 = gc.run(&empty_q);
        assert!(r1.answer.is_empty());
        gc.run(&path_graph(&[0, 1])); // flush window → cache the empty query
                                      // A superset query must terminate via the empty shortcut.
        let superset = path_graph(&[3, 3, 3, 3]);
        let r2 = gc.run(&superset);
        assert!(r2.answer.is_empty());
        assert!(r2.record.empty_shortcut, "second special case must fire");
        assert_eq!(r2.record.subiso_tests, 0);
    }

    #[test]
    fn sub_hit_prunes_candidates() {
        let gc = cache();
        // Cache a large query first.
        let big = path_graph(&[0, 1, 0, 1]);
        gc.run(&big);
        gc.run(&path_graph(&[2, 1])); // flush window
        assert_eq!(gc.cache_len(), 2);
        // Smaller query contained in the cached one.
        let small = path_graph(&[0, 1, 0]);
        let r = gc.run(&small);
        assert!(r.record.sub_hits > 0, "cached superset must be found");
        assert!(
            r.record.cs_gc_size < r.record.cs_m_size,
            "pruning must shrink the candidate set"
        );
    }

    #[test]
    fn cache_capacity_bounded() {
        let method = MethodBuilder::ggsx().build(&dataset());
        let gc = GraphCache::builder()
            .capacity(3)
            .window(1)
            .cost_model(CostModel::Work)
            .build(method);
        for i in 0..10u32 {
            // Distinct queries (varying labels) to avoid exact hits.
            let q = path_graph(&[i % 4, (i + 1) % 4]);
            gc.run(&q);
        }
        assert!(gc.cache_len() <= 3);
    }

    #[test]
    fn stats_credited_on_hits() {
        let gc = cache();
        let big = path_graph(&[0, 1, 0, 1]);
        let r_big = gc.run(&big);
        gc.run(&path_graph(&[2, 1]));
        let small = path_graph(&[0, 1, 0]);
        gc.run(&small);
        let hits = gc.stat(r_big.serial, columns::HITS).unwrap_or(0.0);
        assert!(hits >= 1.0, "cached query must be credited");
        assert!(gc.stat(r_big.serial, columns::R_TOTAL).unwrap_or(0.0) >= 1.0);
        assert!(gc.stat(r_big.serial, columns::C_TOTAL).unwrap_or(0.0) > 0.0);
    }

    #[test]
    fn background_mode_matches_inline_answers() {
        let d = dataset();
        let queries: Vec<LabeledGraph> = (0..20)
            .map(|i| match i % 4 {
                0 => path_graph(&[0, 1]),
                1 => path_graph(&[0, 1, 0]),
                2 => path_graph(&[1, 2]),
                _ => path_graph(&[0, 1, 2]),
            })
            .collect();
        let inline = GraphCache::builder()
            .capacity(5)
            .window(2)
            .cost_model(CostModel::Work)
            .build(MethodBuilder::ggsx().build(&d));
        let bg = GraphCache::builder()
            .capacity(5)
            .window(2)
            .cost_model(CostModel::Work)
            .background(true)
            .build(MethodBuilder::ggsx().build(&d));
        for q in &queries {
            let a = inline.run(q).answer;
            let b = bg.run(q).answer;
            assert_eq!(a, b);
        }
        bg.flush_pending();
        assert!(bg.cache_len() <= 5);
        assert!(bg.maintenance_total() >= Duration::ZERO);
    }

    #[test]
    fn supergraph_mode_answers() {
        let d = dataset();
        let method = MethodBuilder::si_vf2().build(&d);
        let baseline = MethodBuilder::si_vf2().build(&d);
        let gc = GraphCache::builder()
            .capacity(10)
            .window(2)
            .query_kind(QueryKind::Supergraph)
            .cost_model(CostModel::Work)
            .build(method);
        // Big query containing the 3-3 edge graph (graph id 3).
        let queries = [
            path_graph(&[3, 3, 3, 3]),
            path_graph(&[3, 3, 3]),
            path_graph(&[3, 3]),
            path_graph(&[0, 1, 0, 1, 0]),
            path_graph(&[3, 3, 3, 3]),
        ];
        for q in &queries {
            let expected = baseline.run_directed(q, QueryKind::Supergraph).answer;
            let got = gc.run(q).answer;
            assert_eq!(got, expected, "supergraph query {q:?}");
        }
    }

    #[test]
    fn memory_accounting() {
        let gc = cache();
        gc.run(&path_graph(&[0, 1]));
        gc.run(&path_graph(&[0, 1, 0]));
        assert!(gc.memory_bytes() > 0);
        assert_eq!(gc.window_len(), 0, "window flushed at W=2");
        assert!(gc.config().capacity == 10);
        assert_eq!(gc.method().name(), "GGSX");
    }

    #[test]
    fn memory_accounting_includes_pending_window() {
        let method = MethodBuilder::ggsx().build(&dataset());
        let gc = GraphCache::builder()
            .capacity(10)
            .window(10)
            .cost_model(CostModel::Work)
            .build(method);
        let before = gc.memory_bytes();
        gc.run(&path_graph(&[0, 1]));
        assert_eq!(gc.window_len(), 1, "query still pending in the window");
        assert_eq!(gc.cache_len(), 0, "no maintenance round yet");
        assert!(
            gc.memory_bytes() > before,
            "pending window entries must count toward the space overhead"
        );
    }

    #[test]
    fn request_overrides_kind_per_query() {
        let d = dataset();
        let baseline = MethodBuilder::si_vf2().build(&d);
        let gc = GraphCache::builder()
            .capacity(10)
            .window(2)
            .cost_model(CostModel::Work)
            .build(MethodBuilder::si_vf2().build(&d));
        // Cache-wide default is Subgraph; this request flips direction.
        let q = path_graph(&[3, 3, 3]);
        let resp = gc.execute(
            QueryRequest::new(q.clone())
                .kind(QueryKind::Supergraph)
                .tag(9),
        );
        assert_eq!(resp.tag, 9);
        assert!(!resp.bypassed_cache);
        assert_eq!(
            resp.result.answer,
            baseline.run_directed(&q, QueryKind::Supergraph).answer
        );
        // The default direction still applies to plain runs.
        assert_eq!(gc.run(&q).answer, baseline.run(&q).answer);
    }

    #[test]
    fn bypass_cache_skips_window_and_stats() {
        let gc = cache();
        let q = path_graph(&[0, 1]);
        let resp = gc.execute(QueryRequest::new(q.clone()).bypass_cache(true));
        assert!(resp.bypassed_cache);
        assert_eq!(gc.window_len(), 0, "bypassed query never enters the window");
        assert_eq!(gc.cache_len(), 0);
        // Answers still correct, and a serial was consumed.
        let baseline = MethodBuilder::ggsx().build(&dataset());
        assert_eq!(resp.result.answer, baseline.run(&q).answer);
        assert!(resp.result.serial >= 1);
        let cached = gc.run(&q);
        assert!(cached.serial > resp.result.serial);
    }

    #[test]
    fn run_batch_matches_sequential_answers() {
        let d = dataset();
        let baseline = MethodBuilder::ggsx().build(&d);
        let gc = GraphCache::builder()
            .capacity(10)
            .window(2)
            .threads(4)
            .cost_model(CostModel::Work)
            .build(MethodBuilder::ggsx().build(&d));
        let queries: Vec<LabeledGraph> = (0..24)
            .map(|i| match i % 4 {
                0 => path_graph(&[0, 1]),
                1 => path_graph(&[0, 1, 0]),
                2 => path_graph(&[1, 2]),
                _ => path_graph(&[0, 1, 2]),
            })
            .collect();
        let requests: Vec<QueryRequest> = queries
            .iter()
            .enumerate()
            .map(|(i, q)| QueryRequest::from(q).tag(i as u64))
            .collect();
        let responses = gc.run_batch(requests);
        assert_eq!(responses.len(), queries.len());
        for (i, (resp, q)) in responses.iter().zip(&queries).enumerate() {
            assert_eq!(resp.tag, i as u64, "input order preserved");
            assert_eq!(resp.result.answer, baseline.run(q).answer, "query {i}");
        }
        // All serials distinct.
        let mut serials: Vec<u64> = responses.iter().map(|r| r.result.serial).collect();
        serials.sort_unstable();
        serials.dedup();
        assert_eq!(serials.len(), queries.len());
    }

    #[test]
    fn cloned_handles_share_the_cache() {
        let gc = cache();
        let clone = gc.clone();
        clone.run(&path_graph(&[0, 1]));
        clone.run(&path_graph(&[0, 1, 0])); // flush at W=2
        assert_eq!(gc.cache_len(), 2, "clone's queries visible via original");
        let r = gc.run(&path_graph(&[0, 1]));
        assert!(r.record.exact_hit, "original sees clone's cached query");
    }

    #[test]
    fn fragment_layer_prunes_and_stays_sound() {
        let d = dataset();
        let baseline = MethodBuilder::si_vf2().build(&d);
        // vf2 has no filter index, so CS_M is the whole dataset — exactly
        // the regime where fragment occurrence sets have room to prune.
        let gc = GraphCache::builder()
            .capacity(10)
            .window(1)
            .fragments(true)
            .cost_model(CostModel::Work)
            .build(MethodBuilder::si_vf2().build(&d));
        // q1 populates the fragment store on its maintenance round.
        let q1 = path_graph(&[0, 1, 0, 1]);
        let r1 = gc.run(&q1);
        assert_eq!(r1.answer, baseline.run(&q1).answer);
        assert!(gc.fragment_store_len() > 0, "q1's fragments cached");
        assert_eq!(gc.fragment_eviction_name().as_deref(), Some("lru"));
        // q2 shares the [1,0,1] fragment with q1 but is neither a sub- nor
        // a supergraph of it, so only the fragment layer can prune.
        let q2 = path_graph(&[1, 0, 1, 2]);
        let r2 = gc.run(&q2);
        assert_eq!(r2.answer, baseline.run(&q2).answer);
        assert!(r2.record.fragment_probes > 0, "fragments probed");
        assert!(r2.record.fragment_hits > 0, "shared fragment found");
        assert!(
            r2.record.fragment_pruned > 0,
            "occurrence intersection must shrink the candidate set"
        );
        assert!(r2.record.cs_gc_size < r2.record.cs_m_size);
        let maint = gc.maint_stats();
        assert!(maint.fragments_built > 0);
        assert!(gc.memory_bytes() > 0);
    }

    #[test]
    fn fragment_layer_off_reports_no_fragment_counters() {
        let gc = cache();
        let r = gc.run(&path_graph(&[0, 1, 0]));
        assert_eq!(r.record.fragment_probes, 0);
        assert_eq!(r.record.fragment_hits, 0);
        assert_eq!(r.record.fragment_pruned, 0);
        assert_eq!(gc.fragment_store_len(), 0);
        assert_eq!(gc.fragment_eviction_name(), None);
    }

    #[test]
    fn parallel_dispatch_pool_answers_match() {
        let d = dataset();
        let baseline = MethodBuilder::ggsx().build(&d);
        let gc = GraphCache::builder()
            .capacity(10)
            .window(2)
            .parallel_dispatch(true)
            .threads(2)
            .cost_model(CostModel::Work)
            .build(MethodBuilder::ggsx().build(&d));
        let queries = [
            path_graph(&[0, 1]),
            path_graph(&[0, 1, 0]),
            path_graph(&[0, 1]), // exact hit: pending filter result dropped
            path_graph(&[1, 2]),
            path_graph(&[0, 1]),
        ];
        for q in &queries {
            assert_eq!(gc.run(q).answer, baseline.run(q).answer);
        }
    }
}
