//! The GraphCache system: query execution front end (paper §4, Fig. 2).

use crate::admission::{AdmissionConfig, AdmissionControl, CostModel};
use crate::metrics::QueryRecord;
use crate::policy::PolicyKind;
use crate::processors;
use crate::pruner::{self, HitAnswer, PruneOutcome};
use crate::query_index::QueryIndexConfig;
use crate::stats::{columns, QuerySerial, StatsStore};
use crate::window::{self, MaintMsg, MaintenanceConfig, Shared, WindowEntry};
use gc_graph::{idset, GraphId, LabeledGraph};
use gc_methods::{Method, QueryKind};
use gc_subiso::{cost, MatchConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tunable parameters of a [`GraphCache`] instance. Defaults mirror the
/// paper's evaluation setup (§7.1): C = 100, W = 20, HD replacement,
/// admission control off.
#[derive(Debug, Clone, Copy)]
pub struct GcConfig {
    /// Cache capacity C in entries (paper default: 100).
    pub capacity: usize,
    /// Window size W in queries (paper default: 20).
    pub window: usize,
    /// Replacement policy (paper recommendation: HD).
    pub policy: PolicyKind,
    /// Admission control configuration (paper default: disabled).
    pub admission: AdmissionConfig,
    /// Subgraph or supergraph query semantics.
    pub query_kind: QueryKind,
    /// How expensiveness is computed (wall time vs deterministic work).
    pub cost_model: CostModel,
    /// Query index configuration.
    pub index: QueryIndexConfig,
    /// Search limits for cache-hit verification tests.
    pub hit_match: MatchConfig,
    /// Run the Window Manager on a background thread (the paper's design);
    /// `false` runs maintenance inline for deterministic tests.
    pub background: bool,
    /// Dispatch Method M's filter and GC's processors concurrently, as in
    /// the paper's Fig. 2 (step 2 sends the query to both in parallel).
    /// Answers are identical either way; only latency changes.
    pub parallel_dispatch: bool,
}

impl Default for GcConfig {
    fn default() -> Self {
        GcConfig {
            capacity: 100,
            window: 20,
            policy: PolicyKind::Hd,
            admission: AdmissionConfig::default(),
            query_kind: QueryKind::Subgraph,
            cost_model: CostModel::WallTime,
            index: QueryIndexConfig::default(),
            hit_match: MatchConfig::UNBOUNDED,
            background: false,
            parallel_dispatch: false,
        }
    }
}

/// Builder for [`GraphCache`].
#[derive(Debug, Clone, Default)]
pub struct GraphCacheBuilder {
    cfg: GcConfig,
}

impl GraphCacheBuilder {
    /// Cache capacity C (entries).
    pub fn capacity(mut self, c: usize) -> Self {
        self.cfg.capacity = c.max(1);
        self
    }

    /// Window size W (queries per maintenance round).
    pub fn window(mut self, w: usize) -> Self {
        self.cfg.window = w.max(1);
        self
    }

    /// Replacement policy.
    pub fn policy(mut self, p: PolicyKind) -> Self {
        self.cfg.policy = p;
        self
    }

    /// Admission control configuration.
    pub fn admission(mut self, a: AdmissionConfig) -> Self {
        self.cfg.admission = a;
        self
    }

    /// Query semantics (subgraph vs supergraph).
    pub fn query_kind(mut self, k: QueryKind) -> Self {
        self.cfg.query_kind = k;
        self
    }

    /// Expensiveness cost model.
    pub fn cost_model(mut self, m: CostModel) -> Self {
        self.cfg.cost_model = m;
        self
    }

    /// Query-index configuration.
    pub fn index(mut self, cfg: QueryIndexConfig) -> Self {
        self.cfg.index = cfg;
        self
    }

    /// Budget for cache-hit verification tests.
    pub fn hit_match(mut self, cfg: MatchConfig) -> Self {
        self.cfg.hit_match = cfg;
        self
    }

    /// Background (true) vs inline (false) window maintenance.
    pub fn background(mut self, bg: bool) -> Self {
        self.cfg.background = bg;
        self
    }

    /// Concurrent (true) vs sequential (false) dispatch of Method M's
    /// filter and GC's processors.
    pub fn parallel_dispatch(mut self, on: bool) -> Self {
        self.cfg.parallel_dispatch = on;
        self
    }

    /// Builds the cache in front of `method`.
    pub fn build(self, method: Method) -> GraphCache {
        GraphCache::with_config(method, self.cfg)
    }
}

/// Outcome of one query through GraphCache.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The query's serial number.
    pub serial: QuerySerial,
    /// The answer set (sorted dataset graph ids).
    pub answer: Vec<GraphId>,
    /// Everything measured about the execution.
    pub record: QueryRecord,
}

/// The GraphCache system: a semantic cache wrapped around a Method M.
///
/// See the crate docs for an end-to-end example. `run` executes queries
/// one at a time (the paper sets every thread pool to 1 "so as to show just
/// the benefits of using a graph query cache"); the Window Manager may run
/// on a background thread.
pub struct GraphCache {
    method: Arc<Method>,
    cfg: GcConfig,
    shared: Arc<Shared>,
    window: Vec<WindowEntry>,
    serial: QuerySerial,
    worker: Option<(
        crossbeam::channel::Sender<MaintMsg>,
        std::thread::JoinHandle<()>,
    )>,
    filter_worker: Option<FilterWorker>,
}

/// Persistent thread running Method M's filter concurrently with the GC
/// processors (Fig. 2, step 2). Requests and responses are strictly 1:1.
struct FilterWorker {
    tx: crossbeam::channel::Sender<(LabeledGraph, QueryKind)>,
    rx: crossbeam::channel::Receiver<gc_methods::FilterOutput>,
    handle: Option<std::thread::JoinHandle<()>>,
    /// A response is still in flight (its query was resolved by an exact
    /// hit and never needed CS_M); drained before the next request.
    stale: std::cell::Cell<bool>,
}

impl FilterWorker {
    fn spawn(method: Arc<Method>) -> Self {
        let (tx, req_rx) = crossbeam::channel::unbounded::<(LabeledGraph, QueryKind)>();
        let (res_tx, rx) = crossbeam::channel::unbounded();
        let handle = std::thread::Builder::new()
            .name("gc-mfilter".into())
            .spawn(move || {
                while let Ok((query, kind)) = req_rx.recv() {
                    if res_tx.send(method.filter_directed(&query, kind)).is_err() {
                        break;
                    }
                }
            })
            .expect("spawn filter worker");
        FilterWorker {
            tx,
            rx,
            handle: Some(handle),
            stale: std::cell::Cell::new(false),
        }
    }

    /// Sends a filter request, discarding a stale response first.
    fn request(&self, query: &LabeledGraph, kind: QueryKind) {
        if self.stale.replace(false) {
            let _ = self.rx.recv();
        }
        self.tx
            .send((query.clone(), kind))
            .expect("filter worker alive");
    }

    /// Receives the response for the last request.
    fn receive(&self) -> gc_methods::FilterOutput {
        self.rx.recv().expect("filter worker alive")
    }

    /// Marks the last request's response as not needed (exact hit).
    fn park(&self) {
        self.stale.set(true);
    }
}

impl Drop for FilterWorker {
    fn drop(&mut self) {
        // Close the request channel, then join.
        let (closed_tx, _) = crossbeam::channel::bounded(0);
        let _ = std::mem::replace(&mut self.tx, closed_tx);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl GraphCache {
    /// Starts building a cache with the paper's default configuration.
    pub fn builder() -> GraphCacheBuilder {
        GraphCacheBuilder::default()
    }

    /// Creates a cache with an explicit configuration.
    pub fn with_config(method: Method, cfg: GcConfig) -> Self {
        let method = Arc::new(method);
        let shared = Arc::new(Shared::new(
            cfg.index,
            AdmissionControl::new(cfg.admission),
        ));
        let worker = cfg.background.then(|| {
            window::spawn_manager(
                shared.clone(),
                MaintenanceConfig {
                    capacity: cfg.capacity,
                    policy: cfg.policy,
                    index_cfg: cfg.index,
                },
            )
        });
        let filter_worker = cfg
            .parallel_dispatch
            .then(|| FilterWorker::spawn(method.clone()));
        GraphCache {
            method,
            cfg,
            shared,
            window: Vec::new(),
            serial: 0,
            worker,
            filter_worker,
        }
    }

    /// The wrapped Method M.
    pub fn method(&self) -> &Method {
        &self.method
    }

    /// The effective configuration.
    pub fn config(&self) -> &GcConfig {
        &self.cfg
    }

    /// Number of queries currently cached.
    pub fn cache_len(&self) -> usize {
        self.shared.load_snapshot().len()
    }

    /// Number of queries waiting in the Window.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Total cache maintenance time so far (Fig. 10's overhead metric).
    pub fn maintenance_total(&self) -> Duration {
        Duration::from_micros(
            self.shared
                .maintenance_us
                .load(std::sync::atomic::Ordering::Relaxed),
        )
    }

    /// Approximate memory footprint of the cache stores (entries + query
    /// index + statistics), for the §7.3 space-overhead comparison.
    pub fn memory_bytes(&self) -> usize {
        self.shared.load_snapshot().memory_bytes() + self.shared.stats.lock().memory_bytes()
    }

    /// Reads a statistics cell of a cached query (testing/diagnostics).
    pub fn stat(&self, serial: QuerySerial, column: &str) -> Option<f64> {
        self.shared.stats.lock().get(serial, column).map(|v| v.as_f64())
    }

    /// Runs all statistics rows through a visitor (diagnostics).
    pub fn with_stats<R>(&self, f: impl FnOnce(&StatsStore) -> R) -> R {
        f(&self.shared.stats.lock())
    }

    /// Persists the cache contents and statistics to a directory (paper
    /// §6.1: stores are "written back to disk on shutdown of the Cache
    /// Manager subsystem"). Pending background maintenance is flushed
    /// first; the Window's not-yet-admitted queries are not persisted
    /// (they never reached the cache stores).
    pub fn save(&self, dir: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        self.flush_pending();
        let snapshot = self.shared.load_snapshot();
        let persisted = crate::persist::PersistedCache {
            entries: snapshot
                .entries
                .iter()
                .map(|e| (e.serial, e.graph.clone(), e.answer.clone()))
                .collect(),
            stats: self.shared.stats.lock().clone(),
            next_serial: self.serial + 1,
        };
        persisted.save(dir)
    }

    /// Restores a previously saved cache state into this instance (paper
    /// §6.1: stores are "loaded from disk on startup"); the query index is
    /// rebuilt from the loaded entries.
    pub fn restore(&mut self, dir: impl AsRef<std::path::Path>) -> Result<(), gc_graph::GraphError> {
        let loaded = crate::persist::PersistedCache::load(dir)?;
        let (snapshot, stats, next_serial) = loaded.into_snapshot(self.cfg.index);
        *self.shared.snapshot.write() = Arc::new(snapshot);
        *self.shared.stats.lock() = stats;
        self.serial = self.serial.max(next_serial.saturating_sub(1));
        Ok(())
    }

    /// Blocks until all queued background maintenance has been applied.
    /// No-op in inline mode.
    pub fn flush_pending(&self) {
        if let Some((tx, _)) = &self.worker {
            let (rtx, rrx) = crossbeam::channel::bounded(0);
            if tx.send(MaintMsg::Sync(rtx)).is_ok() {
                let _ = rrx.recv();
            }
        }
    }

    /// Executes one query through the cache (Fig. 2's data flow) and
    /// returns the answer with full metrics.
    pub fn run(&mut self, query: &LabeledGraph) -> QueryResult {
        self.serial += 1;
        let serial = self.serial;
        let kind = self.cfg.query_kind;

        // (2)-(3): Method M filtering and GC processors, dispatched in
        // parallel when configured (Fig. 2 step 2). In sequential mode the
        // GC processors run FIRST so an exact hit can skip Mfilter
        // entirely — the paper's first special case "completely avoid[s]
        // any further processing".
        let t_phase = Instant::now();
        if let Some(w) = &self.filter_worker {
            w.request(query, kind);
        }

        let t_gc = Instant::now();
        let snapshot = self.shared.load_snapshot();
        // The query's feature profile is computed once here and reused for
        // candidate probing now and for index (re)building if the query is
        // later admitted to the cache.
        let profile = snapshot.index.profile_of(query);
        let hits = processors::find_hits_with_profile(
            &snapshot,
            query,
            &profile,
            self.method.matcher().as_ref(),
            &self.cfg.hit_match,
        );
        let gc_filter = t_gc.elapsed();

        let mut record = QueryRecord {
            serial,
            gc_filter,
            sub_hits: hits.sub.len(),
            super_hits: hits.super_.len(),
            ..Default::default()
        };

        // First special case: an isomorphic cached query answers instantly,
        // without waiting for (or even running) Method M's filter.
        if let Some(source) = hits.exact {
            if let Some(w) = &self.filter_worker {
                w.park();
            }
            let answer = snapshot
                .entry(source)
                .map(|e| e.answer.clone())
                .unwrap_or_default();
            record.exact_hit = true;
            record.cs_gc_size = 0;
            record.answer_size = answer.len();
            self.credit_exact(source, serial, query, &answer);
            let maintenance = self.push_window(query, profile, &answer, &record);
            record.maintenance = maintenance;
            return QueryResult {
                serial,
                answer,
                record,
            };
        }

        let (m_out, m_charge) = match &self.filter_worker {
            None => {
                let out = self.method.filter_directed(query, kind);
                let d = out.duration;
                (out, d)
            }
            Some(w) => {
                let out = w.receive();
                // With parallel dispatch the filtering phase's wall time is
                // the slower of the two legs; charge M only the latency it
                // added beyond the GC processors.
                (out, t_phase.elapsed().saturating_sub(gc_filter))
            }
        };
        record.m_filter = m_charge;
        record.cs_m_size = m_out.candidates.len();

        // (4): candidate set pruning via equations (1) and (2).
        let (expanding, restricting) = match kind {
            QueryKind::Subgraph => (&hits.sub, &hits.super_),
            QueryKind::Supergraph => (&hits.super_, &hits.sub),
        };
        let expanding_answers: Vec<HitAnswer<'_>> = expanding
            .iter()
            .filter_map(|s| {
                snapshot.entry(*s).map(|e| HitAnswer {
                    serial: *s,
                    answer: &e.answer,
                })
            })
            .collect();
        let restricting_answers: Vec<HitAnswer<'_>> = restricting
            .iter()
            .filter_map(|s| {
                snapshot.entry(*s).map(|e| HitAnswer {
                    serial: *s,
                    answer: &e.answer,
                })
            })
            .collect();
        let pruned = pruner::prune(&m_out.candidates, &expanding_answers, &restricting_answers);
        record.cs_gc_size = pruned.remaining.len();

        // (5): verification of the reduced candidate set by Mverifier.
        let (answer, verify_duration) = match pruned.outcome {
            PruneOutcome::EmptyShortcut(_) => {
                record.empty_shortcut = true;
                (Vec::new(), Duration::ZERO)
            }
            PruneOutcome::Pruned => {
                let v = self.method.verify_directed(query, &pruned.remaining, kind);
                record.subiso_tests = v.stats.tests;
                record.verify_work = v.stats.nodes_expanded;
                let answer = idset::union(&pruned.direct_answer, &v.answer);
                (answer, v.duration)
            }
        };
        record.verify = verify_duration;
        record.answer_size = answer.len();

        // Statistics Manager updates (hit credit per contribution).
        self.credit_contributions(serial, query, &pruned);

        // (6)-(7): window admission and batched cache maintenance.
        let maintenance = self.push_window(query, profile, &answer, &record);
        record.maintenance = maintenance;

        QueryResult {
            serial,
            answer,
            record,
        }
    }

    /// Credits an exact hit. The entire candidate set is avoided, but it is
    /// never computed on this path (that is the point of the special case),
    /// so the contribution is estimated from the cached answer set — the
    /// sub-iso tests that would certainly have run.
    fn credit_exact(
        &self,
        source: QuerySerial,
        now: QuerySerial,
        query: &LabeledGraph,
        answer: &[GraphId],
    ) {
        let saved_cost: f64 = answer
            .iter()
            .map(|&id| cost::estimate(query, self.method.dataset().graph(id)))
            .sum();
        let mut stats = self.shared.stats.lock();
        stats.add_int(source, columns::HITS, 1);
        stats.add_int(source, columns::SPECIAL_HITS, 1);
        stats.set(source, columns::LAST_HIT, now as i64);
        stats.add_int(source, columns::R_TOTAL, answer.len().max(1) as i64);
        stats.add_float(source, columns::C_TOTAL, saved_cost.max(1.0));
    }

    /// Credits every pruning contribution (paper §5.2: hit count, last-hit
    /// serial, candidate-set reduction R, estimated time saving C).
    fn credit_contributions(
        &self,
        now: QuerySerial,
        query: &LabeledGraph,
        pruned: &pruner::PruneResult,
    ) {
        if pruned.contributions.is_empty() {
            return;
        }
        let dataset = self.method.dataset();
        let mut stats = self.shared.stats.lock();
        for c in &pruned.contributions {
            stats.add_int(c.serial, columns::HITS, 1);
            stats.set(c.serial, columns::LAST_HIT, now as i64);
            if matches!(pruned.outcome, PruneOutcome::EmptyShortcut(_)) {
                stats.add_int(c.serial, columns::SPECIAL_HITS, 1);
            }
            if !c.removed.is_empty() {
                let saved: f64 = c
                    .removed
                    .iter()
                    .map(|&id| cost::estimate(query, dataset.graph(id)))
                    .sum();
                stats.add_int(c.serial, columns::R_TOTAL, c.removed.len() as i64);
                stats.add_float(c.serial, columns::C_TOTAL, saved);
            }
        }
    }

    /// Adds the executed query to the Window; flushes when full. Returns
    /// inline maintenance time (zero in background mode).
    fn push_window(
        &mut self,
        query: &LabeledGraph,
        profile: gc_index::paths::PathProfile,
        answer: &[GraphId],
        record: &QueryRecord,
    ) -> Duration {
        let filter_us = (record.m_filter + record.gc_filter).as_secs_f64() * 1e6;
        let verify_us = record.verify.as_secs_f64() * 1e6;
        let expensiveness =
            self.cfg
                .cost_model
                .expensiveness(filter_us, verify_us, record.verify_work);
        self.shared.admission.lock().observe(expensiveness);
        self.window.push(WindowEntry {
            serial: record.serial,
            graph: query.clone(),
            answer: answer.to_vec(),
            profile,
            filter_us,
            verify_us,
            expensiveness,
        });
        if self.window.len() < self.cfg.window {
            return Duration::ZERO;
        }
        let batch = std::mem::take(&mut self.window);
        let now = self.serial;
        match &self.worker {
            Some((tx, _)) => {
                let _ = tx.send(MaintMsg::Batch(batch, now));
                Duration::ZERO
            }
            None => {
                let cfg = MaintenanceConfig {
                    capacity: self.cfg.capacity,
                    policy: self.cfg.policy,
                    index_cfg: self.cfg.index,
                };
                window::maintain(&self.shared, &cfg, batch, now)
            }
        }
    }
}

impl Drop for GraphCache {
    fn drop(&mut self) {
        if let Some((tx, handle)) = self.worker.take() {
            drop(tx);
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::GraphDataset;
    use gc_methods::MethodBuilder;

    fn path_graph(labels: &[u32]) -> LabeledGraph {
        let edges: Vec<(u32, u32)> = (0..labels.len() as u32 - 1).map(|i| (i, i + 1)).collect();
        LabeledGraph::from_parts(labels.to_vec(), &edges)
    }

    fn dataset() -> GraphDataset {
        GraphDataset::new(vec![
            path_graph(&[0, 1, 0, 1, 0]),
            path_graph(&[0, 1, 2, 1, 0]),
            LabeledGraph::from_parts(vec![0, 1, 2], &[(0, 1), (1, 2), (2, 0)]),
            path_graph(&[3, 3]),
        ])
    }

    fn cache() -> GraphCache {
        let method = MethodBuilder::ggsx().build(&dataset());
        GraphCache::builder()
            .capacity(10)
            .window(2)
            .cost_model(CostModel::Work)
            .build(method)
    }

    #[test]
    fn answers_match_baseline() {
        let d = dataset();
        let method = MethodBuilder::ggsx().build(&d);
        let mut gc = cache();
        let queries = [
            path_graph(&[0, 1]),
            path_graph(&[0, 1, 0]),
            path_graph(&[0, 1]), // exact repeat
            path_graph(&[1, 0, 1]),
            path_graph(&[9, 9]),
            path_graph(&[0, 1, 2]),
        ];
        for q in &queries {
            let expected = method.run(q).answer;
            let got = gc.run(q).answer;
            assert_eq!(got, expected, "query {q:?}");
        }
    }

    #[test]
    fn exact_hit_skips_verification() {
        let mut gc = cache();
        let q = path_graph(&[0, 1, 0]);
        let first = gc.run(&q);
        assert!(!first.record.exact_hit);
        assert!(first.record.subiso_tests > 0);
        // Window flushes after 2 queries; run one filler then repeat.
        gc.run(&path_graph(&[0, 1]));
        let repeat = gc.run(&q);
        assert!(repeat.record.exact_hit, "second run must be an exact hit");
        assert_eq!(repeat.record.subiso_tests, 0);
        assert_eq!(repeat.answer, first.answer);
    }

    #[test]
    fn empty_shortcut_fires() {
        let mut gc = cache();
        // Query with empty answer: path 3-3-3 (dataset has only edge 3-3).
        let empty_q = path_graph(&[3, 3, 3]);
        let r1 = gc.run(&empty_q);
        assert!(r1.answer.is_empty());
        gc.run(&path_graph(&[0, 1])); // flush window → cache the empty query
        // A superset query must terminate via the empty shortcut.
        let superset = path_graph(&[3, 3, 3, 3]);
        let r2 = gc.run(&superset);
        assert!(r2.answer.is_empty());
        assert!(r2.record.empty_shortcut, "second special case must fire");
        assert_eq!(r2.record.subiso_tests, 0);
    }

    #[test]
    fn sub_hit_prunes_candidates() {
        let mut gc = cache();
        // Cache a large query first.
        let big = path_graph(&[0, 1, 0, 1]);
        gc.run(&big);
        gc.run(&path_graph(&[2, 1])); // flush window
        assert_eq!(gc.cache_len(), 2);
        // Smaller query contained in the cached one.
        let small = path_graph(&[0, 1, 0]);
        let r = gc.run(&small);
        assert!(r.record.sub_hits > 0, "cached superset must be found");
        assert!(
            r.record.cs_gc_size < r.record.cs_m_size,
            "pruning must shrink the candidate set"
        );
    }

    #[test]
    fn cache_capacity_bounded() {
        let method = MethodBuilder::ggsx().build(&dataset());
        let mut gc = GraphCache::builder()
            .capacity(3)
            .window(1)
            .cost_model(CostModel::Work)
            .build(method);
        for i in 0..10u32 {
            // Distinct queries (varying labels) to avoid exact hits.
            let q = path_graph(&[i % 4, (i + 1) % 4]);
            gc.run(&q);
        }
        assert!(gc.cache_len() <= 3);
    }

    #[test]
    fn stats_credited_on_hits() {
        let mut gc = cache();
        let big = path_graph(&[0, 1, 0, 1]);
        let r_big = gc.run(&big);
        gc.run(&path_graph(&[2, 1]));
        let small = path_graph(&[0, 1, 0]);
        gc.run(&small);
        let hits = gc.stat(r_big.serial, columns::HITS).unwrap_or(0.0);
        assert!(hits >= 1.0, "cached query must be credited");
        assert!(gc.stat(r_big.serial, columns::R_TOTAL).unwrap_or(0.0) >= 1.0);
        assert!(gc.stat(r_big.serial, columns::C_TOTAL).unwrap_or(0.0) > 0.0);
    }

    #[test]
    fn background_mode_matches_inline_answers() {
        let d = dataset();
        let queries: Vec<LabeledGraph> = (0..20)
            .map(|i| match i % 4 {
                0 => path_graph(&[0, 1]),
                1 => path_graph(&[0, 1, 0]),
                2 => path_graph(&[1, 2]),
                _ => path_graph(&[0, 1, 2]),
            })
            .collect();
        let mut inline = GraphCache::builder()
            .capacity(5)
            .window(2)
            .cost_model(CostModel::Work)
            .build(MethodBuilder::ggsx().build(&d));
        let mut bg = GraphCache::builder()
            .capacity(5)
            .window(2)
            .cost_model(CostModel::Work)
            .background(true)
            .build(MethodBuilder::ggsx().build(&d));
        for q in &queries {
            let a = inline.run(q).answer;
            let b = bg.run(q).answer;
            assert_eq!(a, b);
        }
        bg.flush_pending();
        assert!(bg.cache_len() <= 5);
        assert!(bg.maintenance_total() >= Duration::ZERO);
    }

    #[test]
    fn supergraph_mode_answers() {
        let d = dataset();
        let method = MethodBuilder::si_vf2().build(&d);
        let baseline = MethodBuilder::si_vf2().build(&d);
        let mut gc = GraphCache::builder()
            .capacity(10)
            .window(2)
            .query_kind(QueryKind::Supergraph)
            .cost_model(CostModel::Work)
            .build(method);
        // Big query containing the 3-3 edge graph (graph id 3).
        let queries = [
            path_graph(&[3, 3, 3, 3]),
            path_graph(&[3, 3, 3]),
            path_graph(&[3, 3]),
            path_graph(&[0, 1, 0, 1, 0]),
            path_graph(&[3, 3, 3, 3]),
        ];
        for q in &queries {
            let expected = baseline.run_directed(q, QueryKind::Supergraph).answer;
            let got = gc.run(q).answer;
            assert_eq!(got, expected, "supergraph query {q:?}");
        }
    }

    #[test]
    fn memory_accounting() {
        let mut gc = cache();
        gc.run(&path_graph(&[0, 1]));
        gc.run(&path_graph(&[0, 1, 0]));
        assert!(gc.memory_bytes() > 0);
        assert_eq!(gc.window_len(), 0, "window flushed at W=2");
        assert!(gc.config().capacity == 10);
        assert_eq!(gc.method().name(), "GGSX");
    }
}
