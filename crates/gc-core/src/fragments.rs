//! GraphCache-side integration of the sub-query fragment cache
//! ([`gc_fragments`]): the shared fragment state threaded through
//! [`Shared`](crate::window), the query-path probe, and the maintenance
//! upkeep phase (population + byte-budget eviction).
//!
//! The split of responsibilities: `gc-fragments` owns decomposition, keying
//! and the bounded occurrence store; this module owns everything that needs
//! the rest of the cache — the Method M handle that builds *exact*
//! occurrence sets, the registry-built eviction policy that ranks fragment
//! rows, and the deterministic counters.

use crate::policy::{EvictionPolicy, PolicyRow, PolicyView};
use crate::stats::QuerySerial;
use gc_fragments::{decompose, FragmentConfig, FragmentStore, ProbeResult};
use gc_graph::{idset, GraphId, LabeledGraph};
use gc_methods::{Method, QueryKind};
use parking_lot::Mutex;
use std::sync::Arc;

/// Fragment-layer state shared between the query path (probe + credit) and
/// the maintenance path (population + budget eviction). Lock order is
/// `store` before `eviction`, everywhere.
pub(crate) struct FragmentState {
    /// Decomposition and budget knobs.
    pub cfg: FragmentConfig,
    /// Method M — fragment population runs each new fragment as its own
    /// sub-query through the method's filter + verifier, which is what
    /// makes occurrence sets exact (the soundness requirement).
    pub method: Arc<Method>,
    /// The bounded fragment store.
    pub store: Mutex<FragmentStore>,
    /// Registry-built eviction policy ranking fragment rows (`lru`,
    /// `slru`, `greedy-dual`, … apply to fragments exactly as to entries).
    pub eviction: Mutex<Box<dyn EvictionPolicy>>,
}

impl FragmentState {
    pub(crate) fn new(
        cfg: FragmentConfig,
        method: Arc<Method>,
        eviction: Box<dyn EvictionPolicy>,
    ) -> Self {
        FragmentState {
            cfg,
            method,
            store: Mutex::new(FragmentStore::new()),
            eviction: Mutex::new(eviction),
        }
    }

    /// Resident bytes of the fragment store (the fragment share of
    /// [`GraphCache::memory_bytes`](crate::GraphCache::memory_bytes)).
    pub(crate) fn memory_bytes(&self) -> usize {
        self.store.lock().memory_bytes()
    }

    /// Decomposes a query into its fragment keys for probing. `None` when
    /// path enumeration overflowed the work cap — the caller must then skip
    /// fragment pruning entirely (a truncated fragment set is never treated
    /// as complete).
    pub(crate) fn query_keys(&self, query: &LabeledGraph) -> Option<Vec<u64>> {
        decompose(query, &self.cfg).map(|frags| frags.into_iter().map(|f| f.key).collect())
    }

    /// Probes the store with a query's fragment keys (read-only).
    pub(crate) fn probe(&self, keys: &[u64]) -> ProbeResult {
        self.store.lock().probe(keys)
    }

    /// Credits a pruning outcome to the fragments that joined the
    /// intersection, in both the store rows and the eviction policy.
    pub(crate) fn credit(&self, hit_ids: &[u64], removed: u64, saved: f64, now: QuerySerial) {
        let mut store = self.store.lock();
        store.credit(hit_ids, removed, saved, now);
        let mut eviction = self.eviction.lock();
        for &id in hit_ids {
            eviction.on_hit(id, now, saved);
        }
    }

    /// Resets the fragment layer to a given snapshot of persisted
    /// fragments (restore path). Policy-private state is discarded, like
    /// the entry-store policies on restore.
    pub(crate) fn install(&self, fragments: Vec<crate::persist::PersistedFragment>) {
        let mut store = self.store.lock();
        store.clear();
        let mut eviction = self.eviction.lock();
        eviction.reset();
        for f in fragments {
            if let Some(id) = store.restore(
                f.key, f.graph, f.occs, f.hits, f.last_hit, f.r_total, f.c_total,
            ) {
                eviction.on_admit(id, f.c_total);
            }
        }
    }
}

/// A population source captured from the maintenance batch: one answered
/// subgraph query's graph and verified answer set.
pub(crate) type FragmentSource = (Arc<LabeledGraph>, Vec<GraphId>);

/// One round of fragment-store upkeep: opportunistic population from this
/// round's answered queries, then eviction down to the byte budget.
/// Returns `(fragments_built, fragments_evicted)`.
pub(crate) fn upkeep(
    state: &FragmentState,
    sources: &[FragmentSource],
    now: QuerySerial,
) -> (u64, u64) {
    let mut built = 0u64;
    'sources: for (graph, answer) in sources {
        if built >= state.cfg.max_build_per_round as u64 {
            break;
        }
        // An overflowing source is simply skipped — partial fragment sets
        // are fine on the *population* side (fewer fragments cached), the
        // completeness requirement only binds on the probe side.
        let Some(frags) = decompose(graph, &state.cfg) else {
            continue;
        };
        for frag in frags {
            if built >= state.cfg.max_build_per_round as u64 {
                break 'sources;
            }
            if state.store.lock().contains(frag.key) {
                continue;
            }
            // Exact occurrence set, built off the store lock: run the
            // fragment as its own sub-query through Method M. The
            // originating query's verified answers are known positives
            // (frag ⊆ g ⊆ G), so only the remaining filter candidates need
            // verification.
            let filter = state
                .method
                .filter_directed(&frag.graph, QueryKind::Subgraph);
            let unknown = idset::difference(&filter.candidates, answer);
            let verify = state
                .method
                .verify_directed(&frag.graph, &unknown, QueryKind::Subgraph);
            let occs = idset::union(answer, &verify.answer);
            let cost = occs.len() as f64;
            let mut store = state.store.lock();
            if let Some(id) = store.insert(frag.key, frag.graph, occs, now) {
                state.eviction.lock().on_admit(id, cost);
                built += 1;
            }
        }
    }
    (built, enforce_budget(state, now))
}

/// Evicts fragments until the store fits its byte budget. Victim counts
/// are estimated from the average fragment size; the loop re-checks after
/// every round so an under-estimate just costs another policy call.
fn enforce_budget(state: &FragmentState, now: QuerySerial) -> u64 {
    let mut evicted = 0u64;
    loop {
        let mut store = state.store.lock();
        let bytes = store.memory_bytes();
        if bytes <= state.cfg.budget_bytes || store.is_empty() {
            return evicted;
        }
        let over = bytes - state.cfg.budget_bytes;
        let avg = (bytes / store.len()).max(1);
        let need = (over.div_ceil(avg)).clamp(1, store.len());
        let rows: Vec<PolicyRow> = store
            .rows()
            .into_iter()
            .map(|r| PolicyRow {
                serial: r.id,
                last_hit: r.last_hit,
                hits: r.hits,
                r_total: r.r_total,
                c_total: r.c_total,
            })
            .collect();
        let victims = state
            .eviction
            .lock()
            .select_victims(&PolicyView::new(&rows, now), need);
        if victims.is_empty() || store.evict_ids(&victims) == 0 {
            // A policy returning nothing usable would loop forever; stop
            // and carry the excess to the next round.
            return evicted;
        }
        evicted += victims.len() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{KindPolicy, PolicyKind};
    use gc_graph::{GraphDataset, LabeledGraph};
    use gc_methods::MethodBuilder;

    fn chain(labels: &[u32]) -> LabeledGraph {
        let edges: Vec<(u32, u32)> = (0..labels.len() as u32 - 1).map(|i| (i, i + 1)).collect();
        LabeledGraph::from_parts(labels.to_vec(), &edges)
    }

    fn state() -> FragmentState {
        // Dataset of labelled chains: graph 0 = [1,2,3,4], graph 1 =
        // [1,2,3,5], graph 2 = [7,8,9,9].
        let dataset = GraphDataset::new(vec![
            chain(&[1, 2, 3, 4]),
            chain(&[1, 2, 3, 5]),
            chain(&[7, 8, 9, 9]),
        ]);
        let method = Arc::new(MethodBuilder::si_vf2().build(&dataset));
        FragmentState::new(
            FragmentConfig {
                min_len: 2,
                max_len: 3,
                ..FragmentConfig::default()
            },
            method,
            Box::new(KindPolicy::new(PolicyKind::Lru)),
        )
    }

    #[test]
    fn upkeep_builds_exact_occurrence_sets() {
        let s = state();
        // The answered query [1,2,3] occurs in graphs 0 and 1; seed with an
        // intentionally partial answer ({0}) — the sub-query verification
        // must still find graph 1, proving occurrence sets are exact and
        // not just the seeded answers.
        let sources = vec![(Arc::new(chain(&[1, 2, 3])), vec![GraphId(0)])];
        let (built, evicted) = upkeep(&s, &sources, 1);
        assert!(built > 0);
        assert_eq!(evicted, 0);
        let keys = s.query_keys(&chain(&[1, 2, 3])).expect("no overflow");
        let probe = s.probe(&keys);
        assert!(probe.probes >= 1);
        assert!(!probe.hit_ids.is_empty());
        assert_eq!(
            probe.intersection,
            Some(vec![GraphId(0), GraphId(1)]),
            "exact occurrences of the [1,2,3] fragment"
        );
    }

    #[test]
    fn budget_eviction_shrinks_store() {
        let mut s = state();
        s.cfg.budget_bytes = 1; // everything is over budget
        let sources = vec![
            (Arc::new(chain(&[1, 2, 3, 4])), vec![GraphId(0)]),
            (Arc::new(chain(&[7, 8, 9])), vec![GraphId(2)]),
        ];
        let (built, evicted) = upkeep(&s, &sources, 2);
        assert!(built > 0);
        assert_eq!(evicted, built, "budget of 1 byte evicts everything");
        assert_eq!(s.memory_bytes(), 0);
    }

    #[test]
    fn credit_feeds_rows() {
        let s = state();
        let sources = vec![(Arc::new(chain(&[1, 2, 3])), vec![GraphId(0), GraphId(1)])];
        upkeep(&s, &sources, 1);
        let keys = s.query_keys(&chain(&[1, 2, 3])).unwrap();
        let probe = s.probe(&keys);
        s.credit(&probe.hit_ids, 3, 1.5, 9);
        let store = s.store.lock();
        let row = &store.rows()[0];
        assert_eq!(row.hits, 1);
        assert_eq!(row.last_hit, 9);
        assert_eq!(row.r_total, 3);
    }
}
