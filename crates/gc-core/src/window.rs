//! The Window Manager (paper §6.2): batched cache admission, replacement
//! and re-indexing, with the rebuilt snapshot swapped in atomically.
//!
//! New queries accumulate in the Window (default W = 20). When it fills,
//! the manager (1) runs admission control over the batch, (2) asks the
//! replacement policy for victims if the cache lacks room, (3) builds a
//! *new* snapshot — entries plus a freshly built query index — and
//! (4) swaps it in under a short write lock. Queries arriving during the
//! rebuild keep using the old snapshot, exactly as in the paper ("queries
//! arriving at the system while this procedure is taking place continue
//! being served by the old index").

use crate::admission::AdmissionPolicy;
use crate::entry::{CacheEntry, CacheSnapshot};
use crate::policy::{EvictionPolicy, PolicyRow, PolicyView};
use crate::query_index::QueryIndexConfig;
use crate::stats::{columns, QuerySerial, StatsStore};
use gc_graph::{GraphId, LabeledGraph};
use gc_index::paths::PathProfile;
use gc_methods::QueryKind;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// One query waiting in the Window: the graph, its freshly computed answer,
/// and the static/timing statistics the Window stores keep (paper §6.1).
#[derive(Debug, Clone)]
pub struct WindowEntry {
    /// Query serial.
    pub serial: QuerySerial,
    /// The query graph, shared with the execution that produced it (the
    /// Window never deep-copies graphs).
    pub graph: Arc<LabeledGraph>,
    /// Its answer set.
    pub answer: Vec<GraphId>,
    /// The direction the answer was computed under (carried into the
    /// cache entry so hits never cross query kinds).
    pub kind: QueryKind,
    /// The query's feature profile (computed during execution; reused by
    /// the index rebuild).
    pub profile: PathProfile,
    /// Total filtering time (µs) on first execution.
    pub filter_us: f64,
    /// Total verification time (µs) on first execution.
    pub verify_us: f64,
    /// Expensiveness score (see [`crate::admission`]).
    pub expensiveness: f64,
}

/// State shared between every [`GraphCache`](crate::GraphCache) handle on
/// the query path and the (possibly background) maintenance path.
///
/// All mutable state lives here behind fine-grained synchronisation so the
/// query path only needs `&self`: the snapshot behind an [`RwLock`] (held
/// only for the pointer swap/clone), the statistics and admission stores
/// behind [`Mutex`]es, the Window buffer behind its own [`Mutex`], and the
/// serial counter as an atomic.
pub(crate) struct Shared {
    /// Current cache snapshot; swapped wholesale on maintenance.
    pub snapshot: RwLock<Arc<CacheSnapshot>>,
    /// Statistics of cached queries (GCstats).
    pub stats: Mutex<StatsStore>,
    /// The admission policy (trait object — see [`crate::registry`]).
    pub admission: Mutex<Box<dyn AdmissionPolicy>>,
    /// The eviction policy. Per-policy private state lives inside the
    /// trait object, behind this lock, so the query path's event hooks
    /// and the maintenance path's victim selection never race.
    pub eviction: Mutex<Box<dyn EvictionPolicy>>,
    /// The Window buffer: executed queries waiting for the next
    /// maintenance round (paper §6.2).
    pub window: Mutex<Vec<WindowEntry>>,
    /// Serialises snapshot read-modify-write cycles ([`maintain`] rounds
    /// and [`GraphCache::restore`](crate::GraphCache::restore)). Without
    /// it, two concurrent inline rounds would both build from the same old
    /// snapshot and the second swap would silently drop the first round's
    /// admissions and resurrect its evictions.
    pub maint: Mutex<()>,
    /// Serial-number source; queries claim `fetch_add(1) + 1` on arrival.
    pub serial: AtomicU64,
    /// Cumulative maintenance time (µs) and rounds — the Fig. 10 overhead.
    pub maintenance_us: AtomicU64,
    /// Number of maintenance rounds executed.
    pub maintenance_rounds: AtomicU64,
}

impl Shared {
    pub(crate) fn new(
        index_cfg: QueryIndexConfig,
        eviction: Box<dyn EvictionPolicy>,
        admission: Box<dyn AdmissionPolicy>,
    ) -> Self {
        Shared {
            snapshot: RwLock::new(Arc::new(CacheSnapshot::empty(index_cfg))),
            stats: Mutex::new(StatsStore::new()),
            admission: Mutex::new(admission),
            eviction: Mutex::new(eviction),
            window: Mutex::new(Vec::new()),
            maint: Mutex::new(()),
            serial: AtomicU64::new(0),
            maintenance_us: AtomicU64::new(0),
            maintenance_rounds: AtomicU64::new(0),
        }
    }

    /// The current snapshot (cheap Arc clone).
    pub(crate) fn load_snapshot(&self) -> Arc<CacheSnapshot> {
        self.snapshot.read().clone()
    }

    /// Claims the next query serial number.
    pub(crate) fn next_serial(&self) -> QuerySerial {
        self.serial.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The serial of the most recently admitted query.
    pub(crate) fn current_serial(&self) -> QuerySerial {
        self.serial.load(Ordering::Relaxed)
    }
}

/// Static maintenance parameters. The policies themselves live in
/// [`Shared`] (they are stateful trait objects, not configuration).
#[derive(Debug, Clone, Copy)]
pub(crate) struct MaintenanceConfig {
    pub capacity: usize,
    pub index_cfg: QueryIndexConfig,
}

/// Executes one maintenance round over a full window batch. Returns the
/// wall time spent (recorded as overhead, Fig. 10).
pub(crate) fn maintain(
    shared: &Shared,
    cfg: &MaintenanceConfig,
    batch: Vec<WindowEntry>,
    now: QuerySerial,
) -> Duration {
    let t0 = Instant::now();

    // One round at a time: the round reads the snapshot, builds its
    // replacement, and swaps it in — concurrent rounds (possible in
    // inline mode, where any full window flushes on the flushing query's
    // thread) must not interleave those steps.
    let _round = shared.maint.lock();

    // (1) Admission control over the batch.
    let admitted: Vec<WindowEntry> = {
        let mut ac = shared.admission.lock();
        let admitted = batch
            .into_iter()
            .filter(|e| ac.admits(e.expensiveness))
            .collect();
        ac.end_window();
        admitted
    };
    // More admitted queries than the whole cache can hold: keep the newest.
    let admitted = if admitted.len() > cfg.capacity {
        let skip = admitted.len() - cfg.capacity;
        admitted.into_iter().skip(skip).collect::<Vec<_>>()
    } else {
        admitted
    };

    // Serial uniqueness is a store invariant: a batch admitted on top of
    // a restored snapshot can carry a serial the restore already holds
    // (the batch predates the restore) — such duplicates are dropped in
    // the snapshot's favour, and they must be dropped *before* sizing the
    // eviction so they cannot push live entries out for nothing.
    let old = shared.load_snapshot();
    let admitted: Vec<WindowEntry> = admitted
        .into_iter()
        .filter(|e| old.entry(e.serial).is_none())
        .collect();
    if admitted.is_empty() {
        // Nothing to add; the snapshot stays as-is (no rebuild needed).
        return record_round(shared, t0);
    }

    // (2) Compute the new cache contents: evict as needed. The candidate
    // rows are assembled from the statistics store (and the stats lock
    // released) before the eviction policy is consulted — policies run
    // behind their own lock and never see store internals, only the
    // PolicyView.
    let free = cfg.capacity.saturating_sub(old.len());
    let evict_needed = admitted.len().saturating_sub(free);
    let victims: Vec<QuerySerial> = {
        let rows: Vec<PolicyRow> = if evict_needed > 0 {
            let stats = shared.stats.lock();
            old.entries
                .iter()
                .map(|e| PolicyRow {
                    serial: e.serial,
                    last_hit: stats
                        .get(e.serial, columns::LAST_HIT)
                        .map(|v| v.as_i64() as u64)
                        .unwrap_or(e.serial),
                    hits: stats
                        .get(e.serial, columns::HITS)
                        .map(|v| v.as_i64() as u64)
                        .unwrap_or(0),
                    r_total: stats
                        .get(e.serial, columns::R_TOTAL)
                        .map(|v| v.as_i64() as u64)
                        .unwrap_or(0),
                    c_total: stats
                        .get(e.serial, columns::C_TOTAL)
                        .map(|v| v.as_f64())
                        .unwrap_or(0.0),
                })
                .collect()
        } else {
            Vec::new()
        };
        let mut eviction = shared.eviction.lock();
        let victims = if evict_needed > 0 {
            eviction.select_victims(&PolicyView::new(&rows, now), evict_needed)
        } else {
            Vec::new()
        };
        // Tell the policy about this round's admissions while still
        // holding its lock, so no hit event can slip between the two.
        for e in &admitted {
            eviction.on_admit(e.serial, e.expensiveness);
        }
        victims
    };

    // (3) Build the new snapshot off the hot path.
    let mut new_entries: Vec<Arc<CacheEntry>> = old
        .entries
        .iter()
        .filter(|e| !victims.contains(&e.serial))
        .cloned()
        .collect();
    for e in &admitted {
        new_entries.push(Arc::new(CacheEntry {
            serial: e.serial,
            graph: e.graph.clone(), // Arc clone — no graph copy
            answer: e.answer.clone(),
            kind: e.kind,
            profile: e.profile.clone(),
        }));
    }
    let new_snapshot = Arc::new(CacheSnapshot::build(cfg.index_cfg, new_entries));

    // Statistics rows: drop victims, seed the admitted (paper removes
    // evicted statistics "lazily"; we do it in the same round).
    {
        let mut stats = shared.stats.lock();
        for v in &victims {
            stats.remove_row(*v);
        }
        for e in &admitted {
            stats.set(e.serial, columns::NODES, e.graph.node_count() as i64);
            stats.set(e.serial, columns::EDGES, e.graph.edge_count() as i64);
            stats.set(
                e.serial,
                columns::LABELS,
                e.graph.distinct_label_count() as i64,
            );
            stats.set(e.serial, columns::FILTER_US, e.filter_us);
            stats.set(e.serial, columns::VERIFY_US, e.verify_us);
            stats.set(e.serial, columns::EXPENSIVENESS, e.expensiveness);
            stats.set(e.serial, columns::LAST_HIT, e.serial as i64);
        }
    }

    // (4) Swap — "simple in-memory reference (pointer) swaps".
    *shared.snapshot.write() = new_snapshot;

    record_round(shared, t0)
}

/// Books one finished maintenance round into the overhead counters and
/// returns its wall time (the Fig. 10 metric).
fn record_round(shared: &Shared, t0: Instant) -> Duration {
    let elapsed = t0.elapsed();
    shared
        .maintenance_us
        .fetch_add(elapsed.as_micros() as u64, Ordering::Relaxed);
    shared.maintenance_rounds.fetch_add(1, Ordering::Relaxed);
    elapsed
}

/// Message protocol of the background Window Manager thread.
pub(crate) enum MaintMsg {
    /// A full window to process.
    Batch(Vec<WindowEntry>, QuerySerial),
    /// Barrier: reply when all prior batches are done.
    Sync(mpsc::Sender<()>),
}

/// Spawns the background Window Manager thread (paper §6.2: "implemented as
/// a separate thread").
pub(crate) fn spawn_manager(
    shared: Arc<Shared>,
    cfg: MaintenanceConfig,
) -> (mpsc::Sender<MaintMsg>, std::thread::JoinHandle<()>) {
    let (tx, rx) = mpsc::channel::<MaintMsg>();
    let handle = std::thread::Builder::new()
        .name("gc-window-manager".into())
        .spawn(move || {
            while let Ok(msg) = rx.recv() {
                match msg {
                    MaintMsg::Batch(batch, now) => {
                        maintain(&shared, &cfg, batch, now);
                    }
                    MaintMsg::Sync(reply) => {
                        let _ = reply.send(());
                    }
                }
            }
        })
        .expect("spawn window manager");
    (tx, handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::{AdmissionConfig, AdmissionControl};
    use crate::policy::{KindPolicy, PolicyKind};

    fn entry(serial: QuerySerial, expensiveness: f64) -> WindowEntry {
        let graph = LabeledGraph::from_parts(vec![0, 1], &[(0, 1)]);
        let profile = gc_index::paths::enumerate_paths(&graph, 4, u64::MAX);
        WindowEntry {
            serial,
            graph: Arc::new(graph),
            answer: vec![GraphId(0)],
            kind: QueryKind::Subgraph,
            profile,
            filter_us: 10.0,
            verify_us: 100.0,
            expensiveness,
        }
    }

    fn shared() -> Shared {
        Shared::new(
            QueryIndexConfig::default(),
            Box::new(KindPolicy::new(PolicyKind::Lru)),
            Box::new(AdmissionControl::new(AdmissionConfig::default())),
        )
    }

    fn cfg(capacity: usize) -> MaintenanceConfig {
        MaintenanceConfig {
            capacity,
            index_cfg: QueryIndexConfig::default(),
        }
    }

    #[test]
    fn admitted_entries_enter_cache() {
        let s = shared();
        maintain(&s, &cfg(10), vec![entry(1, 1.0), entry(2, 1.0)], 2);
        let snap = s.load_snapshot();
        assert_eq!(snap.len(), 2);
        assert!(snap.entry(1).is_some());
        let stats = s.stats.lock();
        assert!(stats.get(1, columns::NODES).is_some());
        assert_eq!(s.maintenance_rounds.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn capacity_respected_with_eviction() {
        let s = shared();
        maintain(&s, &cfg(2), vec![entry(1, 1.0), entry(2, 1.0)], 2);
        // Mark entry 2 as recently hit so LRU evicts entry 1.
        s.stats.lock().set(2, columns::LAST_HIT, 9i64);
        maintain(&s, &cfg(2), vec![entry(3, 1.0)], 3);
        let snap = s.load_snapshot();
        assert_eq!(snap.len(), 2);
        assert!(snap.entry(1).is_none(), "LRU victim");
        assert!(snap.entry(2).is_some());
        assert!(snap.entry(3).is_some());
        // Victim's stats row dropped.
        assert!(s.stats.lock().get(1, columns::NODES).is_none());
    }

    #[test]
    fn oversized_batch_keeps_newest() {
        let s = shared();
        maintain(
            &s,
            &cfg(2),
            vec![entry(1, 1.0), entry(2, 1.0), entry(3, 1.0)],
            3,
        );
        let snap = s.load_snapshot();
        assert_eq!(snap.len(), 2);
        assert!(snap.entry(2).is_some() && snap.entry(3).is_some());
    }

    #[test]
    fn empty_batch_after_admission_skips_rebuild() {
        let s = Shared::new(
            QueryIndexConfig::default(),
            Box::new(KindPolicy::new(PolicyKind::Lru)),
            Box::new(AdmissionControl::new(AdmissionConfig {
                enabled: true,
                calibration_windows: 0,
                target_expensive_fraction: 0.5,
            })),
        );
        // Calibrate instantly with one cheap observation.
        {
            let mut ac = s.admission.lock();
            ac.observe(100.0, 0.0);
            ac.end_window();
        }
        let before = Arc::as_ptr(&s.load_snapshot());
        maintain(&s, &cfg(10), vec![entry(1, 0.0)], 1); // 0.0 < threshold
        let after = Arc::as_ptr(&s.load_snapshot());
        assert_eq!(before, after, "snapshot untouched");
        assert_eq!(s.load_snapshot().len(), 0);
    }

    #[test]
    fn concurrent_rounds_do_not_lose_admissions() {
        // Two inline rounds racing must serialise: without the maint lock
        // both build from the same old snapshot and one round's admissions
        // vanish on the second swap.
        let s = Arc::new(shared());
        std::thread::scope(|sc| {
            for t in 0..4u64 {
                let s = s.clone();
                sc.spawn(move || {
                    maintain(
                        &s,
                        &cfg(100),
                        vec![entry(t * 10 + 1, 1.0), entry(t * 10 + 2, 1.0)],
                        t * 10 + 2,
                    );
                });
            }
        });
        let snap = s.load_snapshot();
        assert_eq!(snap.len(), 8, "every round's admissions survive");
        for t in 0..4u64 {
            assert!(snap.entry(t * 10 + 1).is_some());
            assert!(snap.entry(t * 10 + 2).is_some());
        }
        assert_eq!(s.maintenance_rounds.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn background_manager_processes_batches() {
        let s = Arc::new(shared());
        let (tx, handle) = spawn_manager(s.clone(), cfg(10));
        tx.send(MaintMsg::Batch(vec![entry(1, 1.0)], 1)).unwrap();
        let (rtx, rrx) = mpsc::channel();
        tx.send(MaintMsg::Sync(rtx)).unwrap();
        rrx.recv().unwrap();
        assert_eq!(s.load_snapshot().len(), 1);
        drop(tx);
        handle.join().unwrap();
    }
}
