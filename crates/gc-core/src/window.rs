//! The Window Manager (paper §6.2): batched cache admission, replacement
//! and re-indexing, with incremental, sharded snapshot maintenance.
//!
//! New queries accumulate in the Window (default W = 20). When it fills,
//! the manager (1) runs admission control over the batch, (2) asks the
//! replacement policy for victims if the cache lacks room, and (3) applies
//! the victim/admit *delta* to the cache shards.
//!
//! # The sharded delta path
//!
//! The cache snapshot is partitioned into `N` serial-hashed shards (see
//! [`crate::entry`]), each behind its own `RwLock<Arc<Shard>>`. A
//! maintenance round groups its delta by shard and patches only the shards
//! that victims or admissions actually hash into: evictions tombstone
//! their slot in place, admissions append a slot, and the patch goes
//! through `Arc::make_mut` — in place when no reader holds the shard,
//! copy-on-write when one does. Shards the delta misses are never locked
//! and their `Arc`s are untouched, so maintenance cost is
//! O(delta + touched shards), not O(|cache|).
//!
//! Tombstoned slots keep their index postings until the shard's
//! *compaction threshold* is crossed (`MaintenanceConfig::compact_debt`,
//! default 50% dead slots), at which point that shard alone falls back to
//! a dense full rebuild. This bounds both wasted postings memory and the
//! per-probe sweep over dead slots.
//!
//! The paper's invariant — "queries arriving at the system while this
//! procedure is taking place continue being served by the old index" —
//! holds per shard: a query's snapshot view pins the shard `Arc`s it
//! captured, a patch never mutates a shard some reader still holds
//! (copy-on-write takes over), and each shard flips atomically under its
//! own lock. Readers racing a round may observe some shards pre-patch and
//! others post-patch; since shards partition the serial space this is
//! merely an intermediate cache state (a transiently smaller/larger
//! candidate pool), never a torn shard.

use crate::admission::AdmissionPolicy;
use crate::entry::{shard_for, CacheEntry, CacheSnapshot, Shard};
use crate::fragments::{self, FragmentSource, FragmentState};
use crate::metrics::MaintStats;
use crate::policy::{EvictionPolicy, PolicyRow, PolicyView};
use crate::query_index::QueryIndexConfig;
use crate::stats::{columns, QuerySerial, StatsStore};
use gc_graph::{sizing, GraphId, LabeledGraph};
use gc_index::fx::FxHashMap;
use gc_index::paths::PathProfile;
use gc_methods::QueryKind;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Default [`MaintenanceConfig::compact_debt`]: a shard compacts once half
/// its slots are tombstones.
pub(crate) const DEFAULT_COMPACT_DEBT: f64 = 0.5;

/// One query waiting in the Window: the graph, its freshly computed answer,
/// and the static/timing statistics the Window stores keep (paper §6.1).
#[derive(Debug, Clone)]
pub struct WindowEntry {
    /// Query serial.
    pub serial: QuerySerial,
    /// The query graph, shared with the execution that produced it (the
    /// Window never deep-copies graphs).
    pub graph: Arc<LabeledGraph>,
    /// Its answer set.
    pub answer: Vec<GraphId>,
    /// The direction the answer was computed under (carried into the
    /// cache entry so hits never cross query kinds).
    pub kind: QueryKind,
    /// The query's feature profile (computed during execution; reused by
    /// the index rebuild).
    pub profile: PathProfile,
    /// The query's iso fingerprint (computed during execution; carried into
    /// the cache entry so admission never re-hashes the graph).
    pub fingerprint: u64,
    /// Total filtering time (µs) on first execution.
    pub filter_us: f64,
    /// Total verification time (µs) on first execution.
    pub verify_us: f64,
    /// Expensiveness score (see [`crate::admission`]).
    pub expensiveness: f64,
}

impl WindowEntry {
    /// Approximate memory footprint in bytes — the pending-buffer share of
    /// [`GraphCache::memory_bytes`](crate::GraphCache::memory_bytes).
    pub fn memory_bytes(&self) -> usize {
        self.graph.memory_bytes()
            + sizing::slice_bytes::<GraphId>(self.answer.len())
            + self.profile.memory_bytes()
            + sizing::WINDOW_ENTRY_OVERHEAD
    }
}

/// Per-round maintenance breakdown counters (atomics: the query path reads
/// them without taking the maintenance lock). Snapshotted into the public
/// [`MaintStats`].
#[derive(Debug, Default)]
pub(crate) struct MaintCounters {
    victim_select_us: AtomicU64,
    index_delta_us: AtomicU64,
    stats_upkeep_us: AtomicU64,
    fragment_upkeep_us: AtomicU64,
    entries_admitted: AtomicU64,
    entries_evicted: AtomicU64,
    shards_patched: AtomicU64,
    compactions: AtomicU64,
    fragments_built: AtomicU64,
    fragments_evicted: AtomicU64,
}

impl MaintCounters {
    #[allow(clippy::too_many_arguments)]
    fn record(
        &self,
        victim_select: Duration,
        index_delta: Duration,
        stats_upkeep: Duration,
        admitted: usize,
        evicted: usize,
        shards_patched: u64,
        compactions: u64,
    ) {
        self.victim_select_us
            .fetch_add(victim_select.as_micros() as u64, Ordering::Relaxed);
        self.index_delta_us
            .fetch_add(index_delta.as_micros() as u64, Ordering::Relaxed);
        self.stats_upkeep_us
            .fetch_add(stats_upkeep.as_micros() as u64, Ordering::Relaxed);
        self.entries_admitted
            .fetch_add(admitted as u64, Ordering::Relaxed);
        self.entries_evicted
            .fetch_add(evicted as u64, Ordering::Relaxed);
        self.shards_patched
            .fetch_add(shards_patched, Ordering::Relaxed);
        self.compactions.fetch_add(compactions, Ordering::Relaxed);
    }

    fn record_fragments(&self, upkeep: Duration, built: u64, evicted: u64) {
        self.fragment_upkeep_us
            .fetch_add(upkeep.as_micros() as u64, Ordering::Relaxed);
        self.fragments_built.fetch_add(built, Ordering::Relaxed);
        self.fragments_evicted.fetch_add(evicted, Ordering::Relaxed);
    }
}

/// State shared between every [`GraphCache`](crate::GraphCache) handle on
/// the query path and the (possibly background) maintenance path.
///
/// All mutable state lives here behind fine-grained synchronisation so the
/// query path only needs `&self`: each cache shard behind its own
/// [`RwLock`] (held only for the `Arc` clone / patch), the statistics and
/// admission stores behind [`Mutex`]es, the Window buffer behind its own
/// [`Mutex`], and the serial counter as an atomic.
pub(crate) struct Shared {
    /// The cache shards; a maintenance round locks only the shards its
    /// delta touches, readers clone each shard's `Arc` independently.
    pub shards: Vec<RwLock<Arc<Shard>>>,
    /// Index configuration shared by every shard.
    pub index_cfg: QueryIndexConfig,
    /// Statistics of cached queries (GCstats).
    pub stats: Mutex<StatsStore>,
    /// The admission policy (trait object — see [`crate::registry`]).
    pub admission: Mutex<Box<dyn AdmissionPolicy>>,
    /// The eviction policy. Per-policy private state lives inside the
    /// trait object, behind this lock, so the query path's event hooks
    /// and the maintenance path's victim selection never race.
    pub eviction: Mutex<Box<dyn EvictionPolicy>>,
    /// The Window buffer: executed queries waiting for the next
    /// maintenance round (paper §6.2).
    pub window: Mutex<Vec<WindowEntry>>,
    /// Serialises snapshot read-modify-write cycles ([`maintain`] rounds
    /// and [`GraphCache::restore`](crate::GraphCache::restore)). Without
    /// it, two concurrent inline rounds would interleave their per-shard
    /// patches and the later round would select victims against a state
    /// the earlier round is still changing.
    pub maint: Mutex<()>,
    /// Serial-number source; queries claim `fetch_add(1) + 1` on arrival.
    pub serial: AtomicU64,
    /// Sequence number of the snapshot generation the cache was last
    /// restored from (`0` = never restored, or restored from a flat
    /// pre-generation snapshot). A gauge, not a counter: each successful
    /// [`GraphCache::restore`](crate::GraphCache::restore) overwrites it.
    pub recovered_generation: AtomicU64,
    /// Cumulative maintenance time (µs) and rounds — the Fig. 10 overhead.
    pub maintenance_us: AtomicU64,
    /// Number of maintenance rounds executed.
    pub maintenance_rounds: AtomicU64,
    /// Per-phase maintenance breakdown (see [`MaintStats`]).
    pub maint_counters: MaintCounters,
    /// The optional fragment layer (probe on the query path, population
    /// and budget eviction during maintenance). Carries its own `Method`
    /// handle so the background manager can build exact occurrence sets.
    pub fragments: Option<FragmentState>,
}

impl Shared {
    pub(crate) fn new(
        index_cfg: QueryIndexConfig,
        shard_count: usize,
        eviction: Box<dyn EvictionPolicy>,
        admission: Box<dyn AdmissionPolicy>,
        fragments: Option<FragmentState>,
    ) -> Self {
        Shared {
            shards: (0..shard_count.max(1))
                .map(|_| RwLock::new(Arc::new(Shard::empty(index_cfg))))
                .collect(),
            index_cfg,
            stats: Mutex::new(StatsStore::new()),
            admission: Mutex::new(admission),
            eviction: Mutex::new(eviction),
            window: Mutex::new(Vec::new()),
            maint: Mutex::new(()),
            serial: AtomicU64::new(0),
            recovered_generation: AtomicU64::new(0),
            maintenance_us: AtomicU64::new(0),
            maintenance_rounds: AtomicU64::new(0),
            maint_counters: MaintCounters::default(),
            fragments,
        }
    }

    /// The current snapshot view: one cheap `Arc` clone per shard. Shards
    /// captured here stay alive (and unchanged) for the view's lifetime
    /// even while maintenance patches the live state.
    pub(crate) fn load_snapshot(&self) -> CacheSnapshot {
        CacheSnapshot::from_shards(
            self.index_cfg,
            self.shards.iter().map(|s| s.read().clone()).collect(),
        )
    }

    /// Replaces every shard with the given snapshot's (restore path). The
    /// caller must hold the maintenance lock and must have built the
    /// snapshot with a matching shard count.
    pub(crate) fn install_snapshot(&self, snapshot: CacheSnapshot) {
        let shards = snapshot.into_shards();
        debug_assert_eq!(shards.len(), self.shards.len());
        for (lock, shard) in self.shards.iter().zip(shards) {
            *lock.write() = shard;
        }
    }

    /// Claims the next query serial number.
    pub(crate) fn next_serial(&self) -> QuerySerial {
        self.serial.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The serial of the most recently admitted query.
    pub(crate) fn current_serial(&self) -> QuerySerial {
        self.serial.load(Ordering::Relaxed)
    }

    /// Snapshot of the cumulative per-phase maintenance breakdown.
    pub(crate) fn maint_stats(&self) -> MaintStats {
        let c = &self.maint_counters;
        MaintStats {
            rounds: self.maintenance_rounds.load(Ordering::Relaxed),
            total: Duration::from_micros(self.maintenance_us.load(Ordering::Relaxed)),
            victim_select: Duration::from_micros(c.victim_select_us.load(Ordering::Relaxed)),
            index_delta: Duration::from_micros(c.index_delta_us.load(Ordering::Relaxed)),
            stats_upkeep: Duration::from_micros(c.stats_upkeep_us.load(Ordering::Relaxed)),
            fragment_upkeep: Duration::from_micros(c.fragment_upkeep_us.load(Ordering::Relaxed)),
            entries_admitted: c.entries_admitted.load(Ordering::Relaxed),
            entries_evicted: c.entries_evicted.load(Ordering::Relaxed),
            shards_patched: c.shards_patched.load(Ordering::Relaxed),
            compactions: c.compactions.load(Ordering::Relaxed),
            fragments_built: c.fragments_built.load(Ordering::Relaxed),
            fragments_evicted: c.fragments_evicted.load(Ordering::Relaxed),
            dead_postings: self
                .shards
                .iter()
                .map(|s| s.read().index().dead_postings() as u64)
                .sum(),
        }
    }
}

/// Static maintenance parameters. The policies themselves live in
/// [`Shared`] (they are stateful trait objects, not configuration).
#[derive(Debug, Clone, Copy)]
pub(crate) struct MaintenanceConfig {
    pub capacity: usize,
    /// Tombstone-debt fraction above which a patched shard falls back to a
    /// dense rebuild (see the module docs). The index configuration itself
    /// travels inside each shard's index.
    pub compact_debt: f64,
}

/// Executes one maintenance round over a full window batch. Returns the
/// wall time spent (recorded as overhead, Fig. 10).
pub(crate) fn maintain(
    shared: &Shared,
    cfg: &MaintenanceConfig,
    batch: Vec<WindowEntry>,
    now: QuerySerial,
) -> Duration {
    let t0 = Instant::now();

    // One round at a time: the round reads the shard states, selects
    // victims against them, and patches shard by shard — concurrent rounds
    // (possible in inline mode, where any full window flushes on the
    // flushing query's thread) must not interleave those steps.
    let _round = shared.maint.lock();

    // (0) Fragment-store upkeep runs over the *whole* answered batch, not
    // just the admitted subset: fragment population is opportunistic and a
    // query rejected by admission control still carries a verified answer
    // worth decomposing. Only subgraph-direction answers qualify (a
    // fragment occurrence set is a "graphs containing f" set).
    if let Some(frag_state) = &shared.fragments {
        let t_frag = Instant::now();
        let sources: Vec<FragmentSource> = batch
            .iter()
            .filter(|e| e.kind == QueryKind::Subgraph)
            .map(|e| (e.graph.clone(), e.answer.clone()))
            .collect();
        let (built, evicted) = fragments::upkeep(frag_state, &sources, now);
        shared
            .maint_counters
            .record_fragments(t_frag.elapsed(), built, evicted);
    }

    // (1) Admission control over the batch.
    let admitted: Vec<WindowEntry> = {
        let mut ac = shared.admission.lock();
        let admitted = batch
            .into_iter()
            .filter(|e| ac.admits(e.expensiveness))
            .collect();
        ac.end_window();
        admitted
    };
    // More admitted queries than the whole cache can hold: keep the newest.
    let admitted = if admitted.len() > cfg.capacity {
        let skip = admitted.len() - cfg.capacity;
        admitted.into_iter().skip(skip).collect::<Vec<_>>()
    } else {
        admitted
    };

    // Serial uniqueness is a store invariant: a batch admitted on top of
    // a restored snapshot can carry a serial the restore already holds
    // (the batch predates the restore) — such duplicates are dropped in
    // the snapshot's favour, and they must be dropped *before* sizing the
    // eviction so they cannot push live entries out for nothing.
    let old = shared.load_snapshot();
    let admitted: Vec<WindowEntry> = admitted
        .into_iter()
        .filter(|e| old.entry(e.serial).is_none())
        .collect();
    if admitted.is_empty() {
        // Nothing to add; every shard stays as-is (no patch, no swap).
        return record_round(shared, t0);
    }

    // (2) Select victims as needed. The candidate rows are assembled from
    // the statistics store (and the stats lock released) before the
    // eviction policy is consulted — policies run behind their own lock
    // and never see store internals, only the PolicyView.
    let t_victims = Instant::now();
    let free = cfg.capacity.saturating_sub(old.len());
    let evict_needed = admitted.len().saturating_sub(free);
    let victims: Vec<QuerySerial> = {
        let rows: Vec<PolicyRow> = if evict_needed > 0 {
            let stats = shared.stats.lock();
            old.iter_entries()
                .map(|e| PolicyRow {
                    serial: e.serial,
                    last_hit: stats
                        .get(e.serial, columns::LAST_HIT)
                        .map(|v| v.as_i64() as u64)
                        .unwrap_or(e.serial),
                    hits: stats
                        .get(e.serial, columns::HITS)
                        .map(|v| v.as_i64() as u64)
                        .unwrap_or(0),
                    r_total: stats
                        .get(e.serial, columns::R_TOTAL)
                        .map(|v| v.as_i64() as u64)
                        .unwrap_or(0),
                    c_total: stats
                        .get(e.serial, columns::C_TOTAL)
                        .map(|v| v.as_f64())
                        .unwrap_or(0.0),
                })
                .collect()
        } else {
            Vec::new()
        };
        let mut eviction = shared.eviction.lock();
        let victims = if evict_needed > 0 {
            eviction.select_victims(&PolicyView::new(&rows, now), evict_needed)
        } else {
            Vec::new()
        };
        // Tell the policy about this round's admissions while still
        // holding its lock, so no hit event can slip between the two.
        for e in &admitted {
            eviction.on_admit(e.serial, e.expensiveness);
        }
        victims
    };
    let victim_select = t_victims.elapsed();

    // Release the old view before patching: with no other reader holding a
    // shard's Arc, `Arc::make_mut` below patches in place instead of
    // copying the whole shard.
    drop(old);

    // (3) Group the delta by shard and patch only the touched shards.
    let t_delta = Instant::now();
    let n = shared.shards.len();
    let mut removes: Vec<Vec<QuerySerial>> = vec![Vec::new(); n];
    for &v in &victims {
        removes[shard_for(v, n)].push(v);
    }
    let mut inserts: Vec<Vec<Arc<CacheEntry>>> = vec![Vec::new(); n];
    for e in &admitted {
        inserts[shard_for(e.serial, n)].push(Arc::new(CacheEntry {
            serial: e.serial,
            graph: e.graph.clone(), // Arc clone — no graph copy
            answer: e.answer.clone(),
            kind: e.kind,
            profile: e.profile.clone(),
            fingerprint: e.fingerprint,
        }));
    }
    let mut shards_patched = 0u64;
    let mut compactions = 0u64;
    for (i, (removes, inserts)) in removes.into_iter().zip(inserts).enumerate() {
        if removes.is_empty() && inserts.is_empty() {
            continue; // untouched shard: never locked, Arc untouched
        }
        shards_patched += 1;
        let over_debt = {
            let mut guard = shared.shards[i].write();
            // In place when this lock holds the only reference;
            // copy-on-write when an in-flight query still reads the shard
            // (it keeps the old state — the paper's old-index-serves-reads
            // invariant, per shard). Either way the lock is held only for
            // the O(delta) patch.
            let shard = Arc::make_mut(&mut *guard);
            for v in removes {
                shard.remove(v);
            }
            for e in inserts {
                shard.insert(e);
            }
            // Either debt signal triggers the rebuild: slot tombstones or
            // postings-arena rot (evicting feature-rich entries can waste
            // most of the arena while slot debt still looks healthy).
            shard.tombstone_debt() > cfg.compact_debt || shard.postings_debt() > cfg.compact_debt
        };
        if over_debt {
            // Compaction is the O(|shard|) fallback, so it runs OFF the
            // shard lock: rebuild densely from the live entries, then swap
            // with a pointer store. The maintenance lock serialises
            // writers, so the shard cannot change between the rebuild and
            // the swap; readers keep probing the tombstoned (but correct)
            // shard meanwhile — exactly the paper's rebuild-then-swap.
            //
            // The rebuild packs slots in maintenance rank: most-hit (then
            // most-recently-hit) entries first, so the entries every sweep
            // visits most often share cache lines. Hit assembly sorts by
            // serial and the verify queue orders by (cost, serial), so slot
            // renumbering is invisible to every deterministic counter.
            compactions += 1;
            let current = shared.shards[i].read().clone();
            let heat: FxHashMap<QuerySerial, (u64, u64)> = {
                let stats = shared.stats.lock();
                current
                    .live_entries()
                    .map(|e| {
                        let hits = stats
                            .get(e.serial, columns::HITS)
                            .map(|v| v.as_i64() as u64)
                            .unwrap_or(0);
                        let last_hit = stats
                            .get(e.serial, columns::LAST_HIT)
                            .map(|v| v.as_i64() as u64)
                            .unwrap_or(e.serial);
                        // Hotter sorts first: more hits, then fresher.
                        (e.serial, (u64::MAX - hits, u64::MAX - last_hit))
                    })
                    .collect()
            };
            let rebuilt = Arc::new(current.compacted_ranked(|serial| {
                heat.get(&serial)
                    .copied()
                    .unwrap_or((u64::MAX, u64::MAX - serial))
            }));
            *shared.shards[i].write() = rebuilt;
        }
    }
    let index_delta = t_delta.elapsed();

    // (4) Statistics rows: drop victims, seed the admitted (paper removes
    // evicted statistics "lazily"; we do it in the same round).
    let t_stats = Instant::now();
    {
        let mut stats = shared.stats.lock();
        for v in &victims {
            stats.remove_row(*v);
        }
        for e in &admitted {
            stats.set(e.serial, columns::NODES, e.graph.node_count() as i64);
            stats.set(e.serial, columns::EDGES, e.graph.edge_count() as i64);
            stats.set(
                e.serial,
                columns::LABELS,
                e.graph.distinct_label_count() as i64,
            );
            stats.set(e.serial, columns::FILTER_US, e.filter_us);
            stats.set(e.serial, columns::VERIFY_US, e.verify_us);
            stats.set(e.serial, columns::EXPENSIVENESS, e.expensiveness);
            stats.set(e.serial, columns::LAST_HIT, e.serial as i64);
        }
    }
    let stats_upkeep = t_stats.elapsed();

    shared.maint_counters.record(
        victim_select,
        index_delta,
        stats_upkeep,
        admitted.len(),
        victims.len(),
        shards_patched,
        compactions,
    );
    record_round(shared, t0)
}

/// Books one finished maintenance round into the overhead counters and
/// returns its wall time (the Fig. 10 metric).
fn record_round(shared: &Shared, t0: Instant) -> Duration {
    let elapsed = t0.elapsed();
    shared
        .maintenance_us
        .fetch_add(elapsed.as_micros() as u64, Ordering::Relaxed);
    shared.maintenance_rounds.fetch_add(1, Ordering::Relaxed);
    elapsed
}

/// Message protocol of the background Window Manager thread.
pub(crate) enum MaintMsg {
    /// A full window to process.
    Batch(Vec<WindowEntry>, QuerySerial),
    /// Barrier: reply when all prior batches are done.
    Sync(mpsc::Sender<()>),
}

/// Spawns the background Window Manager thread (paper §6.2: "implemented as
/// a separate thread").
pub(crate) fn spawn_manager(
    shared: Arc<Shared>,
    cfg: MaintenanceConfig,
) -> (mpsc::Sender<MaintMsg>, std::thread::JoinHandle<()>) {
    let (tx, rx) = mpsc::channel::<MaintMsg>();
    let handle = std::thread::Builder::new()
        .name("gc-window-manager".into())
        .spawn(move || {
            while let Ok(msg) = rx.recv() {
                match msg {
                    MaintMsg::Batch(batch, now) => {
                        maintain(&shared, &cfg, batch, now);
                    }
                    MaintMsg::Sync(reply) => {
                        let _ = reply.send(());
                    }
                }
            }
        })
        .expect("spawn window manager");
    (tx, handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::{AdmissionConfig, AdmissionControl};
    use crate::policy::{KindPolicy, PolicyKind};

    fn entry(serial: QuerySerial, expensiveness: f64) -> WindowEntry {
        let graph = LabeledGraph::from_parts(vec![0, 1], &[(0, 1)]);
        let profile = gc_index::paths::enumerate_paths(&graph, 4, u64::MAX);
        let fingerprint = gc_index::fingerprint::iso_hash(&graph);
        WindowEntry {
            serial,
            graph: Arc::new(graph),
            answer: vec![GraphId(0)],
            kind: QueryKind::Subgraph,
            profile,
            fingerprint,
            filter_us: 10.0,
            verify_us: 100.0,
            expensiveness,
        }
    }

    fn shared_with(shards: usize) -> Shared {
        Shared::new(
            QueryIndexConfig::default(),
            shards,
            Box::new(KindPolicy::new(PolicyKind::Lru)),
            Box::new(AdmissionControl::new(AdmissionConfig::default())),
            None,
        )
    }

    fn shared() -> Shared {
        shared_with(1)
    }

    fn cfg(capacity: usize) -> MaintenanceConfig {
        MaintenanceConfig {
            capacity,
            compact_debt: DEFAULT_COMPACT_DEBT,
        }
    }

    #[test]
    fn admitted_entries_enter_cache() {
        let s = shared();
        maintain(&s, &cfg(10), vec![entry(1, 1.0), entry(2, 1.0)], 2);
        let snap = s.load_snapshot();
        assert_eq!(snap.len(), 2);
        assert!(snap.entry(1).is_some());
        let stats = s.stats.lock();
        assert!(stats.get(1, columns::NODES).is_some());
        assert_eq!(s.maintenance_rounds.load(Ordering::Relaxed), 1);
        let m = s.maint_stats();
        assert_eq!(m.rounds, 1);
        assert_eq!(m.entries_admitted, 2);
        assert_eq!(m.entries_evicted, 0);
        assert_eq!(m.shards_patched, 1);
    }

    #[test]
    fn capacity_respected_with_eviction() {
        let s = shared();
        maintain(&s, &cfg(2), vec![entry(1, 1.0), entry(2, 1.0)], 2);
        // Mark entry 2 as recently hit so LRU evicts entry 1.
        s.stats.lock().set(2, columns::LAST_HIT, 9i64);
        maintain(&s, &cfg(2), vec![entry(3, 1.0)], 3);
        let snap = s.load_snapshot();
        assert_eq!(snap.len(), 2);
        assert!(snap.entry(1).is_none(), "LRU victim");
        assert!(snap.entry(2).is_some());
        assert!(snap.entry(3).is_some());
        // Victim's stats row dropped.
        assert!(s.stats.lock().get(1, columns::NODES).is_none());
        assert_eq!(s.maint_stats().entries_evicted, 1);
    }

    #[test]
    fn oversized_batch_keeps_newest() {
        let s = shared();
        maintain(
            &s,
            &cfg(2),
            vec![entry(1, 1.0), entry(2, 1.0), entry(3, 1.0)],
            3,
        );
        let snap = s.load_snapshot();
        assert_eq!(snap.len(), 2);
        assert!(snap.entry(2).is_some() && snap.entry(3).is_some());
    }

    #[test]
    fn empty_batch_after_admission_skips_rebuild() {
        let s = Shared::new(
            QueryIndexConfig::default(),
            1,
            Box::new(KindPolicy::new(PolicyKind::Lru)),
            Box::new(AdmissionControl::new(AdmissionConfig {
                enabled: true,
                calibration_windows: 0,
                target_expensive_fraction: 0.5,
            })),
            None,
        );
        // Calibrate instantly with one cheap observation.
        {
            let mut ac = s.admission.lock();
            ac.observe(100.0, 0.0);
            ac.end_window();
        }
        let before = Arc::as_ptr(&s.load_snapshot().shards()[0]);
        maintain(&s, &cfg(10), vec![entry(1, 0.0)], 1); // 0.0 < threshold
        let after = Arc::as_ptr(&s.load_snapshot().shards()[0]);
        assert_eq!(before, after, "shard untouched");
        assert_eq!(s.load_snapshot().len(), 0);
    }

    /// The sharded twin of the fast path above: a round whose delta misses
    /// a shard must leave that shard's `Arc` pointer untouched.
    #[test]
    fn untouched_shards_keep_their_arc() {
        let n = 4usize;
        let s = shared_with(n);
        // Find serials that all land in one shard.
        let target = shard_for(1, n);
        let in_target: Vec<QuerySerial> = (1..200).filter(|&x| shard_for(x, n) == target).collect();
        assert!(in_target.len() >= 2);

        let before: Vec<*const Shard> = s.shards.iter().map(|l| Arc::as_ptr(&*l.read())).collect();
        maintain(
            &s,
            &cfg(100),
            vec![entry(in_target[0], 1.0), entry(in_target[1], 1.0)],
            in_target[1],
        );
        let after: Vec<*const Shard> = s.shards.iter().map(|l| Arc::as_ptr(&*l.read())).collect();
        for i in 0..n {
            if i == target {
                continue; // the touched shard may patch in place or swap
            }
            assert_eq!(before[i], after[i], "shard {i} missed by the delta");
        }
        assert_eq!(s.load_snapshot().len(), 2);
        assert_eq!(s.maint_stats().shards_patched, 1);
    }

    /// A reader holding a pre-round snapshot keeps seeing the old shard
    /// state while the round patches copy-on-write.
    #[test]
    fn inflight_reader_keeps_old_shard_state() {
        let s = shared();
        maintain(&s, &cfg(10), vec![entry(1, 1.0)], 1);
        let pinned = s.load_snapshot(); // in-flight query's view
        maintain(&s, &cfg(10), vec![entry(2, 1.0)], 2);
        assert_eq!(pinned.len(), 1, "old view unchanged");
        assert!(pinned.entry(2).is_none());
        let fresh = s.load_snapshot();
        assert_eq!(fresh.len(), 2);
        assert!(fresh.entry(2).is_some());
    }

    /// Rounds of churn drive tombstone debt over the threshold and trigger
    /// per-shard compactions; live contents are unaffected.
    #[test]
    fn churn_triggers_compaction() {
        let s = shared();
        let capacity = 4usize;
        let mut serial = 0u64;
        for _ in 0..10 {
            let batch: Vec<WindowEntry> = (0..4)
                .map(|_| {
                    serial += 1;
                    entry(serial, 1.0)
                })
                .collect();
            maintain(&s, &cfg(capacity), batch, serial);
        }
        let m = s.maint_stats();
        assert!(m.compactions > 0, "churn must compact: {m:?}");
        let snap = s.load_snapshot();
        assert_eq!(snap.len(), capacity);
        // Debt is bounded by the threshold after compaction rounds.
        for shard in snap.shards() {
            assert!(shard.tombstone_debt() <= DEFAULT_COMPACT_DEBT + 1e-9);
        }
    }

    /// Evictions leave dead postings behind; the gauge must see them while
    /// the shard is under the compaction threshold, and compaction must
    /// clear them.
    #[test]
    fn postings_debt_gauge_reflects_evictions() {
        let s = shared();
        maintain(&s, &cfg(2), vec![entry(1, 1.0), entry(2, 1.0)], 2);
        assert_eq!(s.maint_stats().dead_postings, 0, "dense cache, no debt");
        // Mark entry 2 as recently hit so LRU evicts entry 1; the shard
        // ends with 1 tombstone of 3 slots (debt 1/3 < 1/2, no compaction).
        s.stats.lock().set(2, columns::LAST_HIT, 9i64);
        maintain(&s, &cfg(2), vec![entry(3, 1.0)], 3);
        let m = s.maint_stats();
        assert_eq!(m.compactions, 0);
        assert!(m.dead_postings > 0, "evicted entry's postings are debt");
        let snap = s.load_snapshot();
        assert!(snap.shards()[0].postings_debt() > 0.0);
        let (live, reserved) = snap.shards()[0].arena_utilization();
        assert!(live < reserved, "fragmentation observable");
    }

    /// Maintenance-triggered compaction packs policy-hot entries into the
    /// lowest slots (hits desc, then last-hit desc).
    #[test]
    fn compaction_packs_hot_entries_first() {
        let s = shared();
        let capacity = 4usize;
        let mut serial = 0u64;
        let mut compacted_snapshots = 0;
        for _ in 0..10 {
            let batch: Vec<WindowEntry> = (0..4)
                .map(|_| {
                    serial += 1;
                    entry(serial, 1.0)
                })
                .collect();
            // Give the oldest live entry a big hit count so rank-ordered
            // compaction must pull it to slot 0 despite its age.
            maintain(&s, &cfg(capacity), batch, serial);
            let snap = s.load_snapshot();
            let oldest = snap.iter_entries().map(|e| e.serial).min().unwrap();
            s.stats.lock().set(oldest, columns::HITS, 1_000i64);
            if snap.shards()[0].tombstone_debt() == 0.0 && snap.len() == capacity {
                compacted_snapshots += 1;
            }
        }
        assert!(s.maint_stats().compactions > 0);
        assert!(compacted_snapshots > 0);
        // After the last round, find a dense (just-compacted) state and
        // check the most-hit live entry sits in slot 0.
        let snap = s.load_snapshot();
        let shard = &snap.shards()[0];
        if shard.tombstone_debt() == 0.0 {
            let first = shard.entry_at(0).map(|e| e.serial);
            let stats = s.stats.lock();
            let hottest = shard
                .live_entries()
                .max_by_key(|e| {
                    (
                        stats
                            .get(e.serial, columns::HITS)
                            .map(|v| v.as_i64())
                            .unwrap_or(0),
                        stats
                            .get(e.serial, columns::LAST_HIT)
                            .map(|v| v.as_i64())
                            .unwrap_or(e.serial as i64),
                        std::cmp::Reverse(e.serial),
                    )
                })
                .map(|e| e.serial);
            assert_eq!(first, hottest, "hot entry packed into slot 0");
        }
    }

    #[test]
    fn concurrent_rounds_do_not_lose_admissions() {
        // Inline rounds racing must serialise: without the maint lock the
        // per-shard patches of different rounds would interleave and a
        // round could select victims against a half-applied state.
        let s = Arc::new(shared_with(2));
        std::thread::scope(|sc| {
            for t in 0..4u64 {
                let s = s.clone();
                sc.spawn(move || {
                    maintain(
                        &s,
                        &cfg(100),
                        vec![entry(t * 10 + 1, 1.0), entry(t * 10 + 2, 1.0)],
                        t * 10 + 2,
                    );
                });
            }
        });
        let snap = s.load_snapshot();
        assert_eq!(snap.len(), 8, "every round's admissions survive");
        for t in 0..4u64 {
            assert!(snap.entry(t * 10 + 1).is_some());
            assert!(snap.entry(t * 10 + 2).is_some());
        }
        assert_eq!(s.maintenance_rounds.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn background_manager_processes_batches() {
        let s = Arc::new(shared());
        let (tx, handle) = spawn_manager(s.clone(), cfg(10));
        tx.send(MaintMsg::Batch(vec![entry(1, 1.0)], 1)).unwrap();
        let (rtx, rrx) = mpsc::channel();
        tx.send(MaintMsg::Sync(rtx)).unwrap();
        rrx.recv().unwrap();
        assert_eq!(s.load_snapshot().len(), 1);
        drop(tx);
        handle.join().unwrap();
    }
}
