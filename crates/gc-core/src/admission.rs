//! Cache admission control (paper §6.2): the [`AdmissionPolicy`] trait and
//! its built-in implementations.
//!
//! GraphCache's cache can get *polluted* by inexpensive queries: the cache
//! then mostly accelerates queries that were cheap anyway and overall
//! speedup collapses toward 1. The paper's countermeasure scores each
//! executed query with an **expensiveness** value — the ratio of its
//! verification time over its filtering time — and only admits queries
//! scoring above a threshold. The threshold is calibrated from the first
//! few windows so that a predefined percentage of queries classify as
//! expensive; a threshold of 0 disables the mechanism.
//!
//! Three strategies ship built in, all registered in [`crate::registry`]:
//! [`AdmitAll`] (`"none"`), the paper's calibrated-threshold
//! [`AdmissionControl`] (`"threshold"`) and the greedy back-off
//! [`AdaptiveAdmission`] (`"adaptive"`).

/// A pluggable cache admission strategy.
///
/// The query path calls [`observe`](Self::observe) once per executed query;
/// the Window Manager calls [`admits`](Self::admits) for every window entry
/// and [`end_window`](Self::end_window) once per maintenance round. State
/// lives inside the implementor, behind the cache's shared admission lock —
/// implementations need `Send` but no internal synchronisation.
pub trait AdmissionPolicy: Send + std::fmt::Debug {
    /// The policy's canonical registry name (e.g. `"adaptive"`).
    fn name(&self) -> &str;

    /// Feeds one executed query: its expensiveness score and the *benefit*
    /// the cache delivered for it (an estimate of avoided work; 0 for
    /// complete misses). Threshold-only policies may ignore `benefit`.
    fn observe(&mut self, expensiveness: f64, benefit: f64);

    /// Marks the end of a maintenance window.
    fn end_window(&mut self);

    /// Whether a query with this expensiveness may enter the cache.
    fn admits(&self, expensiveness: f64) -> bool;

    /// The current admission threshold, when the policy has one.
    fn threshold(&self) -> Option<f64> {
        None
    }
}

/// The no-op admission policy (`"none"`): every executed query enters the
/// cache, as in the paper's "C" configuration of Fig. 9.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdmitAll;

impl AdmissionPolicy for AdmitAll {
    fn name(&self) -> &str {
        "none"
    }

    fn observe(&mut self, _expensiveness: f64, _benefit: f64) {}

    fn end_window(&mut self) {}

    fn admits(&self, _expensiveness: f64) -> bool {
        true
    }
}

/// Configuration of the admission control mechanism.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Master switch ("C" vs "C + AC" in Fig. 9).
    pub enabled: bool,
    /// How many windows of queries to observe before fixing the threshold.
    pub calibration_windows: usize,
    /// Fraction of observed queries that should classify as expensive
    /// (the paper's "predefined percentage").
    pub target_expensive_fraction: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            enabled: false,
            calibration_windows: 3,
            target_expensive_fraction: 0.25,
        }
    }
}

impl AdmissionConfig {
    /// Admission control enabled with the default calibration.
    pub fn enabled() -> Self {
        AdmissionConfig {
            enabled: true,
            ..Default::default()
        }
    }
}

/// The admission controller: collects expensiveness observations during the
/// calibration phase, then gates cache admission.
#[derive(Debug, Clone)]
pub struct AdmissionControl {
    cfg: AdmissionConfig,
    observed: Vec<f64>,
    windows_seen: usize,
    threshold: Option<f64>,
}

impl AdmissionControl {
    /// Creates a controller.
    pub fn new(cfg: AdmissionConfig) -> Self {
        AdmissionControl {
            cfg,
            observed: Vec::new(),
            windows_seen: 0,
            threshold: None,
        }
    }

    /// Feeds one query's expensiveness score (called for every executed
    /// query while calibrating).
    pub fn observe(&mut self, expensiveness: f64) {
        if self.cfg.enabled && self.threshold.is_none() && expensiveness.is_finite() {
            self.observed.push(expensiveness);
        }
    }

    /// Marks the end of a window; fixes the threshold once enough windows
    /// have been observed.
    pub fn end_window(&mut self) {
        if !self.cfg.enabled || self.threshold.is_some() {
            return;
        }
        self.windows_seen += 1;
        if self.windows_seen >= self.cfg.calibration_windows && !self.observed.is_empty() {
            let mut sorted = std::mem::take(&mut self.observed);
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let n = sorted.len();
            let cut = (((1.0 - self.cfg.target_expensive_fraction) * n as f64).floor() as usize)
                .min(n - 1);
            self.threshold = Some(sorted[cut]);
        }
    }

    /// The calibrated threshold, once fixed.
    pub fn threshold(&self) -> Option<f64> {
        self.threshold
    }

    /// Whether a query with this expensiveness may enter the cache.
    /// Disabled or still-calibrating controllers admit everything; a
    /// calibrated threshold of 0 also admits everything (paper: "a
    /// threshold value of 0 disables this component").
    pub fn admits(&self, expensiveness: f64) -> bool {
        if !self.cfg.enabled {
            return true;
        }
        match self.threshold {
            None => true,
            Some(t) => t == 0.0 || expensiveness >= t,
        }
    }
}

impl AdmissionPolicy for AdmissionControl {
    /// Registered as `"threshold"`; the benefit signal is ignored (the
    /// calibrated threshold never moves after calibration).
    fn name(&self) -> &str {
        "threshold"
    }

    fn observe(&mut self, expensiveness: f64, _benefit: f64) {
        AdmissionControl::observe(self, expensiveness);
    }

    fn end_window(&mut self) {
        AdmissionControl::end_window(self);
    }

    fn admits(&self, expensiveness: f64) -> bool {
        AdmissionControl::admits(self, expensiveness)
    }

    fn threshold(&self) -> Option<f64> {
        AdmissionControl::threshold(self)
    }
}

/// The paper also mentions a more dynamic approach: "greedily adapting the
/// threshold using an exponential back-off approach until the achieved time
/// speedup reaches a local maximum" (§6.2). This controller implements that
/// extension: after the initial calibration it keeps scaling the threshold
/// by `step` in the direction that improved the observed per-window benefit
/// (mean expensiveness of queries the cache helped), and halves the step on
/// every direction reversal until the step becomes negligible.
#[derive(Debug, Clone)]
pub struct AdaptiveAdmission {
    inner: AdmissionControl,
    /// Multiplicative step (> 1); halves toward 1 on reversals.
    step: f64,
    /// +1 when currently raising the threshold, -1 when lowering.
    direction: f64,
    /// Benefit observed in the previous window.
    last_benefit: Option<f64>,
    /// Benefit accumulator for the current window.
    window_benefit: f64,
    window_queries: u32,
}

impl AdaptiveAdmission {
    /// Wraps a calibrating controller with greedy threshold adaptation.
    pub fn new(cfg: AdmissionConfig) -> Self {
        AdaptiveAdmission {
            inner: AdmissionControl::new(cfg),
            step: 2.0,
            direction: 1.0,
            last_benefit: None,
            window_benefit: 0.0,
            window_queries: 0,
        }
    }

    /// Feeds one executed query: its expensiveness and the time saving the
    /// cache delivered for it (0 for complete misses).
    pub fn observe(&mut self, expensiveness: f64, benefit: f64) {
        self.inner.observe(expensiveness);
        if benefit.is_finite() {
            self.window_benefit += benefit;
        }
        self.window_queries += 1;
    }

    /// Ends a window: finishes calibration if still pending, otherwise
    /// performs one greedy adaptation step.
    pub fn end_window(&mut self) {
        let calibrated_before = self.inner.threshold().is_some();
        self.inner.end_window();
        let Some(threshold) = self.inner.threshold() else {
            self.window_benefit = 0.0;
            self.window_queries = 0;
            return;
        };
        if !calibrated_before {
            // First calibrated window: just record the baseline benefit.
            self.last_benefit = Some(self.window_rate());
            self.reset_window();
            return;
        }
        let rate = self.window_rate();
        if let Some(prev) = self.last_benefit {
            if rate < prev {
                // Worse than before: reverse and shrink the step.
                self.direction = -self.direction;
                self.step = 1.0 + (self.step - 1.0) / 2.0;
            }
        }
        self.last_benefit = Some(rate);
        if self.step > 1.001 {
            let factor = if self.direction > 0.0 {
                self.step
            } else {
                1.0 / self.step
            };
            self.inner.threshold = Some((threshold * factor).max(0.0));
        }
        self.reset_window();
    }

    fn window_rate(&self) -> f64 {
        if self.window_queries == 0 {
            0.0
        } else {
            self.window_benefit / self.window_queries as f64
        }
    }

    fn reset_window(&mut self) {
        self.window_benefit = 0.0;
        self.window_queries = 0;
    }

    /// Whether a query may enter the cache.
    pub fn admits(&self, expensiveness: f64) -> bool {
        self.inner.admits(expensiveness)
    }

    /// The current (possibly adapted) threshold.
    pub fn threshold(&self) -> Option<f64> {
        self.inner.threshold()
    }
}

impl AdmissionPolicy for AdaptiveAdmission {
    /// Registered as `"adaptive"`.
    fn name(&self) -> &str {
        "adaptive"
    }

    fn observe(&mut self, expensiveness: f64, benefit: f64) {
        AdaptiveAdmission::observe(self, expensiveness, benefit);
    }

    fn end_window(&mut self) {
        AdaptiveAdmission::end_window(self);
    }

    fn admits(&self, expensiveness: f64) -> bool {
        AdaptiveAdmission::admits(self, expensiveness)
    }

    fn threshold(&self) -> Option<f64> {
        AdaptiveAdmission::threshold(self)
    }
}

/// How GraphCache quantifies a query's cost when computing expensiveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostModel {
    /// Wall-clock verification time over wall-clock filtering time — the
    /// paper's definition. Nondeterministic across machines/runs.
    #[default]
    WallTime,
    /// Deterministic proxy: matcher work (recursion steps) spent verifying.
    /// The paper notes filtering time is "relatively constant across
    /// queries", so dropping the denominator preserves the ranking; tests
    /// use this to be reproducible.
    Work,
}

impl CostModel {
    /// Computes the expensiveness score from a query's raw measurements.
    pub fn expensiveness(self, filter_time_us: f64, verify_time_us: f64, verify_work: u64) -> f64 {
        match self {
            CostModel::WallTime => verify_time_us / filter_time_us.max(1e-3),
            CostModel::Work => verify_work as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_admits_everything() {
        let ac = AdmissionControl::new(AdmissionConfig::default());
        assert!(ac.admits(0.0));
        assert!(ac.admits(1e9));
        assert!(ac.threshold().is_none());
    }

    #[test]
    fn admits_all_during_calibration() {
        let mut ac = AdmissionControl::new(AdmissionConfig::enabled());
        ac.observe(1.0);
        ac.end_window();
        assert!(ac.admits(0.0), "still calibrating");
    }

    #[test]
    fn threshold_fixed_after_calibration() {
        let cfg = AdmissionConfig {
            enabled: true,
            calibration_windows: 2,
            target_expensive_fraction: 0.25,
        };
        let mut ac = AdmissionControl::new(cfg);
        // 8 observations: 1..=8. Top 25% = {7, 8}; threshold lands at 7.
        for v in 1..=4 {
            ac.observe(v as f64);
        }
        ac.end_window();
        for v in 5..=8 {
            ac.observe(v as f64);
        }
        ac.end_window();
        let t = ac.threshold().expect("calibrated");
        assert_eq!(t, 7.0);
        assert!(ac.admits(7.0));
        assert!(ac.admits(8.5));
        assert!(!ac.admits(6.9));
    }

    #[test]
    fn zero_threshold_disables() {
        let cfg = AdmissionConfig {
            enabled: true,
            calibration_windows: 1,
            target_expensive_fraction: 0.5,
        };
        let mut ac = AdmissionControl::new(cfg);
        ac.observe(0.0);
        ac.observe(0.0);
        ac.end_window();
        assert_eq!(ac.threshold(), Some(0.0));
        assert!(ac.admits(0.0));
        assert!(ac.admits(-1.0), "threshold 0 admits everything");
    }

    #[test]
    fn observations_stop_after_calibration() {
        let cfg = AdmissionConfig {
            enabled: true,
            calibration_windows: 1,
            target_expensive_fraction: 0.5,
        };
        let mut ac = AdmissionControl::new(cfg);
        ac.observe(10.0);
        ac.end_window();
        let t = ac.threshold();
        ac.observe(99999.0);
        ac.end_window();
        assert_eq!(ac.threshold(), t, "threshold must not drift");
    }

    #[test]
    fn non_finite_observations_ignored() {
        let cfg = AdmissionConfig {
            enabled: true,
            calibration_windows: 1,
            target_expensive_fraction: 0.5,
        };
        let mut ac = AdmissionControl::new(cfg);
        ac.observe(f64::INFINITY);
        ac.observe(f64::NAN);
        ac.observe(2.0);
        ac.end_window();
        assert_eq!(ac.threshold(), Some(2.0));
    }

    #[test]
    fn adaptive_calibrates_then_adapts() {
        let cfg = AdmissionConfig {
            enabled: true,
            calibration_windows: 1,
            target_expensive_fraction: 0.5,
        };
        let mut ad = AdaptiveAdmission::new(cfg);
        // Calibration window: values 1..4 → threshold 3.
        for v in 1..=4 {
            ad.observe(v as f64, 0.0);
        }
        ad.end_window();
        assert_eq!(ad.threshold(), Some(3.0));
        // Benefit-recording window (baseline).
        ad.observe(5.0, 10.0);
        ad.end_window();
        let t1 = ad.threshold().unwrap();
        // Improving benefit: threshold keeps moving in the same direction.
        ad.observe(5.0, 20.0);
        ad.end_window();
        let t2 = ad.threshold().unwrap();
        assert!(t2 > t1, "threshold should rise while benefit improves");
        // Worsening benefit: direction reverses, step shrinks.
        ad.observe(5.0, 1.0);
        ad.end_window();
        let t3 = ad.threshold().unwrap();
        assert!(t3 < t2, "threshold should back off after a regression");
    }

    #[test]
    fn adaptive_disabled_is_permissive() {
        let mut ad = AdaptiveAdmission::new(AdmissionConfig::default());
        ad.observe(1.0, 1.0);
        ad.end_window();
        assert!(ad.admits(0.0));
        assert!(ad.threshold().is_none());
    }

    #[test]
    fn adaptive_step_converges() {
        let cfg = AdmissionConfig {
            enabled: true,
            calibration_windows: 1,
            target_expensive_fraction: 0.5,
        };
        let mut ad = AdaptiveAdmission::new(cfg);
        ad.observe(2.0, 0.0);
        ad.end_window();
        ad.observe(2.0, 10.0);
        ad.end_window();
        // Alternate benefit up/down many times: the step decays toward 1
        // and the threshold stabilises.
        let mut benefits = [5.0, 15.0].iter().cycle();
        for _ in 0..40 {
            ad.observe(2.0, *benefits.next().unwrap());
            ad.end_window();
        }
        let t_a = ad.threshold().unwrap();
        ad.observe(2.0, 5.0);
        ad.end_window();
        let t_b = ad.threshold().unwrap();
        assert!(
            (t_a - t_b).abs() / t_a.max(1e-9) < 0.01,
            "threshold should have converged: {t_a} vs {t_b}"
        );
    }

    #[test]
    fn admit_all_is_permissive() {
        let mut p: Box<dyn AdmissionPolicy> = Box::new(AdmitAll);
        p.observe(1e9, 0.0);
        p.end_window();
        assert!(p.admits(0.0));
        assert!(p.admits(f64::INFINITY));
        assert_eq!(p.name(), "none");
        assert!(p.threshold().is_none());
    }

    #[test]
    fn trait_dispatch_matches_inherent_api() {
        let cfg = AdmissionConfig {
            enabled: true,
            calibration_windows: 1,
            target_expensive_fraction: 0.5,
        };
        let mut boxed: Box<dyn AdmissionPolicy> = Box::new(AdmissionControl::new(cfg));
        for v in 1..=4 {
            boxed.observe(v as f64, 0.0);
        }
        boxed.end_window();
        let mut inherent = AdmissionControl::new(cfg);
        for v in 1..=4 {
            inherent.observe(v as f64);
        }
        inherent.end_window();
        assert_eq!(boxed.threshold(), inherent.threshold());
        assert_eq!(boxed.admits(3.0), inherent.admits(3.0));
        assert_eq!(boxed.name(), "threshold");
        let adaptive: &dyn AdmissionPolicy = &AdaptiveAdmission::new(cfg);
        assert_eq!(adaptive.name(), "adaptive", "adaptive registry name");
    }

    #[test]
    fn cost_models() {
        let wall = CostModel::WallTime.expensiveness(10.0, 100.0, 7);
        assert!((wall - 10.0).abs() < 1e-9);
        let work = CostModel::Work.expensiveness(10.0, 100.0, 7);
        assert_eq!(work, 7.0);
        // Zero filter time is guarded.
        assert!(CostModel::WallTime.expensiveness(0.0, 5.0, 0).is_finite());
    }
}
