//! The policy registry: string-keyed construction of eviction and
//! admission strategies.
//!
//! Every strategy — the paper's built-ins, the extra policies in
//! [`crate::policies`], and any user-defined implementation — is reachable
//! by name, so callers pick policies with
//! [`GraphCacheBuilder::eviction`](crate::GraphCacheBuilder::eviction) /
//! [`GraphCacheBuilder::admission`](crate::GraphCacheBuilder::admission)
//! (or the CLI's `--eviction` / `--admission` flags) instead of touching
//! cache internals. Registering a new strategy is one
//! [`register_eviction`] call; nothing in `gc-core` needs to change.
//!
//! # Spec strings
//!
//! A *spec* is a registry name with optional `key=value` parameters:
//! `"slru"`, `"slru:protected=0.5"`, `"threshold:windows=2,fraction=0.4"`.
//! Unknown names fail with a [`PolicyError`] listing what is available;
//! parameters a policy does not read are ignored.
//!
//! # Built-in eviction policies
//!
//! | name | strategy |
//! |------|----------|
//! | `lru`, `pop`, `pin`, `pinc`, `hd` | the paper's §6.3 utility policies |
//! | `gcr` | alias for `hd`, the paper's recommended GraphCache policy |
//! | `slru` | segmented LRU (`protected=` share, default 0.8) |
//! | `greedy-dual` (alias `gd`) | cost-aware Greedy-Dual |
//!
//! # Built-in admission policies
//!
//! | name | strategy |
//! |------|----------|
//! | `none` (aliases `off`, `always`) | admit everything |
//! | `threshold` (alias `static`) | calibrated threshold (`windows=`, `fraction=`) |
//! | `adaptive` | threshold with greedy back-off adaptation |

use crate::admission::{
    AdaptiveAdmission, AdmissionConfig, AdmissionControl, AdmissionPolicy, AdmitAll,
};
use crate::policies::{GreedyDual, SegmentedLru};
use crate::policy::{EvictionPolicy, KindPolicy, PolicyKind};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

/// Error raised when a policy spec cannot be resolved or its parameters
/// cannot be parsed. The [`Display`](std::fmt::Display) form lists the
/// available names, so surfacing it verbatim (as the CLI does) is enough
/// for a user to self-correct.
#[derive(Debug, Clone)]
pub struct PolicyError {
    message: String,
    available: Vec<String>,
}

impl PolicyError {
    /// A spec/parameter error with no name listing.
    pub fn new(message: impl Into<String>) -> Self {
        PolicyError {
            message: message.into(),
            available: Vec::new(),
        }
    }

    fn unknown(kind: &str, name: &str, available: Vec<String>) -> Self {
        PolicyError {
            message: format!("unknown {kind} policy {name:?}"),
            available,
        }
    }

    /// The registry names that were available when the error was raised
    /// (empty for parameter errors).
    pub fn available(&self) -> &[String] {
        &self.available
    }
}

impl std::fmt::Display for PolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)?;
        if !self.available.is_empty() {
            write!(f, " (available: {})", self.available.join(", "))?;
        }
        Ok(())
    }
}

impl std::error::Error for PolicyError {}

/// Parsed `key=value` parameters of a policy spec (the part after `:`).
#[derive(Debug, Clone, Default)]
pub struct PolicyParams {
    pairs: Vec<(String, String)>,
}

impl PolicyParams {
    /// Splits a spec string into `(name, params)`: `"slru:protected=0.5"`
    /// becomes `("slru", {protected: 0.5})`. Bare names carry no params.
    pub fn parse(spec: &str) -> Result<(&str, PolicyParams), PolicyError> {
        let spec = spec.trim();
        let (name, rest) = match spec.split_once(':') {
            None => (spec, ""),
            Some((n, r)) => (n.trim(), r),
        };
        if name.is_empty() {
            return Err(PolicyError::new("empty policy name"));
        }
        let mut pairs = Vec::new();
        for kv in rest.split(',').filter(|s| !s.trim().is_empty()) {
            let (k, v) = kv.split_once('=').ok_or_else(|| {
                PolicyError::new(format!("malformed parameter {kv:?} (expected key=value)"))
            })?;
            pairs.push((k.trim().to_string(), v.trim().to_string()));
        }
        Ok((name, PolicyParams { pairs }))
    }

    /// Raw string lookup.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// A float parameter, `default` when absent.
    pub fn get_f64(&self, key: &str, default: f64) -> Result<f64, PolicyError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| PolicyError::new(format!("parameter {key}={v:?} is not a number"))),
        }
    }

    /// An integer parameter, `default` when absent.
    pub fn get_usize(&self, key: &str, default: usize) -> Result<usize, PolicyError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| PolicyError::new(format!("parameter {key}={v:?} is not an integer"))),
        }
    }

    /// True when no parameters were given.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// Factory for an [`EvictionPolicy`], stored in the registry.
pub type EvictionFactory =
    Arc<dyn Fn(&PolicyParams) -> Result<Box<dyn EvictionPolicy>, PolicyError> + Send + Sync>;

/// Factory for an [`AdmissionPolicy`], stored in the registry.
pub type AdmissionFactory =
    Arc<dyn Fn(&PolicyParams) -> Result<Box<dyn AdmissionPolicy>, PolicyError> + Send + Sync>;

/// The string-keyed policy registry. One process-wide instance (behind
/// this module's free functions, e.g. [`build_eviction`] /
/// [`register_eviction`]) is pre-seeded with every built-in; isolated
/// instances can be built for tests via [`PolicyRegistry::with_builtins`].
pub struct PolicyRegistry {
    evictions: BTreeMap<String, EvictionFactory>,
    admissions: BTreeMap<String, AdmissionFactory>,
    eviction_aliases: BTreeMap<String, String>,
    admission_aliases: BTreeMap<String, String>,
}

impl PolicyRegistry {
    /// An empty registry (no built-ins).
    pub fn empty() -> Self {
        PolicyRegistry {
            evictions: BTreeMap::new(),
            admissions: BTreeMap::new(),
            eviction_aliases: BTreeMap::new(),
            admission_aliases: BTreeMap::new(),
        }
    }

    /// A registry pre-seeded with every built-in policy and alias.
    pub fn with_builtins() -> Self {
        let mut reg = PolicyRegistry::empty();
        for kind in PolicyKind::ALL {
            reg.register_eviction(kind.registry_name(), move |_p| {
                Ok(Box::new(KindPolicy::new(kind)))
            });
        }
        // The paper's recommended GraphCache replacement policy under the
        // name related work refers to it by.
        reg.alias_eviction("gcr", "hd");
        reg.register_eviction("slru", |p| {
            let share = p.get_f64("protected", SegmentedLru::DEFAULT_PROTECTED_SHARE)?;
            Ok(Box::new(SegmentedLru::new(share)))
        });
        reg.alias_eviction("segmented-lru", "slru");
        reg.register_eviction("greedy-dual", |_p| Ok(Box::new(GreedyDual::new())));
        reg.alias_eviction("gd", "greedy-dual");

        reg.register_admission("none", |_p| Ok(Box::new(AdmitAll)));
        reg.alias_admission("off", "none");
        reg.alias_admission("always", "none");
        reg.register_admission("threshold", |p| {
            Ok(Box::new(AdmissionControl::new(admission_cfg(p)?)))
        });
        reg.alias_admission("static", "threshold");
        reg.register_admission("adaptive", |p| {
            Ok(Box::new(AdaptiveAdmission::new(admission_cfg(p)?)))
        });
        reg
    }

    /// Registers (or replaces) an eviction policy factory under `name`.
    pub fn register_eviction(
        &mut self,
        name: &str,
        factory: impl Fn(&PolicyParams) -> Result<Box<dyn EvictionPolicy>, PolicyError>
            + Send
            + Sync
            + 'static,
    ) {
        self.evictions.insert(name.to_string(), Arc::new(factory));
    }

    /// Registers (or replaces) an admission policy factory under `name`.
    pub fn register_admission(
        &mut self,
        name: &str,
        factory: impl Fn(&PolicyParams) -> Result<Box<dyn AdmissionPolicy>, PolicyError>
            + Send
            + Sync
            + 'static,
    ) {
        self.admissions.insert(name.to_string(), Arc::new(factory));
    }

    /// Makes `alias` resolve to the eviction policy registered as `target`.
    pub fn alias_eviction(&mut self, alias: &str, target: &str) {
        self.eviction_aliases
            .insert(alias.to_string(), target.to_string());
    }

    /// Makes `alias` resolve to the admission policy registered as `target`.
    pub fn alias_admission(&mut self, alias: &str, target: &str) {
        self.admission_aliases
            .insert(alias.to_string(), target.to_string());
    }

    /// Builds an eviction policy from a spec string (`name[:k=v,…]`).
    pub fn build_eviction(&self, spec: &str) -> Result<Box<dyn EvictionPolicy>, PolicyError> {
        let (name, params) = PolicyParams::parse(spec)?;
        let key = self
            .eviction_aliases
            .get(name)
            .map(String::as_str)
            .unwrap_or(name);
        let factory = self
            .evictions
            .get(key)
            .ok_or_else(|| PolicyError::unknown("eviction", name, self.eviction_names()))?;
        factory(&params)
    }

    /// Builds an admission policy from a spec string (`name[:k=v,…]`).
    pub fn build_admission(&self, spec: &str) -> Result<Box<dyn AdmissionPolicy>, PolicyError> {
        let (name, params) = PolicyParams::parse(spec)?;
        let key = self
            .admission_aliases
            .get(name)
            .map(String::as_str)
            .unwrap_or(name);
        let factory = self
            .admissions
            .get(key)
            .ok_or_else(|| PolicyError::unknown("admission", name, self.admission_names()))?;
        factory(&params)
    }

    /// The canonical (alias-free) eviction policy names, sorted.
    pub fn eviction_names(&self) -> Vec<String> {
        self.evictions.keys().cloned().collect()
    }

    /// The canonical (alias-free) admission policy names, sorted.
    pub fn admission_names(&self) -> Vec<String> {
        self.admissions.keys().cloned().collect()
    }
}

impl Default for PolicyRegistry {
    fn default() -> Self {
        PolicyRegistry::with_builtins()
    }
}

/// Shared `windows=` / `fraction=` parameters of the threshold-based
/// admission policies.
fn admission_cfg(p: &PolicyParams) -> Result<AdmissionConfig, PolicyError> {
    let defaults = AdmissionConfig::enabled();
    Ok(AdmissionConfig {
        enabled: true,
        calibration_windows: p.get_usize("windows", defaults.calibration_windows)?,
        target_expensive_fraction: p.get_f64("fraction", defaults.target_expensive_fraction)?,
    })
}

fn global() -> &'static Mutex<PolicyRegistry> {
    static GLOBAL: OnceLock<Mutex<PolicyRegistry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(PolicyRegistry::with_builtins()))
}

/// Builds an eviction policy from the process-wide registry.
pub fn build_eviction(spec: &str) -> Result<Box<dyn EvictionPolicy>, PolicyError> {
    global().lock().build_eviction(spec)
}

/// Builds an admission policy from the process-wide registry.
pub fn build_admission(spec: &str) -> Result<Box<dyn AdmissionPolicy>, PolicyError> {
    global().lock().build_admission(spec)
}

/// Registers an eviction policy in the process-wide registry. Replaces any
/// previous registration under the same name.
pub fn register_eviction(
    name: &str,
    factory: impl Fn(&PolicyParams) -> Result<Box<dyn EvictionPolicy>, PolicyError>
        + Send
        + Sync
        + 'static,
) {
    global().lock().register_eviction(name, factory);
}

/// Registers an admission policy in the process-wide registry. Replaces any
/// previous registration under the same name.
pub fn register_admission(
    name: &str,
    factory: impl Fn(&PolicyParams) -> Result<Box<dyn AdmissionPolicy>, PolicyError>
        + Send
        + Sync
        + 'static,
) {
    global().lock().register_admission(name, factory);
}

/// The canonical eviction policy names in the process-wide registry.
pub fn eviction_names() -> Vec<String> {
    global().lock().eviction_names()
}

/// The canonical admission policy names in the process-wide registry.
pub fn admission_names() -> Vec<String> {
    global().lock().admission_names()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_resolve_by_name() {
        let reg = PolicyRegistry::with_builtins();
        for name in ["lru", "pop", "pin", "pinc", "hd", "slru", "greedy-dual"] {
            let p = reg.build_eviction(name).unwrap();
            assert_eq!(p.name(), name, "canonical names round-trip");
        }
        for name in ["none", "threshold", "adaptive"] {
            let p = reg.build_admission(name).unwrap();
            assert_eq!(p.name(), name);
        }
    }

    #[test]
    fn aliases_resolve_to_canonical() {
        let reg = PolicyRegistry::with_builtins();
        assert_eq!(reg.build_eviction("gcr").unwrap().name(), "hd");
        assert_eq!(reg.build_eviction("gd").unwrap().name(), "greedy-dual");
        assert_eq!(reg.build_eviction("segmented-lru").unwrap().name(), "slru");
        assert_eq!(reg.build_admission("off").unwrap().name(), "none");
        assert_eq!(reg.build_admission("static").unwrap().name(), "threshold");
        // Aliases are not listed among canonical names.
        assert!(!reg.eviction_names().contains(&"gcr".to_string()));
    }

    #[test]
    fn unknown_names_list_available() {
        let reg = PolicyRegistry::with_builtins();
        let err = reg.build_eviction("belady").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("belady"), "{msg}");
        assert!(msg.contains("hd") && msg.contains("slru"), "{msg}");
        assert!(!err.available().is_empty());
        let err = reg.build_admission("belady").unwrap_err();
        assert!(err.to_string().contains("adaptive"));
    }

    #[test]
    fn params_parse_and_apply() {
        let (name, params) = PolicyParams::parse("slru:protected=0.5").unwrap();
        assert_eq!(name, "slru");
        assert_eq!(params.get_f64("protected", 0.8).unwrap(), 0.5);
        assert_eq!(params.get_f64("missing", 0.8).unwrap(), 0.8);
        assert!(params.get_usize("protected", 1).is_err(), "0.5 not usize");

        let reg = PolicyRegistry::with_builtins();
        assert!(reg.build_eviction("slru:protected=0.25").is_ok());
        let ac = reg
            .build_admission("threshold:windows=1,fraction=0.5")
            .unwrap();
        assert_eq!(ac.name(), "threshold");
        assert!(reg.build_eviction("slru:protected=abc").is_err());
        assert!(PolicyParams::parse("slru:oops").is_err());
        assert!(PolicyParams::parse("").is_err());
        assert!(PolicyParams::parse(":k=v").is_err());
    }

    #[test]
    fn custom_registration_and_replacement() {
        let mut reg = PolicyRegistry::empty();
        assert!(reg.build_eviction("lru").is_err(), "empty registry");
        reg.register_eviction("fifo", |_p| {
            Ok(Box::new(crate::policy::KindPolicy::new(PolicyKind::Lru)))
        });
        assert_eq!(reg.eviction_names(), vec!["fifo".to_string()]);
        assert!(reg.build_eviction("fifo").is_ok());
    }

    #[test]
    fn global_registry_has_builtins() {
        assert!(build_eviction("hd").is_ok());
        assert!(build_admission("adaptive").is_ok());
        assert!(eviction_names().contains(&"greedy-dual".to_string()));
        assert!(admission_names().contains(&"none".to_string()));
        // Global custom registration is visible to later builds.
        register_eviction("global-test-policy", |_p| {
            Ok(Box::new(crate::policy::KindPolicy::new(PolicyKind::Pop)))
        });
        assert!(build_eviction("global-test-policy").is_ok());
    }
}
