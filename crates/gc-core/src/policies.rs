//! Replacement strategies beyond the paper's §6.3 set, implemented against
//! the open [`EvictionPolicy`] API and registered in [`crate::registry`].
//!
//! * [`SegmentedLru`] (`"slru"`) — the classic two-segment LRU used by web
//!   and block caches: entries that have never expedited a query live in a
//!   *probationary* segment and are evicted first; proven contributors are
//!   *protected* (up to a configurable share of the cache) and only fall
//!   back to eviction when the probationary segment runs dry. Scan-resistant
//!   where plain LRU is not.
//! * [`GreedyDual`] (`"greedy-dual"`) — a cost-aware Greedy-Dual variant:
//!   each entry carries a retention credit `H = L + cost`, where `L` is a
//!   monotone inflation value raised to the credit of each evicted victim.
//!   Hits refresh an entry's credit with the cost the hit actually saved, so
//!   expensive-to-recompute entries survive longer even at equal recency.

use crate::policy::{EvictionPolicy, PolicyRow, PolicyView};
use crate::stats::QuerySerial;
use std::collections::HashMap;

/// Segmented LRU (`"slru"`): probationary entries (no hits yet) are evicted
/// before protected ones (at least one hit), with plain LRU order inside
/// each segment.
///
/// The protected segment is capped at `protected_share` of the candidate
/// set; the least recently hit overflow is demoted to probationary, exactly
/// like the classic SLRU's demotion on protected-segment overflow.
#[derive(Debug, Clone)]
pub struct SegmentedLru {
    protected_share: f64,
}

impl SegmentedLru {
    /// Default share of the cache reserved for the protected segment.
    pub const DEFAULT_PROTECTED_SHARE: f64 = 0.8;

    /// Creates the policy with a protected-segment share in `[0, 1]`
    /// (clamped).
    pub fn new(protected_share: f64) -> Self {
        SegmentedLru {
            protected_share: protected_share.clamp(0.0, 1.0),
        }
    }

    /// The configured protected-segment share.
    pub fn protected_share(&self) -> f64 {
        self.protected_share
    }
}

impl Default for SegmentedLru {
    fn default() -> Self {
        SegmentedLru::new(Self::DEFAULT_PROTECTED_SHARE)
    }
}

impl EvictionPolicy for SegmentedLru {
    fn name(&self) -> &str {
        "slru"
    }

    fn select_victims(&mut self, view: &PolicyView<'_>, evict: usize) -> Vec<QuerySerial> {
        if evict == 0 || view.is_empty() {
            return Vec::new();
        }
        // Deterministic LRU order: (last_hit, serial) ascending.
        let lru_key = |r: &PolicyRow| (r.last_hit, r.serial);
        let mut protected: Vec<&PolicyRow> = view.rows().iter().filter(|r| r.hits > 0).collect();
        protected.sort_by_key(|r| lru_key(r));
        // Cap the protected segment: the least recently hit overflow is
        // demoted and competes with the probationary entries.
        let cap = (self.protected_share * view.len() as f64).floor() as usize;
        let demote = protected.len().saturating_sub(cap);
        let demoted: Vec<&PolicyRow> = protected.drain(..demote).collect();
        let mut probationary: Vec<&PolicyRow> =
            view.rows().iter().filter(|r| r.hits == 0).collect();
        probationary.extend(demoted);
        probationary.sort_by_key(|r| lru_key(r));

        probationary
            .into_iter()
            .chain(protected)
            .take(evict.min(view.len()))
            .map(|r| r.serial)
            .collect()
    }
}

/// Cost-aware Greedy-Dual replacement (`"greedy-dual"`).
///
/// Stateful: retention credits and the inflation value `L` live inside the
/// policy (behind the cache's eviction lock) and are maintained through the
/// [`EvictionPolicy`] event hooks. An entry whose credit was lost — e.g.
/// after a snapshot restore reset the policy — falls back to `L` plus its
/// accumulated `C` statistic, so restored caches degrade gracefully instead
/// of evicting blindly.
#[derive(Debug, Clone, Default)]
pub struct GreedyDual {
    /// Inflation value: the credit of the most expensive victim so far.
    l: f64,
    /// Per-entry retention credit `H`.
    credit: HashMap<QuerySerial, f64>,
}

impl GreedyDual {
    /// Creates the policy with zero inflation and no credits.
    pub fn new() -> Self {
        GreedyDual::default()
    }

    /// The current inflation value `L` (diagnostics).
    pub fn inflation(&self) -> f64 {
        self.l
    }

    fn credit_of(&self, row: &PolicyRow) -> f64 {
        self.credit
            .get(&row.serial)
            .copied()
            .unwrap_or(self.l + row.c_total)
    }
}

impl EvictionPolicy for GreedyDual {
    fn name(&self) -> &str {
        "greedy-dual"
    }

    fn select_victims(&mut self, view: &PolicyView<'_>, evict: usize) -> Vec<QuerySerial> {
        if evict == 0 || view.is_empty() {
            return Vec::new();
        }
        let mut scored: Vec<(f64, QuerySerial)> = view
            .rows()
            .iter()
            .map(|r| (self.credit_of(r), r.serial))
            .collect();
        scored.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        let victims: Vec<QuerySerial> = scored
            .iter()
            .take(evict.min(view.len()))
            .map(|&(_, s)| s)
            .collect();
        // Inflate L to the most expensive evicted credit: future admissions
        // start above everything that was ever deemed evictable.
        if let Some(&(h, _)) = scored.get(victims.len().saturating_sub(1)) {
            self.l = self.l.max(h);
        }
        for v in &victims {
            self.credit.remove(v);
        }
        // Credits of entries evicted out-of-band (duplicate-serial drops,
        // restores) would leak; prune anything not in the current view.
        if self.credit.len() > 2 * view.len() {
            let live: std::collections::HashSet<QuerySerial> =
                view.rows().iter().map(|r| r.serial).collect();
            self.credit.retain(|s, _| live.contains(s));
        }
        victims
    }

    fn on_admit(&mut self, serial: QuerySerial, cost: f64) {
        let cost = if cost.is_finite() { cost.max(0.0) } else { 0.0 };
        self.credit.insert(serial, self.l + cost);
    }

    fn on_hit(&mut self, serial: QuerySerial, _now: QuerySerial, saved_cost: f64) {
        let saved = if saved_cost.is_finite() {
            saved_cost.max(0.0)
        } else {
            0.0
        };
        // Classic Greedy-Dual hit rule: restore the credit to L + cost,
        // with the cost refreshed by what this hit actually saved.
        let h = self.l + saved;
        let slot = self.credit.entry(serial).or_insert(h);
        *slot = slot.max(h);
    }

    fn reset(&mut self) {
        self.l = 0.0;
        self.credit.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(serial: QuerySerial, last_hit: QuerySerial, hits: u64, c_total: f64) -> PolicyRow {
        PolicyRow {
            serial,
            last_hit,
            hits,
            r_total: 0,
            c_total,
        }
    }

    #[test]
    fn slru_evicts_probationary_first() {
        let rows = vec![
            row(1, 9, 3, 0.0), // protected, recently hit
            row(2, 2, 0, 0.0), // probationary
            row(3, 8, 1, 0.0), // protected
            row(4, 4, 0, 0.0), // probationary
        ];
        let mut p = SegmentedLru::default();
        let victims = p.select_victims(&PolicyView::new(&rows, 10), 3);
        // Probationary by LRU first (2 then 4), then the LRU protected (3).
        assert_eq!(victims, vec![2, 4, 3]);
    }

    #[test]
    fn slru_demotes_protected_overflow() {
        // Everything has hits; with a 50% protected share, the two least
        // recently hit entries are demoted and evicted first.
        let rows = vec![
            row(1, 5, 1, 0.0),
            row(2, 6, 1, 0.0),
            row(3, 7, 1, 0.0),
            row(4, 8, 1, 0.0),
        ];
        let mut p = SegmentedLru::new(0.5);
        let victims = p.select_victims(&PolicyView::new(&rows, 10), 2);
        assert_eq!(victims, vec![1, 2]);
    }

    #[test]
    fn slru_edge_cases() {
        let mut p = SegmentedLru::default();
        assert!(p.select_victims(&PolicyView::new(&[], 10), 2).is_empty());
        let rows = vec![row(1, 1, 0, 0.0)];
        assert!(p.select_victims(&PolicyView::new(&rows, 10), 0).is_empty());
        assert_eq!(p.select_victims(&PolicyView::new(&rows, 10), 5), vec![1]);
        assert_eq!(SegmentedLru::new(7.0).protected_share(), 1.0, "clamped");
    }

    #[test]
    fn greedy_dual_prefers_cheap_victims() {
        let rows = vec![row(1, 1, 0, 0.0), row(2, 2, 0, 0.0), row(3, 3, 0, 0.0)];
        let mut p = GreedyDual::new();
        p.on_admit(1, 100.0);
        p.on_admit(2, 5.0);
        p.on_admit(3, 50.0);
        let victims = p.select_victims(&PolicyView::new(&rows, 10), 1);
        assert_eq!(victims, vec![2], "cheapest entry goes first");
        // L inflated to the victim's credit.
        assert_eq!(p.inflation(), 5.0);
        // A new cheap admission now starts at L + cost.
        p.on_admit(4, 1.0);
        let rows = vec![row(1, 1, 0, 0.0), row(3, 3, 0, 0.0), row(4, 4, 0, 0.0)];
        let victims = p.select_victims(&PolicyView::new(&rows, 11), 1);
        assert_eq!(victims, vec![4], "6.0 credit < 50 and 100");
    }

    #[test]
    fn greedy_dual_hits_refresh_credit() {
        let rows = vec![row(1, 1, 0, 0.0), row(2, 2, 0, 0.0)];
        let mut p = GreedyDual::new();
        p.on_admit(1, 10.0);
        p.on_admit(2, 10.0);
        p.on_hit(1, 5, 90.0);
        let victims = p.select_victims(&PolicyView::new(&rows, 10), 1);
        assert_eq!(victims, vec![2], "hit entry retained");
        // A hit never lowers an existing credit.
        p.on_hit(2, 6, 0.5);
        assert!(p.credit_of(&row(2, 6, 1, 0.0)) >= 10.0);
    }

    #[test]
    fn greedy_dual_reset_falls_back_to_stats() {
        let rows = vec![row(1, 1, 2, 500.0), row(2, 2, 1, 1.0)];
        let mut p = GreedyDual::new();
        p.on_admit(1, 0.0);
        p.on_admit(2, 999.0);
        p.reset();
        assert_eq!(p.inflation(), 0.0);
        // After reset, credits derive from the C statistic: entry 2 is now
        // the cheap one.
        let victims = p.select_victims(&PolicyView::new(&rows, 10), 1);
        assert_eq!(victims, vec![2]);
    }

    #[test]
    fn greedy_dual_ignores_non_finite() {
        let mut p = GreedyDual::new();
        p.on_admit(1, f64::NAN);
        p.on_hit(1, 2, f64::INFINITY);
        let rows = vec![row(1, 1, 0, 0.0)];
        assert_eq!(p.select_victims(&PolicyView::new(&rows, 10), 1), vec![1]);
    }

    #[test]
    fn greedy_dual_prunes_stale_credits() {
        let mut p = GreedyDual::new();
        for s in 0..100 {
            p.on_admit(s, 1.0);
        }
        let rows = vec![row(200, 200, 0, 0.0)];
        p.on_admit(200, 1.0);
        let _ = p.select_victims(&PolicyView::new(&rows, 300), 0);
        let _ = p.select_victims(&PolicyView::new(&rows, 300), 1);
        assert!(p.credit.len() <= 2, "stale credits pruned");
    }
}
