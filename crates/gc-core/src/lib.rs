//! GraphCache — the first full-fledged caching system for general
//! subgraph/supergraph queries (EDBT 2017).
//!
//! GraphCache (GC) sits in front of any graph query processing method
//! ("Method M", see [`gc_methods`]) and exploits subgraph/supergraph/exact
//! relations between new queries and previously executed ones to prune the
//! candidate sets that Method M would otherwise have to verify with
//! NP-complete sub-iso tests.
//!
//! # Architecture (paper §4)
//!
//! * **Query Processing Runtime** — [`GraphCache::run`] dispatches a query
//!   to Method M's filter and GC's own processors ([`processors`]), prunes
//!   the candidate set ([`pruner`], equations (1)/(2) + both special
//!   cases), verifies the remainder with M's verifier, and records
//!   statistics ([`metrics`], [`stats`]).
//! * **Cache Manager** — entries + the combined sub/supergraph query index
//!   ([`query_index`]) live in serial-hashed, independently swapped shards
//!   ([`entry`]); the Window Manager ([`window`]) batches admissions
//!   through a Window, consults the admission policy ([`admission`]) and
//!   the replacement policy ([`policy`]), and applies the victim/admit
//!   delta incrementally to just the touched shards (per-shard compaction
//!   reclaims tombstones), so maintenance cost scales with the delta, not
//!   the cache size.
//! * **Policy engine** — replacement and admission are open trait APIs
//!   ([`EvictionPolicy`] / [`AdmissionPolicy`]) constructed by name through
//!   the string-keyed [`registry`]; the paper's strategies, the extra
//!   built-ins in [`policies`], and user-registered implementations are
//!   all selected the same way
//!   (`GraphCache::builder().eviction("gcr").admission("adaptive")`).
//!
//! [`GraphCache`] is a shared service: `run`, [`GraphCache::execute`] and
//! [`GraphCache::run_batch`] take `&self`, so one cache instance serves
//! any number of client threads. Typed [`QueryRequest`]s carry per-query
//! overrides (direction, hit-verification budget, cache bypass) and come
//! back as [`QueryResponse`]s wrapping the per-query [`QueryResult`].
//!
//! # Example
//!
//! ```
//! use gc_core::{GraphCache, PolicyKind, QueryRequest};
//! use gc_graph::{GraphDataset, LabeledGraph};
//! use gc_methods::MethodBuilder;
//!
//! let dataset = GraphDataset::new(vec![
//!     LabeledGraph::from_parts(vec![0, 1, 0], &[(0, 1), (1, 2)]),
//!     LabeledGraph::from_parts(vec![0, 1], &[(0, 1)]),
//! ]);
//! let method = MethodBuilder::ggsx().build(&dataset);
//! let cache = GraphCache::builder()
//!     .capacity(100)
//!     .window(20)
//!     .policy(PolicyKind::Hd) // or by registry name: .eviction("gcr")
//!     .build(method);
//!
//! let query = LabeledGraph::from_parts(vec![0, 1], &[(0, 1)]);
//! let first = cache.run(&query); // `run` takes &self — share the cache freely
//! let second = cache.run(&query); // may be served from the Window/cache
//! assert_eq!(first.answer, second.answer);
//!
//! // Batch submission fans out across a thread pool.
//! let responses = cache.run_batch(vec![
//!     QueryRequest::new(query.clone()).tag(1),
//!     QueryRequest::new(query.clone()).bypass_cache(true).tag(2),
//! ]);
//! assert_eq!(responses[0].result.answer, responses[1].result.answer);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
mod cache;
pub mod entry;
mod fragments;
pub mod metrics;
pub mod persist;
pub mod policies;
pub mod policy;
pub mod processors;
pub mod pruner;
pub mod query_index;
pub mod registry;
pub mod snapshot_bin;
pub mod staged;
pub mod stats;
pub mod window;

pub use admission::{
    AdaptiveAdmission, AdmissionConfig, AdmissionControl, AdmissionPolicy, AdmitAll, CostModel,
};
pub use cache::{
    AdmissionSpec, GcConfig, GraphCache, GraphCacheBuilder, QueryRequest, QueryResponse,
    QueryResult, RestoreReport,
};
pub use entry::{shard_for, CacheEntry, CacheSnapshot, Shard};
pub use gc_fragments::FragmentConfig;
pub use gc_methods::QueryKind;
pub use metrics::{MaintStats, QueryRecord, RouteCounters, RunCounters, RunSummary};
pub use persist::{
    PersistFormat, PersistedCache, PersistedEntry, RecoveredSnapshot, StoredProfiles,
};
pub use policies::{GreedyDual, SegmentedLru};
pub use policy::{EvictionPolicy, KindPolicy, PolicyKind, PolicyRow, PolicyView};
pub use processors::{
    candidate_serials, find_hits, find_hits_naive, find_hits_opts, HitQuery, HitSet, VerifyOptions,
};
pub use query_index::{QueryIndex, QueryIndexConfig};
pub use registry::{PolicyError, PolicyParams, PolicyRegistry};
pub use staged::{FaultIo, FaultMode, Manifest, RealIo, SnapshotIo};
pub use stats::{QuerySerial, StatsStore};
pub use window::WindowEntry;
