//! Cache replacement policies (paper §6.3): the [`EvictionPolicy`] trait,
//! plus the paper's built-in strategies LRU, POP, PIN, PINC and the hybrid
//! dynamic policy HD.
//!
//! Every built-in policy assigns each cached query a *utility* and evicts
//! the entries with the lowest utilities:
//!
//! * **LRU** — utility = serial number of the last query the entry expedited
//!   (its "last hit time");
//! * **POP** — utility = `H/A`: hit count over age;
//! * **PIN** — utility = `R/A`: total sub-iso tests alleviated over age
//!   (GraphCache-exclusive: hits save wildly different numbers of tests);
//! * **PINC** — utility = `C/A`: total *estimated time saving* over age
//!   (GraphCache-exclusive: saved tests have wildly different costs);
//! * **HD** — computes the squared coefficient of variation of the cached
//!   `R` values; when `CoV² > 1` (high variability) `R` is discriminative
//!   enough and HD scores like PIN, otherwise it scores like PINC.
//!
//! Age `A` is the difference between the most recent serial number assigned
//! to any query and the cached query's own serial (paper §6.3, POP).
//!
//! Strategies beyond the paper's (and user-defined ones) implement
//! [`EvictionPolicy`] directly and are constructed by name through
//! [`crate::registry`]; see [`crate::policies`] for the extra built-ins.

use crate::stats::QuerySerial;

/// A read-only view of the candidate entries offered to an eviction
/// decision: one [`PolicyRow`] per cached query, plus the current logical
/// time (the most recent serial assigned to any query).
///
/// The view is rebuilt from the statistics store for every maintenance
/// round, so policies never observe stale utilities.
#[derive(Debug, Clone, Copy)]
pub struct PolicyView<'a> {
    rows: &'a [PolicyRow],
    now: QuerySerial,
}

impl<'a> PolicyView<'a> {
    /// Wraps the candidate rows at logical time `now`.
    pub fn new(rows: &'a [PolicyRow], now: QuerySerial) -> Self {
        PolicyView { rows, now }
    }

    /// The candidate entries (one row per cached query).
    pub fn rows(&self) -> &'a [PolicyRow] {
        self.rows
    }

    /// The most recent serial number assigned to any query.
    pub fn now(&self) -> QuerySerial {
        self.now
    }

    /// Number of candidate entries.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no candidates.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// A row's age `A` (paper §6.3): `now - serial`, floored at 1 so
    /// utility ratios never divide by zero.
    pub fn age(&self, row: &PolicyRow) -> f64 {
        self.now.saturating_sub(row.serial).max(1) as f64
    }
}

/// A pluggable cache replacement strategy.
///
/// The Window Manager calls [`select_victims`](Self::select_victims) once
/// per maintenance round that needs room; the event hooks let stateful
/// policies (e.g. [`crate::policies::GreedyDual`]) maintain private
/// bookkeeping between rounds. All per-policy state lives inside the
/// implementor — the cache keeps it behind the shared eviction lock, so
/// implementations need `Send` but no internal synchronisation.
///
/// Implementations are registered by name in [`crate::registry`] and
/// selected via [`GraphCacheBuilder::eviction`](crate::GraphCacheBuilder::eviction);
/// see the repository README ("Writing a custom policy") for a worked
/// example.
pub trait EvictionPolicy: Send + std::fmt::Debug {
    /// The policy's canonical registry name (e.g. `"hd"`). Recorded in
    /// persisted snapshots so a restore under a different policy can be
    /// detected.
    fn name(&self) -> &str;

    /// Selects at most `evict` victims from the candidates in `view`,
    /// lowest-retention-value first. Implementations must return serials
    /// present in the view and must not return duplicates; returning fewer
    /// than `evict` serials leaves the cache over capacity (the excess is
    /// carried to the next round), so built-ins always return
    /// `evict.min(view.len())` victims. Ties should break toward the older
    /// entry (smaller serial) so victim selection stays deterministic.
    fn select_victims(&mut self, view: &PolicyView<'_>, evict: usize) -> Vec<QuerySerial>;

    /// A query was admitted to the cache stores. `cost` is the admission's
    /// expensiveness score (see [`crate::admission::CostModel`]).
    fn on_admit(&mut self, serial: QuerySerial, cost: f64) {
        let _ = (serial, cost);
    }

    /// A cached entry expedited the query running at logical time `now`,
    /// saving an estimated `saved_cost` (same unit as the statistics
    /// store's `C` column).
    fn on_hit(&mut self, serial: QuerySerial, now: QuerySerial, saved_cost: f64) {
        let _ = (serial, now, saved_cost);
    }

    /// Discards all policy-private state. Called on every snapshot
    /// restore: private state is never persisted and describes the
    /// pre-restore entries (whose serials can collide with restored ones),
    /// so keeping it would misattribute bookkeeping. The statistics rows
    /// themselves survive the restore — they are policy-agnostic.
    fn reset(&mut self) {}
}

/// [`EvictionPolicy`] adapter for the paper's utility-based [`PolicyKind`]
/// strategies. Stateless: every decision derives from the [`PolicyView`]
/// alone, so victim selection is bit-identical to calling
/// [`PolicyKind::select_victims`] directly (the parity test in
/// `tests/policy_engine.rs` asserts this).
#[derive(Debug, Clone, Copy)]
pub struct KindPolicy {
    kind: PolicyKind,
}

impl KindPolicy {
    /// Wraps a [`PolicyKind`].
    pub fn new(kind: PolicyKind) -> Self {
        KindPolicy { kind }
    }

    /// The wrapped kind.
    pub fn kind(&self) -> PolicyKind {
        self.kind
    }
}

impl EvictionPolicy for KindPolicy {
    fn name(&self) -> &str {
        self.kind.registry_name()
    }

    fn select_victims(&mut self, view: &PolicyView<'_>, evict: usize) -> Vec<QuerySerial> {
        self.kind.select_victims(view.rows(), evict, view.now())
    }
}

/// The per-entry statistics a policy consumes — a row of `GCstats`
/// (cf. Table 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyRow {
    /// The cached query's serial number (doubles as insertion time).
    pub serial: QuerySerial,
    /// Serial of the last query this entry expedited (its own serial if it
    /// has never contributed).
    pub last_hit: QuerySerial,
    /// Number of queries this entry expedited (`H`).
    pub hits: u64,
    /// Total sub-iso tests alleviated (`R`, candidate-set reduction).
    pub r_total: u64,
    /// Total estimated query-time saving (`C`).
    pub c_total: f64,
}

/// Which replacement policy a [`GraphCache`](crate::GraphCache) uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Least recently used.
    Lru,
    /// Popularity-based ranking (`H/A`).
    Pop,
    /// Popularity and sub-iso test number (`R/A`).
    Pin,
    /// PIN plus sub-iso test costs (`C/A`).
    Pinc,
    /// Hybrid dynamic: PIN when `CoV²(R) > 1`, else PINC.
    Hd,
}

impl PolicyKind {
    /// All policies, in the order of the paper's Figure 4 legend.
    pub const ALL: [PolicyKind; 5] = [
        PolicyKind::Lru,
        PolicyKind::Pop,
        PolicyKind::Pin,
        PolicyKind::Pinc,
        PolicyKind::Hd,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Lru => "LRU",
            PolicyKind::Pop => "POP",
            PolicyKind::Pin => "PIN",
            PolicyKind::Pinc => "PINC",
            PolicyKind::Hd => "HD",
        }
    }

    /// The lowercase name this kind is registered under in
    /// [`crate::registry`] (also the `--eviction` CLI spelling).
    pub fn registry_name(self) -> &'static str {
        match self {
            PolicyKind::Lru => "lru",
            PolicyKind::Pop => "pop",
            PolicyKind::Pin => "pin",
            PolicyKind::Pinc => "pinc",
            PolicyKind::Hd => "hd",
        }
    }

    /// Selects `evict` victims from `rows` at time `now` (the most recent
    /// serial assigned to any query). Returns the victims' serials,
    /// lowest-utility first. Ties break toward the older entry (smaller
    /// serial), deterministically.
    pub fn select_victims(
        self,
        rows: &[PolicyRow],
        evict: usize,
        now: QuerySerial,
    ) -> Vec<QuerySerial> {
        if evict == 0 || rows.is_empty() {
            return Vec::new();
        }
        let scorer = self.effective(rows);
        let mut scored: Vec<(f64, QuerySerial)> = rows
            .iter()
            .map(|r| (scorer.utility(r, now), r.serial))
            .collect();
        scored.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        scored
            .into_iter()
            .take(evict.min(rows.len()))
            .map(|(_, s)| s)
            .collect()
    }

    /// Resolves HD to PIN or PINC based on the variability of `R`
    /// (squared coefficient of variation, sample variance as in §6.3).
    fn effective(self, rows: &[PolicyRow]) -> PolicyKind {
        match self {
            PolicyKind::Hd => {
                if squared_cov(rows.iter().map(|r| r.r_total as f64)) > 1.0 {
                    PolicyKind::Pin
                } else {
                    PolicyKind::Pinc
                }
            }
            other => other,
        }
    }

    fn utility(self, r: &PolicyRow, now: QuerySerial) -> f64 {
        let age = now.saturating_sub(r.serial).max(1) as f64;
        match self {
            PolicyKind::Lru => r.last_hit as f64,
            PolicyKind::Pop => r.hits as f64 / age,
            PolicyKind::Pin => r.r_total as f64 / age,
            PolicyKind::Pinc => r.c_total / age,
            PolicyKind::Hd => unreachable!("HD resolves to PIN or PINC"),
        }
    }
}

/// Squared coefficient of variation `σ²/µ²` with *sample* variance
/// (n − 1 denominator), matching the paper's running example where
/// R = {170, 80, 76, 210, 120, 10} gives σ ≈ 72 and CoV ≈ 0.65.
pub fn squared_cov(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    if v.len() < 2 {
        return 0.0;
    }
    let n = v.len() as f64;
    let mean = v.iter().sum::<f64>() / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
    var / (mean * mean)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact snapshot of Table 1 in the paper.
    fn table1() -> Vec<PolicyRow> {
        let row = |serial, last_hit, hits, r_total, c_total: f64| PolicyRow {
            serial,
            last_hit,
            hits,
            r_total,
            c_total,
        };
        vec![
            row(11, 91, 23, 170, 2600.0),
            row(13, 51, 32, 80, 1200.0),
            row(37, 69, 26, 76, 780.0),
            row(53, 78, 13, 210, 360.0),
            row(82, 90, 5, 120, 150.0),
            row(91, 95, 4, 10, 270.0),
        ]
    }

    fn victims(kind: PolicyKind) -> Vec<QuerySerial> {
        let mut v = kind.select_victims(&table1(), 2, 100);
        v.sort_unstable();
        v
    }

    /// Paper §6.3: "cached queries with serial number 13 and 37 would be
    /// cached out" under LRU.
    #[test]
    fn paper_running_example_lru() {
        assert_eq!(victims(PolicyKind::Lru), vec![13, 37]);
    }

    /// Paper §6.3: "this policy would evict queries 11 and 53" (POP).
    #[test]
    fn paper_running_example_pop() {
        assert_eq!(victims(PolicyKind::Pop), vec![11, 53]);
    }

    /// Paper §6.3: "this policy would evict queries 13 and 91" (PIN).
    #[test]
    fn paper_running_example_pin() {
        assert_eq!(victims(PolicyKind::Pin), vec![13, 91]);
    }

    /// Paper §6.3: "PINC would evict queries 53 and 82".
    #[test]
    fn paper_running_example_pinc() {
        assert_eq!(victims(PolicyKind::Pinc), vec![53, 82]);
    }

    /// Paper §6.3: µ = 111, σ ≈ 72, CoV ≈ 0.65 < 1 ⇒ HD uses PINC and
    /// evicts 53 and 82.
    #[test]
    fn paper_running_example_hd() {
        assert_eq!(victims(PolicyKind::Hd), vec![53, 82]);
        let cov2 = squared_cov(table1().iter().map(|r| r.r_total as f64));
        assert!((cov2.sqrt() - 0.65).abs() < 0.01, "CoV = {}", cov2.sqrt());
    }

    #[test]
    fn hd_switches_to_pin_on_high_variability() {
        // One enormous R value makes CoV² > 1.
        let mut rows = table1();
        rows[0].r_total = 100_000;
        let hd = PolicyKind::Hd.select_victims(&rows, 2, 100);
        let pin = PolicyKind::Pin.select_victims(&rows, 2, 100);
        assert_eq!(hd, pin);
    }

    #[test]
    fn evict_count_clamped() {
        assert_eq!(PolicyKind::Lru.select_victims(&table1(), 99, 100).len(), 6);
        assert!(PolicyKind::Lru.select_victims(&table1(), 0, 100).is_empty());
        assert!(PolicyKind::Lru.select_victims(&[], 2, 100).is_empty());
    }

    #[test]
    fn ties_break_by_serial() {
        let rows = vec![
            PolicyRow {
                serial: 5,
                last_hit: 5,
                hits: 0,
                r_total: 0,
                c_total: 0.0,
            },
            PolicyRow {
                serial: 3,
                last_hit: 3,
                hits: 0,
                r_total: 0,
                c_total: 0.0,
            },
        ];
        // Equal POP utility (0): the older entry (serial 3) goes first.
        assert_eq!(PolicyKind::Pop.select_victims(&rows, 1, 10), vec![3]);
    }

    #[test]
    fn age_floor_prevents_division_by_zero() {
        let rows = vec![PolicyRow {
            serial: 10,
            last_hit: 10,
            hits: 3,
            r_total: 9,
            c_total: 1.0,
        }];
        // now == serial: age clamps to 1 instead of dividing by zero.
        assert_eq!(PolicyKind::Pop.select_victims(&rows, 1, 10), vec![10]);
    }

    #[test]
    fn cov_edge_cases() {
        assert_eq!(squared_cov([].into_iter()), 0.0);
        assert_eq!(squared_cov([5.0].into_iter()), 0.0);
        assert_eq!(squared_cov([0.0, 0.0].into_iter()), 0.0);
        // Identical values → zero variability.
        assert_eq!(squared_cov([7.0, 7.0, 7.0].into_iter()), 0.0);
    }

    #[test]
    fn names_and_all() {
        assert_eq!(PolicyKind::ALL.len(), 5);
        assert_eq!(PolicyKind::Hd.name(), "HD");
        assert_eq!(PolicyKind::Lru.name(), "LRU");
        assert_eq!(PolicyKind::Hd.registry_name(), "hd");
    }

    #[test]
    fn kind_policy_matches_enum_dispatch() {
        let rows = table1();
        for kind in PolicyKind::ALL {
            let direct = kind.select_victims(&rows, 2, 100);
            let via_trait = KindPolicy::new(kind).select_victims(&PolicyView::new(&rows, 100), 2);
            assert_eq!(direct, via_trait, "{}", kind.name());
            assert_eq!(KindPolicy::new(kind).name(), kind.registry_name());
        }
    }

    #[test]
    fn policy_view_accessors() {
        let rows = table1();
        let view = PolicyView::new(&rows, 100);
        assert_eq!(view.len(), 6);
        assert!(!view.is_empty());
        assert_eq!(view.now(), 100);
        assert_eq!(view.age(&rows[0]), 89.0);
        // now == serial clamps to age 1.
        let same = PolicyRow {
            serial: 100,
            last_hit: 100,
            hits: 0,
            r_total: 0,
            c_total: 0.0,
        };
        assert_eq!(view.age(&same), 1.0);
        assert!(PolicyView::new(&[], 5).is_empty());
    }
}
