//! Per-query records and run-level aggregates — what the Statistics Monitor
//! observes (paper §5.2) and what the evaluation figures are computed from.

use crate::stats::QuerySerial;
use std::time::Duration;

/// Everything measured about one query's execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryRecord {
    /// Query serial.
    pub serial: QuerySerial,
    /// Method M filtering time.
    pub m_filter: Duration,
    /// GraphCache processor time (index probe + hit verification).
    pub gc_filter: Duration,
    /// Verification time over the pruned candidate set.
    pub verify: Duration,
    /// Cache maintenance time attributed to this query (window flush /
    /// re-indexing executed inline; zero in background mode).
    pub maintenance: Duration,
    /// Sub-iso tests executed against dataset graphs.
    pub subiso_tests: u64,
    /// Matcher work (recursion steps) spent on dataset verification.
    pub verify_work: u64,
    /// Sub-iso tests spent verifying cache-hit candidates (the GC
    /// processors' sweep; exact fingerprint confirmations excluded).
    pub gc_tests: u64,
    /// Matcher work spent on hit detection — what the per-query
    /// verification budget pool deducts
    /// ([`GcConfig::verify_budget`](crate::GcConfig::verify_budget)).
    pub budget_spent: u64,
    /// The hit-verification sweep ran out of budget before covering every
    /// candidate; the hit sets (and therefore pruning) are a sound subset.
    pub truncated: bool,
    /// The exact hit was resolved through the O(1) fingerprint map rather
    /// than a candidate sweep.
    pub exact_via_fingerprint: bool,
    /// |CS_M(g)| — Method M's candidate set size.
    pub cs_m_size: usize,
    /// |CS_GC(g)| — candidate set size after GraphCache pruning.
    pub cs_gc_size: usize,
    /// Number of verified sub-direction hits (`g ⊆ cached`).
    pub sub_hits: usize,
    /// Number of verified super-direction hits (`cached ⊆ g`).
    pub super_hits: usize,
    /// The query hit an isomorphic cached query (first special case).
    pub exact_hit: bool,
    /// The query was answered empty via the second special case.
    pub empty_shortcut: bool,
    /// Final answer size.
    pub answer_size: usize,
    /// Fragment keys probed against the fragment store (0 when the
    /// fragment layer is off, the query is supergraph-directed, or path
    /// enumeration overflowed its work cap).
    pub fragment_probes: u64,
    /// Fragment keys found resident in the store.
    pub fragment_hits: u64,
    /// Candidates removed by intersecting fragment occurrence sets.
    pub fragment_pruned: u64,
    /// The query's wall-clock deadline expired mid-execution: the sweep
    /// was aborted and the answer discarded (the daemon maps this to
    /// `ERR code=deadline`). Implies [`truncated`](Self::truncated).
    pub deadline_exceeded: bool,
}

impl QueryRecord {
    /// Total query latency: filtering (M + GC) + verification +
    /// inline maintenance.
    pub fn total(&self) -> Duration {
        self.m_filter + self.gc_filter + self.verify + self.maintenance
    }

    /// Query time excluding maintenance (the per-query cost the paper plots
    /// next to the overhead bars in Fig. 10).
    pub fn query_time(&self) -> Duration {
        self.m_filter + self.gc_filter + self.verify
    }

    /// Whether any kind of cache hit helped this query. Fragment hits are
    /// the fourth hit class: a resident fragment pre-pruned (or could have
    /// pre-pruned) the matcher even though no whole cached answer subsumed
    /// the query.
    pub fn any_hit(&self) -> bool {
        self.exact_hit
            || self.empty_shortcut
            || self.sub_hits > 0
            || self.super_hits > 0
            || self.fragment_hits > 0
    }

    /// The record fields that are a pure function of the query sequence
    /// (durations excluded), as a stable `(name, value)` list. This is the
    /// wire schema `gc serve` puts on every `RESULT` frame: a client that
    /// replays these names through
    /// [`QueryRecord::set_deterministic_field`] reconstructs a record whose
    /// [`RunCounters`] contribution is identical to the server's, which is
    /// what makes served counters byte-comparable to in-process
    /// [`RunCounters::from_records`]. Renaming or reordering entries is a
    /// protocol change.
    pub fn deterministic_fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("subiso_tests", self.subiso_tests),
            ("verify_work", self.verify_work),
            ("gc_tests", self.gc_tests),
            ("budget_spent", self.budget_spent),
            ("truncated", self.truncated as u64),
            ("exact_fp", self.exact_via_fingerprint as u64),
            ("cs_m", self.cs_m_size as u64),
            ("cs_gc", self.cs_gc_size as u64),
            ("sub_hits", self.sub_hits as u64),
            ("super_hits", self.super_hits as u64),
            ("exact", self.exact_hit as u64),
            ("empty", self.empty_shortcut as u64),
            ("answer_size", self.answer_size as u64),
            ("fragment_probes", self.fragment_probes),
            ("fragment_hits", self.fragment_hits),
            ("fragment_pruned", self.fragment_pruned),
            ("deadline", self.deadline_exceeded as u64),
        ]
    }

    /// Sets one field by its [`deterministic_fields`] wire name. Returns
    /// `false` for unknown names (the caller decides whether that is a
    /// protocol error or a forward-compatible extra field).
    ///
    /// [`deterministic_fields`]: QueryRecord::deterministic_fields
    pub fn set_deterministic_field(&mut self, name: &str, value: u64) -> bool {
        match name {
            "subiso_tests" => self.subiso_tests = value,
            "verify_work" => self.verify_work = value,
            "gc_tests" => self.gc_tests = value,
            "budget_spent" => self.budget_spent = value,
            "truncated" => self.truncated = value != 0,
            "exact_fp" => self.exact_via_fingerprint = value != 0,
            "cs_m" => self.cs_m_size = value as usize,
            "cs_gc" => self.cs_gc_size = value as usize,
            "sub_hits" => self.sub_hits = value as usize,
            "super_hits" => self.super_hits = value as usize,
            "exact" => self.exact_hit = value != 0,
            "empty" => self.empty_shortcut = value != 0,
            "answer_size" => self.answer_size = value as usize,
            "fragment_probes" => self.fragment_probes = value,
            "fragment_hits" => self.fragment_hits = value,
            "fragment_pruned" => self.fragment_pruned = value,
            "deadline" => self.deadline_exceeded = value != 0,
            _ => return false,
        }
        true
    }
}

/// Cumulative per-phase breakdown of cache maintenance — what the Window
/// Manager spent each round on and how much cache state it touched.
/// Returned by [`GraphCache::maint_stats`](crate::GraphCache::maint_stats)
/// and printed by `gc query --maint-stats`.
///
/// With the sharded delta path, `index_delta` scales with the round's
/// victim/admit delta (plus any compactions), not with the cache size;
/// `shards_patched` vs `rounds × shard count` shows how much of the cache
/// each round actually touched.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MaintStats {
    /// Maintenance rounds executed.
    pub rounds: u64,
    /// Total wall time across rounds (equals
    /// [`GraphCache::maintenance_total`](crate::GraphCache::maintenance_total)).
    pub total: Duration,
    /// Time assembling policy rows and selecting victims.
    pub victim_select: Duration,
    /// Time applying the victim/admit delta to shard indexes (including
    /// any compaction fallbacks).
    pub index_delta: Duration,
    /// Time upkeeping statistics rows (drop victims, seed admissions).
    pub stats_upkeep: Duration,
    /// Time spent on fragment-store upkeep (building occurrence sets for
    /// new fragments and evicting down to the fragment byte budget).
    pub fragment_upkeep: Duration,
    /// Entries admitted into the cache.
    pub entries_admitted: u64,
    /// Entries evicted from the cache.
    pub entries_evicted: u64,
    /// Shard patches applied (a shard touched by k rounds counts k times).
    pub shards_patched: u64,
    /// Per-shard dense rebuilds triggered by tombstone or postings debt.
    pub compactions: u64,
    /// Dead posting slots currently left behind in shard postings arenas by
    /// evictions (a point-in-time gauge, reclaimed by compaction). Unlike
    /// `tombstone_debt` this sees *postings* waste: evicting feature-rich
    /// entries can rot the postings arena long before half the slots die.
    pub dead_postings: u64,
    /// Fragments built into the fragment store during maintenance.
    pub fragments_built: u64,
    /// Fragments evicted from the fragment store by its byte budget.
    pub fragments_evicted: u64,
}

impl MaintStats {
    /// Entries touched by maintenance (admissions + evictions) — the delta
    /// volume `index_delta` should scale with.
    pub fn entries_touched(&self) -> u64 {
        self.entries_admitted + self.entries_evicted
    }

    /// The maintenance counters that are a pure function of the query
    /// sequence (durations excluded), as a stable `(name, value)` list.
    /// The benchmark harness serializes exactly these names, and the CI
    /// regression gate compares them against the committed baseline, so
    /// renaming or reordering entries is a schema change.
    pub fn deterministic_counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("maint_rounds", self.rounds),
            ("entries_admitted", self.entries_admitted),
            ("entries_evicted", self.entries_evicted),
            ("shards_patched", self.shards_patched),
            ("compactions", self.compactions),
            ("fragments_built", self.fragments_built),
            ("fragments_evicted", self.fragments_evicted),
            ("postings_debt", self.dead_postings),
        ]
    }
}

/// Integer-exact totals over a run of queries — the deterministic
/// complement to [`RunSummary`], whose averages are floating-point.
///
/// Every field is a pure function of the query sequence and the cache
/// configuration (no wall-clock, no thread scheduling with a single
/// client), which is what makes these totals suitable for bit-identical
/// benchmark output and baseline regression gating. Aggregation is plain
/// `u64` addition, so two runs over the same records produce the same
/// bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunCounters {
    /// Number of queries replayed (after any warm-up skip).
    pub queries: u64,
    /// Queries helped by any cache hit (exact, empty shortcut, sub/super).
    pub cache_assisted: u64,
    /// Exact-match special cases.
    pub exact_hits: u64,
    /// Exact hits resolved through the O(1) fingerprint map.
    pub exact_fp_hits: u64,
    /// Empty-answer shortcut special cases.
    pub empty_shortcuts: u64,
    /// Queries whose hit-verification sweep was budget-truncated.
    pub truncated: u64,
    /// Verified sub-direction hits across the run.
    pub sub_hits: u64,
    /// Verified super-direction hits across the run.
    pub super_hits: u64,
    /// Sub-iso tests against dataset graphs.
    pub subiso_tests: u64,
    /// Sub-iso tests spent verifying cache-hit candidates.
    pub gc_tests: u64,
    /// Matcher work charged to the hit-verification budget pool.
    pub budget_spent: u64,
    /// Matcher work (recursion steps) spent on dataset verification.
    pub verify_work: u64,
    /// Summed |CS_M| — Method M's candidate set sizes.
    pub cs_m: u64,
    /// Summed |CS_GC| — candidate set sizes after GraphCache pruning.
    pub cs_gc: u64,
    /// Summed answer sizes — a strong end-to-end determinism signal.
    pub answers: u64,
    /// Fragment keys probed against the fragment store.
    pub fragment_probes: u64,
    /// Fragment keys found resident (the fourth hit class).
    pub fragment_hits: u64,
    /// Candidates removed by fragment occurrence-set intersection.
    pub fragment_pruned: u64,
    /// Queries aborted because their wall-clock deadline expired.
    pub deadline_aborts: u64,
}

impl RunCounters {
    /// Accumulates the totals from per-query records, skipping the first
    /// `warmup` queries (mirroring [`RunSummary::from_records`]).
    pub fn from_records(records: &[QueryRecord], warmup: usize) -> Self {
        let mut c = RunCounters::default();
        for r in &records[warmup.min(records.len())..] {
            c.add_record(r);
        }
        c
    }

    /// Folds one record into the totals — the incremental form of
    /// [`from_records`](RunCounters::from_records), used by `gc serve` to
    /// keep live global and per-session tallies without retaining every
    /// record.
    pub fn add_record(&mut self, r: &QueryRecord) {
        self.queries += 1;
        self.cache_assisted += r.any_hit() as u64;
        self.exact_hits += r.exact_hit as u64;
        self.exact_fp_hits += r.exact_via_fingerprint as u64;
        self.empty_shortcuts += r.empty_shortcut as u64;
        self.truncated += r.truncated as u64;
        self.sub_hits += r.sub_hits as u64;
        self.super_hits += r.super_hits as u64;
        self.subiso_tests += r.subiso_tests;
        self.gc_tests += r.gc_tests;
        self.budget_spent += r.budget_spent;
        self.verify_work += r.verify_work;
        self.cs_m += r.cs_m_size as u64;
        self.cs_gc += r.cs_gc_size as u64;
        self.answers += r.answer_size as u64;
        self.fragment_probes += r.fragment_probes;
        self.fragment_hits += r.fragment_hits;
        self.fragment_pruned += r.fragment_pruned;
        self.deadline_aborts += r.deadline_exceeded as u64;
    }

    /// Stable `(name, value)` enumeration of every counter, in schema
    /// order. The benchmark harness serializes exactly these names, and
    /// the CI regression gate compares them against the committed
    /// baseline, so renaming or reordering entries is a schema change.
    pub fn deterministic_counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("queries", self.queries),
            ("cache_assisted", self.cache_assisted),
            ("exact_hits", self.exact_hits),
            ("exact_fp_hits", self.exact_fp_hits),
            ("empty_shortcuts", self.empty_shortcuts),
            ("truncated", self.truncated),
            ("sub_hits", self.sub_hits),
            ("super_hits", self.super_hits),
            ("subiso_tests", self.subiso_tests),
            ("gc_tests", self.gc_tests),
            ("budget_spent", self.budget_spent),
            ("verify_work", self.verify_work),
            ("cs_m", self.cs_m),
            ("cs_gc", self.cs_gc),
            ("answers", self.answers),
            ("fragment_probes", self.fragment_probes),
            ("fragment_hits", self.fragment_hits),
            ("fragment_pruned", self.fragment_pruned),
            ("deadline_aborts", self.deadline_aborts),
        ]
    }
}

/// Traffic-placement counters kept by the `gc route` front-end — how many
/// queries took the exact-repeat fast lane, how many candidate probes were
/// fanned out, and how often a dead peer degraded a slice to miss-only.
///
/// These live *outside* the deterministic counter schema on purpose:
/// [`RunCounters::deterministic_counters`] and
/// [`MaintStats::deterministic_counters`] are frozen wire/baseline schemas
/// (1-peer and N-peer routed runs must produce byte-identical vectors, and
/// `peer_misses` is nonzero only when topology — not the query sequence —
/// changes). The router appends them to its `STATS` payload as extra keys,
/// which every consumer of the deterministic schema ignores.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouteCounters {
    /// Queries whose fingerprint was already seen by the router: sent
    /// straight to the owning peer with no candidate fan-out (the routed
    /// form of the O(1) exact-repeat fast path).
    pub routed_exact: u64,
    /// Candidate probes (`PROBE` frames) fanned out to peers. One query
    /// probing three live peers counts three.
    pub fanout_probes: u64,
    /// Peer failures absorbed as degraded slices: a probe or apply that
    /// found its peer dead, or an owning peer lost mid-query (the query is
    /// then executed cache-bypassed on the survivors).
    pub peer_misses: u64,
}

impl RouteCounters {
    /// Stable `(name, value)` list, in declaration order — the keys the
    /// router appends to its proxied `STATS` payload.
    pub fn stats_counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("routed_exact", self.routed_exact),
            ("fanout_probes", self.fanout_probes),
            ("peer_misses", self.peer_misses),
        ]
    }
}

/// Aggregates over a run of queries; the paper's reported metrics are
/// "query time and number of sub-iso tests per query, along with the
/// speedups introduced by GC" (§7.2).
#[derive(Debug, Clone, Default)]
pub struct RunSummary {
    /// Number of queries.
    pub queries: usize,
    /// Mean query time (µs), excluding maintenance.
    pub avg_query_time_us: f64,
    /// Mean sub-iso tests per query.
    pub avg_subiso_tests: f64,
    /// Mean |CS_M|.
    pub avg_cs_m: f64,
    /// Mean |CS_GC|.
    pub avg_cs_gc: f64,
    /// Mean maintenance time per query (µs) — the Fig. 10 overhead bars.
    pub avg_maintenance_us: f64,
    /// Fraction of queries with any cache hit.
    pub hit_rate: f64,
    /// Number of exact-match special cases.
    pub exact_hits: usize,
    /// Exact hits resolved through the O(1) fingerprint map.
    pub exact_fp_hits: usize,
    /// Number of empty-shortcut special cases.
    pub empty_shortcuts: usize,
    /// Queries whose hit-verification sweep was budget-truncated.
    pub truncated_queries: usize,
    /// Total matcher work spent on hit verification (budget pool usage).
    pub total_budget_spent: u64,
    /// Total wall time of the run (µs), queries only.
    pub total_query_time_us: f64,
    /// Total sub-iso tests.
    pub total_subiso_tests: u64,
}

impl RunSummary {
    /// Builds the aggregate from per-query records, skipping the first
    /// `warmup` queries (the paper allows one window before measuring).
    pub fn from_records(records: &[QueryRecord], warmup: usize) -> Self {
        let measured = &records[warmup.min(records.len())..];
        let n = measured.len();
        if n == 0 {
            return RunSummary::default();
        }
        let mut s = RunSummary {
            queries: n,
            ..Default::default()
        };
        for r in measured {
            s.avg_query_time_us += r.query_time().as_secs_f64() * 1e6;
            s.avg_subiso_tests += r.subiso_tests as f64;
            s.avg_cs_m += r.cs_m_size as f64;
            s.avg_cs_gc += r.cs_gc_size as f64;
            s.avg_maintenance_us += r.maintenance.as_secs_f64() * 1e6;
            s.hit_rate += r.any_hit() as u64 as f64;
            s.exact_hits += r.exact_hit as usize;
            s.exact_fp_hits += r.exact_via_fingerprint as usize;
            s.empty_shortcuts += r.empty_shortcut as usize;
            s.truncated_queries += r.truncated as usize;
            s.total_budget_spent += r.budget_spent;
            s.total_subiso_tests += r.subiso_tests;
        }
        s.total_query_time_us = s.avg_query_time_us;
        s.avg_query_time_us /= n as f64;
        s.avg_subiso_tests /= n as f64;
        s.avg_cs_m /= n as f64;
        s.avg_cs_gc /= n as f64;
        s.avg_maintenance_us /= n as f64;
        s.hit_rate /= n as f64;
        s
    }

    /// Query-time speedup of `self` (GraphCache) relative to `baseline`
    /// (Method M alone): `baseline.avg / self.avg` — values > 1 are
    /// improvements, exactly as the paper defines speedup (§7.2).
    pub fn time_speedup_vs(&self, baseline: &RunSummary) -> f64 {
        if self.avg_query_time_us <= 0.0 {
            return f64::INFINITY;
        }
        baseline.avg_query_time_us / self.avg_query_time_us
    }

    /// Sub-iso-test speedup relative to `baseline`.
    pub fn subiso_speedup_vs(&self, baseline: &RunSummary) -> f64 {
        if self.avg_subiso_tests <= 0.0 {
            return f64::INFINITY;
        }
        baseline.avg_subiso_tests / self.avg_subiso_tests
    }

    /// Observed service throughput in queries per second, given the wall
    /// clock of the whole run. With the concurrent service API the summed
    /// per-query times overstate elapsed time (queries overlap), so batch
    /// throughput must be computed from wall clock, not from
    /// [`RunSummary::total_query_time_us`].
    pub fn throughput_qps(&self, wall: Duration) -> f64 {
        self.queries as f64 / wall.as_secs_f64().max(1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(us: u64, tests: u64, hit: bool) -> QueryRecord {
        QueryRecord {
            verify: Duration::from_micros(us),
            subiso_tests: tests,
            sub_hits: hit as usize,
            cs_m_size: 10,
            cs_gc_size: 10usize.saturating_sub(tests as usize),
            ..Default::default()
        }
    }

    #[test]
    fn totals_and_averages() {
        let recs = vec![record(100, 4, true), record(300, 8, false)];
        let s = RunSummary::from_records(&recs, 0);
        assert_eq!(s.queries, 2);
        assert!((s.avg_query_time_us - 200.0).abs() < 1.0);
        assert!((s.avg_subiso_tests - 6.0).abs() < 1e-9);
        assert!((s.hit_rate - 0.5).abs() < 1e-9);
        assert_eq!(s.total_subiso_tests, 12);
    }

    #[test]
    fn warmup_skipped() {
        let recs = vec![record(1_000_000, 100, false), record(100, 2, false)];
        let s = RunSummary::from_records(&recs, 1);
        assert_eq!(s.queries, 1);
        assert!((s.avg_subiso_tests - 2.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_definition() {
        let base = RunSummary {
            avg_query_time_us: 400.0,
            avg_subiso_tests: 20.0,
            ..Default::default()
        };
        let gc = RunSummary {
            avg_query_time_us: 100.0,
            avg_subiso_tests: 5.0,
            ..Default::default()
        };
        assert!((gc.time_speedup_vs(&base) - 4.0).abs() < 1e-9);
        assert!((gc.subiso_speedup_vs(&base) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn empty_records() {
        let s = RunSummary::from_records(&[], 0);
        assert_eq!(s.queries, 0);
        let s2 = RunSummary::from_records(&[record(1, 1, false)], 5);
        assert_eq!(s2.queries, 0);
    }

    #[test]
    fn record_totals() {
        let r = QueryRecord {
            m_filter: Duration::from_micros(10),
            gc_filter: Duration::from_micros(20),
            verify: Duration::from_micros(30),
            maintenance: Duration::from_micros(40),
            ..Default::default()
        };
        assert_eq!(r.total(), Duration::from_micros(100));
        assert_eq!(r.query_time(), Duration::from_micros(60));
        assert!(!r.any_hit());
    }

    #[test]
    fn throughput_from_wall_clock() {
        let s = RunSummary {
            queries: 100,
            ..Default::default()
        };
        assert!((s.throughput_qps(Duration::from_secs(2)) - 50.0).abs() < 1e-9);
        // Zero wall clock must not divide by zero.
        assert!(s.throughput_qps(Duration::ZERO).is_finite());
    }

    #[test]
    fn run_counters_totals_and_warmup() {
        let recs = vec![record(100, 4, true), record(300, 8, false)];
        let c = RunCounters::from_records(&recs, 0);
        assert_eq!(c.queries, 2);
        assert_eq!(c.subiso_tests, 12);
        assert_eq!(c.cache_assisted, 1);
        assert_eq!(c.sub_hits, 1);
        assert_eq!(c.cs_m, 20);
        let warm = RunCounters::from_records(&recs, 1);
        assert_eq!(warm.queries, 1);
        assert_eq!(warm.subiso_tests, 8);
        // Warm-up larger than the record count must not panic.
        assert_eq!(RunCounters::from_records(&recs, 10), RunCounters::default());
    }

    #[test]
    fn counter_enumerations_are_complete_and_stable() {
        let c = RunCounters {
            queries: 1,
            cache_assisted: 2,
            exact_hits: 3,
            exact_fp_hits: 4,
            empty_shortcuts: 5,
            truncated: 6,
            sub_hits: 7,
            super_hits: 8,
            subiso_tests: 9,
            gc_tests: 10,
            budget_spent: 11,
            verify_work: 12,
            cs_m: 13,
            cs_gc: 14,
            answers: 15,
            fragment_probes: 16,
            fragment_hits: 17,
            fragment_pruned: 18,
            deadline_aborts: 19,
        };
        let listed = c.deterministic_counters();
        // Every field appears exactly once, in declaration order, with
        // distinct values 1..=19 proving no field maps to a wrong name.
        assert_eq!(listed.len(), 19);
        let values: Vec<u64> = listed.iter().map(|(_, v)| *v).collect();
        assert_eq!(values, (1..=19).collect::<Vec<u64>>());
        let m = MaintStats {
            rounds: 1,
            entries_admitted: 2,
            entries_evicted: 3,
            shards_patched: 4,
            compactions: 5,
            fragments_built: 6,
            fragments_evicted: 7,
            dead_postings: 8,
            ..Default::default()
        };
        let maint = m.deterministic_counters();
        assert_eq!(maint.len(), 8);
        let values: Vec<u64> = maint.iter().map(|(_, v)| *v).collect();
        assert_eq!(values, (1..=8).collect::<Vec<u64>>());
    }

    #[test]
    fn route_counters_enumeration_is_complete_and_stable() {
        let r = RouteCounters {
            routed_exact: 1,
            fanout_probes: 2,
            peer_misses: 3,
        };
        let listed = r.stats_counters();
        assert_eq!(listed.len(), 3);
        let values: Vec<u64> = listed.iter().map(|(_, v)| *v).collect();
        assert_eq!(values, vec![1, 2, 3]);
        // Route counters must never collide with the frozen deterministic
        // schema — they ride in the same STATS namespace.
        let frozen: Vec<&str> = RunCounters::default()
            .deterministic_counters()
            .into_iter()
            .map(|(k, _)| k)
            .chain(
                MaintStats::default()
                    .deterministic_counters()
                    .into_iter()
                    .map(|(k, _)| k),
            )
            .collect();
        for (k, _) in listed {
            assert!(!frozen.contains(&k), "{k} collides with baseline schema");
        }
    }

    #[test]
    fn deterministic_fields_round_trip_through_names() {
        let original = QueryRecord {
            subiso_tests: 1,
            verify_work: 2,
            gc_tests: 3,
            budget_spent: 4,
            truncated: true,
            exact_via_fingerprint: true,
            cs_m_size: 7,
            cs_gc_size: 8,
            sub_hits: 9,
            super_hits: 10,
            exact_hit: true,
            empty_shortcut: true,
            answer_size: 13,
            fragment_probes: 14,
            fragment_hits: 15,
            fragment_pruned: 16,
            deadline_exceeded: true,
            ..Default::default()
        };
        let mut rebuilt = QueryRecord::default();
        for (name, value) in original.deterministic_fields() {
            assert!(rebuilt.set_deterministic_field(name, value), "{name}");
        }
        // The rebuilt record contributes identical counters — the property
        // the wire protocol's RESULT frame relies on.
        assert_eq!(
            RunCounters::from_records(std::slice::from_ref(&rebuilt), 0),
            RunCounters::from_records(std::slice::from_ref(&original), 0)
        );
        assert_eq!(
            rebuilt.deterministic_fields(),
            original.deterministic_fields()
        );
        assert!(!rebuilt.set_deterministic_field("no_such_field", 1));
    }

    #[test]
    fn add_record_matches_from_records() {
        let recs = vec![record(100, 4, true), record(300, 8, false)];
        let mut incremental = RunCounters::default();
        for r in &recs {
            incremental.add_record(r);
        }
        assert_eq!(incremental, RunCounters::from_records(&recs, 0));
    }

    #[test]
    fn zero_time_speedup_is_infinite() {
        let base = RunSummary {
            avg_query_time_us: 10.0,
            avg_subiso_tests: 1.0,
            ..Default::default()
        };
        let zero = RunSummary::default();
        assert!(zero.time_speedup_vs(&base).is_infinite());
        assert!(zero.subiso_speedup_vs(&base).is_infinite());
    }
}
