//! The GraphCache<sub>sub</sub> / GraphCache<sub>super</sub> processors
//! (paper §5.1): turn the query index's candidate slots into *verified* hit
//! sets by running sub-iso tests against the cached query graphs.

use crate::entry::CacheSnapshot;
use crate::stats::QuerySerial;
use gc_graph::LabeledGraph;
use gc_index::paths::PathProfile;
use gc_methods::QueryKind;
use gc_subiso::{MatchConfig, Matcher};

/// Verified cache hits for one new query.
#[derive(Debug, Clone, Default)]
pub struct HitSet {
    /// Serials of cached queries `q` with `g ⊆ q` — `Result_sub(g)`.
    pub sub: Vec<QuerySerial>,
    /// Serials of cached queries `q` with `q ⊆ g` — `Result_super(g)`.
    pub super_: Vec<QuerySerial>,
    /// A cached query isomorphic to `g`, when one exists (the first special
    /// case of §5.1: containment in either direction + equal node and edge
    /// counts implies isomorphism).
    pub exact: Option<QuerySerial>,
    /// Number of sub-iso tests spent verifying candidates.
    pub tests: u64,
    /// Total matcher work (recursion steps) spent verifying candidates.
    pub work: u64,
}

/// Runs both processors for `query` against the current cache snapshot.
///
/// Only entries answered under the same query `kind` participate: a
/// subgraph-mode answer set means "dataset graphs containing the query"
/// while a supergraph-mode one means "dataset graphs contained in it", so
/// cross-kind hits would prune with the wrong set semantics.
pub fn find_hits(
    snapshot: &CacheSnapshot,
    query: &LabeledGraph,
    kind: QueryKind,
    matcher: &dyn Matcher,
    cfg: &MatchConfig,
) -> HitSet {
    let profile = snapshot.profile_of(query);
    find_hits_with_profile(snapshot, query, kind, &profile, matcher, cfg)
}

/// Like [`find_hits`] but reuses the query's precomputed feature profile.
///
/// Candidate probing fans across the snapshot's shards: the query's
/// feature profile is computed once and swept against each shard's index,
/// and the verified hits are merged (shards partition the cache by serial,
/// so no candidate appears twice).
pub fn find_hits_with_profile(
    snapshot: &CacheSnapshot,
    query: &LabeledGraph,
    kind: QueryKind,
    profile: &PathProfile,
    matcher: &dyn Matcher,
    cfg: &MatchConfig,
) -> HitSet {
    let mut hits = HitSet::default();
    let qn = query.node_count();
    let qm = query.edge_count();
    for shard in snapshot.shards() {
        let candidates = shard
            .index()
            .candidates_from_profile(profile, qn as u32, qm as u32);

        for &slot in &candidates.sub {
            // Candidate slots are always live (tombstones never leave the
            // index sweep), so the lookup cannot miss.
            let Some(entry) = shard.entry_at(slot) else {
                continue;
            };
            if entry.kind != kind {
                continue;
            }
            let out = matcher.contains_with(query, &entry.graph, cfg);
            hits.tests += 1;
            hits.work += out.nodes_expanded;
            if out.found {
                hits.sub.push(entry.serial);
                if entry.graph.node_count() == qn && entry.graph.edge_count() == qm {
                    hits.exact.get_or_insert(entry.serial);
                }
            }
        }
        for &slot in &candidates.super_ {
            let Some(entry) = shard.entry_at(slot) else {
                continue;
            };
            if entry.kind != kind {
                continue;
            }
            // Same-size slots were already decided by the sub pass:
            // containment in either direction at equal size is isomorphism.
            let same_size = entry.graph.node_count() == qn && entry.graph.edge_count() == qm;
            if same_size {
                if hits.sub.contains(&entry.serial) {
                    hits.super_.push(entry.serial);
                }
                continue;
            }
            let out = matcher.contains_with(&entry.graph, query, cfg);
            hits.tests += 1;
            hits.work += out.nodes_expanded;
            if out.found {
                hits.super_.push(entry.serial);
            }
        }
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::CacheEntry;
    use crate::query_index::QueryIndexConfig;
    use gc_graph::GraphId;
    use gc_subiso::Vf2;
    use std::sync::Arc;

    fn path_graph(labels: &[u32]) -> LabeledGraph {
        let edges: Vec<(u32, u32)> = (0..labels.len() as u32 - 1).map(|i| (i, i + 1)).collect();
        LabeledGraph::from_parts(labels.to_vec(), &edges)
    }

    fn snapshot_of_kind(graphs: Vec<LabeledGraph>, kind: QueryKind) -> CacheSnapshot {
        let entries = graphs
            .into_iter()
            .enumerate()
            .map(|(i, graph)| {
                Arc::new(CacheEntry {
                    serial: (i as u64 + 1) * 100,
                    profile: gc_index::paths::enumerate_paths(&graph, 4, u64::MAX),
                    graph: Arc::new(graph),
                    answer: vec![GraphId(i as u32)],
                    kind,
                })
            })
            .collect();
        CacheSnapshot::build(QueryIndexConfig::default(), entries)
    }

    fn snapshot(graphs: Vec<LabeledGraph>) -> CacheSnapshot {
        snapshot_of_kind(graphs, QueryKind::Subgraph)
    }

    #[test]
    fn sub_and_super_hits_verified() {
        let snap = snapshot(vec![
            path_graph(&[0, 1, 0, 1]), // 100: g ⊆ this
            path_graph(&[0, 1]),       // 200: this ⊆ g
            path_graph(&[7, 7, 7]),    // 300: unrelated
        ]);
        let g = path_graph(&[0, 1, 0]);
        let hits = find_hits(
            &snap,
            &g,
            QueryKind::Subgraph,
            &Vf2::new(),
            &MatchConfig::UNBOUNDED,
        );
        assert_eq!(hits.sub, vec![100]);
        assert_eq!(hits.super_, vec![200]);
        assert!(hits.exact.is_none());
        assert!(hits.tests >= 2);
    }

    #[test]
    fn exact_hit_detected() {
        let snap = snapshot(vec![path_graph(&[0, 1, 0])]);
        let g = path_graph(&[0, 1, 0]);
        let hits = find_hits(
            &snap,
            &g,
            QueryKind::Subgraph,
            &Vf2::new(),
            &MatchConfig::UNBOUNDED,
        );
        assert_eq!(hits.exact, Some(100));
        assert_eq!(hits.sub, vec![100]);
        assert_eq!(hits.super_, vec![100]);
    }

    #[test]
    fn same_size_non_isomorphic_no_exact() {
        // Same node and edge count, different structure/labels.
        let snap = snapshot(vec![path_graph(&[0, 1, 2])]);
        let g = path_graph(&[0, 2, 1]);
        let hits = find_hits(
            &snap,
            &g,
            QueryKind::Subgraph,
            &Vf2::new(),
            &MatchConfig::UNBOUNDED,
        );
        assert!(hits.exact.is_none());
        assert!(hits.sub.is_empty());
        assert!(hits.super_.is_empty());
    }

    #[test]
    fn filter_false_positives_rejected_by_verifier() {
        // Same feature counts up to length 4 may still not contain g; the
        // verifier must reject. Cycle of 6 vs two triangles sharing labels:
        let hexagon = LabeledGraph::from_parts(
            vec![0; 6],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)],
        );
        let snap = snapshot(vec![hexagon]);
        let triangle = LabeledGraph::from_parts(vec![0; 3], &[(0, 1), (1, 2), (2, 0)]);
        let hits = find_hits(
            &snap,
            &triangle,
            QueryKind::Subgraph,
            &Vf2::new(),
            &MatchConfig::UNBOUNDED,
        );
        assert!(hits.sub.is_empty(), "hexagon does not contain a triangle");
    }

    #[test]
    fn empty_cache_no_hits() {
        let snap = snapshot(vec![]);
        let hits = find_hits(
            &snap,
            &path_graph(&[0, 1]),
            QueryKind::Subgraph,
            &Vf2::new(),
            &MatchConfig::UNBOUNDED,
        );
        assert!(hits.sub.is_empty() && hits.super_.is_empty() && hits.exact.is_none());
        assert_eq!(hits.tests, 0);
    }

    #[test]
    fn cross_kind_entries_never_hit() {
        // Entries answered under supergraph semantics are invisible to a
        // subgraph query (and vice versa) — even an isomorphic one.
        let snap = snapshot_of_kind(
            vec![path_graph(&[0, 1, 0]), path_graph(&[0, 1])],
            QueryKind::Supergraph,
        );
        let g = path_graph(&[0, 1, 0]);
        let sub = find_hits(
            &snap,
            &g,
            QueryKind::Subgraph,
            &Vf2::new(),
            &MatchConfig::UNBOUNDED,
        );
        assert!(sub.sub.is_empty() && sub.super_.is_empty() && sub.exact.is_none());
        assert_eq!(
            sub.tests, 0,
            "cross-kind entries are skipped before testing"
        );
        let sup = find_hits(
            &snap,
            &g,
            QueryKind::Supergraph,
            &Vf2::new(),
            &MatchConfig::UNBOUNDED,
        );
        assert_eq!(sup.exact, Some(100), "same-kind entries still hit");
    }
}
