//! The GraphCache<sub>sub</sub> / GraphCache<sub>super</sub> processors
//! (paper §5.1): turn the query index's candidate slots into *verified* hit
//! sets by running sub-iso tests against the cached query graphs.
//!
//! # The hit-detection pipeline
//!
//! Hit detection only pays off while it costs far less than running the
//! query uncached (§5), so candidate verification is organised as three
//! layers, cheapest first:
//!
//! 1. **Exact fingerprint probe** — every cached entry carries an
//!    isomorphism-invariant fingerprint ([`gc_index::fingerprint::iso_hash`])
//!    keyed in a per-shard `fingerprint → slots` map. An incoming query
//!    resolves exact (isomorphic) repeats with one hash lookup plus an iso
//!    *confirmation* on the rare collision — and when the caller only needs
//!    the exact answer ([`VerifyOptions::exact_shortcut`]), candidate
//!    verification is skipped entirely.
//! 2. **Cost-ordered, budget-arbitrated sweep** — sub/super candidates from
//!    all shards merge into a single queue scored by
//!    [`gc_subiso::cost::estimate`] and are verified cheapest-first. A
//!    shared verification work pool ([`VerifyOptions::budget`]) deducts
//!    every test's `nodes_expanded`; when it runs dry the sweep degrades
//!    gracefully to a partial [`HitSet`] with
//!    [`truncated`](HitSet::truncated) set. Same-size candidates are
//!    prefiltered by fingerprint (equal-size containment is isomorphism, so
//!    a fingerprint mismatch proves a non-hit without any search), and the
//!    sweep stops early once the request's hit budget
//!    ([`VerifyOptions::max_hits`]) is satisfied.
//! 3. **Parallel verification** — when the ordered queue is large
//!    ([`VerifyOptions::parallel_threshold`]) the sweep fans across scoped
//!    worker threads ([`VerifyOptions::threads`]); results are assembled in
//!    queue order, so with an unbounded budget the output is identical to
//!    the sequential sweep.
//!
//! [`HitSet`] serial lists are always sorted, making the output canonical
//! across shard counts and thread interleavings. [`find_hits_naive`] keeps
//! the original flat per-shard sweep as the parity oracle
//! (`tests/hit_path.rs`) and the baseline of `benches/hit_path.rs`.

use crate::entry::CacheSnapshot;
use crate::stats::QuerySerial;
use gc_graph::LabeledGraph;
use gc_index::fingerprint::iso_hash;
use gc_index::fx::FxHashSet;
use gc_index::paths::PathProfile;
use gc_methods::QueryKind;
use gc_subiso::{cost, MatchConfig, MatchOutcome, Matcher};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Verified cache hits for one new query.
#[derive(Debug, Clone, Default)]
pub struct HitSet {
    /// Serials of cached queries `q` with `g ⊆ q` — `Result_sub(g)`.
    /// Sorted ascending (canonical across shard counts and threads).
    pub sub: Vec<QuerySerial>,
    /// Serials of cached queries `q` with `q ⊆ g` — `Result_super(g)`.
    /// Sorted ascending.
    pub super_: Vec<QuerySerial>,
    /// A cached query isomorphic to `g`, when one exists (the first special
    /// case of §5.1). The smallest confirmed serial, so the pick is
    /// deterministic when several isomorphic copies are cached.
    pub exact: Option<QuerySerial>,
    /// Number of sub-iso tests spent verifying sweep candidates. Exact
    /// fingerprint *confirmations* are not counted here (their work still
    /// lands in [`work`](Self::work)): an exact repeat resolved through the
    /// fingerprint map completes with `tests == 0`.
    pub tests: u64,
    /// Total matcher work (recursion steps) spent on this query's hit
    /// detection, confirmations included — what the verification budget
    /// pool deducts.
    pub work: u64,
    /// The shared verification budget ran dry before every candidate was
    /// verified: the hit sets are a (still sound) subset of the full sweep.
    pub truncated: bool,
    /// The exact hit was resolved through the fingerprint map (as opposed
    /// to falling out of a full candidate sweep, as the naive path does).
    pub exact_via_fingerprint: bool,
    /// The per-query deadline expired mid-sweep: the hit sets are a sound
    /// subset, cut short by wall-clock time rather than the work pool.
    /// Implies [`truncated`](Self::truncated).
    pub deadline_exceeded: bool,
}

/// The query-side inputs of hit detection, bundled so the profile and
/// fingerprint are computed once per query and reused across shards (and
/// later for Window admission).
#[derive(Debug, Clone, Copy)]
pub struct HitQuery<'a> {
    /// The incoming query graph.
    pub query: &'a LabeledGraph,
    /// The direction its answer is requested under.
    pub kind: QueryKind,
    /// The query's path-feature profile under the snapshot's index config.
    pub profile: &'a PathProfile,
    /// The query's iso fingerprint ([`iso_hash`]).
    pub fingerprint: u64,
}

impl<'a> HitQuery<'a> {
    /// Bundles a query with a precomputed profile, hashing the fingerprint.
    pub fn new(query: &'a LabeledGraph, kind: QueryKind, profile: &'a PathProfile) -> Self {
        HitQuery {
            query,
            kind,
            profile,
            fingerprint: iso_hash(query),
        }
    }
}

/// Knobs of the verification sweep. The default reproduces the full
/// (unbounded, sequential) sweep with the fingerprint fast path active.
#[derive(Debug, Clone)]
pub struct VerifyOptions {
    /// Shared verification work pool for the whole query: every matcher
    /// test (confirmations included) deducts its `nodes_expanded`, and
    /// tests are clipped to the remaining pool. `None` = unbounded. When
    /// the pool runs dry the sweep stops and the result is marked
    /// [`truncated`](HitSet::truncated) — still sound, just fewer hits.
    pub budget: Option<u64>,
    /// The request's hit budget: stop verifying as soon as this many hits
    /// (sub + super together) have been confirmed. `None` = find them all.
    /// Early exit is not truncation — the caller asked for at most this.
    pub max_hits: Option<usize>,
    /// Return immediately once the fingerprint probe confirms an exact hit,
    /// skipping candidate verification entirely — the query path's mode,
    /// since an exact answer supersedes sub/super pruning.
    pub exact_shortcut: bool,
    /// Worker threads for parallel verification (`<= 1` = sequential).
    pub threads: usize,
    /// Minimum ordered-queue length before verification fans across
    /// threads; below it the sweep stays sequential (spawn cost dominates).
    pub parallel_threshold: usize,
    /// Wall-clock deadline for the sweep, checked at the same arbitration
    /// points as the work pool (between matcher tests, never inside one).
    /// Expiry stops the sweep with
    /// [`deadline_exceeded`](HitSet::deadline_exceeded) set. `None` =
    /// no deadline.
    pub deadline: Option<std::time::Instant>,
    /// Restricts the candidate sweep to these serials (must be sorted
    /// ascending; use [`candidate_serials`] to enumerate the full set).
    /// The exact fingerprint probe is *not* restricted — an exact answer
    /// supersedes pruning and costs O(1) to confirm. Restriction only ever
    /// removes candidates, so the result is always a sound subset: fewer
    /// hits mean less pruning, never a wrong answer. `None` = no filter.
    ///
    /// This is the routed fleet's merge point: the `gc route` front-end
    /// probes every peer for its slice of the candidate space and passes
    /// the merged serial set here, so a query executed on one peer sweeps
    /// exactly the candidates the whole fleet would. With every peer live
    /// the union covers the full set and the filter is a no-op (counter
    /// parity with a single process); a dead peer's slice is simply absent
    /// (degraded to miss-only).
    pub allowed: Option<Vec<QuerySerial>>,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            budget: None,
            max_hits: None,
            exact_shortcut: false,
            threads: 1,
            parallel_threshold: 32,
            deadline: None,
            allowed: None,
        }
    }
}

/// Runs both processors for `query` against the current cache snapshot.
///
/// Only entries answered under the same query `kind` participate: a
/// subgraph-mode answer set means "dataset graphs containing the query"
/// while a supergraph-mode one means "dataset graphs contained in it", so
/// cross-kind hits would prune with the wrong set semantics.
pub fn find_hits(
    snapshot: &CacheSnapshot,
    query: &LabeledGraph,
    kind: QueryKind,
    matcher: &dyn Matcher,
    cfg: &MatchConfig,
) -> HitSet {
    let profile = snapshot.profile_of(query);
    find_hits_with_profile(snapshot, query, kind, &profile, matcher, cfg)
}

/// Like [`find_hits`] but reuses the query's precomputed feature profile.
pub fn find_hits_with_profile(
    snapshot: &CacheSnapshot,
    query: &LabeledGraph,
    kind: QueryKind,
    profile: &PathProfile,
    matcher: &dyn Matcher,
    cfg: &MatchConfig,
) -> HitSet {
    find_hits_opts(
        snapshot,
        &HitQuery::new(query, kind, profile),
        matcher,
        cfg,
        &VerifyOptions::default(),
    )
}

/// Which direction a queued candidate is verified in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Dir {
    /// `query ⊆ candidate` (candidate strictly larger).
    Sub,
    /// `candidate ⊆ query` (candidate strictly smaller).
    Super,
    /// Same size with matching fingerprint: one test decides isomorphism,
    /// i.e. both directions at once.
    Iso,
}

/// One entry of the ordered verification queue.
struct Cand<'a> {
    entry: &'a std::sync::Arc<crate::entry::CacheEntry>,
    dir: Dir,
    cost: f64,
}

/// Runs one matcher test clipped to the remaining budget pool. Returns the
/// outcome plus whether the *pool* (not the per-test config) was the
/// binding limit — only then does an incomplete search mean truncation.
fn run_capped(
    matcher: &dyn Matcher,
    pattern: &LabeledGraph,
    target: &LabeledGraph,
    cfg: &MatchConfig,
    remaining: Option<u64>,
) -> (MatchOutcome, bool) {
    let (budget, pool_clipped) = match (cfg.budget, remaining) {
        (None, None) => (None, false),
        (Some(b), None) => (Some(b), false),
        (None, Some(p)) => (Some(p), true),
        (Some(b), Some(p)) => {
            if p < b {
                (Some(p), true)
            } else {
                (Some(b), false)
            }
        }
    };
    (
        matcher.contains_with(pattern, target, &MatchConfig { budget }),
        pool_clipped,
    )
}

/// The full pipeline: fingerprint probe, cost-ordered budget-arbitrated
/// sweep, optional parallel verification. See the module docs.
pub fn find_hits_opts(
    snapshot: &CacheSnapshot,
    hq: &HitQuery<'_>,
    matcher: &dyn Matcher,
    cfg: &MatchConfig,
    opts: &VerifyOptions,
) -> HitSet {
    let mut hits = HitSet::default();
    let qn = hq.query.node_count();
    let qm = hq.query.edge_count();
    let mut pool: Option<u64> = opts.budget;

    // (1) Exact fast path: probe each shard's fingerprint map, confirm
    // candidates in ascending serial order until the first isomorphism.
    // Confirmed = exact; tested-but-refuted serials are remembered so the
    // sweep never re-tests them.
    let mut bucket: Vec<&std::sync::Arc<crate::entry::CacheEntry>> = Vec::new();
    for shard in snapshot.shards() {
        for &slot in shard.exact_slots(hq.fingerprint) {
            // Kind and size prefilters run on the packed columns; the entry
            // is only dereferenced once the slot survives them.
            if shard.kind_at(slot) != hq.kind || shard.index().size(slot) != (qn as u32, qm as u32)
            {
                continue;
            }
            let Some(entry) = shard.entry_at(slot) else {
                continue;
            };
            bucket.push(entry);
        }
    }
    bucket.sort_unstable_by_key(|e| e.serial);
    let mut refuted: Vec<QuerySerial> = Vec::new();
    for entry in bucket {
        if pool == Some(0) {
            hits.truncated = true;
            break;
        }
        if deadline_expired(opts) {
            hits.truncated = true;
            hits.deadline_exceeded = true;
            break;
        }
        // Equal node and edge counts make containment isomorphism (§5.1),
        // so one directed test confirms the exact hit.
        let (out, pool_clipped) = run_capped(matcher, hq.query, &entry.graph, cfg, pool);
        hits.work += out.nodes_expanded;
        if let Some(p) = &mut pool {
            *p = p.saturating_sub(out.nodes_expanded);
        }
        if out.found {
            hits.exact = Some(entry.serial);
            hits.exact_via_fingerprint = true;
            break;
        }
        if !out.complete && pool_clipped {
            hits.truncated = true;
            break;
        }
        refuted.push(entry.serial); // stays sorted: bucket is serial-ordered
    }
    if opts.exact_shortcut && hits.exact.is_some() {
        return finalize(hits);
    }

    // (2) Gather candidates from every shard into one queue, scored by the
    // paper's §5.2 cost estimate. Same-size candidates reduce to potential
    // isomorphisms, so the fingerprint prefilters them for free; they only
    // ever surface through the sub list (isomorphism implies identical
    // feature profiles, and overflow entries are conservative in both
    // directions), so the super list's same-size slots are skipped.
    //
    // The whole gather runs on the shard's packed metadata columns (kind,
    // size, fingerprint, serial, distinct-label count): a linear pass over
    // contiguous arrays with no entry-`Arc` dereference. Only a slot that
    // survives every prefilter touches its entry — and then only to park
    // the graph handle in the verification queue.
    let mut queue: Vec<Cand<'_>> = Vec::new();
    // The query is the *target* of every Super-direction estimate, so its
    // distinct-label count is computed once here instead of per candidate
    // (`distinct_label_count` sorts the label vector on every call).
    let q_distinct = hq.query.distinct_label_count() as u64;
    // Candidate restriction (routed mode): serials outside the allow set
    // never enter the queue. A sorted list + binary search keeps the gather
    // a pure column scan.
    let allow = opts.allowed.as_deref();
    let permitted = |serial: QuerySerial| match allow {
        None => true,
        Some(list) => list.binary_search(&serial).is_ok(),
    };
    for shard in snapshot.shards() {
        let cands = shard
            .index()
            .candidates_from_profile(hq.profile, qn as u32, qm as u32);
        for &slot in &cands.sub {
            if shard.kind_at(slot) != hq.kind || !permitted(shard.index().serial(slot)) {
                continue;
            }
            let (cn, cm) = shard.index().size(slot);
            let same_size = (cn, cm) == (qn as u32, qm as u32);
            // Identical to `cost::estimate(query, candidate)`: the packed
            // column holds the candidate's precomputed distinct-label count.
            let cand_cost =
                cost::estimate_raw(qn as u64, cn as u64, shard.distinct_labels_at(slot) as u64);
            if same_size {
                if shard.fingerprint_at(slot) != hq.fingerprint {
                    continue; // iso-invariant mismatch proves a non-hit
                }
                let serial = shard.index().serial(slot);
                if hits.exact == Some(serial) {
                    // Confirmed isomorphic by the probe: a hit in both
                    // directions, no further test needed.
                    hits.sub.push(serial);
                    hits.super_.push(serial);
                    continue;
                }
                if refuted.binary_search(&serial).is_ok() {
                    continue; // probe already disproved this one
                }
                // Candidate slots are always live (tombstones never leave
                // the index sweep), so the lookup cannot miss.
                let Some(entry) = shard.entry_at(slot) else {
                    continue;
                };
                queue.push(Cand {
                    entry,
                    dir: Dir::Iso,
                    cost: cand_cost,
                });
            } else {
                let Some(entry) = shard.entry_at(slot) else {
                    continue;
                };
                queue.push(Cand {
                    entry,
                    dir: Dir::Sub,
                    cost: cand_cost,
                });
            }
        }
        for &slot in &cands.super_ {
            if shard.kind_at(slot) != hq.kind || !permitted(shard.index().serial(slot)) {
                continue;
            }
            let (cn, cm) = shard.index().size(slot);
            if (cn, cm) == (qn as u32, qm as u32) {
                continue; // same-size: handled through the sub list above
            }
            let Some(entry) = shard.entry_at(slot) else {
                continue;
            };
            queue.push(Cand {
                entry,
                dir: Dir::Super,
                cost: cost::estimate_raw(cn as u64, qn as u64, q_distinct),
            });
        }
    }

    // (3) Cheapest first; serial then direction break ties so the order —
    // and therefore budgeted truncation — is deterministic.
    queue.sort_unstable_by(|a, b| {
        a.cost
            .partial_cmp(&b.cost)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.entry.serial.cmp(&b.entry.serial))
            .then(a.dir.cmp(&b.dir))
    });

    // (4) Verify under the shared pool, early-exiting on the hit budget.
    if opts.threads > 1 && queue.len() >= opts.parallel_threshold.max(2) {
        verify_parallel(&queue, hq, matcher, cfg, pool, opts, &mut hits);
    } else {
        verify_sequential(&queue, hq, matcher, cfg, pool, opts, &mut hits);
    }
    finalize(hits)
}

/// Enumerates the serials [`find_hits_opts`]'s candidate sweep would
/// consider for this query — the same packed-column prefilters (kind
/// match; same-size slots require fingerprint equality; the super list's
/// same-size slots are skipped) with no matcher tests, no budget
/// accounting and no statistics side effects. Each serial is paired with
/// the candidate entry's iso fingerprint so a routed peer can keep only
/// the slice of the fingerprint space it owns.
///
/// The result is sorted ascending and deduplicated, so slice-filtered
/// lists from N peers holding identical replicas merge back into exactly
/// this set — the property the router's [`VerifyOptions::allowed`] merge
/// relies on for single-process counter parity.
pub fn candidate_serials(snapshot: &CacheSnapshot, hq: &HitQuery<'_>) -> Vec<(QuerySerial, u64)> {
    let qn = hq.query.node_count() as u32;
    let qm = hq.query.edge_count() as u32;
    let mut out: Vec<(QuerySerial, u64)> = Vec::new();
    for shard in snapshot.shards() {
        let cands = shard.index().candidates_from_profile(hq.profile, qn, qm);
        for &slot in &cands.sub {
            if shard.kind_at(slot) != hq.kind {
                continue;
            }
            let same_size = shard.index().size(slot) == (qn, qm);
            if same_size && shard.fingerprint_at(slot) != hq.fingerprint {
                continue; // iso-invariant mismatch proves a non-hit
            }
            out.push((shard.index().serial(slot), shard.fingerprint_at(slot)));
        }
        for &slot in &cands.super_ {
            if shard.kind_at(slot) != hq.kind {
                continue;
            }
            if shard.index().size(slot) == (qn, qm) {
                continue; // same-size: only ever surfaces through the sub list
            }
            out.push((shard.index().serial(slot), shard.fingerprint_at(slot)));
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Counts a verified hit into the set. An iso candidate hits both
/// directions at once (and backstops `exact`, though the probe normally
/// resolved it first).
fn apply_hit(hits: &mut HitSet, dir: Dir, serial: QuerySerial) {
    match dir {
        Dir::Sub => hits.sub.push(serial),
        Dir::Super => hits.super_.push(serial),
        Dir::Iso => {
            hits.sub.push(serial);
            hits.super_.push(serial);
            if hits.exact.is_none() {
                hits.exact = Some(serial);
            }
        }
    }
}

/// True once the request's hit budget is satisfied.
fn hit_budget_met(hits: &HitSet, opts: &VerifyOptions) -> bool {
    opts.max_hits
        .is_some_and(|m| hits.sub.len() + hits.super_.len() >= m)
}

/// True once the sweep's wall-clock deadline has passed.
fn deadline_expired(opts: &VerifyOptions) -> bool {
    opts.deadline
        .is_some_and(|d| std::time::Instant::now() >= d)
}

fn verify_sequential(
    queue: &[Cand<'_>],
    hq: &HitQuery<'_>,
    matcher: &dyn Matcher,
    cfg: &MatchConfig,
    mut pool: Option<u64>,
    opts: &VerifyOptions,
    hits: &mut HitSet,
) {
    for cand in queue {
        if hit_budget_met(hits, opts) {
            break;
        }
        if pool == Some(0) {
            hits.truncated = true;
            break;
        }
        if deadline_expired(opts) {
            hits.truncated = true;
            hits.deadline_exceeded = true;
            break;
        }
        let (pattern, target) = match cand.dir {
            Dir::Sub | Dir::Iso => (hq.query, cand.entry.graph.as_ref()),
            Dir::Super => (cand.entry.graph.as_ref(), hq.query),
        };
        let (out, pool_clipped) = run_capped(matcher, pattern, target, cfg, pool);
        hits.tests += 1;
        hits.work += out.nodes_expanded;
        if let Some(p) = &mut pool {
            *p = p.saturating_sub(out.nodes_expanded);
        }
        if !out.complete && pool_clipped {
            hits.truncated = true;
        }
        if out.found {
            apply_hit(hits, cand.dir, cand.entry.serial);
        }
    }
}

/// Fans the ordered queue across scoped worker threads. Workers claim
/// queue indexes from an atomic cursor and share the budget pool and hit
/// counter; outcomes are re-assembled *in queue order*, so with an
/// unbounded pool and no hit budget the result is identical to the
/// sequential sweep. Under a budget, which candidates get verified may
/// vary with thread interleaving (the pool is deducted concurrently) —
/// the result is still a sound, truncation-flagged subset.
fn verify_parallel(
    queue: &[Cand<'_>],
    hq: &HitQuery<'_>,
    matcher: &dyn Matcher,
    cfg: &MatchConfig,
    pool: Option<u64>,
    opts: &VerifyOptions,
    hits: &mut HitSet,
) {
    let n = queue.len();
    let next = AtomicUsize::new(0);
    let hit_count = AtomicUsize::new(hits.sub.len() + hits.super_.len());
    let stop = AtomicBool::new(false);
    let expired = AtomicBool::new(false);
    // u64::MAX stands in for "unbounded" so one atomic covers both cases.
    let pool_left = AtomicU64::new(pool.unwrap_or(u64::MAX));
    let bounded = pool.is_some();

    let mut outcomes: Vec<(usize, MatchOutcome, bool)> = std::thread::scope(|s| {
        let workers = opts.threads.min(n);
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let hit_count = &hit_count;
                let stop = &stop;
                let expired = &expired;
                let pool_left = &pool_left;
                s.spawn(move || {
                    let mut local: Vec<(usize, MatchOutcome, bool)> = Vec::new();
                    loop {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        if deadline_expired(opts) {
                            expired.store(true, Ordering::Relaxed);
                            stop.store(true, Ordering::Relaxed);
                            break;
                        }
                        if opts
                            .max_hits
                            .is_some_and(|m| hit_count.load(Ordering::Relaxed) >= m)
                        {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let remaining = bounded.then(|| pool_left.load(Ordering::Relaxed));
                        if remaining == Some(0) {
                            stop.store(true, Ordering::Relaxed);
                            break;
                        }
                        let cand = &queue[i];
                        let (pattern, target) = match cand.dir {
                            Dir::Sub | Dir::Iso => (hq.query, cand.entry.graph.as_ref()),
                            Dir::Super => (cand.entry.graph.as_ref(), hq.query),
                        };
                        let (out, pool_clipped) =
                            run_capped(matcher, pattern, target, cfg, remaining);
                        if bounded {
                            // Saturating concurrent deduction; slight
                            // overdraw on a race is acceptable (the pool is
                            // an arbiter, not an exact meter).
                            let mut cur = pool_left.load(Ordering::Relaxed);
                            loop {
                                let newv = cur.saturating_sub(out.nodes_expanded);
                                match pool_left.compare_exchange_weak(
                                    cur,
                                    newv,
                                    Ordering::Relaxed,
                                    Ordering::Relaxed,
                                ) {
                                    Ok(_) => break,
                                    Err(c) => cur = c,
                                }
                            }
                        }
                        if out.found {
                            hit_count.fetch_add(
                                match cand.dir {
                                    Dir::Iso => 2,
                                    _ => 1,
                                },
                                Ordering::Relaxed,
                            );
                        }
                        if !out.complete && pool_clipped {
                            stop.store(true, Ordering::Relaxed);
                        }
                        local.push((i, out, pool_clipped));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("verification worker panicked"))
            .collect()
    });

    // Deterministic assembly in queue order. Tests and work are counted
    // for every outcome (the matcher work really was spent), but hits stop
    // being applied once the caller's hit budget is met — workers racing
    // the counter may confirm a few extra candidates, and admitting them
    // here would let a parallel run exceed the `max_hits` contract the
    // sequential sweep honours.
    outcomes.sort_unstable_by_key(|&(i, _, _)| i);
    for &(i, out, pool_clipped) in &outcomes {
        hits.tests += 1;
        hits.work += out.nodes_expanded;
        if !out.complete && pool_clipped {
            hits.truncated = true;
        }
        if out.found && !hit_budget_met(hits, opts) {
            apply_hit(hits, queue[i].dir, queue[i].entry.serial);
        }
    }
    // Candidates left unverified for any reason other than the caller's
    // own hit budget mean the pool cut the sweep short.
    if outcomes.len() < n && !hit_budget_met(hits, opts) {
        hits.truncated = true;
    }
    if expired.load(Ordering::Relaxed) {
        hits.deadline_exceeded = true;
        hits.truncated = true;
    }
}

/// Sorts the serial lists so the output is canonical regardless of shard
/// count, verification order or thread interleaving.
fn finalize(mut hits: HitSet) -> HitSet {
    hits.sub.sort_unstable();
    hits.super_.sort_unstable();
    hits
}

/// The pre-pipeline reference: a flat per-shard sweep in slot order — no
/// fingerprint fast path, no cost ordering, no budget pool, no early exit.
/// Kept as the parity oracle for `tests/hit_path.rs` and the baseline of
/// `benches/hit_path.rs`. Output is canonicalised exactly like the
/// pipeline's (sorted serials, smallest-serial exact pick).
pub fn find_hits_naive(
    snapshot: &CacheSnapshot,
    query: &LabeledGraph,
    kind: QueryKind,
    matcher: &dyn Matcher,
    cfg: &MatchConfig,
) -> HitSet {
    let profile = snapshot.profile_of(query);
    let mut hits = HitSet::default();
    let qn = query.node_count();
    let qm = query.edge_count();
    let mut sub_set: FxHashSet<QuerySerial> = FxHashSet::default();
    for shard in snapshot.shards() {
        let candidates = shard
            .index()
            .candidates_from_profile(&profile, qn as u32, qm as u32);

        for &slot in &candidates.sub {
            let Some(entry) = shard.entry_at(slot) else {
                continue;
            };
            if entry.kind != kind {
                continue;
            }
            let out = matcher.contains_with(query, &entry.graph, cfg);
            hits.tests += 1;
            hits.work += out.nodes_expanded;
            if out.found {
                hits.sub.push(entry.serial);
                sub_set.insert(entry.serial);
                if entry.graph.node_count() == qn && entry.graph.edge_count() == qm {
                    // Smallest serial wins, matching the pipeline's pick.
                    hits.exact = Some(hits.exact.map_or(entry.serial, |e| e.min(entry.serial)));
                }
            }
        }
        for &slot in &candidates.super_ {
            let Some(entry) = shard.entry_at(slot) else {
                continue;
            };
            if entry.kind != kind {
                continue;
            }
            // Same-size slots were already decided by the sub pass:
            // containment in either direction at equal size is isomorphism.
            let same_size = entry.graph.node_count() == qn && entry.graph.edge_count() == qm;
            if same_size {
                if sub_set.contains(&entry.serial) {
                    hits.super_.push(entry.serial);
                }
                continue;
            }
            let out = matcher.contains_with(&entry.graph, query, cfg);
            hits.tests += 1;
            hits.work += out.nodes_expanded;
            if out.found {
                hits.super_.push(entry.serial);
            }
        }
    }
    finalize(hits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::CacheEntry;
    use crate::query_index::QueryIndexConfig;
    use gc_graph::GraphId;
    use gc_subiso::Vf2;
    use std::sync::Arc;

    fn path_graph(labels: &[u32]) -> LabeledGraph {
        let edges: Vec<(u32, u32)> = (0..labels.len() as u32 - 1).map(|i| (i, i + 1)).collect();
        LabeledGraph::from_parts(labels.to_vec(), &edges)
    }

    fn snapshot_of_kind(graphs: Vec<LabeledGraph>, kind: QueryKind) -> CacheSnapshot {
        let entries = graphs
            .into_iter()
            .enumerate()
            .map(|(i, graph)| {
                let profile = gc_index::paths::enumerate_paths(&graph, 4, u64::MAX);
                Arc::new(CacheEntry::new(
                    (i as u64 + 1) * 100,
                    Arc::new(graph),
                    vec![GraphId(i as u32)],
                    kind,
                    profile,
                ))
            })
            .collect();
        CacheSnapshot::build(QueryIndexConfig::default(), entries)
    }

    fn snapshot(graphs: Vec<LabeledGraph>) -> CacheSnapshot {
        snapshot_of_kind(graphs, QueryKind::Subgraph)
    }

    fn run_opts(snap: &CacheSnapshot, g: &LabeledGraph, opts: &VerifyOptions) -> HitSet {
        let profile = snap.profile_of(g);
        find_hits_opts(
            snap,
            &HitQuery::new(g, QueryKind::Subgraph, &profile),
            &Vf2::new(),
            &MatchConfig::UNBOUNDED,
            opts,
        )
    }

    #[test]
    fn sub_and_super_hits_verified() {
        let snap = snapshot(vec![
            path_graph(&[0, 1, 0, 1]), // 100: g ⊆ this
            path_graph(&[0, 1]),       // 200: this ⊆ g
            path_graph(&[7, 7, 7]),    // 300: unrelated
        ]);
        let g = path_graph(&[0, 1, 0]);
        let hits = find_hits(
            &snap,
            &g,
            QueryKind::Subgraph,
            &Vf2::new(),
            &MatchConfig::UNBOUNDED,
        );
        assert_eq!(hits.sub, vec![100]);
        assert_eq!(hits.super_, vec![200]);
        assert!(hits.exact.is_none());
        assert!(hits.tests >= 2);
        assert!(!hits.truncated);
    }

    #[test]
    fn allowed_full_candidate_set_is_a_no_op() {
        let snap = snapshot(vec![
            path_graph(&[0, 1, 0, 1]), // 100: sub candidate
            path_graph(&[0, 1]),       // 200: super candidate
            path_graph(&[7, 7, 7]),    // 300: unrelated
        ]);
        let g = path_graph(&[0, 1, 0]);
        let profile = snap.profile_of(&g);
        let hq = HitQuery::new(&g, QueryKind::Subgraph, &profile);
        let pairs = candidate_serials(&snap, &hq);
        let full: Vec<QuerySerial> = pairs.iter().map(|&(s, _)| s).collect();

        // Slicing the pairs by any fingerprint partition and merging the
        // slices reassembles the full set — the router's merge invariant.
        let mut merged: Vec<QuerySerial> = pairs
            .iter()
            .filter(|&&(_, fp)| fp % 2 == 0)
            .chain(pairs.iter().filter(|&&(_, fp)| fp % 2 == 1))
            .map(|&(s, _)| s)
            .collect();
        merged.sort_unstable();
        assert_eq!(merged, full);

        let free = run_opts(&snap, &g, &VerifyOptions::default());
        let gated = run_opts(
            &snap,
            &g,
            &VerifyOptions {
                allowed: Some(full),
                ..VerifyOptions::default()
            },
        );
        assert_eq!(gated.sub, free.sub);
        assert_eq!(gated.super_, free.super_);
        assert_eq!(gated.exact, free.exact);
        assert_eq!(gated.tests, free.tests);
        assert_eq!(gated.work, free.work);
    }

    #[test]
    fn allowed_restriction_is_a_sound_subset() {
        let snap = snapshot(vec![
            path_graph(&[0, 1, 0, 1]), // 100: sub candidate
            path_graph(&[0, 1]),       // 200: super candidate
        ]);
        let g = path_graph(&[0, 1, 0]);
        // Only serial 100 allowed: the super hit vanishes (degraded slice),
        // the sub hit survives, nothing panics.
        let hits = run_opts(
            &snap,
            &g,
            &VerifyOptions {
                allowed: Some(vec![100]),
                ..VerifyOptions::default()
            },
        );
        assert_eq!(hits.sub, vec![100]);
        assert!(hits.super_.is_empty());
        // The empty set sweeps nothing at all.
        let none = run_opts(
            &snap,
            &g,
            &VerifyOptions {
                allowed: Some(Vec::new()),
                ..VerifyOptions::default()
            },
        );
        assert!(none.sub.is_empty() && none.super_.is_empty());
        assert_eq!(none.tests, 0);
    }

    #[test]
    fn exact_probe_ignores_the_allow_filter() {
        // An exact answer supersedes pruning, so the O(1) fingerprint probe
        // stays unrestricted even under an empty allow set.
        let snap = snapshot(vec![path_graph(&[0, 1, 0])]);
        let g = path_graph(&[0, 1, 0]);
        let hits = run_opts(
            &snap,
            &g,
            &VerifyOptions {
                exact_shortcut: true,
                allowed: Some(Vec::new()),
                ..VerifyOptions::default()
            },
        );
        assert_eq!(hits.exact, Some(100));
        assert!(hits.exact_via_fingerprint);
    }

    #[test]
    fn candidate_serials_mirror_the_sweep_prefilters() {
        // Same size but different fingerprint: excluded (the sweep proves
        // the non-hit from the packed columns alone). Cross-kind: excluded.
        let snap = snapshot(vec![
            path_graph(&[0, 1, 2]),    // 100: same size, different fingerprint
            path_graph(&[0, 2, 1, 0]), // 200: sub candidate by size
        ]);
        let g = path_graph(&[0, 2, 1]);
        let profile = snap.profile_of(&g);
        let hq = HitQuery::new(&g, QueryKind::Subgraph, &profile);
        let serials: Vec<QuerySerial> = candidate_serials(&snap, &hq)
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        assert!(!serials.contains(&100), "fingerprint-mismatched same-size");
        let cross = HitQuery::new(&g, QueryKind::Supergraph, &profile);
        assert!(
            candidate_serials(&snap, &cross).is_empty(),
            "cross-kind entries are not candidates"
        );
    }

    #[test]
    fn exact_hit_detected_via_fingerprint() {
        let snap = snapshot(vec![path_graph(&[0, 1, 0])]);
        let g = path_graph(&[0, 1, 0]);
        let hits = find_hits(
            &snap,
            &g,
            QueryKind::Subgraph,
            &Vf2::new(),
            &MatchConfig::UNBOUNDED,
        );
        assert_eq!(hits.exact, Some(100));
        assert!(hits.exact_via_fingerprint);
        assert_eq!(hits.sub, vec![100]);
        assert_eq!(hits.super_, vec![100]);
        assert_eq!(hits.tests, 0, "fingerprint confirmations are not tests");
    }

    #[test]
    fn exact_shortcut_skips_candidate_verification() {
        let snap = snapshot(vec![
            path_graph(&[0, 1, 0]),
            path_graph(&[0, 1, 0, 1]), // would be a sub candidate
            path_graph(&[0, 1]),       // would be a super candidate
        ]);
        let g = path_graph(&[0, 1, 0]);
        let hits = run_opts(
            &snap,
            &g,
            &VerifyOptions {
                exact_shortcut: true,
                ..VerifyOptions::default()
            },
        );
        assert_eq!(hits.exact, Some(100));
        assert!(hits.exact_via_fingerprint);
        assert_eq!(hits.tests, 0, "no candidate sweep on the shortcut path");
        assert!(hits.sub.is_empty() && hits.super_.is_empty());
    }

    #[test]
    fn same_size_non_isomorphic_skipped_without_testing() {
        // Same node and edge count, different structure/labels: the
        // fingerprint prefilter proves the non-hit with zero tests.
        let snap = snapshot(vec![path_graph(&[0, 1, 2])]);
        let g = path_graph(&[0, 2, 1]);
        let hits = find_hits(
            &snap,
            &g,
            QueryKind::Subgraph,
            &Vf2::new(),
            &MatchConfig::UNBOUNDED,
        );
        assert!(hits.exact.is_none());
        assert!(hits.sub.is_empty());
        assert!(hits.super_.is_empty());
        assert_eq!(hits.tests, 0);
        assert_eq!(hits.work, 0);
    }

    #[test]
    fn filter_false_positives_rejected_by_verifier() {
        // Same feature counts up to length 4 may still not contain g; the
        // verifier must reject. Cycle of 6 vs two triangles sharing labels:
        let hexagon = LabeledGraph::from_parts(
            vec![0; 6],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)],
        );
        let snap = snapshot(vec![hexagon]);
        let triangle = LabeledGraph::from_parts(vec![0; 3], &[(0, 1), (1, 2), (2, 0)]);
        let hits = find_hits(
            &snap,
            &triangle,
            QueryKind::Subgraph,
            &Vf2::new(),
            &MatchConfig::UNBOUNDED,
        );
        assert!(hits.sub.is_empty(), "hexagon does not contain a triangle");
    }

    #[test]
    fn empty_cache_no_hits() {
        let snap = snapshot(vec![]);
        let hits = find_hits(
            &snap,
            &path_graph(&[0, 1]),
            QueryKind::Subgraph,
            &Vf2::new(),
            &MatchConfig::UNBOUNDED,
        );
        assert!(hits.sub.is_empty() && hits.super_.is_empty() && hits.exact.is_none());
        assert_eq!(hits.tests, 0);
        assert!(!hits.truncated, "nothing to verify, nothing truncated");
    }

    #[test]
    fn cross_kind_entries_never_hit() {
        // Entries answered under supergraph semantics are invisible to a
        // subgraph query (and vice versa) — even an isomorphic one.
        let snap = snapshot_of_kind(
            vec![path_graph(&[0, 1, 0]), path_graph(&[0, 1])],
            QueryKind::Supergraph,
        );
        let g = path_graph(&[0, 1, 0]);
        let sub = find_hits(
            &snap,
            &g,
            QueryKind::Subgraph,
            &Vf2::new(),
            &MatchConfig::UNBOUNDED,
        );
        assert!(sub.sub.is_empty() && sub.super_.is_empty() && sub.exact.is_none());
        assert_eq!(
            sub.tests, 0,
            "cross-kind entries are skipped before testing"
        );
        assert_eq!(sub.work, 0, "not even a fingerprint confirmation runs");
        let sup = find_hits(
            &snap,
            &g,
            QueryKind::Supergraph,
            &Vf2::new(),
            &MatchConfig::UNBOUNDED,
        );
        assert_eq!(sup.exact, Some(100), "same-kind entries still hit");
    }

    #[test]
    fn zero_budget_truncates_without_hits() {
        let snap = snapshot(vec![path_graph(&[0, 1, 0, 1]), path_graph(&[0, 1])]);
        let g = path_graph(&[0, 1, 0]);
        let hits = run_opts(
            &snap,
            &g,
            &VerifyOptions {
                budget: Some(0),
                ..VerifyOptions::default()
            },
        );
        assert!(hits.truncated);
        assert!(hits.sub.is_empty() && hits.super_.is_empty());
        assert_eq!(hits.tests, 0);
    }

    #[test]
    fn generous_budget_matches_unbounded() {
        let snap = snapshot(vec![
            path_graph(&[0, 1, 0, 1]),
            path_graph(&[0, 1]),
            path_graph(&[7, 7, 7]),
        ]);
        let g = path_graph(&[0, 1, 0]);
        let free = run_opts(&snap, &g, &VerifyOptions::default());
        let budgeted = run_opts(
            &snap,
            &g,
            &VerifyOptions {
                budget: Some(1_000_000),
                ..VerifyOptions::default()
            },
        );
        assert_eq!(budgeted.sub, free.sub);
        assert_eq!(budgeted.super_, free.super_);
        assert_eq!(budgeted.exact, free.exact);
        assert!(!budgeted.truncated);
    }

    #[test]
    fn hit_budget_early_exit_is_not_truncation() {
        let snap = snapshot(vec![
            path_graph(&[0, 1, 0, 1]),
            path_graph(&[0, 1, 0, 1, 0]),
            path_graph(&[0, 1]),
        ]);
        let g = path_graph(&[0, 1, 0]);
        let hits = run_opts(
            &snap,
            &g,
            &VerifyOptions {
                max_hits: Some(1),
                ..VerifyOptions::default()
            },
        );
        assert_eq!(hits.sub.len() + hits.super_.len(), 1);
        assert!(!hits.truncated, "caller-requested early exit");
        let all = run_opts(&snap, &g, &VerifyOptions::default());
        assert!(all.sub.len() + all.super_.len() >= 3);
    }

    #[test]
    fn parallel_matches_sequential_unbounded() {
        let graphs: Vec<LabeledGraph> = (0..12)
            .map(|i| match i % 4 {
                0 => path_graph(&[0, 1, 0, 1]),
                1 => path_graph(&[0, 1]),
                2 => path_graph(&[1, 0, 1, 0, 1]),
                _ => path_graph(&[0, 1, 0]),
            })
            .collect();
        let snap = snapshot(graphs);
        let g = path_graph(&[0, 1, 0]);
        let seq = run_opts(&snap, &g, &VerifyOptions::default());
        let par = run_opts(
            &snap,
            &g,
            &VerifyOptions {
                threads: 4,
                parallel_threshold: 2,
                ..VerifyOptions::default()
            },
        );
        assert_eq!(par.sub, seq.sub);
        assert_eq!(par.super_, seq.super_);
        assert_eq!(par.exact, seq.exact);
        assert_eq!(par.tests, seq.tests);
        assert_eq!(par.work, seq.work);
    }
}
