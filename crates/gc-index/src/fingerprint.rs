//! Fixed-width bit fingerprints (CT-Index's per-graph bitmaps) and the
//! isomorphism-invariant whole-graph hash used by the cache's exact-match
//! fast path.

use gc_graph::LabeledGraph;

/// A fixed-width bitset. CT-Index hashes every tree/cycle feature of a graph
/// into one bit of a per-graph fingerprint; filtering is then the subset
/// test `bits(query) ⊆ bits(graph)` (paper §7.1: 4096-bit bitmaps by
/// default, 8192 in the feature-size ablation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    words: Box<[u64]>,
    bits: usize,
}

impl Fingerprint {
    /// Creates an all-zero fingerprint with the given number of bits
    /// (rounded up to a multiple of 64).
    pub fn zeros(bits: usize) -> Self {
        assert!(bits > 0, "fingerprint must have at least one bit");
        Fingerprint {
            words: vec![0u64; bits.div_ceil(64)].into_boxed_slice(),
            bits,
        }
    }

    /// Creates an all-ones fingerprint (used for graphs whose feature
    /// enumeration overflowed: they pass every subset test, conservatively).
    pub fn ones(bits: usize) -> Self {
        let mut fp = Self::zeros(bits);
        for w in fp.words.iter_mut() {
            *w = u64::MAX;
        }
        fp
    }

    /// Width in bits.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Sets the bit for a feature hash (`hash % bits`).
    pub fn set_hash(&mut self, hash: u64) {
        let bit = (hash % self.bits as u64) as usize;
        self.words[bit / 64] |= 1 << (bit % 64);
    }

    /// Whether the bit for `hash` is set.
    pub fn test_hash(&self, hash: u64) -> bool {
        let bit = (hash % self.bits as u64) as usize;
        self.words[bit / 64] & (1 << (bit % 64)) != 0
    }

    /// Subset test: every set bit of `self` is also set in `other`.
    pub fn subset_of(&self, other: &Fingerprint) -> bool {
        debug_assert_eq!(self.bits, other.bits, "fingerprint width mismatch");
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & !b == 0)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.words.len() * 8 + std::mem::size_of::<usize>()
    }
}

const FNV_BASIS: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// The FNV-1a step, resumable from any accumulator — the single home of
/// the hash constants shared by [`fnv1a`] and the iso-hash folds.
#[inline]
fn fnv1a_continue(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a over a byte slice — the deterministic feature hash (independent of
/// `std`'s randomised hasher, so fingerprints are stable across runs).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_continue(FNV_BASIS, bytes)
}

/// Folds one `u64` into an FNV-1a accumulator byte by byte.
#[inline]
fn fnv_fold(h: u64, x: u64) -> u64 {
    fnv1a_continue(h, &x.to_le_bytes())
}

/// Refinement rounds of [`iso_hash`]. Three rounds see every ≤3-hop
/// neighbourhood — enough to separate the small query graphs the cache
/// stores in practice; deeper regular structures that 1-WL cannot
/// distinguish collide and are disambiguated by the caller's iso check.
const ISO_ROUNDS: usize = 3;

/// An isomorphism-invariant 64-bit fingerprint of a labelled graph:
/// 1-dimensional Weisfeiler–Leman colour refinement (labels seed the node
/// colours, each round hashes a node's colour with the *sorted* multiset of
/// its neighbours' colours), folded order-independently into a single word
/// together with the node and edge counts.
///
/// Guarantees: isomorphic graphs always hash equal (every step depends only
/// on structure, never node numbering). The converse does not hold — equal
/// hashes are a *candidate* for isomorphism that callers must confirm with
/// an isomorphism check — but non-isomorphic collisions require either a
/// 64-bit hash collision or a 1-WL-indistinguishable pair, both vanishingly
/// rare among cached query graphs.
pub fn iso_hash(g: &LabeledGraph) -> u64 {
    let n = g.node_count();
    let mut colors: Vec<u64> = g
        .labels()
        .iter()
        .map(|&l| fnv_fold(FNV_BASIS, l as u64))
        .collect();
    let mut next = vec![0u64; n];
    let mut neigh: Vec<u64> = Vec::new();
    for round in 0..ISO_ROUNDS {
        for v in g.nodes() {
            neigh.clear();
            neigh.extend(g.neighbors(v).iter().map(|&w| colors[w as usize]));
            neigh.sort_unstable();
            let mut h = fnv_fold(FNV_BASIS, round as u64 + 1);
            h = fnv_fold(h, colors[v as usize]);
            for &c in &neigh {
                h = fnv_fold(h, c);
            }
            next[v as usize] = h;
        }
        std::mem::swap(&mut colors, &mut next);
    }
    // The final colour *multiset* is the invariant; sorting removes the
    // node-order dependence before the fold.
    colors.sort_unstable();
    let mut h = fnv_fold(fnv_fold(FNV_BASIS, n as u64), g.edge_count() as u64);
    for &c in &colors {
        h = fnv_fold(h, c);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_test() {
        let mut fp = Fingerprint::zeros(128);
        assert!(!fp.test_hash(5));
        fp.set_hash(5);
        assert!(fp.test_hash(5));
        fp.set_hash(128 + 5); // wraps to the same bit
        assert_eq!(fp.count_ones(), 1);
    }

    #[test]
    fn subset_semantics() {
        let mut a = Fingerprint::zeros(64);
        let mut b = Fingerprint::zeros(64);
        a.set_hash(3);
        b.set_hash(3);
        b.set_hash(7);
        assert!(a.subset_of(&b));
        assert!(!b.subset_of(&a));
        assert!(a.subset_of(&a));
        assert!(Fingerprint::zeros(64).subset_of(&a));
    }

    #[test]
    fn ones_pass_every_subset_test() {
        let ones = Fingerprint::ones(96);
        let mut q = Fingerprint::zeros(96);
        for h in 0..200u64 {
            q.set_hash(h * 31);
        }
        assert!(q.subset_of(&ones));
        assert_eq!(ones.count_ones(), 96usize.div_ceil(64) * 64);
    }

    #[test]
    fn fnv_is_stable_and_spreads() {
        assert_eq!(fnv1a(b"abc"), fnv1a(b"abc"));
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
        assert_ne!(fnv1a(b""), fnv1a(b"\0"));
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_width_rejected() {
        Fingerprint::zeros(0);
    }

    /// Relabels a graph's nodes by a permutation (perm[old] = new).
    fn permuted(g: &LabeledGraph, perm: &[u32]) -> LabeledGraph {
        let mut labels = vec![0u32; g.node_count()];
        for v in g.nodes() {
            labels[perm[v as usize] as usize] = g.label(v);
        }
        let edges: Vec<(u32, u32)> = g
            .edges()
            .map(|(u, v)| (perm[u as usize], perm[v as usize]))
            .collect();
        LabeledGraph::from_parts(labels, &edges)
    }

    #[test]
    fn iso_hash_invariant_under_node_permutation() {
        let g = LabeledGraph::from_parts(vec![0, 1, 2, 1, 0], &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        for perm in [
            vec![4, 3, 2, 1, 0],
            vec![2, 0, 4, 1, 3],
            vec![1, 2, 3, 4, 0],
        ] {
            assert_eq!(iso_hash(&g), iso_hash(&permuted(&g, &perm)), "{perm:?}");
        }
    }

    #[test]
    fn iso_hash_separates_structure_and_labels() {
        // Same label multiset and sizes, different structure: star vs path.
        let star = LabeledGraph::from_parts(vec![0, 0, 0, 0], &[(0, 1), (0, 2), (0, 3)]);
        let path = LabeledGraph::from_parts(vec![0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3)]);
        assert_ne!(iso_hash(&star), iso_hash(&path));
        // Same structure, one label changed.
        let a = LabeledGraph::from_parts(vec![0, 1, 0], &[(0, 1), (1, 2)]);
        let b = LabeledGraph::from_parts(vec![0, 1, 1], &[(0, 1), (1, 2)]);
        assert_ne!(iso_hash(&a), iso_hash(&b));
        // Different sizes.
        let c = LabeledGraph::from_parts(vec![0, 1], &[(0, 1)]);
        assert_ne!(iso_hash(&a), iso_hash(&c));
    }

    #[test]
    fn iso_hash_empty_and_singletons() {
        assert_eq!(
            iso_hash(&LabeledGraph::empty()),
            iso_hash(&LabeledGraph::empty())
        );
        let one = LabeledGraph::from_parts(vec![7], &[]);
        assert_ne!(iso_hash(&LabeledGraph::empty()), iso_hash(&one));
    }
}
