//! Fixed-width bit fingerprints (CT-Index's per-graph bitmaps).

/// A fixed-width bitset. CT-Index hashes every tree/cycle feature of a graph
/// into one bit of a per-graph fingerprint; filtering is then the subset
/// test `bits(query) ⊆ bits(graph)` (paper §7.1: 4096-bit bitmaps by
/// default, 8192 in the feature-size ablation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    words: Box<[u64]>,
    bits: usize,
}

impl Fingerprint {
    /// Creates an all-zero fingerprint with the given number of bits
    /// (rounded up to a multiple of 64).
    pub fn zeros(bits: usize) -> Self {
        assert!(bits > 0, "fingerprint must have at least one bit");
        Fingerprint {
            words: vec![0u64; bits.div_ceil(64)].into_boxed_slice(),
            bits,
        }
    }

    /// Creates an all-ones fingerprint (used for graphs whose feature
    /// enumeration overflowed: they pass every subset test, conservatively).
    pub fn ones(bits: usize) -> Self {
        let mut fp = Self::zeros(bits);
        for w in fp.words.iter_mut() {
            *w = u64::MAX;
        }
        fp
    }

    /// Width in bits.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Sets the bit for a feature hash (`hash % bits`).
    pub fn set_hash(&mut self, hash: u64) {
        let bit = (hash % self.bits as u64) as usize;
        self.words[bit / 64] |= 1 << (bit % 64);
    }

    /// Whether the bit for `hash` is set.
    pub fn test_hash(&self, hash: u64) -> bool {
        let bit = (hash % self.bits as u64) as usize;
        self.words[bit / 64] & (1 << (bit % 64)) != 0
    }

    /// Subset test: every set bit of `self` is also set in `other`.
    pub fn subset_of(&self, other: &Fingerprint) -> bool {
        debug_assert_eq!(self.bits, other.bits, "fingerprint width mismatch");
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & !b == 0)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.words.len() * 8 + std::mem::size_of::<usize>()
    }
}

/// FNV-1a over a byte slice — the deterministic feature hash (independent of
/// `std`'s randomised hasher, so fingerprints are stable across runs).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_test() {
        let mut fp = Fingerprint::zeros(128);
        assert!(!fp.test_hash(5));
        fp.set_hash(5);
        assert!(fp.test_hash(5));
        fp.set_hash(128 + 5); // wraps to the same bit
        assert_eq!(fp.count_ones(), 1);
    }

    #[test]
    fn subset_semantics() {
        let mut a = Fingerprint::zeros(64);
        let mut b = Fingerprint::zeros(64);
        a.set_hash(3);
        b.set_hash(3);
        b.set_hash(7);
        assert!(a.subset_of(&b));
        assert!(!b.subset_of(&a));
        assert!(a.subset_of(&a));
        assert!(Fingerprint::zeros(64).subset_of(&a));
    }

    #[test]
    fn ones_pass_every_subset_test() {
        let ones = Fingerprint::ones(96);
        let mut q = Fingerprint::zeros(96);
        for h in 0..200u64 {
            q.set_hash(h * 31);
        }
        assert!(q.subset_of(&ones));
        assert_eq!(ones.count_ones(), 96usize.div_ceil(64) * 64);
    }

    #[test]
    fn fnv_is_stable_and_spreads() {
        assert_eq!(fnv1a(b"abc"), fnv1a(b"abc"));
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
        assert_ne!(fnv1a(b""), fnv1a(b"\0"));
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_width_rejected() {
        Fingerprint::zeros(0);
    }
}
