//! A trie over label sequences with per-node postings — the storage shape of
//! GraphGrepSX ("suffix tree" of paths) and of Grapes' location index.

use gc_graph::Label;

/// A trie keyed by label sequences. Each node carries a posting payload `P`
/// (e.g. per-graph occurrence counts). Node 0 is the root (empty sequence).
#[derive(Debug, Clone)]
pub struct LabelTrie<P> {
    nodes: Vec<TrieNode<P>>,
}

#[derive(Debug, Clone)]
struct TrieNode<P> {
    /// Sorted `(label, child index)` pairs; binary-searched on descent.
    children: Vec<(Label, u32)>,
    /// Payload for the sequence ending at this node.
    posting: P,
}

impl<P: Default> Default for LabelTrie<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Default> LabelTrie<P> {
    /// Creates an empty trie.
    pub fn new() -> Self {
        LabelTrie {
            nodes: vec![TrieNode {
                children: Vec::new(),
                posting: P::default(),
            }],
        }
    }

    /// Number of trie nodes (including the root).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Returns a mutable reference to the posting of `seq`, creating the
    /// path through the trie as needed.
    pub fn posting_mut(&mut self, seq: &[Label]) -> &mut P {
        let mut cur = 0usize;
        for &l in seq {
            cur = match self.nodes[cur].children.binary_search_by_key(&l, |c| c.0) {
                Ok(i) => self.nodes[cur].children[i].1 as usize,
                Err(i) => {
                    let idx = self.nodes.len() as u32;
                    self.nodes.push(TrieNode {
                        children: Vec::new(),
                        posting: P::default(),
                    });
                    self.nodes[cur].children.insert(i, (l, idx));
                    idx as usize
                }
            };
        }
        &mut self.nodes[cur].posting
    }

    /// Looks up the posting of `seq`, if that exact sequence was inserted.
    pub fn posting(&self, seq: &[Label]) -> Option<&P> {
        let mut cur = 0usize;
        for &l in seq {
            match self.nodes[cur].children.binary_search_by_key(&l, |c| c.0) {
                Ok(i) => cur = self.nodes[cur].children[i].1 as usize,
                Err(_) => return None,
            }
        }
        Some(&self.nodes[cur].posting)
    }

    /// Visits every `(depth, posting)` pair in depth-first order (used for
    /// memory accounting and diagnostics).
    pub fn for_each_posting(&self, mut f: impl FnMut(&P)) {
        for n in &self.nodes {
            f(&n.posting);
        }
    }

    /// Structural memory of the trie skeleton (children vectors), excluding
    /// posting payloads (accounted by the caller via
    /// [`LabelTrie::for_each_posting`]).
    pub fn skeleton_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<TrieNode<P>>()
            + self
                .nodes
                .iter()
                .map(|n| n.children.len() * std::mem::size_of::<(Label, u32)>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut t: LabelTrie<Vec<u32>> = LabelTrie::new();
        t.posting_mut(&[1, 2, 3]).push(7);
        t.posting_mut(&[1, 2]).push(8);
        t.posting_mut(&[1, 2, 3]).push(9);
        assert_eq!(t.posting(&[1, 2, 3]), Some(&vec![7, 9]));
        assert_eq!(t.posting(&[1, 2]), Some(&vec![8]));
        assert_eq!(t.posting(&[1]), Some(&vec![])); // interior node exists
        assert_eq!(t.posting(&[2]), None);
        assert_eq!(t.posting(&[1, 2, 3, 4]), None);
    }

    #[test]
    fn root_posting_is_empty_sequence() {
        let mut t: LabelTrie<u32> = LabelTrie::new();
        *t.posting_mut(&[]) = 42;
        assert_eq!(t.posting(&[]), Some(&42));
    }

    #[test]
    fn node_count_shares_prefixes() {
        let mut t: LabelTrie<()> = LabelTrie::new();
        t.posting_mut(&[1, 2, 3]);
        t.posting_mut(&[1, 2, 4]);
        // root + 1 + 2 + {3,4} = 5 nodes
        assert_eq!(t.node_count(), 5);
    }

    #[test]
    fn for_each_posting_visits_all() {
        let mut t: LabelTrie<u32> = LabelTrie::new();
        *t.posting_mut(&[1]) = 1;
        *t.posting_mut(&[2]) = 2;
        let mut sum = 0;
        t.for_each_posting(|p| sum += p);
        assert_eq!(sum, 3);
        assert!(t.skeleton_bytes() > 0);
    }
}
