//! GraphGrepSX (GGSX) — path-trie filtering \[Bonnici et al., PRIB 2010\].
//!
//! Dataset graphs are decomposed into all labelled simple paths of up to
//! `max_path_len` edges (default 4, the configuration used in the paper's
//! evaluation); each trie node stores `(graph, occurrence count)` postings.
//! A query is decomposed the same way; a dataset graph remains a candidate
//! only if, for every query feature, it holds at least as many occurrences.

use crate::paths::{enumerate_paths, PathFeature, PathProfile};
use crate::trie::LabelTrie;
use crate::{CandidateSet, FilterIndex};
use gc_graph::{idset, GraphDataset, GraphId, LabeledGraph};

/// Configuration for [`PathTrie`].
#[derive(Debug, Clone, Copy)]
pub struct GgsxConfig {
    /// Maximum path length in edges (paper default: 4).
    pub max_path_len: usize,
    /// Per-graph enumeration work cap; overflowing graphs are indexed
    /// conservatively (always candidates).
    pub work_cap: u64,
}

impl Default for GgsxConfig {
    fn default() -> Self {
        GgsxConfig {
            max_path_len: 4,
            work_cap: 20_000_000,
        }
    }
}

impl GgsxConfig {
    /// The feature-size ablation of §7.3 bumps the path length by one.
    pub fn with_path_len(max_path_len: usize) -> Self {
        GgsxConfig {
            max_path_len,
            ..Default::default()
        }
    }
}

/// The GGSX filtering index: a trie of path features with count postings.
///
/// Besides the classic subgraph direction, the index also supports
/// **supergraph filtering** ([`PathTrie::filter_supergraph`]): a dataset
/// graph `G` can only be contained in a query `g` if every feature of `G`
/// occurs in `g` at least as often. This is the same augmentation
/// GraphCache's own query index uses (paper §6.1) — per-graph distinct
/// feature counts make it a single posting sweep.
#[derive(Debug, Clone)]
pub struct PathTrie {
    trie: LabelTrie<Vec<(GraphId, u32)>>,
    /// Graphs whose enumeration overflowed; always included in candidates.
    overflow: Vec<GraphId>,
    /// Per graph: number of distinct features (supergraph filtering).
    distinct: Vec<u32>,
    graph_count: usize,
    cfg: GgsxConfig,
}

impl PathTrie {
    /// Builds the index over a dataset.
    pub fn build(dataset: &GraphDataset, cfg: GgsxConfig) -> Self {
        let mut trie: LabelTrie<Vec<(GraphId, u32)>> = LabelTrie::new();
        let mut overflow = Vec::new();
        let mut distinct = vec![0u32; dataset.len()];
        for (id, g) in dataset.iter() {
            match enumerate_paths(g, cfg.max_path_len, cfg.work_cap) {
                PathProfile::Counts(counts) => {
                    distinct[id.index()] = counts.len() as u32;
                    for (feature, count) in counts {
                        trie.posting_mut(&feature).push((id, count));
                    }
                }
                PathProfile::Overflow => overflow.push(id),
            }
        }
        // Postings were appended in ascending id order per feature already
        // (dataset iteration order), so they are sorted by construction.
        PathTrie {
            trie,
            overflow,
            distinct,
            graph_count: dataset.len(),
            cfg,
        }
    }

    /// Supergraph-direction filtering: candidates that may be *contained
    /// in* `query` (`G ⊆ g`). Sound: a graph survives iff all its features
    /// occur in the query with at least the graph's multiplicity; overflow
    /// graphs are conservatively kept.
    pub fn supergraph_candidates(&self, query: &LabeledGraph) -> CandidateSet {
        let profile = enumerate_paths(query, self.cfg.max_path_len, self.cfg.work_cap);
        let Some(features) = profile.counts() else {
            return idset::full(self.graph_count);
        };
        let mut satisfied = vec![0u32; self.graph_count];
        for (feature, &g_count) in features {
            if let Some(posting) = self.trie.posting(feature) {
                for &(id, count) in posting {
                    satisfied[id.index()] += (count <= g_count) as u32;
                }
            }
        }
        // Overflow graphs have distinct == 0 and trivially pass (they are
        // also in `overflow`, making the union a no-op safety net). An
        // empty dataset graph likewise passes — it is vacuously contained.
        let out: Vec<GraphId> = (0..self.graph_count as u32)
            .map(GraphId)
            .filter(|id| satisfied[id.index()] == self.distinct[id.index()])
            .collect();
        idset::union(&out, &self.overflow)
    }

    /// The effective configuration.
    pub fn config(&self) -> GgsxConfig {
        self.cfg
    }

    /// Ids of graphs indexed conservatively due to enumeration overflow.
    pub fn overflowed(&self) -> &[GraphId] {
        &self.overflow
    }

    /// Decomposes a query into its feature multiset using this index's
    /// configuration. `None` signals enumeration overflow (treat every
    /// graph as a candidate).
    pub fn query_features(&self, query: &LabeledGraph) -> Option<Vec<(PathFeature, u32)>> {
        match enumerate_paths(query, self.cfg.max_path_len, self.cfg.work_cap) {
            PathProfile::Counts(c) => {
                let mut v: Vec<(PathFeature, u32)> = c.into_iter().collect();
                // Deterministic processing order; longer features first as
                // they are usually the most selective.
                v.sort_unstable_by(|a, b| b.0.len().cmp(&a.0.len()).then(a.0.cmp(&b.0)));
                Some(v)
            }
            PathProfile::Overflow => None,
        }
    }

    /// Core filtering routine shared with Grapes: intersect, over all query
    /// features, the graphs holding enough occurrences. Starts from the
    /// rarest feature's posting, then gallops: each further feature only
    /// probes the (small) accumulator via binary search instead of
    /// materialising its full survivor list.
    fn filter_by_counts(&self, features: &[(PathFeature, u32)]) -> CandidateSet {
        let mut postings: Vec<(&Vec<(GraphId, u32)>, u32)> = Vec::with_capacity(features.len());
        for (feature, qcount) in features {
            match self.trie.posting(feature) {
                Some(p) => postings.push((p, *qcount)),
                // A feature absent from every graph: only overflow graphs
                // can still be candidates.
                None => return self.overflow.clone(),
            }
        }
        if postings.is_empty() {
            return idset::union(&idset::full(self.graph_count), &self.overflow);
        }
        postings.sort_unstable_by_key(|(p, _)| p.len());
        let (base, need) = postings[0];
        let mut acc: Vec<GraphId> = base
            .iter()
            .filter(|(_, c)| *c >= need)
            .map(|(id, _)| *id)
            .collect();
        for &(posting, need) in &postings[1..] {
            if acc.is_empty() {
                break;
            }
            acc.retain(|id| {
                posting
                    .binary_search_by_key(id, |&(g, _)| g)
                    .is_ok_and(|i| posting[i].1 >= need)
            });
        }
        idset::union(&acc, &self.overflow)
    }
}

impl FilterIndex for PathTrie {
    fn name(&self) -> &'static str {
        "GGSX"
    }

    fn filter(&self, query: &LabeledGraph) -> CandidateSet {
        match self.query_features(query) {
            Some(features) => self.filter_by_counts(&features),
            None => idset::full(self.graph_count),
        }
    }

    fn graph_count(&self) -> usize {
        self.graph_count
    }

    fn memory_bytes(&self) -> usize {
        let mut postings = 0usize;
        self.trie.for_each_posting(|p| {
            postings += p.len() * std::mem::size_of::<(GraphId, u32)>()
                + std::mem::size_of::<Vec<(GraphId, u32)>>();
        });
        self.trie.skeleton_bytes() + postings + self.overflow.len() * 4 + self.distinct.len() * 4
    }

    fn filter_supergraph(&self, query: &LabeledGraph) -> Option<CandidateSet> {
        Some(self.supergraph_candidates(query))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_subiso::{Matcher, Vf2};

    fn dataset() -> GraphDataset {
        GraphDataset::new(vec![
            // G0: path 0-1-2 labelled a,b,a
            LabeledGraph::from_parts(vec![0, 1, 0], &[(0, 1), (1, 2)]),
            // G1: triangle a,b,c
            LabeledGraph::from_parts(vec![0, 1, 2], &[(0, 1), (1, 2), (2, 0)]),
            // G2: single edge a-b
            LabeledGraph::from_parts(vec![0, 1], &[(0, 1)]),
        ])
    }

    #[test]
    fn filter_is_sound_and_tight_here() {
        let d = dataset();
        let idx = PathTrie::build(&d, GgsxConfig::default());
        let q = LabeledGraph::from_parts(vec![0, 1], &[(0, 1)]); // a-b edge
        let cs = idx.filter(&q);
        // All three graphs contain an a-b edge.
        assert_eq!(cs, vec![GraphId(0), GraphId(1), GraphId(2)]);

        let q2 = LabeledGraph::from_parts(vec![0, 1, 0], &[(0, 1), (1, 2)]); // a-b-a
        let cs2 = idx.filter(&q2);
        assert_eq!(cs2, vec![GraphId(0)]);
    }

    #[test]
    fn count_filtering_uses_multiplicity() {
        // Query with two a-b edges sharing the b: star b(a,a).
        let d = dataset();
        let idx = PathTrie::build(&d, GgsxConfig::default());
        let star = LabeledGraph::from_parts(vec![1, 0, 0], &[(0, 1), (0, 2)]);
        let cs = idx.filter(&star);
        // Only G0 has two distinct a-b paths from one b.
        assert_eq!(cs, vec![GraphId(0)]);
    }

    #[test]
    fn unknown_feature_empties_candidates() {
        let d = dataset();
        let idx = PathTrie::build(&d, GgsxConfig::default());
        let q = LabeledGraph::from_parts(vec![9, 9], &[(0, 1)]);
        assert!(idx.filter(&q).is_empty());
    }

    #[test]
    fn soundness_vs_vf2_on_dataset_subgraphs() {
        let d = dataset();
        let idx = PathTrie::build(&d, GgsxConfig::default());
        let vf2 = Vf2::new();
        let queries = [
            LabeledGraph::from_parts(vec![0, 1], &[(0, 1)]),
            LabeledGraph::from_parts(vec![1, 2], &[(0, 1)]),
            LabeledGraph::from_parts(vec![0, 1, 2], &[(0, 1), (1, 2), (2, 0)]),
        ];
        for q in &queries {
            let cs = idx.filter(q);
            for id in d.ids() {
                if vf2.contains(q, d.graph(id)) {
                    assert!(
                        idset::contains(&cs, id),
                        "false negative: {id} missing for {q:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn overflow_graphs_always_candidates() {
        let d = dataset();
        let cfg = GgsxConfig {
            max_path_len: 4,
            work_cap: 1, // force overflow for every graph
        };
        let idx = PathTrie::build(&d, cfg);
        assert_eq!(idx.overflowed().len(), 3);
        let q = LabeledGraph::from_parts(vec![9, 9], &[(0, 1)]);
        // Nothing matches the feature, but overflowed graphs stay in.
        assert_eq!(idx.filter(&q).len(), 3);
    }

    #[test]
    fn memory_accounting_nonzero() {
        let d = dataset();
        let idx = PathTrie::build(&d, GgsxConfig::default());
        assert!(idx.memory_bytes() > 0);
        assert_eq!(idx.graph_count(), 3);
        assert_eq!(idx.name(), "GGSX");
    }

    #[test]
    fn supergraph_filter_sound_and_selective() {
        let d = dataset();
        let idx = PathTrie::build(&d, GgsxConfig::default());
        let vf2 = Vf2::new();
        // Query containing G2 (edge a-b) plus extra context.
        let q = LabeledGraph::from_parts(vec![0, 1, 0, 2], &[(0, 1), (1, 2), (2, 3)]);
        let cs = idx.supergraph_candidates(&q);
        for id in d.ids() {
            if vf2.contains(d.graph(id), &q) {
                assert!(
                    idset::contains(&cs, id),
                    "supergraph filter dropped true answer {id}"
                );
            }
        }
        // G1 (triangle with label 2) cannot be inside q: pruned.
        assert!(!idset::contains(&cs, GraphId(1)));
    }

    #[test]
    fn supergraph_filter_overflow_conservative() {
        let d = dataset();
        let idx = PathTrie::build(
            &d,
            GgsxConfig {
                max_path_len: 4,
                work_cap: 1,
            },
        );
        let q = LabeledGraph::from_parts(vec![9], &[]);
        assert_eq!(idx.supergraph_candidates(&q).len(), 3);
    }

    #[test]
    fn longer_paths_increase_index_size() {
        // The §7.3 ablation: feature size +1 → bigger index.
        let d = dataset();
        let small = PathTrie::build(&d, GgsxConfig::with_path_len(2));
        let large = PathTrie::build(&d, GgsxConfig::with_path_len(4));
        assert!(large.memory_bytes() >= small.memory_bytes());
    }
}
