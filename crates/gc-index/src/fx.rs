//! A fast, deterministic hasher for internal feature maps.
//!
//! The perf book's first hashing advice: the default SipHash is the wrong
//! tool for short integer-sequence keys on a hot path. This is the classic
//! Fx multiply-rotate hash (as used by rustc), implemented locally to keep
//! the dependency set to the approved list. Determinism also matters here:
//! feature maps iterate into index postings, and runs must be reproducible.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hash state.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, BuildHasherDefault, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        BuildHasherDefault::<FxHasher>::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_instances() {
        let key: Vec<u32> = vec![1, 2, 3, 4, 5];
        assert_eq!(hash_of(&key), hash_of(&key.clone()));
    }

    #[test]
    fn distinguishes_typical_feature_keys() {
        assert_ne!(hash_of(&vec![0u32, 1]), hash_of(&vec![1u32, 0]));
        assert_ne!(hash_of(&vec![0u32]), hash_of(&vec![0u32, 0]));
    }

    #[test]
    fn map_works() {
        let mut m: FxHashMap<Vec<u32>, u32> = FxHashMap::default();
        m.insert(vec![1, 2], 7);
        assert_eq!(m.get([1u32, 2].as_slice()), Some(&7));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(9);
        assert!(s.contains(&9));
    }

    #[test]
    fn byte_stream_tail_handled() {
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]); // 8 + 1 tail byte
        let a = h.finish();
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        assert_ne!(a, h2.finish());
    }
}
