//! Tree and cycle feature enumeration for CT-Index.
//!
//! CT-Index fingerprints are built from two feature families (paper §7.1
//! configuration: "trees up to size 6 and cycles up to size 8"):
//!
//! * **trees** — every (non-induced) subtree with up to `tree_max_nodes`
//!   nodes. Connected node sets are enumerated uniquely with Wernicke's ESU
//!   algorithm; every spanning tree of each set's induced subgraph is a tree
//!   feature. Trees are canonicalised with the labelled AHU encoding rooted
//!   at the tree centre(s), so isomorphic trees hash identically.
//! * **cycles** — every simple cycle with up to `cycle_max_nodes` nodes,
//!   canonicalised as the lexicographically smallest rotation over both
//!   traversal directions.
//!
//! Soundness for non-induced subgraph queries: if `g ⊆ G`, every tree/cycle
//! (an *edge subset*, not an induced shape) of `g` maps to an identically
//! labelled tree/cycle of `G`, so `codes(g) ⊆ codes(G)`. Enumerating
//! *induced* shapes instead would break this — which is why spanning trees
//! of every connected node set are enumerated, not just induced trees.

use gc_graph::{Label, LabeledGraph, NodeId};
use std::collections::HashSet;

/// Configuration for the CT-Index feature extractor.
#[derive(Debug, Clone, Copy)]
pub struct FeatureConfig {
    /// Maximum tree size in nodes (paper default: 6).
    pub tree_max_nodes: usize,
    /// Maximum cycle length in nodes (paper default: 8).
    pub cycle_max_nodes: usize,
    /// Enumeration work cap per graph; overflow ⇒ conservative handling.
    pub work_cap: u64,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig {
            tree_max_nodes: 6,
            cycle_max_nodes: 8,
            work_cap: 20_000_000,
        }
    }
}

/// The canonical feature codes of a graph, or an overflow marker.
#[derive(Debug, Clone)]
pub enum FeatureSet {
    /// Canonical byte codes of every tree and cycle feature.
    Codes(HashSet<Vec<u8>>),
    /// Work cap exceeded: treat the graph conservatively.
    Overflow,
}

impl FeatureSet {
    /// The code set, if enumeration completed.
    pub fn codes(&self) -> Option<&HashSet<Vec<u8>>> {
        match self {
            FeatureSet::Codes(c) => Some(c),
            FeatureSet::Overflow => None,
        }
    }
}

/// Enumerates all tree and cycle features of `g` under `cfg`.
pub fn enumerate_features(g: &LabeledGraph, cfg: &FeatureConfig) -> FeatureSet {
    let mut codes: HashSet<Vec<u8>> = HashSet::new();
    let mut work = Budget {
        left: cfg.work_cap,
        ok: true,
    };
    enumerate_trees(g, cfg.tree_max_nodes, &mut codes, &mut work);
    if work.ok {
        enumerate_cycles(g, cfg.cycle_max_nodes, &mut codes, &mut work);
    }
    if work.ok {
        FeatureSet::Codes(codes)
    } else {
        FeatureSet::Overflow
    }
}

struct Budget {
    left: u64,
    ok: bool,
}

impl Budget {
    #[inline]
    fn spend(&mut self) -> bool {
        if self.left == 0 {
            self.ok = false;
            return false;
        }
        self.left -= 1;
        true
    }
}

// ---------------------------------------------------------------------------
// Trees: ESU node-set enumeration + spanning-tree expansion + AHU codes.
// ---------------------------------------------------------------------------

fn enumerate_trees(
    g: &LabeledGraph,
    max_nodes: usize,
    codes: &mut HashSet<Vec<u8>>,
    work: &mut Budget,
) {
    if max_nodes == 0 {
        return;
    }
    for v in g.nodes() {
        if !work.spend() {
            return;
        }
        // ESU from v: only nodes with id > v may join.
        let mut subset = vec![v];
        let ext: Vec<NodeId> = g.neighbors(v).iter().copied().filter(|&u| u > v).collect();
        emit_trees_for_subset(g, &subset, codes, work);
        if !work.ok {
            return;
        }
        esu_extend(g, v, &mut subset, ext, max_nodes, codes, work);
        if !work.ok {
            return;
        }
    }
}

fn esu_extend(
    g: &LabeledGraph,
    root: NodeId,
    subset: &mut Vec<NodeId>,
    mut ext: Vec<NodeId>,
    max_nodes: usize,
    codes: &mut HashSet<Vec<u8>>,
    work: &mut Budget,
) {
    if subset.len() >= max_nodes {
        return;
    }
    while let Some(w) = ext.pop() {
        if !work.spend() {
            return;
        }
        // Exclusive extension: neighbours of w that are > root, not already
        // in the subset, not already in ext, and not adjacent to the current
        // subset (the ESU uniqueness condition).
        let mut next_ext = ext.clone();
        for &u in g.neighbors(w) {
            if u > root
                && !subset.contains(&u)
                && u != w
                && !next_ext.contains(&u)
                && !subset.iter().any(|&s| g.has_edge(s, u))
            {
                next_ext.push(u);
            }
        }
        subset.push(w);
        emit_trees_for_subset(g, subset, codes, work);
        if work.ok {
            esu_extend(g, root, subset, next_ext, max_nodes, codes, work);
        }
        subset.pop();
        if !work.ok {
            return;
        }
    }
}

/// For one connected node set: enumerate every spanning tree of the induced
/// subgraph and record its AHU code.
fn emit_trees_for_subset(
    g: &LabeledGraph,
    subset: &[NodeId],
    codes: &mut HashSet<Vec<u8>>,
    work: &mut Budget,
) {
    let k = subset.len();
    if k == 1 {
        codes.insert(tree_code(&[g.label(subset[0])], &[]));
        return;
    }
    // Induced edges, in local indices.
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for i in 0..k {
        for j in i + 1..k {
            if g.has_edge(subset[i], subset[j]) {
                edges.push((i, j));
            }
        }
    }
    let labels: Vec<Label> = subset.iter().map(|&v| g.label(v)).collect();
    // Choose k-1 edges forming a spanning tree (brute force over
    // combinations; k ≤ 6 so at most C(15, 5) = 3003 candidates).
    let need = k - 1;
    let mut chosen: Vec<usize> = Vec::with_capacity(need);
    combinations(edges.len(), need, &mut chosen, &mut |combo| {
        if !work.spend() {
            return false;
        }
        let tree_edges: Vec<(usize, usize)> = combo.iter().map(|&i| edges[i]).collect();
        if spans(k, &tree_edges) {
            codes.insert(tree_code(&labels, &tree_edges));
        }
        true
    });
}

/// Visits all `choose(n, k)` index combinations; the callback returns
/// `false` to abort.
fn combinations(
    n: usize,
    k: usize,
    prefix: &mut Vec<usize>,
    visit: &mut impl FnMut(&[usize]) -> bool,
) -> bool {
    if prefix.len() == k {
        return visit(prefix);
    }
    let start = prefix.last().map_or(0, |&x| x + 1);
    let remaining = k - prefix.len();
    if n < start + remaining {
        return true;
    }
    for i in start..=(n - remaining) {
        prefix.push(i);
        let cont = combinations(n, k, prefix, visit);
        prefix.pop();
        if !cont {
            return false;
        }
    }
    true
}

/// Union-find connectivity test: do `k-1` edges connect `k` nodes acyclically?
fn spans(k: usize, edges: &[(usize, usize)]) -> bool {
    let mut parent: Vec<usize> = (0..k).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut merged = 0;
    for &(a, b) in edges {
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra == rb {
            return false; // cycle
        }
        parent[ra] = rb;
        merged += 1;
    }
    merged == k - 1
}

/// Labelled AHU canonical code of a tree given labels and edges over local
/// indices. Rooted at the tree centre (or the smaller code of the two
/// centres), so isomorphic labelled trees share one code.
pub fn tree_code(labels: &[Label], edges: &[(usize, usize)]) -> Vec<u8> {
    let k = labels.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); k];
    for &(a, b) in edges {
        adj[a].push(b);
        adj[b].push(a);
    }
    let centers = tree_centers(k, &adj);
    let mut best: Option<Vec<u8>> = None;
    for &c in &centers {
        let code = rooted_code(c, usize::MAX, labels, &adj);
        if best.as_ref().is_none_or(|b| code < *b) {
            best = Some(code);
        }
    }
    let mut out = vec![b'T'];
    out.extend_from_slice(&best.expect("non-empty tree"));
    out
}

fn tree_centers(k: usize, adj: &[Vec<usize>]) -> Vec<usize> {
    if k == 1 {
        return vec![0];
    }
    let mut degree: Vec<usize> = adj.iter().map(|a| a.len()).collect();
    let mut removed = vec![false; k];
    let mut layer: Vec<usize> = (0..k).filter(|&v| degree[v] <= 1).collect();
    let mut remaining = k;
    while remaining > 2 {
        let mut next = Vec::new();
        for &v in &layer {
            removed[v] = true;
            remaining -= 1;
            for &w in &adj[v] {
                if !removed[w] {
                    degree[w] -= 1;
                    if degree[w] == 1 {
                        next.push(w);
                    }
                }
            }
        }
        layer = next;
    }
    (0..k).filter(|&v| !removed[v]).collect()
}

fn rooted_code(v: usize, parent: usize, labels: &[Label], adj: &[Vec<usize>]) -> Vec<u8> {
    let mut children: Vec<Vec<u8>> = adj[v]
        .iter()
        .filter(|&&w| w != parent)
        .map(|&w| rooted_code(w, v, labels, adj))
        .collect();
    children.sort_unstable();
    let mut out = Vec::with_capacity(8 + children.iter().map(|c| c.len()).sum::<usize>());
    out.push(b'(');
    out.extend_from_slice(&labels[v].to_le_bytes());
    for c in children {
        out.extend_from_slice(&c);
    }
    out.push(b')');
    out
}

// ---------------------------------------------------------------------------
// Cycles: bounded DFS with the minimum-node rule + rotation-canonical codes.
// ---------------------------------------------------------------------------

fn enumerate_cycles(
    g: &LabeledGraph,
    max_nodes: usize,
    codes: &mut HashSet<Vec<u8>>,
    work: &mut Budget,
) {
    if max_nodes < 3 {
        return;
    }
    let mut path: Vec<NodeId> = Vec::with_capacity(max_nodes);
    let mut on_path = vec![false; g.node_count()];
    for s in g.nodes() {
        path.push(s);
        on_path[s as usize] = true;
        cycle_dfs(g, s, max_nodes, &mut path, &mut on_path, codes, work);
        on_path[s as usize] = false;
        path.pop();
        if !work.ok {
            return;
        }
    }
}

fn cycle_dfs(
    g: &LabeledGraph,
    s: NodeId,
    max_nodes: usize,
    path: &mut Vec<NodeId>,
    on_path: &mut [bool],
    codes: &mut HashSet<Vec<u8>>,
    work: &mut Budget,
) {
    if !work.spend() {
        return;
    }
    let v = *path.last().expect("path non-empty");
    for &w in g.neighbors(v) {
        if w == s && path.len() >= 3 {
            let labels: Vec<Label> = path.iter().map(|&x| g.label(x)).collect();
            codes.insert(cycle_code(&labels));
        } else if w > s && !on_path[w as usize] && path.len() < max_nodes {
            path.push(w);
            on_path[w as usize] = true;
            cycle_dfs(g, s, max_nodes, path, on_path, codes, work);
            on_path[w as usize] = false;
            path.pop();
            if !work.ok {
                return;
            }
        }
    }
}

/// Canonical code of a cycle's label sequence: the lexicographically least
/// rotation over both directions, prefixed with the cycle length.
pub fn cycle_code(labels: &[Label]) -> Vec<u8> {
    let n = labels.len();
    let mut best: Option<Vec<Label>> = None;
    let mut consider = |seq: Vec<Label>| {
        if best.as_ref().is_none_or(|b| seq < *b) {
            best = Some(seq);
        }
    };
    for start in 0..n {
        let fwd: Vec<Label> = (0..n).map(|i| labels[(start + i) % n]).collect();
        let rev: Vec<Label> = (0..n).map(|i| labels[(start + n - i) % n]).collect();
        consider(fwd);
        consider(rev);
    }
    let canon = best.expect("non-empty cycle");
    let mut out = Vec::with_capacity(2 + 4 * n);
    out.push(b'C');
    out.push(n as u8);
    for l in canon {
        out.extend_from_slice(&l.to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes_of(g: &LabeledGraph, cfg: &FeatureConfig) -> HashSet<Vec<u8>> {
        match enumerate_features(g, cfg) {
            FeatureSet::Codes(c) => c,
            FeatureSet::Overflow => panic!("unexpected overflow"),
        }
    }

    #[test]
    fn single_edge_features() {
        let g = LabeledGraph::from_parts(vec![1, 2], &[(0, 1)]);
        let c = codes_of(&g, &FeatureConfig::default());
        // Two single-node trees + one 2-node tree; no cycles.
        assert_eq!(c.len(), 3);
        assert!(c.iter().all(|code| code[0] == b'T'));
    }

    #[test]
    fn triangle_has_cycle_feature() {
        let g = LabeledGraph::from_parts(vec![0, 0, 0], &[(0, 1), (1, 2), (2, 0)]);
        let c = codes_of(&g, &FeatureConfig::default());
        assert!(c.iter().any(|code| code[0] == b'C'), "cycle code missing");
    }

    #[test]
    fn isomorphic_trees_share_code() {
        // The same labelled path written with different node numberings.
        let a = tree_code(&[5, 6, 7], &[(0, 1), (1, 2)]);
        let b = tree_code(&[7, 6, 5], &[(0, 1), (1, 2)]);
        let c = tree_code(&[6, 5, 7], &[(1, 0), (0, 2)]); // centre first
        assert_eq!(a, b);
        assert_eq!(a, c);
        // A different labelling must differ.
        let d = tree_code(&[5, 7, 6], &[(0, 1), (1, 2)]);
        assert_ne!(a, d);
    }

    #[test]
    fn two_center_tree_canonical() {
        // 4-path has two centres; both rootings must collapse to one code.
        let a = tree_code(&[1, 2, 2, 1], &[(0, 1), (1, 2), (2, 3)]);
        let b = tree_code(&[1, 2, 2, 1], &[(3, 2), (2, 1), (1, 0)]);
        assert_eq!(a, b);
    }

    #[test]
    fn cycle_codes_rotation_and_reflection_invariant() {
        let a = cycle_code(&[1, 2, 3]);
        let b = cycle_code(&[2, 3, 1]);
        let c = cycle_code(&[3, 2, 1]);
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_ne!(cycle_code(&[1, 2, 3]), cycle_code(&[1, 3, 2, 2]));
    }

    #[test]
    fn subgraph_codes_contained() {
        // Soundness cornerstone for CT-Index filtering.
        let g = LabeledGraph::from_parts(
            vec![0, 1, 0, 1, 2],
            &[(0, 1), (1, 2), (2, 3), (3, 0), (3, 4)],
        );
        let (sub, _) = g.edge_subgraph(&[(0, 1), (1, 2), (3, 4)]);
        let cfg = FeatureConfig::default();
        let cg = codes_of(&g, &cfg);
        let cs = codes_of(&sub, &cfg);
        for code in &cs {
            assert!(cg.contains(code), "feature of subgraph missing in graph");
        }
    }

    #[test]
    fn square_with_chord_counts_trees_not_induced() {
        // Node set {0,1,2,3} induces a square + chord; its spanning trees
        // include the 3-star at node 1 — which only exists as a non-induced
        // subtree. It must be enumerated.
        let g =
            LabeledGraph::from_parts(vec![0, 1, 2, 3], &[(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)]);
        let c = codes_of(&g, &FeatureConfig::default());
        let star = tree_code(&[1, 0, 2, 3], &[(0, 1), (0, 2), (0, 3)]);
        assert!(c.contains(&star), "non-induced star tree missing");
    }

    #[test]
    fn overflow_reported() {
        let g = LabeledGraph::from_parts(vec![0, 0, 0], &[(0, 1), (1, 2), (2, 0)]);
        let cfg = FeatureConfig {
            work_cap: 1,
            ..Default::default()
        };
        assert!(matches!(enumerate_features(&g, &cfg), FeatureSet::Overflow));
    }

    #[test]
    fn cycle_longer_than_cap_ignored() {
        // 5-cycle with cycle_max_nodes = 4 yields no cycle codes.
        let g = LabeledGraph::from_parts(vec![0; 5], &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let cfg = FeatureConfig {
            cycle_max_nodes: 4,
            ..Default::default()
        };
        let c = codes_of(&g, &cfg);
        assert!(c.iter().all(|code| code[0] != b'C'));
    }
}
