//! Grapes — path index with occurrence locations \[Giugno et al., PLoS One
//! 2013\].
//!
//! Grapes indexes the same labelled-path features as GraphGrepSX but
//! additionally records, per feature and graph, the nodes at which
//! occurrences start. The original system uses these locations to restrict
//! verification to the relevant regions of each candidate graph and runs
//! verification on multiple threads (the paper evaluates Grapes1 and
//! Grapes6 — 1 and 6 threads). In this reproduction the filtering and the
//! location store live here; the thread pool lives in `gc-methods`, and the
//! location lists feed the space-accounting experiments (Grapes' index is
//! markedly larger than GGSX's, which the paper's space discussion relies
//! on).

use crate::paths::{enumerate_paths_located, LocatedProfile, PathFeature};
use crate::trie::LabelTrie;
use crate::{CandidateSet, FilterIndex};
use gc_graph::{idset, GraphDataset, GraphId, LabeledGraph, NodeId};

/// Configuration for [`GrapesIndex`].
#[derive(Debug, Clone, Copy)]
pub struct GrapesConfig {
    /// Maximum path length in edges (paper default: 4).
    pub max_path_len: usize,
    /// Per-graph enumeration work cap (overflow ⇒ conservative indexing).
    pub work_cap: u64,
}

impl Default for GrapesConfig {
    fn default() -> Self {
        GrapesConfig {
            max_path_len: 4,
            work_cap: 20_000_000,
        }
    }
}

/// One posting: a graph, its occurrence count, and the sorted start nodes.
#[derive(Debug, Clone, Default)]
pub struct LocatedPosting {
    /// Graph id, occurrence count, start-node list.
    pub entries: Vec<(GraphId, u32, Vec<NodeId>)>,
}

/// The Grapes filtering index.
#[derive(Debug, Clone)]
pub struct GrapesIndex {
    trie: LabelTrie<LocatedPosting>,
    overflow: Vec<GraphId>,
    /// Per graph: number of distinct features (supergraph filtering).
    distinct: Vec<u32>,
    graph_count: usize,
    cfg: GrapesConfig,
}

impl GrapesIndex {
    /// Builds the index over a dataset.
    pub fn build(dataset: &GraphDataset, cfg: GrapesConfig) -> Self {
        let mut trie: LabelTrie<LocatedPosting> = LabelTrie::new();
        let mut overflow = Vec::new();
        let mut distinct = vec![0u32; dataset.len()];
        for (id, g) in dataset.iter() {
            match enumerate_paths_located(g, cfg.max_path_len, cfg.work_cap) {
                LocatedProfile::Counts(counts) => {
                    distinct[id.index()] = counts.len() as u32;
                    for (feature, (count, starts)) in counts {
                        trie.posting_mut(&feature).entries.push((id, count, starts));
                    }
                }
                LocatedProfile::Overflow => overflow.push(id),
            }
        }
        GrapesIndex {
            trie,
            overflow,
            distinct,
            graph_count: dataset.len(),
            cfg,
        }
    }

    /// The effective configuration.
    pub fn config(&self) -> GrapesConfig {
        self.cfg
    }

    /// The start-node locations of `feature` within graph `id`, if indexed.
    pub fn locations(&self, feature: &[u32], id: GraphId) -> Option<&[NodeId]> {
        self.trie.posting(feature).and_then(|p| {
            p.entries
                .iter()
                .find(|(g, _, _)| *g == id)
                .map(|(_, _, locs)| locs.as_slice())
        })
    }

    fn query_features(&self, query: &LabeledGraph) -> Option<Vec<(PathFeature, u32)>> {
        match crate::paths::enumerate_paths(query, self.cfg.max_path_len, self.cfg.work_cap) {
            crate::paths::PathProfile::Counts(c) => {
                let mut v: Vec<(PathFeature, u32)> = c.into_iter().collect();
                v.sort_unstable_by(|a, b| b.0.len().cmp(&a.0.len()).then(a.0.cmp(&b.0)));
                Some(v)
            }
            crate::paths::PathProfile::Overflow => None,
        }
    }
}

impl FilterIndex for GrapesIndex {
    fn name(&self) -> &'static str {
        "Grapes"
    }

    fn filter(&self, query: &LabeledGraph) -> CandidateSet {
        let Some(features) = self.query_features(query) else {
            return idset::full(self.graph_count);
        };
        // Rarest-posting-first galloping intersection (see PathTrie).
        let mut postings: Vec<(&LocatedPosting, u32)> = Vec::with_capacity(features.len());
        for (feature, qcount) in &features {
            match self.trie.posting(feature) {
                Some(p) => postings.push((p, *qcount)),
                None => return self.overflow.clone(),
            }
        }
        if postings.is_empty() {
            return idset::union(&idset::full(self.graph_count), &self.overflow);
        }
        postings.sort_unstable_by_key(|(p, _)| p.entries.len());
        let (base, need) = postings[0];
        let mut acc: Vec<GraphId> = base
            .entries
            .iter()
            .filter(|(_, c, _)| *c >= need)
            .map(|(id, _, _)| *id)
            .collect();
        for &(posting, need) in &postings[1..] {
            if acc.is_empty() {
                break;
            }
            acc.retain(|id| {
                posting
                    .entries
                    .binary_search_by_key(id, |&(g, _, _)| g)
                    .is_ok_and(|i| posting.entries[i].1 >= need)
            });
        }
        idset::union(&acc, &self.overflow)
    }

    fn graph_count(&self) -> usize {
        self.graph_count
    }

    fn memory_bytes(&self) -> usize {
        let mut postings = 0usize;
        self.trie.for_each_posting(|p| {
            postings += std::mem::size_of::<LocatedPosting>();
            for (_, _, locs) in &p.entries {
                postings += std::mem::size_of::<(GraphId, u32, Vec<NodeId>)>()
                    + locs.len() * std::mem::size_of::<NodeId>();
            }
        });
        self.trie.skeleton_bytes() + postings + self.overflow.len() * 4 + self.distinct.len() * 4
    }

    fn filter_supergraph(&self, query: &LabeledGraph) -> Option<CandidateSet> {
        let profile =
            crate::paths::enumerate_paths(query, self.cfg.max_path_len, self.cfg.work_cap);
        let Some(features) = profile.counts() else {
            return Some(idset::full(self.graph_count));
        };
        let mut satisfied = vec![0u32; self.graph_count];
        for (feature, &g_count) in features {
            if let Some(posting) = self.trie.posting(feature) {
                for &(id, count, _) in posting.entries.iter() {
                    satisfied[id.index()] += (count <= g_count) as u32;
                }
            }
        }
        let out: Vec<GraphId> = (0..self.graph_count as u32)
            .map(GraphId)
            .filter(|id| satisfied[id.index()] == self.distinct[id.index()])
            .collect();
        Some(idset::union(&out, &self.overflow))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ggsx::{GgsxConfig, PathTrie};

    fn dataset() -> GraphDataset {
        GraphDataset::new(vec![
            LabeledGraph::from_parts(vec![0, 1, 0], &[(0, 1), (1, 2)]),
            LabeledGraph::from_parts(vec![0, 1, 2], &[(0, 1), (1, 2), (2, 0)]),
            LabeledGraph::from_parts(vec![0, 1], &[(0, 1)]),
        ])
    }

    #[test]
    fn filtering_agrees_with_ggsx() {
        let d = dataset();
        let grapes = GrapesIndex::build(&d, GrapesConfig::default());
        let ggsx = PathTrie::build(&d, GgsxConfig::default());
        let queries = [
            LabeledGraph::from_parts(vec![0, 1], &[(0, 1)]),
            LabeledGraph::from_parts(vec![0, 1, 0], &[(0, 1), (1, 2)]),
            LabeledGraph::from_parts(vec![1, 0, 0], &[(0, 1), (0, 2)]),
            LabeledGraph::from_parts(vec![9, 9], &[(0, 1)]),
        ];
        for q in &queries {
            assert_eq!(grapes.filter(q), ggsx.filter(q), "query {q:?}");
        }
    }

    #[test]
    fn locations_recorded() {
        let d = dataset();
        let grapes = GrapesIndex::build(&d, GrapesConfig::default());
        // Feature [0, 1] (a→b) starts at nodes 0 and 2 in G0.
        let locs = grapes.locations(&[0, 1], GraphId(0)).unwrap();
        assert_eq!(locs, &[0, 2]);
        // Absent feature/graph combinations return None.
        assert!(grapes.locations(&[5, 5], GraphId(0)).is_none());
        assert!(grapes.locations(&[0, 1, 2], GraphId(0)).is_none());
    }

    #[test]
    fn grapes_index_larger_than_ggsx() {
        let d = dataset();
        let grapes = GrapesIndex::build(&d, GrapesConfig::default());
        let ggsx = PathTrie::build(&d, GgsxConfig::default());
        assert!(
            grapes.memory_bytes() > ggsx.memory_bytes(),
            "location lists must cost memory: grapes {} vs ggsx {}",
            grapes.memory_bytes(),
            ggsx.memory_bytes()
        );
    }

    #[test]
    fn overflow_conservative() {
        let d = dataset();
        let grapes = GrapesIndex::build(
            &d,
            GrapesConfig {
                max_path_len: 4,
                work_cap: 1,
            },
        );
        let q = LabeledGraph::from_parts(vec![9, 9], &[(0, 1)]);
        assert_eq!(grapes.filter(&q).len(), 3);
    }
}
