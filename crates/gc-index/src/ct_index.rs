//! CT-Index — fingerprint filtering over tree and cycle features
//! \[Klein, Kriege, Mutzel — ICDE 2011\].
//!
//! Every dataset graph gets a fixed-width bitmap: each canonical tree/cycle
//! feature (see [`crate::features`]) sets one hash-determined bit. A query
//! graph is fingerprinted the same way; the candidate set is every graph
//! whose bitmap is a superset of the query's. The paper's configuration —
//! trees ≤ 6 nodes, cycles ≤ 8 nodes, 4096-bit bitmaps — is the default,
//! and the §7.3 feature-size ablation (trees 7 / cycles 9 / 8192 bits) is a
//! constructor away.

use crate::features::{enumerate_features, FeatureConfig, FeatureSet};
use crate::fingerprint::{fnv1a, Fingerprint};
use crate::{CandidateSet, FilterIndex};
use gc_graph::{GraphDataset, GraphId, LabeledGraph};

/// Configuration for [`CtIndex`].
#[derive(Debug, Clone, Copy)]
pub struct CtConfig {
    /// Feature extraction parameters (tree/cycle size caps, work cap).
    pub features: FeatureConfig,
    /// Bitmap width in bits (paper default: 4096).
    pub bits: usize,
}

impl Default for CtConfig {
    fn default() -> Self {
        CtConfig {
            features: FeatureConfig::default(),
            bits: 4096,
        }
    }
}

impl CtConfig {
    /// The §7.3 feature-size ablation: trees ≤ 7, cycles ≤ 9, 8192 bits.
    pub fn enlarged() -> Self {
        CtConfig {
            features: FeatureConfig {
                tree_max_nodes: 7,
                cycle_max_nodes: 9,
                ..FeatureConfig::default()
            },
            bits: 8192,
        }
    }
}

/// The CT-Index filtering index: one fingerprint per dataset graph.
#[derive(Debug, Clone)]
pub struct CtIndex {
    fingerprints: Vec<Fingerprint>,
    cfg: CtConfig,
}

impl CtIndex {
    /// Builds the index over a dataset.
    pub fn build(dataset: &GraphDataset, cfg: CtConfig) -> Self {
        let fingerprints = dataset
            .graphs()
            .iter()
            .map(|g| Self::fingerprint_with(g, &cfg))
            .collect();
        CtIndex { fingerprints, cfg }
    }

    /// The effective configuration.
    pub fn config(&self) -> CtConfig {
        self.cfg
    }

    /// Fingerprints a graph under an explicit configuration. Overflowing
    /// graphs get the all-ones fingerprint (conservative: they pass every
    /// subset test as targets).
    pub fn fingerprint_with(g: &LabeledGraph, cfg: &CtConfig) -> Fingerprint {
        match enumerate_features(g, &cfg.features) {
            FeatureSet::Codes(codes) => {
                let mut fp = Fingerprint::zeros(cfg.bits);
                for code in codes {
                    fp.set_hash(fnv1a(&code));
                }
                fp
            }
            FeatureSet::Overflow => Fingerprint::ones(cfg.bits),
        }
    }

    /// Fingerprints a query under this index's configuration. A query whose
    /// enumeration overflows gets the all-zero fingerprint (conservative: it
    /// keeps every graph as a candidate).
    pub fn query_fingerprint(&self, query: &LabeledGraph) -> Fingerprint {
        match enumerate_features(query, &self.cfg.features) {
            FeatureSet::Codes(codes) => {
                let mut fp = Fingerprint::zeros(self.cfg.bits);
                for code in codes {
                    fp.set_hash(fnv1a(&code));
                }
                fp
            }
            FeatureSet::Overflow => Fingerprint::zeros(self.cfg.bits),
        }
    }

    /// The stored fingerprint of a dataset graph.
    pub fn fingerprint(&self, id: GraphId) -> &Fingerprint {
        &self.fingerprints[id.index()]
    }
}

impl FilterIndex for CtIndex {
    fn name(&self) -> &'static str {
        "CT-Index"
    }

    fn filter(&self, query: &LabeledGraph) -> CandidateSet {
        let qfp = self.query_fingerprint(query);
        self.fingerprints
            .iter()
            .enumerate()
            .filter(|(_, fp)| qfp.subset_of(fp))
            .map(|(i, _)| GraphId(i as u32))
            .collect()
    }

    fn graph_count(&self) -> usize {
        self.fingerprints.len()
    }

    fn memory_bytes(&self) -> usize {
        self.fingerprints.iter().map(|f| f.memory_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::idset;
    use gc_subiso::{Matcher, Vf2};

    fn dataset() -> GraphDataset {
        GraphDataset::new(vec![
            LabeledGraph::from_parts(vec![0, 1, 0], &[(0, 1), (1, 2)]),
            LabeledGraph::from_parts(vec![0, 1, 2], &[(0, 1), (1, 2), (2, 0)]),
            LabeledGraph::from_parts(vec![0, 1], &[(0, 1)]),
            LabeledGraph::from_parts(vec![3, 3, 3, 3], &[(0, 1), (1, 2), (2, 3), (3, 0)]),
        ])
    }

    #[test]
    fn filter_sound_vs_vf2() {
        let d = dataset();
        let idx = CtIndex::build(&d, CtConfig::default());
        let vf2 = Vf2::new();
        let queries = [
            LabeledGraph::from_parts(vec![0, 1], &[(0, 1)]),
            LabeledGraph::from_parts(vec![0, 1, 2], &[(0, 1), (1, 2), (2, 0)]),
            LabeledGraph::from_parts(vec![3, 3, 3], &[(0, 1), (1, 2)]),
            LabeledGraph::from_parts(vec![9, 9], &[(0, 1)]),
        ];
        for q in &queries {
            let cs = idx.filter(q);
            for id in d.ids() {
                if vf2.contains(q, d.graph(id)) {
                    assert!(idset::contains(&cs, id), "false negative for {q:?}");
                }
            }
        }
    }

    #[test]
    fn cycle_feature_discriminates() {
        let d = dataset();
        let idx = CtIndex::build(&d, CtConfig::default());
        // Triangle query: only G1 contains an all-distinct-label triangle.
        let tri = LabeledGraph::from_parts(vec![0, 1, 2], &[(0, 1), (1, 2), (2, 0)]);
        let cs = idx.filter(&tri);
        assert!(idset::contains(&cs, GraphId(1)));
        assert!(
            !idset::contains(&cs, GraphId(0)),
            "path graph pruned by cycle bit"
        );
    }

    #[test]
    fn wider_bitmaps_dont_lose_candidates() {
        let d = dataset();
        let small = CtIndex::build(
            &d,
            CtConfig {
                bits: 64,
                ..Default::default()
            },
        );
        let large = CtIndex::build(&d, CtConfig::enlarged());
        let q = LabeledGraph::from_parts(vec![0, 1], &[(0, 1)]);
        // Narrow bitmaps only add false positives, never false negatives:
        // candidates(small) ⊇ candidates(large) does not hold in general
        // (different feature sets), but both must contain the true answers.
        let vf2 = Vf2::new();
        for id in d.ids() {
            if vf2.contains(&q, d.graph(id)) {
                assert!(idset::contains(&small.filter(&q), id));
                assert!(idset::contains(&large.filter(&q), id));
            }
        }
    }

    #[test]
    fn enlarged_config_more_memory() {
        let d = dataset();
        let base = CtIndex::build(&d, CtConfig::default());
        let big = CtIndex::build(&d, CtConfig::enlarged());
        assert!(big.memory_bytes() > base.memory_bytes());
        assert_eq!(base.memory_bytes(), 4 * (4096 / 8 + 8));
    }

    #[test]
    fn overflowing_graph_matches_everything() {
        let d = dataset();
        let idx = CtIndex::build(
            &d,
            CtConfig {
                features: FeatureConfig {
                    work_cap: 1,
                    ..Default::default()
                },
                bits: 256,
            },
        );
        // Every dataset graph overflowed ⇒ all pass any query fingerprint.
        let q = LabeledGraph::from_parts(vec![9, 9], &[(0, 1)]);
        assert_eq!(idx.filter(&q).len(), d.len());
    }

    #[test]
    fn name_and_counts() {
        let d = dataset();
        let idx = CtIndex::build(&d, CtConfig::default());
        assert_eq!(idx.name(), "CT-Index");
        assert_eq!(idx.graph_count(), 4);
        assert!(idx.fingerprint(GraphId(0)).count_ones() > 0);
    }
}
