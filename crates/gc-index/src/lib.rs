//! Filter-then-verify (FTV) dataset indexes for GraphCache.
//!
//! The paper bundles GraphCache with three top-performing subgraph FTV
//! methods (§7.1); the *filtering* halves of all three live here:
//!
//! * [`PathTrie`] — GraphGrepSX \[Bonnici et al. 2010\]: all labelled simple
//!   paths up to 4 edges, stored in a trie with per-graph occurrence counts;
//! * [`GrapesIndex`] — Grapes \[Giugno et al. 2013\]: the same path features
//!   augmented with occurrence locations (Grapes' verification parallelism
//!   lives in `gc-methods`);
//! * [`CtIndex`] — CT-Index \[Klein, Kriege, Mutzel 2011\]: per-graph
//!   fingerprint bitmaps over tree features (≤ 6 nodes) and cycle features
//!   (≤ 8 nodes), 4096 bits by default.
//!
//! All filters are **sound**: the candidate set they return is always a
//! superset of the true answer set (no false negatives) — the property
//! tests in this crate check exactly that. Graphs whose feature enumeration
//! exceeds the configured work cap are conservatively treated as candidates
//! for every query, preserving soundness on pathological inputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ct_index;
pub mod features;
pub mod fingerprint;
pub mod fx;
pub mod ggsx;
pub mod grapes;
pub mod paths;
pub mod trie;

pub use ct_index::{CtConfig, CtIndex};
pub use ggsx::{GgsxConfig, PathTrie};
pub use grapes::{GrapesConfig, GrapesIndex};

use gc_graph::{GraphDataset, GraphId, LabeledGraph};

/// A sorted, duplicate-free set of dataset graph ids — the "candidate set"
/// CS(g) of the paper.
pub type CandidateSet = Vec<GraphId>;

/// A dataset filtering index: the `Mindex`/`Mfilter` half of a
/// filter-then-verify Method M (paper §4).
pub trait FilterIndex: Send + Sync {
    /// Method name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Returns the candidate set for a subgraph query: every dataset graph
    /// that may contain `query`. Sound (superset of the answer set), sorted.
    fn filter(&self, query: &LabeledGraph) -> CandidateSet;

    /// Number of indexed graphs.
    fn graph_count(&self) -> usize;

    /// Approximate index memory footprint in bytes (space-overhead
    /// experiments, paper §7.3).
    fn memory_bytes(&self) -> usize;

    /// Supergraph-direction filtering, when the index supports it: every
    /// dataset graph that may be *contained in* `query`. `None` means the
    /// index cannot filter this direction (callers fall back to the full
    /// graph set, which is always sound).
    fn filter_supergraph(&self, query: &LabeledGraph) -> Option<CandidateSet> {
        let _ = query;
        None
    }
}

/// Builds the given index over a dataset, timing the construction.
pub fn build_timed<I, F: FnOnce(&GraphDataset) -> I>(
    dataset: &GraphDataset,
    build: F,
) -> (I, std::time::Duration) {
    let t0 = std::time::Instant::now();
    let idx = build(dataset);
    (idx, t0.elapsed())
}
