//! Labelled simple-path enumeration — the feature extractor shared by
//! GraphGrepSX, Grapes and GraphCache's own query index.
//!
//! A *path feature* is the label sequence along a simple (vertex-distinct)
//! path. Every path of 0..=max_len edges is enumerated from every start
//! node, so a path and its reverse are counted as two occurrences (unless
//! palindromic) — consistently on both the dataset and the query side, which
//! is all that soundness needs: `g ⊆ G` implies `count_g(p) ≤ count_G(p)`
//! for every label sequence `p`, because an embedding maps distinct simple
//! paths of `g` to distinct simple paths of `G` with identical labels.

use crate::fx::FxHashMap as HashMap;
use gc_graph::{Label, LabeledGraph, NodeId};

/// A path feature: the sequence of vertex labels along the path.
pub type PathFeature = Vec<Label>;

/// Result of enumerating a graph's path features.
#[derive(Debug, Clone)]
pub enum PathProfile {
    /// Feature multiset: label sequence → number of occurrences.
    Counts(HashMap<PathFeature, u32>),
    /// Enumeration exceeded the work cap; the graph must be treated
    /// conservatively (always a candidate / all bits set).
    Overflow,
}

impl PathProfile {
    /// The counts map, if enumeration completed.
    pub fn counts(&self) -> Option<&HashMap<PathFeature, u32>> {
        match self {
            PathProfile::Counts(c) => Some(c),
            PathProfile::Overflow => None,
        }
    }

    /// Approximate memory footprint in bytes (keys, counts, table slack).
    pub fn memory_bytes(&self) -> usize {
        match self {
            PathProfile::Counts(c) => {
                c.keys().map(|k| k.len() * 4 + 24).sum::<usize>() + c.len() * 8 + 48
            }
            PathProfile::Overflow => 0,
        }
    }
}

/// Like [`enumerate_paths`] but also records, for every feature, the set of
/// start nodes at which an occurrence begins (Grapes' location lists).
#[derive(Debug, Clone)]
pub enum LocatedProfile {
    /// label sequence → (occurrence count, sorted start-node list).
    Counts(HashMap<PathFeature, (u32, Vec<NodeId>)>),
    /// Work cap exceeded.
    Overflow,
}

/// Enumerates all simple paths with `0..=max_len` edges and returns the
/// feature multiset. `work_cap` bounds the number of enumeration steps
/// (path extensions); exceeding it yields [`PathProfile::Overflow`].
pub fn enumerate_paths(g: &LabeledGraph, max_len: usize, work_cap: u64) -> PathProfile {
    let mut counts: HashMap<PathFeature, u32> = HashMap::default();
    let mut work = 0u64;
    let mut seq: Vec<Label> = Vec::with_capacity(max_len + 1);
    let mut on_path = vec![false; g.node_count()];
    for start in g.nodes() {
        seq.push(g.label(start));
        on_path[start as usize] = true;
        if !dfs(
            g,
            start,
            max_len,
            &mut seq,
            &mut on_path,
            &mut counts,
            &mut work,
            work_cap,
        ) {
            return PathProfile::Overflow;
        }
        on_path[start as usize] = false;
        seq.pop();
    }
    PathProfile::Counts(counts)
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    g: &LabeledGraph,
    v: NodeId,
    remaining_from: usize,
    seq: &mut Vec<Label>,
    on_path: &mut [bool],
    counts: &mut HashMap<PathFeature, u32>,
    work: &mut u64,
    work_cap: u64,
) -> bool {
    *work += 1;
    if *work > work_cap {
        return false;
    }
    // Hot path: occurrences vastly outnumber distinct features, so avoid
    // cloning the key except on first sighting (Vec<Label>: Borrow<[Label]>).
    if let Some(c) = counts.get_mut(seq.as_slice()) {
        *c += 1;
    } else {
        counts.insert(seq.clone(), 1);
    }
    if remaining_from == 0 {
        return true;
    }
    for &w in g.neighbors(v) {
        if !on_path[w as usize] {
            on_path[w as usize] = true;
            seq.push(g.label(w));
            let ok = dfs(
                g,
                w,
                remaining_from - 1,
                seq,
                on_path,
                counts,
                work,
                work_cap,
            );
            seq.pop();
            on_path[w as usize] = false;
            if !ok {
                return false;
            }
        }
    }
    true
}

/// Enumerates paths with per-feature start-node location lists (Grapes).
pub fn enumerate_paths_located(g: &LabeledGraph, max_len: usize, work_cap: u64) -> LocatedProfile {
    let base = match enumerate_paths(g, max_len, work_cap) {
        PathProfile::Overflow => return LocatedProfile::Overflow,
        PathProfile::Counts(c) => c,
    };
    // Second pass records which start nodes realise each feature. The work
    // bound was already honoured by the first pass; the second performs the
    // same traversal.
    let mut out: HashMap<PathFeature, (u32, Vec<NodeId>)> = base
        .into_iter()
        .map(|(k, c)| (k, (c, Vec::new())))
        .collect();
    let mut seq: Vec<Label> = Vec::with_capacity(max_len + 1);
    let mut on_path = vec![false; g.node_count()];
    for start in g.nodes() {
        seq.push(g.label(start));
        on_path[start as usize] = true;
        locate_dfs(g, start, start, max_len, &mut seq, &mut on_path, &mut out);
        on_path[start as usize] = false;
        seq.pop();
    }
    for (_, locs) in out.values_mut() {
        locs.sort_unstable();
        locs.dedup();
    }
    LocatedProfile::Counts(out)
}

fn locate_dfs(
    g: &LabeledGraph,
    start: NodeId,
    v: NodeId,
    remaining: usize,
    seq: &mut Vec<Label>,
    on_path: &mut [bool],
    out: &mut HashMap<PathFeature, (u32, Vec<NodeId>)>,
) {
    if let Some((_, locs)) = out.get_mut(seq.as_slice()) {
        locs.push(start);
    }
    if remaining == 0 {
        return;
    }
    for &w in g.neighbors(v) {
        if !on_path[w as usize] {
            on_path[w as usize] = true;
            seq.push(g.label(w));
            locate_dfs(g, start, w, remaining - 1, seq, on_path, out);
            seq.pop();
            on_path[w as usize] = false;
        }
    }
}

/// Brute-force reference counter for a single feature — used by tests to
/// validate the enumerator.
pub fn count_feature_bruteforce(g: &LabeledGraph, feature: &[Label]) -> u32 {
    fn rec(g: &LabeledGraph, v: NodeId, feature: &[Label], pos: usize, used: &mut [bool]) -> u32 {
        if pos == feature.len() {
            return 1;
        }
        let mut total = 0;
        for &w in g.neighbors(v) {
            if !used[w as usize] && g.label(w) == feature[pos] {
                used[w as usize] = true;
                total += rec(g, w, feature, pos + 1, used);
                used[w as usize] = false;
            }
        }
        total
    }
    if feature.is_empty() {
        return 0;
    }
    let mut total = 0;
    let mut used = vec![false; g.node_count()];
    for v in g.nodes() {
        if g.label(v) == feature[0] {
            used[v as usize] = true;
            total += rec(g, v, feature, 1, &mut used);
            used[v as usize] = false;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> LabeledGraph {
        LabeledGraph::from_parts(vec![0, 1, 2], &[(0, 1), (1, 2), (2, 0)])
    }

    #[test]
    fn single_node_features_are_label_counts() {
        let g = LabeledGraph::from_parts(vec![7, 7, 8], &[(0, 1), (1, 2)]);
        let p = enumerate_paths(&g, 0, u64::MAX);
        let c = p.counts().unwrap();
        assert_eq!(c[&vec![7]], 2);
        assert_eq!(c[&vec![8]], 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn triangle_path_counts() {
        let g = triangle();
        let p = enumerate_paths(&g, 2, u64::MAX);
        let c = p.counts().unwrap();
        // Each directed edge is one length-1 path.
        assert_eq!(c[&vec![0, 1]], 1);
        assert_eq!(c[&vec![1, 0]], 1);
        // Length-2 simple paths: each (ordered) pair of distinct edges
        // through a middle vertex: e.g. 0-1-2 gives [0,1,2].
        assert_eq!(c[&vec![0, 1, 2]], 1);
        assert_eq!(c[&vec![2, 1, 0]], 1);
    }

    #[test]
    fn counts_match_bruteforce() {
        let g = LabeledGraph::from_parts(
            vec![0, 1, 0, 1, 0],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)],
        );
        let p = enumerate_paths(&g, 3, u64::MAX);
        let c = p.counts().unwrap();
        for (feature, &count) in c {
            assert_eq!(
                count,
                count_feature_bruteforce(&g, feature),
                "feature {feature:?}"
            );
        }
    }

    #[test]
    fn subgraph_counts_dominated() {
        // Soundness cornerstone: sub ⊆ g ⇒ counts_sub ≤ counts_g.
        let g = LabeledGraph::from_parts(vec![0, 1, 0, 1], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let (sub, _) = g.edge_subgraph(&[(0, 1), (1, 2)]);
        let cg = enumerate_paths(&g, 4, u64::MAX);
        let cs = enumerate_paths(&sub, 4, u64::MAX);
        for (f, &c) in cs.counts().unwrap() {
            assert!(
                cg.counts().unwrap().get(f).copied().unwrap_or(0) >= c,
                "feature {f:?} undercounted in supergraph"
            );
        }
    }

    #[test]
    fn overflow_reported() {
        let g = triangle();
        assert!(matches!(enumerate_paths(&g, 2, 2), PathProfile::Overflow));
        assert!(matches!(
            enumerate_paths_located(&g, 2, 2),
            LocatedProfile::Overflow
        ));
    }

    #[test]
    fn located_profile_counts_match_plain() {
        let g = LabeledGraph::from_parts(vec![0, 0, 1], &[(0, 1), (1, 2)]);
        let plain = enumerate_paths(&g, 2, u64::MAX);
        let located = enumerate_paths_located(&g, 2, u64::MAX);
        let (LocatedProfile::Counts(loc), PathProfile::Counts(pc)) = (located, plain) else {
            panic!("unexpected overflow");
        };
        assert_eq!(loc.len(), pc.len());
        for (f, (c, starts)) in &loc {
            assert_eq!(c, &pc[f], "count mismatch for {f:?}");
            assert!(!starts.is_empty());
            assert!(starts.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn empty_graph_has_no_features() {
        let g = LabeledGraph::empty();
        let p = enumerate_paths(&g, 4, u64::MAX);
        assert!(p.counts().unwrap().is_empty());
    }

    #[test]
    fn bruteforce_empty_feature_zero() {
        assert_eq!(count_feature_bruteforce(&triangle(), &[]), 0);
    }
}
